"""The E10 persistent cache layer (the paper's primary contribution).

Aggregators write collective data to the node-local SSD scratch file system
instead of the global file; a per-aggregator sync thread
(:mod:`repro.cache.syncthread`, the simulated
``ADIOI_Sync_thread_start()``) reads cached extents back in
``ind_wr_buffer_size`` chunks and writes them to the global file in the
background, completing an MPI generalized request per extent.  Flush,
discard and coherence policies follow the Table II hints.

Paper correspondence: §III — the E10 cache design, its hints, and the
background synchronisation machinery.
"""

from repro.cache.cachefile import CacheOpenError, CacheState
from repro.cache.policy import CachePolicy
from repro.cache.syncthread import SyncRequest, SyncThread

__all__ = ["CacheOpenError", "CachePolicy", "CacheState", "SyncRequest", "SyncThread"]
