"""Per-aggregator cache file state (``cache_fd`` in the paper).

Opened by ``ADIOI_GEN_OpenColl`` when ``e10_cache`` is enabled; holds the
local file handle, the sync thread, the pending-request list for
``flush_onclose``, outstanding generalized requests, and — in coherent
mode — the refcounts of global-file stripe locks held over in-transit
extents.

Cache-file extents live at their *global-file offsets* (the local FS is
sparse), so no extra layout metadata is needed to flush, and a later
collective write to a different region of the same file reuses the same
cache file naturally.

Paper correspondence: §III-A cache-file management on the aggregators.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.nvmlog import NVMMWriteLog
from repro.cache.policy import CachePolicy
from repro.cache.syncthread import SyncRequest, SyncThread
from repro.faults.errors import TornWriteError
from repro.faults.recovery import CacheJournal
from repro.intervals import IntervalSet
from repro.localfs.ext4 import LocalFileSystem
from repro.mpi.request import GeneralizedRequest


class CacheOpenError(OSError):
    """Cache file could not be opened/allocated; caller reverts to standard open."""


class CacheState:
    """Everything one aggregator keeps per cached global file."""

    def __init__(self, machine, rank: int, global_file, policy: CachePolicy, comm):
        self.machine = machine
        self.rank = rank
        self.global_file = global_file
        self.policy = policy
        self.comm = comm
        self.localfs: LocalFileSystem = machine.local_fs_of_rank(rank)
        cache_name = f"{policy.cache_path}/r{rank}{global_file.path.replace('/', '_')}.cache"
        # Backend: an extent file on the scratch SSD (the paper's design) or
        # a write-ahead log on the node's NVMM region (cache_kind=nvmm).
        self.local_file = None
        self.wal: Optional[NVMMWriteLog] = None
        if policy.cache_kind == "nvmm":
            self.wal = NVMMWriteLog(machine, machine.node_of_rank(rank), name=cache_name)
        else:
            try:
                self.local_file = self.localfs.open(cache_name, create=True)
            except OSError as exc:  # pragma: no cover - namespace errors are rare
                raise CacheOpenError(str(exc)) from exc
        self.sync_thread = SyncThread(machine, rank, self, global_file, policy)
        self.pending: list[SyncRequest] = []  # not yet submitted (flush_onclose)
        self.outstanding: list[GeneralizedRequest] = []
        self.cached = IntervalSet()  # extents currently buffered locally
        self.bytes_cached = 0
        self._stripe_refs: dict[int, int] = {}
        self.closed = False
        # Fault state: a degraded cache stops accepting new writes (the
        # driver falls back to direct PFS writes) but keeps draining what it
        # already holds.
        self.degraded = False
        self.degraded_reason: Optional[str] = None
        # Crash-recovery journal: shares `cached` / `_stripe_refs` by
        # reference, so it always reflects live state without double
        # bookkeeping.  flush_none caches are never persisted — no journal.
        self.journal: Optional[CacheJournal] = None
        if not policy.flush_never:
            self.journal = CacheJournal(
                path=global_file.path,
                rank=rank,
                node_id=machine.node_of_rank(rank),
                local_path=cache_name,
                local_file=self.local_file,
                file_id=global_file.file_id,
                sync_chunk=policy.sync_chunk,
                discard_on_close=policy.discard_on_close,
                wal=self.wal,
                cached=self.cached,
                synced=IntervalSet(),
                stripe_refs=self._stripe_refs,
            )
            registry = getattr(machine, "recovery", None)
            if registry is not None:
                registry.register(self.journal)

    # -- space management (ADIOI_Cache_alloc) ----------------------------------
    def allocate(self, offset: int, nbytes: int):
        """Reserve cache space via fallocate; ENOSPC propagates.

        Dispatch, not a generator: returns the backend's generator directly
        so callers drive one frame less (``yield from`` semantics are
        unchanged — first-resume exceptions surface at the same point)."""
        if self.wal is not None:
            return self.wal.reserve(offset, nbytes)
        return self.localfs.fallocate(self.local_file, offset, nbytes)

    # -- the write path (called from ADIOI_GEN_WriteContig) ---------------------
    def write_through_cache(self, offset: int, nbytes: int, data: Optional[np.ndarray]):
        """Generator: write an extent into the cache file and create its
        synchronisation request.  Returns the generalized request handle."""
        stripes: tuple[int, ...] = ()
        if self.policy.coherent:
            layout = self.global_file.layout
            held = []
            for s in layout.stripes_covered(offset, nbytes):
                if self._stripe_refs.get(s, 0) == 0:
                    yield from self.machine.pfs.locks.acquire(
                        self.global_file.file_id, s, exclusive=True
                    )
                self._stripe_refs[s] = self._stripe_refs.get(s, 0) + 1
                held.append(s)
            stripes = tuple(held)
        try:
            yield from self._backend_write(offset, nbytes, data)
        except OSError:
            # ENOSPC or a lost device: undo coherent locks before
            # propagating — the caller falls back to a direct global write.
            for s in stripes:
                self.release_stripe(s)
            raise
        self.cached.add(offset, offset + nbytes)
        self.bytes_cached += nbytes
        io_stats = getattr(self.machine, "io_stats", None)
        if io_stats is not None:
            io_stats["bytes_cached"] += nbytes
            if self.policy.flush_never:
                # These bytes will never be persisted by policy; account the
                # discard now so conservation closes without waiting for the
                # unlink.
                io_stats["bytes_discarded"] += nbytes
        greq = GeneralizedRequest(self.machine.sim, meta={"offset": offset, "nbytes": nbytes})
        request = SyncRequest(offset, nbytes, greq, stripes=stripes)
        if self.policy.flush_never:
            # Evaluation aid (TBW series): the data stays in the cache;
            # complete the request so close never waits.  Coherent locks are
            # released immediately — nothing will ever be persisted.
            for s in stripes:
                self.release_stripe(s)
            greq.complete()
            return greq
        self.outstanding.append(greq)
        if self.policy.flush_immediate:
            self.sync_thread.submit(request)
        else:
            self.pending.append(request)
        return greq

    def _backend_write(self, offset: int, nbytes: int, data: Optional[np.ndarray]):
        """Store one extent in the active backend (dispatch; see
        :meth:`allocate` for why this is not itself a generator).

        Extent mode delegates to the local FS; NVMM mode appends to the
        write-ahead log, retrying torn appends (a torn record was never
        acknowledged, so re-appending is safe) with the sync thread's
        backoff schedule before letting the error degrade the cache.
        """
        if self.wal is None:
            return self.localfs.write(self.local_file, offset, nbytes, data)
        return self._wal_write(offset, nbytes, data)

    def _wal_write(self, offset: int, nbytes: int, data: Optional[np.ndarray]):
        attempts = 0
        while True:
            try:
                yield from self.wal.append(offset, nbytes, data)
                return
            except TornWriteError:
                attempts += 1
                stats = getattr(self.machine, "cache_stats", None)
                if stats is not None:
                    stats["wal_torn"] = stats.get("wal_torn", 0) + 1
                if attempts > self.policy.sync_retry_limit:
                    raise
                backoff = self.policy.sync_backoff_base * (
                    self.policy.sync_backoff_factor ** (attempts - 1)
                )
                yield self.machine.sim.timeout(backoff)

    # -- read-back (sync thread / recovery replay) --------------------------------
    def read_back(self, pos: int, blen: int):
        """Generator returning cached bytes — WAL or extent file."""
        if self.wal is not None:
            return (yield from self.wal.read(pos, blen))
        return (yield from self.localfs.read(self.local_file, pos, blen))

    def read_back_event(self, pos: int, blen: int):
        """Flat variant of :meth:`read_back` (``sim.flat`` chains)."""
        if self.wal is not None:
            return self.wal.read_event(pos, blen)
        return self.localfs.read_event(self.local_file, pos, blen)

    def mark_synced(self, offset: int, nbytes: int) -> None:
        """Record that ``[offset, offset+nbytes)`` reached the global file —
        crash recovery skips synced ranges."""
        if self.journal is not None:
            self.journal.synced.add(offset, offset + nbytes)

    def degrade(self, reason: str) -> None:
        """Enter degraded mode: new writes bypass the cache, in-flight
        extents keep draining.  Idempotent."""
        if self.degraded:
            return
        self.degraded = True
        self.degraded_reason = reason
        stats = getattr(self.machine, "cache_stats", None)
        if stats is not None:
            stats["degraded"] = stats.get("degraded", 0) + 1
        self.machine.tracer.emit(
            self.machine.sim.now, "cache", "degraded", rank=self.rank, reason=reason
        )

    def release_stripe(self, stripe: int) -> None:
        refs = self._stripe_refs.get(stripe, 0)
        if refs <= 1:
            self._stripe_refs.pop(stripe, None)
            self.machine.pfs.locks.release(self.global_file.file_id, stripe, exclusive=True)
        else:
            self._stripe_refs[stripe] = refs - 1

    # -- flush (ADIOI_GEN_Flush) --------------------------------------------------
    def flush(self):
        """Generator: submit any pending requests and wait for all to complete."""
        while self.pending:
            self.sync_thread.submit(self.pending.pop(0))
        waiting, self.outstanding = self.outstanding, []
        for greq in waiting:
            yield from greq.wait()

    @property
    def sync_complete(self) -> bool:
        return not self.pending and all(g.complete_now for g in self.outstanding)

    # -- close ---------------------------------------------------------------------
    def close(self):
        """Generator: flush, stop the thread, discard the cache file if asked."""
        yield from self.flush()
        self.sync_thread.shutdown()
        if self.wal is not None:
            if self.policy.discard_on_close:
                self.wal.discard()
        else:
            self.localfs.close(self.local_file)
            if self.policy.discard_on_close and self.localfs.writable:
                if self.localfs.exists(self.local_file.path):
                    self.localfs.unlink(self.local_file.path)
        if self.journal is not None:
            registry = getattr(self.machine, "recovery", None)
            if registry is not None:
                registry.unregister(self.journal)
            self.journal = None
        self.closed = True
