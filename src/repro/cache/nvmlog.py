"""Byte-addressable NVMM write-ahead log (the ``cache_kind=nvmm`` backend).

In extent mode the aggregator cache is a sparse file on the scratch SSD;
in NVMM mode it is a log on DIMM-attached persistent memory: every cached
extent is *appended* as one CRC-protected record (header + payload) and
made durable by a persistence barrier (CLWB + SFENCE drain).  There is no
file system underneath — no namespace, no fallocate, no page cache — so a
cache write costs the record store plus one barrier, and read-back is a
load at memory speed from the mapped region.

Record semantics:

* A record is **durable** only once its persistence barrier completes;
  ``CacheState.bytes_cached`` is counted after the ``append`` generator
  returns, so acknowledged bytes and durable bytes are the same set.
* A **torn** record (``nvmm_torn_write`` fault: the power-glitch model of
  a store stream stopping mid-record) is physically present in the log
  with a bad CRC, was never acknowledged to the writer, and is skipped by
  both read-back and recovery replay.  The cache layer retries the append,
  so the same logical extent eventually lands as a later durable record —
  replay stays idempotent because :meth:`gather` overlays records in
  append order.
* Recovery after an aggregator crash replays ``cached - synced`` ranges by
  reading them back from the log exactly like the sync thread does; torn
  records contribute nothing (their bytes never entered ``cached``), so
  byte conservation closes without special-casing.

Capacity is accounted against the node's NVMM region
(``NVMMDevice.log_used``, headers included) and released when the log is
discarded; exhaustion raises the same :class:`~repro.localfs.ext4.ENOSPC`
the extent backend raises, so the driver's degrade-to-direct-write path is
backend-agnostic.

Calibration sources: NVCache (arXiv:2105.10397) for the WAL-on-NVMM cache
architecture; see docs/DEVICES.md for the device parameter table.

Paper correspondence: §III — the cache layer the paper builds on an SSD
scratch partition, re-based onto the byte-addressable NVM devices its
outlook anticipates (ROADMAP item 4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.faults.errors import DeviceLostError
from repro.localfs.ext4 import ENOSPC
from repro.sim.core import Event


@dataclass
class WALRecord:
    """One appended cache extent (header + payload) in the log."""

    seq: int
    offset: int  # global-file offset of the extent
    nbytes: int
    data: Optional[np.ndarray]  # payload (None for virtual runs)
    durable: bool = False  # persistence barrier completed (CRC valid)
    torn: bool = False  # partial store, bad CRC: skipped by read/replay


class NVMMWriteLog:
    """One aggregator's write-ahead log on its node's NVMM region."""

    _ids = itertools.count(1)

    def __init__(self, machine, node_id: int, name: str):
        self.machine = machine
        self.node_id = node_id
        self.name = name
        self.log_id = next(NVMMWriteLog._ids)
        self.device = machine.nodes[node_id].nvmm
        self.sim = self.device.sim
        self.header = self.device.nvmm.record_header
        self.records: list[WALRecord] = []
        self._seq = itertools.count(0)
        self._tail = 0  # append point within the log region
        self.reserved = 0  # bytes charged against device.log_used
        # Accounting.
        self.durable_records = 0
        self.torn_records = 0
        self.bytes_appended = 0  # payload bytes made durable
        self.torn_bytes = 0  # payload bytes lost to torn appends (retried)
        self._injector = getattr(machine, "faults", None)

    # -- space management ---------------------------------------------------------
    def reserve(self, offset: int, nbytes: int):
        """Generator: capacity check for an upcoming append.

        The log is append-only — there is no extent tree to pre-populate —
        so reservation is free; it exists to fail an oversized collective
        write with ENOSPC *before* any stripe locks are taken, mirroring
        the extent backend's ``fallocate`` contract.
        """
        self._check_writable()
        if self.device.log_used + self.header + nbytes > self.device.capacity_bytes:
            raise ENOSPC(
                f"NVMM log region full on node {self.node_id}: "
                f"{self.device.log_used + self.header + nbytes} > "
                f"{self.device.capacity_bytes}"
            )
        return
        yield  # pragma: no cover - makes this a generator for `yield from`

    def _check_writable(self) -> None:
        if self.device.read_only:
            raise DeviceLostError(
                f"NVMM region on node {self.node_id} is read-only"
            )

    # -- the append path ----------------------------------------------------------
    def append(self, offset: int, nbytes: int, data: Optional[np.ndarray]):
        """Generator: append one record and drain the persistence barrier.

        Raises :class:`~repro.faults.errors.TornWriteError` when an armed
        ``nvmm_torn_write`` window tears the record: roughly half the
        payload lands (charged at device speed), the torn record stays in
        the log unacknowledged, and the caller retries the append.
        """
        self._check_writable()
        dev = self.device
        total = self.header + nbytes
        if dev.log_used + total > dev.capacity_bytes:
            raise ENOSPC(
                f"NVMM log region full on node {self.node_id}: "
                f"{dev.log_used + total} > {dev.capacity_bytes}"
            )
        inj = self._injector
        if inj is not None and inj.wal_tear_decision(self.node_id, offset, nbytes):
            # The store stream stops mid-record: the slot is consumed (a
            # real log cannot reuse it without breaking the CRC chain walk)
            # but only part of the payload was transferred, and no barrier
            # ran — the writer never sees an acknowledgement.
            dev.log_used += total
            self.reserved += total
            torn_span = self.header + nbytes // 2
            yield from dev.write(self._tail, torn_span)
            self._tail += total
            self.records.append(
                WALRecord(next(self._seq), offset, nbytes, None, torn=True)
            )
            self.torn_records += 1
            self.torn_bytes += nbytes
            raise inj.torn_write_error(self.node_id, offset, nbytes)
        dev.log_used += total
        self.reserved += total
        yield from dev.write(self._tail, total)
        self._tail += total
        yield self.sim.timeout(dev.persist_barrier)
        payload = None
        if data is not None:
            arr = np.asarray(data, dtype=np.uint8)
            payload = arr.copy() if len(arr) == nbytes else arr[:nbytes].copy()
        self.records.append(
            WALRecord(next(self._seq), offset, nbytes, payload, durable=True)
        )
        self.durable_records += 1
        self.bytes_appended += nbytes

    # -- read-back (sync thread / recovery replay) --------------------------------
    def read(self, pos: int, blen: int):
        """Generator returning bytes for ``[pos, pos+blen)`` (None if no
        payloads were stored).  One device-speed load; torn records are
        CRC-skipped."""
        if blen > 0:
            yield from self.device.read(pos % max(1, self.device.capacity_bytes), blen)
        return self.gather(pos, blen)

    def read_event(self, pos: int, blen: int) -> Event:
        """Flat variant of :meth:`read` for ``sim.flat`` chains (caller
        gates on the device being injector-free, as with
        :meth:`~repro.localfs.ext4.LocalFileSystem.read_event`)."""
        done = Event(self.sim, name="wal-read")
        self.device.io_flat(
            pos % max(1, self.device.capacity_bytes),
            blen,
            False,
            lambda: done._fire_inline(self.gather(pos, blen)),
        )
        return done

    def gather(self, pos: int, blen: int) -> Optional[np.ndarray]:
        """Overlay durable records (append order) over ``[pos, pos+blen)``."""
        out: Optional[np.ndarray] = None
        end = pos + blen
        for rec in self.records:
            if not rec.durable or rec.data is None:
                continue
            lo = max(pos, rec.offset)
            hi = min(end, rec.offset + rec.nbytes)
            if lo < hi:
                if out is None:
                    out = np.zeros(blen, dtype=np.uint8)
                out[lo - pos : hi - pos] = rec.data[lo - rec.offset : hi - rec.offset]
        return out

    # -- lifecycle ---------------------------------------------------------------
    def discard(self) -> None:
        """Truncate the log and release its NVMM region bytes."""
        self.device.log_used -= self.reserved
        self.reserved = 0
        self._tail = 0
        self.records.clear()

    def stats(self) -> dict[str, float]:
        return {
            "durable_records": self.durable_records,
            "torn_records": self.torn_records,
            "bytes_appended": self.bytes_appended,
            "torn_bytes": self.torn_bytes,
            "log_bytes": self.reserved,
        }
