"""Cache policy derived from the Table II hints.

Paper correspondence: §III-A hint semantics, Table II configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.romio.hints import Hints


@dataclass(frozen=True)
class CachePolicy:
    enabled: bool
    coherent: bool
    flush_mode: str  # "flush_immediate" | "flush_onclose" | "flush_none"
    discard_on_close: bool
    cache_path: str
    sync_chunk: int  # ind_wr_buffer_size
    # Cache backend: "extent" (sparse file on the scratch SSD) or "nvmm"
    # (write-ahead log on persistent memory, repro.cache.nvmlog).
    cache_kind: str = "extent"

    # Sync-thread fault handling: transient failures are retried in place
    # with exponential backoff, then the remainder of the request is
    # re-queued at the tail a bounded number of times before giving up.
    sync_retry_limit: int = 4
    sync_backoff_base: float = 2e-3
    sync_backoff_factor: float = 2.0
    sync_requeue_limit: int = 2

    @property
    def flush_immediate(self) -> bool:
        return self.flush_mode == "flush_immediate"

    @property
    def flush_never(self) -> bool:
        return self.flush_mode == "flush_none"

    @classmethod
    def from_hints(cls, hints: Hints) -> "CachePolicy":
        hints.validate()
        return cls(
            enabled=hints.cache_enabled,
            coherent=hints.cache_coherent,
            flush_mode=hints.e10_cache_flush_flag,
            discard_on_close=hints.discard_on_close,
            cache_path=hints.e10_cache_path,
            sync_chunk=hints.ind_wr_buffer_size,
            cache_kind=hints.e10_cache_kind,
        )
