"""The cache synchronisation thread (``ADIOI_Sync_thread_start``).

One simulated POSIX thread per aggregator per cached file.  It consumes
:class:`SyncRequest` work items from a FIFO queue: for each it reads the
extent back from the cache file (SSD read, possibly served from the page
cache) in ``ind_wr_buffer_size`` chunks and writes each chunk to the global
file through the *synchronous* independent-write client path, then calls
``MPI_Grequest_complete`` on the request's handle.

``flush_batch_chunks`` (a simulation fidelity knob, not a semantic one)
coalesces several chunks into one macro-operation whose cost is the sum of
the per-chunk costs; 1 reproduces the implementation exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.mpi.request import GeneralizedRequest
from repro.sim.resources import Store


@dataclass
class SyncRequest:
    """One cached extent awaiting synchronisation to the global file."""

    offset: int
    nbytes: int
    grequest: GeneralizedRequest
    stripes: tuple[int, ...] = ()  # stripes to unlock when persisted (coherent)

    shutdown: bool = False


_SHUTDOWN = SyncRequest(0, 0, None, shutdown=True)  # type: ignore[arg-type]


class SyncThread:
    """Background flusher bound to one aggregator's cache file."""

    def __init__(self, machine, rank: int, cache_state, global_file, policy):
        self.machine = machine
        self.sim = machine.sim
        self.rank = rank
        self.cache_state = cache_state
        self.global_file = global_file
        self.policy = policy
        self.queue = Store(self.sim, name=f"syncq.r{rank}")
        self.client = machine.pfs_client(rank)
        self.localfs = machine.local_fs_of_rank(rank)
        self.bytes_synced = 0
        self.requests_done = 0
        self.busy_time = 0.0
        self._proc = self.sim.process(self._run(), name=f"syncthread.r{rank}")

    def submit(self, request: SyncRequest) -> None:
        self.queue.put(request)

    def shutdown(self) -> None:
        self.queue.put(_SHUTDOWN)

    @property
    def alive(self) -> bool:
        return self._proc.is_alive

    # -- the thread body ---------------------------------------------------------
    def _run(self):
        cfg = self.machine.config
        chunk = self.policy.sync_chunk
        batch_chunks = max(1, cfg.flush_batch_chunks)
        while True:
            req: SyncRequest = yield self.queue.get()
            if req.shutdown:
                return
            t0 = self.sim.now
            pos = req.offset
            end = req.offset + req.nbytes
            while pos < end:
                blen = min(chunk * batch_chunks, end - pos)
                nchunks = math.ceil(blen / chunk)
                data = yield from self.localfs.read(self.cache_state.local_file, pos, blen)
                yield from self.client.write_sync(
                    self.global_file, pos, blen, data=data, rpc_count=nchunks
                )
                pos += blen
            self.bytes_synced += req.nbytes
            self.requests_done += 1
            self.busy_time += self.sim.now - t0
            for stripe in req.stripes:
                self.cache_state.release_stripe(stripe)
            req.grequest.complete()
