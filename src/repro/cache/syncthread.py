"""The cache synchronisation thread (``ADIOI_Sync_thread_start``).

One simulated POSIX thread per aggregator per cached file.  It consumes
:class:`SyncRequest` work items from a FIFO queue: for each it reads the
extent back from the cache file (SSD read, possibly served from the page
cache) in ``ind_wr_buffer_size`` chunks and writes each chunk to the global
file through the *synchronous* independent-write client path, then calls
``MPI_Grequest_complete`` on the request's handle.

``flush_batch_chunks`` (a simulation fidelity knob, not a semantic one)
coalesces several chunks into one macro-operation whose cost is the sum of
the per-chunk costs; 1 reproduces the implementation exactly.

Fault handling: transient :class:`~repro.faults.errors.FaultError` failures
(SSD read errors, PFS RPC timeouts) are retried in place with exponential
backoff up to ``policy.sync_retry_limit`` attempts; a chunk that exhausts
its retries re-queues the *remainder* of its request at the queue tail up
to ``policy.sync_requeue_limit`` times before the grequest is failed with
:class:`~repro.faults.errors.SyncFailedError`.  Progress is tracked
per-chunk through ``cache_state.mark_synced`` so crash recovery replays
only genuinely unflushed bytes.

Paper correspondence: §III-A — the background flush that hides sync cost
behind the next compute phase (Fig. 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.faults.errors import FaultError, SyncFailedError
from repro.mpi.request import GeneralizedRequest
from repro.sim.core import Interrupt
from repro.sim.resources import Store


@dataclass
class SyncRequest:
    """One cached extent awaiting synchronisation to the global file."""

    offset: int
    nbytes: int
    grequest: Optional[GeneralizedRequest]
    stripes: tuple[int, ...] = ()  # stripes to unlock when persisted (coherent)

    shutdown: bool = False
    requeues: int = 0  # times this extent has been re-queued after give-up


_SHUTDOWN = SyncRequest(0, 0, None, shutdown=True)


class SyncThread:
    """Background flusher bound to one aggregator's cache file."""

    def __init__(self, machine, rank: int, cache_state, global_file, policy):
        self.machine = machine
        self.sim = machine.sim
        self.rank = rank
        self.cache_state = cache_state
        self.global_file = global_file
        self.policy = policy
        self.queue = Store(self.sim, name=f"syncq.r{rank}")
        self.client = machine.pfs_client(rank)
        self.localfs = machine.local_fs_of_rank(rank)
        self.bytes_synced = 0
        self.requests_done = 0
        self.busy_time = 0.0
        self.retries = 0
        self.requeues = 0
        self.failures = 0
        # Preresolved machine-wide counter dict (may be None): _stat runs per
        # retry/requeue, so the getattr lookup is hoisted out of the hot path.
        self._stats = getattr(machine, "cache_stats", None)
        self._io_stats = getattr(machine, "io_stats", None)
        # Bulk data plane, scoped to this thread's node: the fast flush loop
        # is valid whenever no FaultError can reach it — either no injector
        # at all, or one whose fault sources (SSD read errors, sync RPC
        # watchdog) cannot fire on this node (see sync_faults_possible).
        inj = getattr(machine, "faults", None)
        self._bulk = getattr(machine, "dataplane", "chunked") == "bulk" and (
            inj is None
            or not inj.sync_faults_possible(machine.node_of_rank(rank))
        )
        # Flat service loop (slotted engine): the read/write chain runs as
        # event callbacks instead of nested generator frames.  Requires the
        # bulk fast loop AND no fault schedule at all — a flat chain cannot
        # be interrupted mid-flight, and serve_write_event needs every
        # server injector-free (sync_faults_possible only covers this node).
        self._flat = self.sim.flat and self._bulk and inj is None
        body = self._run_flat() if self._flat else self._run()
        self._proc = self.sim.process(body, name=f"syncthread.r{rank}")
        if inj is not None:
            inj.register_daemon(
                self._proc, job_tag=getattr(machine, "job_label", None)
            )
        # Fleet job teardown: a JobView collects its daemons so an aborted
        # job's parked sync threads can be interrupted when its nodes are
        # released (a plain Machine has no such list).
        daemons = getattr(machine, "daemons", None)
        if daemons is not None:
            daemons.append(self._proc)

    def submit(self, request: SyncRequest) -> None:
        self.queue.put(request)

    def shutdown(self) -> None:
        self.queue.put(_SHUTDOWN)

    @property
    def alive(self) -> bool:
        return self._proc.is_alive

    # -- the thread body ---------------------------------------------------------
    def _run(self):
        try:
            while True:
                req: SyncRequest = yield self.queue.get()
                if req.shutdown or req.grequest is None:
                    return
                if self._bulk:
                    yield from self._service_fast(req)
                else:
                    yield from self._service(req)
        except Interrupt:
            # The job was torn down (aggregator crash).  The cache file and
            # its journal survive; recovery replays unflushed extents on the
            # next open.  Returning cleanly parks this daemon.
            return

    def _run_flat(self):
        """Flat-engine thread body: one shallow generator whose yields are
        the composite Events of the flattened localfs/PFS fast paths
        (:meth:`LocalFileSystem.read_event`, :meth:`PFSClient.write_sync_flat`)
        — two process resumes per batch instead of a resume per frame of
        the read/write generator stack.  Same reads, writes, journal marks
        and counters as :meth:`_service_fast`, in the same event-callback
        positions (the flat helpers fire inline where the generator's
        caller would resume)."""
        cfg = self.machine.config
        chunk = self.policy.sync_chunk
        batch_chunks = max(1, cfg.flush_batch_chunks)
        try:
            while True:
                req: SyncRequest = yield self.queue.get()
                if req.shutdown or req.grequest is None:
                    return
                t0 = self.sim.now
                pos = req.offset
                end = req.offset + req.nbytes
                try:
                    while pos < end:
                        blen = min(chunk * batch_chunks, end - pos)
                        nchunks = math.ceil(blen / chunk)
                        data = yield self.cache_state.read_back_event(pos, blen)
                        yield self.client.write_sync_flat(
                            self.global_file, pos, blen, data=data, rpc_count=nchunks
                        )
                        self.cache_state.mark_synced(pos, blen)
                        self.bytes_synced += blen
                        if self._io_stats is not None:
                            self._io_stats["bytes_flushed"] += blen
                        pos += blen
                finally:
                    self.busy_time += self.sim.now - t0
                self.requests_done += 1
                for stripe in req.stripes:
                    self.cache_state.release_stripe(stripe)
                req.grequest.complete()
        except Interrupt:
            return

    def _service(self, req: SyncRequest):
        cfg = self.machine.config
        chunk = self.policy.sync_chunk
        batch_chunks = max(1, cfg.flush_batch_chunks)
        t0 = self.sim.now
        pos = req.offset
        end = req.offset + req.nbytes
        attempts = 0
        try:
            while pos < end:
                blen = min(chunk * batch_chunks, end - pos)
                nchunks = math.ceil(blen / chunk)
                try:
                    data = yield from self.cache_state.read_back(pos, blen)
                    yield from self.client.write_sync(
                        self.global_file, pos, blen, data=data, rpc_count=nchunks
                    )
                except FaultError:
                    attempts += 1
                    self.retries += 1
                    self._stat("retries")
                    if attempts <= self.policy.sync_retry_limit:
                        backoff = self.policy.sync_backoff_base * (
                            self.policy.sync_backoff_factor ** (attempts - 1)
                        )
                        yield self.sim.timeout(backoff)
                        continue
                    self._give_up(req, pos, end)
                    return
                attempts = 0
                self.cache_state.mark_synced(pos, blen)
                self.bytes_synced += blen
                if self._io_stats is not None:
                    self._io_stats["bytes_flushed"] += blen
                pos += blen
        finally:
            self.busy_time += self.sim.now - t0
        self.requests_done += 1
        for stripe in req.stripes:
            self.cache_state.release_stripe(stripe)
        if req.grequest is not None:
            req.grequest.complete()

    def _service_fast(self, req: SyncRequest):
        """The no-fault flush loop: identical reads, writes, journal marks
        and counter updates as :meth:`_service`, minus the try/except
        retry scaffolding that can never trigger without an injector."""
        cfg = self.machine.config
        chunk = self.policy.sync_chunk
        batch_chunks = max(1, cfg.flush_batch_chunks)
        t0 = self.sim.now
        pos = req.offset
        end = req.offset + req.nbytes
        try:
            while pos < end:
                blen = min(chunk * batch_chunks, end - pos)
                nchunks = math.ceil(blen / chunk)
                data = yield from self.cache_state.read_back(pos, blen)
                yield from self.client.write_sync(
                    self.global_file, pos, blen, data=data, rpc_count=nchunks
                )
                self.cache_state.mark_synced(pos, blen)
                self.bytes_synced += blen
                if self._io_stats is not None:
                    self._io_stats["bytes_flushed"] += blen
                pos += blen
        finally:
            self.busy_time += self.sim.now - t0
        self.requests_done += 1
        for stripe in req.stripes:
            self.cache_state.release_stripe(stripe)
        if req.grequest is not None:
            req.grequest.complete()

    def _give_up(self, req: SyncRequest, pos: int, end: int) -> None:
        """Retries exhausted for the chunk at ``pos``: re-queue the remainder
        at the tail (later faults may have cleared) or fail the grequest."""
        if req.requeues < self.policy.sync_requeue_limit:
            self.requeues += 1
            self._stat("requeues")
            self.queue.put(
                SyncRequest(
                    pos,
                    end - pos,
                    req.grequest,
                    stripes=req.stripes,
                    requeues=req.requeues + 1,
                )
            )
            return
        self.failures += 1
        self._stat("sync_failures")
        if self._io_stats is not None:
            self._io_stats["bytes_lost"] += end - pos
        for stripe in req.stripes:
            self.cache_state.release_stripe(stripe)
        if req.grequest is not None:
            # Fleet runs label the error with the owning job so a failure in
            # a multi-job simulation is attributable (job_label is None on a
            # plain single-job Machine).
            job = getattr(self.machine, "job_label", None)
            whose = f"job {job}: " if job is not None else ""
            req.grequest.fail(
                SyncFailedError(
                    f"{whose}sync of [{pos}, {end}) on rank {self.rank} "
                    f"abandoned after {req.requeues} re-queues"
                )
            )

    def _stat(self, key: str) -> None:
        d = self._stats
        if d is not None:
            d[key] = d.get(key, 0) + 1
