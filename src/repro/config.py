"""Cluster, network, device and file-system configuration.

``deep_er_testbed()`` encodes the paper's evaluation platform (Section IV-A):
the DEEP-ER research cluster — 64 dual-socket Sandy Bridge nodes running 8
MPI ranks each, InfiniBand QDR, a BeeGFS installation with four data servers
backed by 8+2 RAID6 SAS targets, and one 30 GB ext4 SSD scratch partition
per node.  Calibration constants carry provenance comments tying them back
to the paper's measured ceilings (≈2 GB/s global file system, ≈20 GB/s
aggregate SSD cache at 64 aggregators, 8-aggregator flush ≈40 s > 30 s
compute delay).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.units import GiB, KiB, MiB, USEC


@dataclass(frozen=True)
class NetworkConfig:
    """Interconnect model parameters (InfiniBand QDR defaults).

    ``nic_bw`` is the per-node injection/ejection bandwidth; the switch core
    is assumed non-blocking (true for the DEEP-ER fat tree at this scale),
    so contention arises only at NICs.  ``latency`` is the one-way small
    message latency; ``alpha_collective``/``beta_collective`` parameterise
    the LogGP-style cost of latency-bound collectives.
    """

    nic_bw: float = 3.2 * GiB  # QDR 4x ≈ 32 Gbit/s ≈ 3.2 GiB/s effective
    latency: float = 1.3 * USEC  # typical IB QDR MPI half round trip
    alpha_collective: float = 1.8 * USEC  # per-stage latency in tree collectives
    per_message_overhead: float = 0.4 * USEC  # CPU cost to post/match one message
    eager_threshold: int = 64 * KiB  # below this, sends complete without rendezvous
    # Intra-node (shared-memory) transport: a send is two memory copies, so
    # the effective per-node rate is about half the memcpy bandwidth.  This
    # is what bounds rank-ordered patterns (IOR segments, Flash-IO
    # variables) whose shuffle is entirely node-local.
    shm_bw: float = 2.0 * GiB
    # Per offset/length-pair CPU cost of the two-phase exchange: datatype
    # flattening, the heap merge in ADIOI_W_Exchange_data, and scattered
    # (non-streaming) memcpy of each piece.  This is what makes coll_perf's
    # 2 KB-strided pattern several times slower than the contiguous
    # Flash-IO/IOR patterns at equal volume — calibrated so coll_perf's
    # cached peak lands near the paper's ≈20 GB/s while Flash-IO (8 large
    # pieces per aggregator round) stays near its ≈40 GB/s.
    piece_overhead: float = 2e-6


@dataclass(frozen=True)
class SSDConfig:
    """Node-local SATA SSD (80 GB, 30 GB ext4 scratch in the paper)."""

    write_bw: float = 0.45 * GiB  # sustained sequential write, SATA-2 era SSD
    read_bw: float = 0.50 * GiB  # sustained sequential read
    latency: float = 60 * USEC  # per-request device latency
    capacity: int = 30 * GiB  # the /scratch partition size


@dataclass(frozen=True)
class FlashConfig:
    """Flash geometry + FTL knobs for the ``REPRO_SSD=ftl`` device model.

    Timing constants follow the NVM characterization of Liu et al.
    (arXiv:1705.03598, MLC-era SATA parts) and ONFI-style organisation:
    16 KiB pages, 256-page (4 MiB) erase blocks, 8 independent LUNs.  The
    per-page program time is calibrated so that large sequential writes on
    a fresh drive sustain the same ≈0.45 GiB/s as :class:`SSDConfig`
    (8 LUNs × 16 KiB / 260 µs ≈ 0.47 GiB/s before the SATA bus cap), which
    keeps the paper's Table-II experiments comparable across device tiers;
    the *difference* between the tiers — GC stalls and write amplification
    under steady overwrite — emerges from the FTL, not from the constants.
    """

    page_size: int = 16 * KiB
    pages_per_block: int = 256  # 4 MiB erase block
    num_luns: int = 8  # independently programmable dies
    read_page_time: float = 90e-6  # tR + transfer of one 16 KiB page
    program_page_time: float = 260e-6  # tPROG (MLC average)
    erase_block_time: float = 3.5e-3  # tBERS
    bus_bw: float = 0.50 * GiB  # SATA-2 host interface ceiling
    # Physical blocks beyond the advertised capacity.  7% matches consumer
    # parts of the era; the OP pool is what the garbage collector consumes
    # before it must stall host writes.
    over_provisioning: float = 0.07
    # Greedy GC engages when a LUN's free-block pool falls below this
    # fraction of its physical blocks (foreground GC; there is no idle-time
    # background collector, matching the worst case the sync thread's
    # steady overwrite load produces).
    gc_free_fraction: float = 0.02


@dataclass(frozen=True)
class NVMMConfig:
    """Byte-addressable non-volatile memory (the ``cache_kind=nvmm`` tier).

    An NVCache-style (arXiv:2105.10397) DIMM-attached persistent memory
    region used as a write-ahead log: loads/stores at near-DRAM bandwidth
    with an explicit persistence barrier (CLWB+SFENCE) whose cost is paid
    once per WAL record.  Write bandwidth below read reflects the measured
    asymmetry of 3D-XPoint-class parts (Liu et al., arXiv:1705.03598).
    """

    read_bw: float = 2.2 * GiB
    write_bw: float = 1.4 * GiB
    latency: float = 1.2 * USEC  # per-access software + media latency
    persist_barrier: float = 0.8 * USEC  # CLWB + SFENCE drain per record
    capacity: int = 16 * GiB  # the per-node log region
    record_header: int = 64  # WAL header: seq, offset, length, CRC


@dataclass(frozen=True)
class HDDConfig:
    """One BeeGFS storage target: an 8+2 RAID6 group of 2 TB SAS drives."""

    stream_bw: float = 0.58 * GiB  # RAID6 group sequential write ≈ 600 MB/s
    seek_time: float = 6e-3  # average head movement + rotational latency
    capacity: int = 64 * 1024 * GiB
    # Fraction of the seek penalty charged when a request is sequential with
    # the previous one on the same target (track-to-track, cache hits).
    sequential_seek_factor: float = 0.04


@dataclass(frozen=True)
class RAMConfig:
    """Node memory and the page-cache model for the local ext4 scratch FS."""

    capacity: int = 32 * GiB
    memcpy_bw: float = 4.0 * GiB  # single-stream page-cache copy bandwidth
    # Linux-like dirty throttling: buffered writes proceed at memcpy speed
    # until dirty bytes exceed dirty_ratio * capacity, then at device speed.
    dirty_ratio: float = 0.20


@dataclass(frozen=True)
class PFSConfig:
    """BeeGFS-like parallel file system (Section IV-A).

    Four data servers gives the ≈2.2 GiB/s aggregate ceiling the paper
    measures as the cache-disabled plateau.  ``rpc_overhead`` is the
    per-request client+server software cost; ``per_client_max_bw`` caps a
    single client stream (TCP/RDMA window + single-threaded worker), which
    is what makes the 512 KiB-chunk flush from only 8 aggregators too slow
    to hide inside the 30 s compute delay (8 × 4 GiB / 0.105 GiB/s ≈ 40 s,
    paper Fig. 4/5's not_hidden_sync at 8 aggregators).
    """

    num_data_servers: int = 4
    num_metadata_servers: int = 1
    default_stripe_size: int = 4 * MiB  # paper fixes the stripe size to 4 MB
    default_stripe_count: int = 4  # and the stripe count to 4
    server_ingest_bw: float = 1.1 * GiB  # server-side network + buffer copy
    rpc_overhead: float = 350 * USEC  # request setup/teardown on the server
    client_rpc_overhead: float = 60 * USEC  # client-side per-RPC CPU cost
    per_client_max_bw: float = 0.58 * GiB  # one client's max streaming rate
    # Small independent writes pay the full RPC + seek path and reach only a
    # fraction of the streaming rate; collective 4 MiB stripes amortise it.
    jitter_sigma: float = 0.35  # lognormal service-time spread (load imbalance)
    num_server_workers: int = 4  # BeeGFS worker threads per data server
    # Concurrent sequential streams the target firmware / elevator can track
    # before interleaved writers start paying full seeks.  Sized above the
    # largest aggregator count (64) so collective streams stay sequential.
    server_max_streams: int = 128
    # Server-side write-back cache (BeeGFS buffered mode): a write RPC is
    # acknowledged once the data is in the server's cache; a drain daemon
    # streams it to the RAID target.  The modest dirty limit means sustained
    # collective writes settle to the disks' aggregate rate (the paper's
    # ≈2 GB/s plateau) while decoupling two-phase round synchronisation
    # from disk-arm scheduling.
    server_cache_bytes: int = 1 * GiB
    server_drain_chunk: int = 4 * MiB
    # The cache sync thread issues *synchronous* 512 KiB writes (blocking
    # pwrite loop in a single pthread): each chunk pays a full client/kernel/
    # network round trip on top of server processing.  Calibrated so one
    # sync thread sustains ≈95 MB/s — which makes an 8-aggregator flush of
    # 4 GiB/aggregator take ≈42 s, over the paper's 30 s compute delay
    # (Fig. 4/5 not_hidden_sync), while 16+ aggregators hide completely.
    sync_client_rtt: float = 4.0e-3
    metadata_op_time: float = 900 * USEC  # create/open/close/stat at the MDS
    lock_rpc_time: float = 90 * USEC  # distributed lock acquire/release RPC
    hdd: HDDConfig = field(default_factory=HDDConfig)


@dataclass(frozen=True)
class ClusterConfig:
    """Full machine description plus simulation fidelity knobs."""

    num_nodes: int = 64
    procs_per_node: int = 8
    network: NetworkConfig = field(default_factory=NetworkConfig)
    ssd: SSDConfig = field(default_factory=SSDConfig)
    flash: FlashConfig = field(default_factory=FlashConfig)
    nvmm: NVMMConfig = field(default_factory=NVMMConfig)
    ram: RAMConfig = field(default_factory=RAMConfig)
    pfs: PFSConfig = field(default_factory=PFSConfig)
    seed: int = 2016
    # Node-local device tier: None defers to REPRO_SSD (default "stream",
    # the seek+stream SSDDevice — byte-identical to pre-FTL results);
    # "ftl" selects the page/block/LUN flash model (repro.hw.flash).
    # An explicit value wins over the environment, and participates in the
    # result-cache fingerprint like every other config field.
    ssd_kind: str | None = None
    # Fidelity knob: the cache sync thread flushes in ind_wr_buffer_size
    # chunks; simulating each 512 KiB chunk as its own event is exact but
    # slow at 32 GiB scale, so chunks may be coalesced into batches whose
    # duration is computed from the same per-chunk costs.  1 = exact.
    flush_batch_chunks: int = 1

    @property
    def num_ranks(self) -> int:
        return self.num_nodes * self.procs_per_node

    def scaled(self, **overrides) -> "ClusterConfig":
        """Return a copy with fields replaced (convenience for tests)."""
        return replace(self, **overrides)


def deep_er_testbed(**overrides) -> ClusterConfig:
    """The paper's evaluation platform: 64 nodes × 8 ranks, BeeGFS, SSDs."""
    return ClusterConfig().scaled(**overrides)


def small_testbed(num_nodes: int = 4, procs_per_node: int = 2, **overrides) -> ClusterConfig:
    """A shrunken cluster for unit/integration tests (fast, exact flush)."""
    cfg = ClusterConfig(num_nodes=num_nodes, procs_per_node=procs_per_node)
    return cfg.scaled(**overrides)
