"""The simulated cluster: one object wiring every substrate together.

A :class:`Machine` owns the event kernel, the RNG streams, the interconnect
fabric (compute nodes + PFS servers as endpoints), the compute nodes (each
with its SSD, page cache and local scratch FS) and the global parallel file
system.  Experiments construct a Machine from a
:class:`~repro.config.ClusterConfig`, then an :class:`~repro.mpi.MPIWorld`
on top, then run rank bodies.

Paper correspondence: §IV-A — the assembled DEEP-ER SDV testbed as one
object.
"""

from __future__ import annotations

from typing import Optional

from repro.config import ClusterConfig
from repro.dataplane import DATAPLANE_KINDS, default_dataplane_kind
from repro.faults.injector import FaultInjector
from repro.faults.recovery import CacheRecoveryRegistry
from repro.faults.spec import FaultSchedule
from repro.hw.node import ComputeNode
from repro.localfs.ext4 import LocalFileSystem
from repro.net.fabric import create_fabric
from repro.pfs.client import PFSClient
from repro.pfs.filesystem import ParallelFileSystem
from repro.sim.core import create_simulator
from repro.sim.profile import SimProfiler
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer


class Machine:
    def __init__(
        self,
        config: ClusterConfig,
        trace: bool = False,
        faults: Optional[FaultSchedule] = None,
        profiler: Optional[SimProfiler] = None,
        dataplane: Optional[str] = None,
    ):
        self.config = config
        # Engine selection (REPRO_ENGINE): the slotted calendar-queue engine
        # by default, the heapq reference for A/B determinism checks — see
        # docs/PERFORMANCE.md ("The slotted scheduler").
        self.sim = create_simulator()
        self.sim.profiler = profiler
        self.rng = RngStreams(config.seed)
        self.tracer = Tracer(enabled=trace)
        endpoints = ParallelFileSystem.fabric_endpoints(config)
        # Allocator selection (REPRO_FABRIC): the flat-array max-min kernel
        # with converged-rate memoization by default (array), the incremental
        # dirty-component allocator and the naive full-recompute reference
        # kept for A/B determinism checks — see docs/PERFORMANCE.md
        # ("Array fair-share kernel").
        self.fabric = create_fabric(
            self.sim,
            num_nodes=endpoints,
            nic_bw=config.network.nic_bw,
            latency=config.network.latency,
            loopback_bw=config.network.shm_bw,
        )
        self.nodes = [ComputeNode(self.sim, n, config) for n in range(config.num_nodes)]
        self.local_fs = [LocalFileSystem(node) for node in self.nodes]
        self.pfs = ParallelFileSystem(self.sim, config, self.fabric, self.rng)
        self._clients: dict[int, PFSClient] = {}
        self.recovery = CacheRecoveryRegistry(self)
        # Machine-wide robustness counters, rolled up by the sync threads and
        # the ADIO degradation path (their owning objects are torn down with
        # each file, so per-thread counters would be lost by run end).
        self.cache_stats = {"retries": 0, "requeues": 0, "sync_failures": 0, "degraded": 0}
        # Byte-conservation ledger for the invariant monitor (repro.chaos):
        # every application byte is counted exactly once on its way through
        # the cache or the direct path, and cached bytes are counted again
        # exactly once when they leave (flush / replay / policy discard /
        # reported loss).  See DESIGN.md §9 for the conservation equations.
        self.io_stats = {
            "bytes_app": 0,  # application payload acknowledged by a write path
            "bytes_cached": 0,  # entered a cache file (write_through_cache)
            "bytes_direct": 0,  # went straight to the global file
            "bytes_flushed": 0,  # cache -> global via the sync thread
            "bytes_replayed": 0,  # cache -> global via crash-recovery replay
            "bytes_discarded": 0,  # cached under flush_never (never persisted)
            "bytes_lost": 0,  # reported lost via SyncFailedError
        }
        # Data-plane selection: explicit argument, else REPRO_DATAPLANE
        # (default bulk).  Fault schedules no longer force chunked
        # machine-wide: the injector scopes the fallback to the components
        # it actually targets (see FaultInjector._wire), so everything else
        # keeps the fused/coalesced fast path even in faulted runs.
        if dataplane is not None and dataplane not in DATAPLANE_KINDS:
            raise ValueError(
                f"unknown dataplane {dataplane!r} (expected one of {DATAPLANE_KINDS})"
            )
        self.dataplane = dataplane if dataplane is not None else default_dataplane_kind()
        bulk = self.dataplane == "bulk"
        for node in self.nodes:
            node.ssd.fast_path = bulk
            node.nvmm.fast_path = bulk
            node.ssd.tracer = self.tracer  # FTL GC records (no-op untraced)
        for server in self.pfs.servers:
            server.fast_path = bulk
            server.target.fast_path = bulk
        self.pfs.dataplane_bulk = bulk
        self.faults = FaultInjector(self, faults) if faults else None
        # Multi-job runs (repro.fleet) wrap this machine in per-job views
        # that override job_label and node_of_rank; single-job code paths
        # see the defaults below and behave exactly as before.
        self.job_label: Optional[str] = None

    def node_of_rank(self, rank: int) -> int:
        """Physical node id hosting a rank.

        All node ids in the stack are physical; any rank-to-node mapping
        must go through this method so a :class:`repro.fleet.JobView` can
        re-point a job's (job-local) ranks at its allocated nodes.
        """
        return rank // self.config.procs_per_node

    def pfs_client(self, rank: int) -> PFSClient:
        """The (lazily created, cached) PFS client for a rank."""
        client = self._clients.get(rank)
        if client is None:
            node_id = self.node_of_rank(rank)
            client = PFSClient(self.pfs, node_id, name=f"client.r{rank}")
            self._clients[rank] = client
        return client

    def local_fs_of_rank(self, rank: int) -> LocalFileSystem:
        return self.local_fs[self.node_of_rank(rank)]

    @property
    def now(self) -> float:
        return self.sim.now
