"""Multi-job fleet layer: a job scheduler on top of one shared machine.

Hundreds of simulated jobs — each with its own ranks, hints, files, cache
extents and journals — are admitted through a seeded arrival process and a
FIFO/backfill scheduler into a *single* simulation, contending for the
shared PFS servers, fabric links and node SSDs.  See
:mod:`repro.fleet.runner` for the execution model and
:mod:`repro.fleet.view` for the isolation boundary.

Paper correspondence: none (fleet extension); generalises the paper's
single-job §IV measurements to a multi-tenant cluster.
"""

from repro.fleet.arrivals import arrival_times
from repro.fleet.chaos import FleetChaosResult, fleet_chaos_schedule, run_fleet_chaos
from repro.fleet.job import FleetJobSpec, build_job_workload, job_hints
from repro.fleet.metrics import (
    DEFAULT_RECOVERY_SLO,
    evaluate_job_slo,
    percentile,
    summarize_jobs,
)
from repro.fleet.runner import (
    FleetJobResult,
    FleetResult,
    FleetRowSpec,
    FleetSpec,
    default_row_cache,
    fleet_job_specs,
    render_fleet_table,
    resolve_fleet_config,
    run_fleet,
)
from repro.fleet.scheduler import FleetScheduler
from repro.fleet.view import JobView

__all__ = [
    "DEFAULT_RECOVERY_SLO",
    "FleetChaosResult",
    "FleetJobResult",
    "FleetJobSpec",
    "FleetResult",
    "FleetRowSpec",
    "FleetScheduler",
    "FleetSpec",
    "JobView",
    "arrival_times",
    "build_job_workload",
    "default_row_cache",
    "evaluate_job_slo",
    "fleet_chaos_schedule",
    "fleet_job_specs",
    "job_hints",
    "percentile",
    "render_fleet_table",
    "resolve_fleet_config",
    "run_fleet",
    "run_fleet_chaos",
    "summarize_jobs",
]
