"""Fleet execution: many jobs, one shared simulated machine.

``run_fleet`` builds one :class:`~repro.machine.Machine`, draws the seeded
arrival timeline, and admits every job through the FIFO/backfill scheduler
into the *same* simulation.  Each admitted job runs inside a
:class:`~repro.fleet.view.JobView` (its own rank namespace, PFS clients,
journals and byte ledgers) while contending with every other job for the
shared PFS servers, fabric links and node SSDs.  A per-job supervisor
process mirrors the chaos harness's phase supervision: it waits on the
job's rank processes, classifies a failure (sync loss vs. injected fault),
interrupts the survivors, and releases the job's nodes back to the
scheduler.

Interference metrics compare each job against a memoized *solo reference* —
the same job alone on an identical, fresh cluster — giving queue wait,
stretch ((wait + wall) / solo wall) and degraded bandwidth (contended /
solo perceived bandwidth).

Per-job rows stream into the content-addressed result cache *as jobs
complete* (``row_cache``), so a partially finished fleet sweep already has
every completed job's row on disk; the fleet-level aggregate is cached by
the sweep runner like any other measurement point.

Determinism: one fleet point is one deterministic simulation — the
timeline is byte-identical across engines (``REPRO_ENGINE``) and data
planes (``REPRO_DATAPLANE``); only the diagnostic ``events`` count differs,
and :meth:`FleetResult.identity` excludes it.

Paper correspondence: none (fleet extension); generalises the §IV
single-job measurements to a multi-tenant cluster.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field
from typing import Callable, Optional

from repro.analysis.bandwidth import perceived_bandwidth
from repro.config import ClusterConfig, small_testbed
from repro.experiments.resultcache import ResultCache
from repro.faults.errors import FaultError, JobAborted, SyncFailedError
from repro.faults.spec import FaultSchedule
from repro.fleet.arrivals import arrival_times
from repro.fleet.job import (
    FleetJobSpec,
    JOB_BENCHMARKS,
    JOB_CACHE_MODES,
    build_job_workload,
    job_hints,
)
from repro.fleet.metrics import evaluate_job_slo, summarize_jobs
from repro.fleet.scheduler import FleetScheduler
from repro.fleet.view import JobView
from repro.machine import Machine
from repro.mpi.process import MPIWorld
from repro.romio.file import MPIIOLayer
from repro.sim.core import Event, Interrupt
from repro.workloads.phases import multi_phase_body


@dataclass(frozen=True)
class FleetSpec:
    """One fleet measurement point (frozen: hashable, cache-keyable).

    ``benchmark``/``cache_mode`` may name a single value or ``"mixed"``,
    which cycles the full axis across jobs; ``job_nodes`` cycles node
    requests the same way, so a default fleet mixes narrow and wide jobs.
    """

    fleet_size: int = 64
    num_nodes: int = 16
    procs_per_node: int = 2
    benchmark: str = "mixed"
    cache_mode: str = "mixed"
    arrival_mean: float = 0.002  # mean Poisson interarrival [sim s]
    arrival_trace: tuple = ()  # explicit interarrival gaps (overrides Poisson)
    backfill: bool = True
    job_nodes: tuple = (1, 2, 4)
    num_files: int = 2
    compute_delay: float = 0.02
    scale: float = 1.0
    seed: int = 2016
    # Restart policy for crashed jobs: a job killed by an injected
    # aggregator_crash re-enters the queue (pinned to its original nodes,
    # where its recovery journals live) after an exponentially backed-off
    # delay, up to ``max_restarts`` times; exhausting the budget marks it
    # ``failed`` with its journals left for the loss-bound audit.
    max_restarts: int = 2
    restart_backoff: float = 0.005  # base delay [sim s]; doubles per attempt

    def __post_init__(self):
        if self.fleet_size <= 0:
            raise ValueError(f"fleet_size={self.fleet_size}: must be positive")
        if self.benchmark != "mixed" and self.benchmark not in JOB_BENCHMARKS:
            raise ValueError(
                f"benchmark={self.benchmark!r}: expected 'mixed' or one of "
                f"{JOB_BENCHMARKS}"
            )
        if self.cache_mode != "mixed" and self.cache_mode not in JOB_CACHE_MODES:
            raise ValueError(
                f"cache_mode={self.cache_mode!r}: expected 'mixed' or one of "
                f"{JOB_CACHE_MODES}"
            )
        if not isinstance(self.job_nodes, tuple):
            object.__setattr__(self, "job_nodes", tuple(self.job_nodes))
        if not isinstance(self.arrival_trace, tuple):
            object.__setattr__(self, "arrival_trace", tuple(self.arrival_trace))
        if not self.job_nodes:
            raise ValueError("job_nodes: must name at least one node count")
        for n in self.job_nodes:
            if not 0 < n <= self.num_nodes:
                raise ValueError(
                    f"job_nodes entry {n}: outside the {self.num_nodes}-node cluster"
                )
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts={self.max_restarts}: must be >= 0")
        if self.restart_backoff < 0:
            raise ValueError(
                f"restart_backoff={self.restart_backoff}: must be >= 0"
            )

    @property
    def label(self) -> str:
        return f"f{self.fleet_size}"


@dataclass(frozen=True)
class FleetRowSpec:
    """Cache key for one streamed per-job row: the fleet point + job id.

    ``faults``/``sync_rpc_timeout`` carry the fault schedule the fleet ran
    under (empty = fault-free), so a chaos fleet's rows never alias a
    fault-free fleet's rows for the same :class:`FleetSpec`.
    """

    fleet: FleetSpec
    job_id: int
    faults: tuple = ()
    sync_rpc_timeout: float = 0.0

    # The sweep progress printer reads these off any spec it reports.
    @property
    def benchmark(self) -> str:
        return self.fleet.benchmark

    @property
    def cache_mode(self) -> str:
        return self.fleet.cache_mode

    @property
    def label(self) -> str:
        return f"{self.fleet.label}.j{self.job_id}"


@dataclass
class FleetJobResult:
    """One job's fleet outcome + interference metrics."""

    job_id: int
    benchmark: str
    cache_mode: str
    nodes: int
    num_ranks: int
    placement: tuple
    status: str  # "ok" | "loss" | "fault" | "failed" (crash budget spent)
    submit_time: float
    start_time: float
    end_time: float
    queue_wait: float
    wall_time: float
    bandwidth: float  # contended perceived bandwidth [B/s] (0 on failure)
    solo_wall: float
    solo_bandwidth: float
    stretch: float  # (queue_wait + wall_time) / solo_wall
    degraded_bw: float  # bandwidth / solo_bandwidth
    bytes_app: int
    bytes_flushed: int
    bytes_direct: int
    bytes_lost: int
    fabric_bytes: float  # fabric bytes moved under this job's tag
    pfs_rpcs: int  # data-server RPCs served under this job's tag
    pfs_bytes: int
    # Node-device ledgers under this job's tag (the fix for device stats
    # bleeding across jobs that share a node over time: cumulative device
    # totals are machine-lifetime, so each job reads its own tag instead).
    ssd_requests: int = 0
    ssd_bytes_written: int = 0
    ssd_bytes_read: int = 0
    nvmm_bytes_written: int = 0
    nvmm_bytes_read: int = 0
    # Crash/restart timeline (all zero for jobs that never crashed).  The
    # recovery-SLO layer (fleet/metrics.py) gates these per job.
    restarts: int = 0  # crash-triggered resubmissions that ran
    first_crash_time: float = 0.0  # sim time of the first crash (0 = none)
    time_to_restart: float = 0.0  # total crash -> next-incarnation-start [s]
    replay_duration: float = 0.0  # total journal-replay time on reopen [s]
    bytes_replayed: int = 0  # journal bytes rewritten to the global file
    degraded_window: float = 0.0  # time_to_restart + replay_duration
    slo_ok: bool = True  # evaluate_job_slo verdict under default budgets
    slo_violations: tuple = ()

    def to_dict(self) -> dict:
        d = asdict(self)
        d["placement"] = list(self.placement)
        d["slo_violations"] = list(self.slo_violations)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "FleetJobResult":
        fields_ = dict(d)
        fields_["placement"] = tuple(fields_.get("placement", ()))
        fields_["slo_violations"] = tuple(fields_.get("slo_violations", ()))
        return cls(**fields_)


@dataclass
class FleetResult:
    """One fleet point: every job row plus scheduler/aggregate metrics."""

    spec: FleetSpec
    jobs: list = field(default_factory=list)  # FleetJobResult, by job_id
    makespan: float = 0.0  # last job end [sim s]
    summary: dict = field(default_factory=dict)  # summarize_jobs output
    backfilled: int = 0  # jobs started past a blocked FIFO head
    streamed_rows: int = 0  # per-job rows written to the row cache
    # Diagnostics — engine/data-plane dependent, excluded from identity().
    events: int = 0
    dataplane: str = ""
    engine: str = ""

    def identity(self) -> dict:
        """The determinism contract: everything but the diagnostics."""
        return {
            "spec": asdict(self.spec),
            "jobs": [j.to_dict() for j in self.jobs],
            "makespan": self.makespan,
            "summary": self.summary,
            "backfilled": self.backfilled,
        }

    def to_dict(self) -> dict:
        d = self.identity()
        d.update(
            streamed_rows=self.streamed_rows,
            events=self.events,
            dataplane=self.dataplane,
            engine=self.engine,
        )
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "FleetResult":
        fields_ = dict(d)
        spec = dict(fields_["spec"])
        spec["arrival_trace"] = tuple(spec.get("arrival_trace", ()))
        spec["job_nodes"] = tuple(spec.get("job_nodes", ()))
        fields_["spec"] = FleetSpec(**spec)
        fields_["jobs"] = [FleetJobResult.from_dict(j) for j in fields_.get("jobs", [])]
        return cls(**fields_)


# -- spec expansion ----------------------------------------------------------
def fleet_job_specs(spec: FleetSpec) -> list[FleetJobSpec]:
    """The deterministic job list for a fleet (axes cycled per job id)."""
    benches = JOB_BENCHMARKS if spec.benchmark == "mixed" else (spec.benchmark,)
    modes = JOB_CACHE_MODES if spec.cache_mode == "mixed" else (spec.cache_mode,)
    return [
        FleetJobSpec(
            job_id=i,
            benchmark=benches[i % len(benches)],
            cache_mode=modes[i % len(modes)],
            nodes=spec.job_nodes[i % len(spec.job_nodes)],
            num_files=spec.num_files,
            compute_delay=spec.compute_delay,
            scale=spec.scale,
            seed=spec.seed,
        )
        for i in range(spec.fleet_size)
    ]


def resolve_fleet_config(
    spec: FleetSpec, config: Optional[ClusterConfig] = None
) -> ClusterConfig:
    """The cluster a fleet spec runs on (also keys the result cache)."""
    if config is not None:
        return config
    return small_testbed(
        num_nodes=spec.num_nodes, procs_per_node=spec.procs_per_node, seed=spec.seed
    )


def default_row_cache() -> ResultCache:
    """Row-stream cache honouring ``REPRO_CACHE``/``REPRO_CACHE_DIR``."""
    enabled = os.environ.get("REPRO_CACHE", "1") != "0"
    return ResultCache(enabled=enabled, result_cls=FleetJobResult)


# -- job execution -----------------------------------------------------------
def _job_body(view: JobView, job: FleetJobSpec):
    """Generator: run one job inside its view; returns (status, bandwidth).

    Mirrors the chaos harness's phase supervision: wait on every rank, and
    on failure classify it (sync loss vs. injected fault), interrupt the
    survivors with :class:`JobAborted`, and drain them so the job's nodes
    are genuinely idle when the caller releases them.
    """
    sim = view.sim
    world = MPIWorld(view)
    world.transport.tag = view.job_label
    layer = MPIIOLayer(view, world.comm, driver="beegfs", exchange_mode="model")
    workload = build_job_workload(job, view.config.num_ranks)
    body = multi_phase_body(
        layer,
        workload,
        job_hints(job),
        num_files=job.num_files,
        compute_delay=job.compute_delay,
        deferred_close=job.cache_mode == "enabled",
        file_prefix=f"/global/fleet/{view.job_label}/out_",
    )
    procs = world.spawn(body)
    try:
        timings = yield sim.all_of(procs)
    except Interrupt as exc:
        if not isinstance(exc.cause, JobAborted):
            raise
        # The injector's crash router already tore down exactly this job's
        # ranks and daemons; classify and let the supervisor decide whether
        # the restart budget covers a resubmission.
        status, cause = "crash", exc.cause
    except SyncFailedError as exc:
        status, cause = "loss", exc
    except FaultError as exc:
        status, cause = "fault", exc
    else:
        bandwidth = perceived_bandwidth(
            timings,
            workload.file_size,
            include_last_phase=job.benchmark == "ior",
        )
        return "ok", bandwidth
    for proc in procs:
        if proc.is_alive:
            proc.interrupt(JobAborted(cause))
    for proc in procs:
        try:
            yield proc  # already-fired processes re-kick; failures raise
        except Exception:
            pass
    # Parked sync threads of files the abort left open would otherwise
    # wait on their queues forever; they exit cleanly on Interrupt.
    for daemon in view.daemons:
        if daemon.is_alive:
            daemon.interrupt(JobAborted(cause))
    return status, 0.0


def _solo_reference(
    job: FleetJobSpec, config: ClusterConfig, dataplane: Optional[str]
) -> tuple[float, float]:
    """(wall, bandwidth) of the job alone on a fresh identical cluster."""
    machine = Machine(config, dataplane=dataplane)
    view = JobView(machine, job.job_id, tuple(range(job.nodes)), label="solo")
    out: dict[str, float] = {}

    def body():
        t0 = machine.sim.now
        status, bandwidth = yield from _job_body(view, job)
        out["wall"] = machine.sim.now - t0
        out["bandwidth"] = bandwidth if status == "ok" else 0.0

    machine.sim.run(until=machine.sim.process(body(), name="fleet.solo"))
    return out["wall"], out["bandwidth"]


# -- the fleet run -----------------------------------------------------------
def run_fleet(
    spec: FleetSpec,
    config: Optional[ClusterConfig] = None,
    dataplane: Optional[str] = None,
    trace: bool = False,
    faults: Optional[FaultSchedule] = None,
    row_cache: Optional[ResultCache] = None,
    on_complete: Optional[Callable] = None,
    on_machine: Optional[Callable] = None,
) -> FleetResult:
    """Run one fleet point to completion and return its result.

    ``row_cache`` streams each :class:`FleetJobResult` to disk the moment
    its job completes; ``on_complete(job, view, row)`` additionally exposes
    the job's :class:`JobView` to callers that audit per-job state, and
    ``on_machine(machine)`` fires right after the shared machine is built —
    the fleet chaos smoke uses both to attach its invariant monitor and
    run its per-job byte-conservation audit.
    """
    cfg = resolve_fleet_config(spec, config)
    jobs = fleet_job_specs(spec)
    if faults is not None:
        faults.validate(
            num_nodes=cfg.num_nodes,
            num_servers=cfg.pfs.num_data_servers,
            num_ranks=cfg.num_ranks,
            num_files=spec.num_files,
            num_jobs=spec.fleet_size,
        )

    # Solo references first, one fresh machine per distinct job shape.
    solo: dict[tuple, tuple[float, float]] = {}
    for job in jobs:
        if job.shape_key not in solo:
            solo[job.shape_key] = _solo_reference(job, cfg, dataplane)

    machine = Machine(cfg, trace=trace, faults=faults, dataplane=dataplane)
    if on_machine is not None:
        on_machine(machine)
    sim = machine.sim
    submit_at: dict[int, float] = {}
    rows: dict[int, FleetJobResult] = {}
    # Per-job restart lifecycle.  The JobView is reused across incarnations
    # so the job's private recovery registry (and its byte ledgers) span the
    # crash: the restarted incarnation replays the journals the crashed one
    # left behind.
    views: dict[int, JobView] = {}
    lifecycle: dict[int, dict] = {}
    result = FleetResult(
        spec=spec,
        dataplane=machine.dataplane,
        engine=os.environ.get("REPRO_ENGINE", "slotted"),
    )
    fleet_done = Event(sim, name="fleet.done")
    row_key_extra = {}
    if faults is not None:
        row_key_extra = {
            "faults": faults.faults,
            "sync_rpc_timeout": faults.sync_rpc_timeout,
        }

    def _supervise(job: FleetJobSpec, view: JobView, placement):
        st = lifecycle.setdefault(
            job.job_id,
            {
                "restarts": 0,
                "first_start": None,
                "first_crash": 0.0,
                "crash_time": 0.0,
                "time_to_restart": 0.0,
            },
        )
        start = sim.now
        if st["first_start"] is None:
            st["first_start"] = start
        else:
            # This incarnation is a restart: the crash -> restart gap is the
            # job-down part of the recovery SLO.
            st["time_to_restart"] += start - st["crash_time"]
        # Tag the placement's node devices for the duration of ownership:
        # every SSD/NVMM request they serve is charged to this job's ledger
        # (nodes are exclusively owned, so the tag is unambiguous).
        tag = view.job_label
        for node_id in placement:
            node = machine.nodes[node_id]
            node.ssd.job_tag = tag
            node.nvmm.job_tag = tag
        try:
            status, bandwidth = yield from _job_body(view, job)
        finally:
            for node_id in placement:
                node = machine.nodes[node_id]
                node.ssd.job_tag = None
                node.nvmm.job_tag = None
        end = sim.now
        if status == "crash" and st["restarts"] < spec.max_restarts:
            st["restarts"] += 1
            st["crash_time"] = end
            if not st["first_crash"]:
                st["first_crash"] = end
            scheduler.release(placement)
            sim.process(
                _resubmit(job, placement, st["restarts"]),
                name=f"fleet.{job.label}.restart{st['restarts']}",
            )
            return
        if status == "crash":
            # Retry budget exhausted: the job is failed for good.  Its
            # journals stay registered — the loss-bound audit (and the
            # quiescent conservation equations) account every byte they
            # still hold.
            status = "failed"
            if not st["first_crash"]:
                st["first_crash"] = end
        if machine.faults is not None:
            machine.faults.deregister_job(view.job_label)
        solo_wall, solo_bw = solo[job.shape_key]
        first_start = st["first_start"]
        queue_wait = first_start - submit_at[job.job_id]
        wall = end - first_start  # spans crash + restart churn, by design
        replay_duration = view.recovery.recovery_time
        servers = machine.pfs.servers
        ssds = [machine.nodes[n].ssd for n in placement]
        nvmms = [machine.nodes[n].nvmm for n in placement]
        row = FleetJobResult(
            job_id=job.job_id,
            benchmark=job.benchmark,
            cache_mode=job.cache_mode,
            nodes=job.nodes,
            num_ranks=view.config.num_ranks,
            placement=placement,
            status=status,
            submit_time=submit_at[job.job_id],
            start_time=first_start,
            end_time=end,
            queue_wait=queue_wait,
            wall_time=wall,
            bandwidth=bandwidth,
            solo_wall=solo_wall,
            solo_bandwidth=solo_bw,
            stretch=(queue_wait + wall) / solo_wall if solo_wall > 0 else 0.0,
            degraded_bw=bandwidth / solo_bw if solo_bw > 0 else 0.0,
            bytes_app=view.io_stats["bytes_app"],
            bytes_flushed=view.io_stats["bytes_flushed"],
            bytes_direct=view.io_stats["bytes_direct"],
            bytes_lost=view.io_stats["bytes_lost"],
            fabric_bytes=machine.fabric.bytes_moved_by_tag.get(view.job_label, 0.0),
            pfs_rpcs=sum(s.rpcs_by_tag.get(view.job_label, 0) for s in servers),
            pfs_bytes=sum(s.bytes_by_tag.get(view.job_label, 0) for s in servers),
            ssd_requests=sum(d.requests_by_tag.get(tag, 0) for d in ssds),
            ssd_bytes_written=sum(d.bytes_written_by_tag.get(tag, 0) for d in ssds),
            ssd_bytes_read=sum(d.bytes_read_by_tag.get(tag, 0) for d in ssds),
            nvmm_bytes_written=sum(d.bytes_written_by_tag.get(tag, 0) for d in nvmms),
            nvmm_bytes_read=sum(d.bytes_read_by_tag.get(tag, 0) for d in nvmms),
            restarts=st["restarts"],
            first_crash_time=st["first_crash"],
            time_to_restart=st["time_to_restart"],
            replay_duration=replay_duration,
            bytes_replayed=view.io_stats["bytes_replayed"],
            degraded_window=st["time_to_restart"] + replay_duration,
        )
        row.slo_violations = tuple(evaluate_job_slo(row))
        row.slo_ok = not row.slo_violations
        rows[job.job_id] = row
        if row_cache is not None:
            key = FleetRowSpec(spec, job.job_id, **row_key_extra)
            if row_cache.put(key, cfg, row) is not None:
                result.streamed_rows += 1
        if on_complete is not None:
            on_complete(job, view, row)
        scheduler.release(placement)
        if len(rows) == len(jobs):
            fleet_done.succeed()

    def _resubmit(job: FleetJobSpec, placement, attempt: int):
        # Exponential backoff, then re-enter the queue pinned to the nodes
        # that hold this job's recovery journals.
        yield sim.timeout(spec.restart_backoff * (2.0 ** (attempt - 1)))
        scheduler.submit(job, pinned=placement)

    def _launch(job: FleetJobSpec, placement):
        view = views.get(job.job_id)
        if view is None:
            view = JobView(machine, job.job_id, placement)
            views[job.job_id] = view
        sim.process(_supervise(job, view, placement), name=f"fleet.{job.label}")

    scheduler = FleetScheduler(cfg.num_nodes, _launch, backfill=spec.backfill)
    times = arrival_times(
        machine.rng, len(jobs), spec.arrival_mean, spec.arrival_trace
    )

    def _arrivals():
        for when, job in zip(times, jobs):
            delay = when - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            submit_at[job.job_id] = sim.now
            scheduler.submit(job)

    sim.process(_arrivals(), name="fleet.arrivals")
    sim.run(until=fleet_done)

    result.jobs = [rows[i] for i in sorted(rows)]
    result.makespan = max(r.end_time for r in result.jobs)
    result.summary = summarize_jobs(result.jobs)
    result.backfilled = scheduler.backfilled
    result.events = sim.events_fired
    return result


def _run_fleet_point(spec: FleetSpec, config: Optional[ClusterConfig] = None):
    """Module-level sweep worker (picklable); streams rows to the cache."""
    return run_fleet(spec, config=config, row_cache=default_row_cache())


# -- reporting ---------------------------------------------------------------
def render_fleet_table(results) -> str:
    """One row per fleet point: scheduler + interference aggregates."""
    header = (
        f"{'fleet':>6s} {'jobs':>5s} {'fail':>4s} {'makespan':>9s} "
        f"{'wait.avg':>9s} {'wall.p50':>9s} {'wall.p95':>9s} {'wall.p99':>9s} "
        f"{'stretch.p95':>11s} {'bw.degr':>8s} {'backfill':>8s}"
    )
    lines = [header, "-" * len(header)]
    for r in results:
        s = r.summary
        lines.append(
            f"{r.spec.label:>6s} {s['jobs']:>5d} {s['failed']:>4d} "
            f"{r.makespan:>9.4f} {s['queue_wait_mean']:>9.4f} "
            f"{s['wall_p50']:>9.4f} {s['wall_p95']:>9.4f} {s['wall_p99']:>9.4f} "
            f"{s['stretch_p95']:>11.2f} {s['degraded_bw_mean']:>8.3f} "
            f"{r.backfilled:>8d}"
        )
    return "\n".join(lines)
