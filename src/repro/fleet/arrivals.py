"""Seeded job-arrival processes for fleet runs.

Two modes, both deterministic given the fleet seed:

* **Poisson** — exponential interarrivals drawn from the machine's named
  RNG stream ``fleet.arrivals`` (sha256(seed:name)-seeded, so the arrival
  timeline is a pure function of the fleet seed and independent of every
  other stream consumer);
* **trace-driven** — an explicit tuple of arrival offsets, cycled and
  accumulated when shorter than the fleet (a recorded submission log can
  drive a larger synthetic fleet).

Arrival draws are continuous, so two jobs arriving at the same instant is a
measure-zero event — the same argument the chaos harness uses for fault
windows — which keeps cross-job event ordering unambiguous and the fleet
timeline byte-identical across engines and data planes.

Paper correspondence: none (fleet extension).
"""

from __future__ import annotations

from typing import Sequence

ARRIVAL_STREAM = "fleet.arrivals"


def arrival_times(
    rng_streams,
    count: int,
    mean_interarrival: float,
    trace: Sequence[float] = (),
) -> list[float]:
    """Absolute submit times for ``count`` jobs, non-decreasing.

    ``trace`` entries are *interarrival gaps* (seconds since the previous
    submission); when given, they override the Poisson draw and are cycled
    to cover the fleet.
    """
    if count <= 0:
        return []
    if trace:
        gaps = [float(trace[i % len(trace)]) for i in range(count)]
        for i, gap in enumerate(gaps):
            if gap < 0:
                raise ValueError(
                    f"arrival_trace[{i % len(trace)}]={gap}: gaps must be >= 0"
                )
    else:
        if mean_interarrival <= 0:
            raise ValueError(
                f"arrival_mean={mean_interarrival}: must be positive for "
                "Poisson arrivals (or supply an arrival_trace)"
            )
        rng = rng_streams.stream(ARRIVAL_STREAM)
        gaps = [float(g) for g in rng.exponential(mean_interarrival, size=count)]
    times = []
    now = 0.0
    for gap in gaps:
        now += gap
        times.append(now)
    return times
