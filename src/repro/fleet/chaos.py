"""Fleet × chaos integration: a multi-job fleet under random faults.

One seeded schedule from the chaos generator — windowed *infrastructure*
faults (SSD error windows, device losses, server stalls, link degradation)
plus job-addressed *crash* faults — runs against a small fleet on one
shared machine, with:

* the machine-level :class:`~repro.chaos.invariants.InvariantMonitor`
  attached (stripe-lock coherence, the no-progress watchdog, and the
  machine ledgers — identically zero in a fleet, where every byte is
  accounted in per-job views);
* a **per-job byte-conservation audit**: each completed job's private
  ``io_stats`` ledger and journal registry must close the same conservation
  equations the single-job monitor checks — application bytes split exactly
  into cached + direct, cached bytes leave exactly once (flushed, replayed,
  discarded, or still journaled), and reported losses never exceed what the
  journals still hold;
* a **per-job recovery-SLO assertion**
  (:func:`~repro.fleet.metrics.evaluate_job_slo`): a crashed job must
  restart, replay its private journals, and finish with zero lost bytes
  for cached writes, all within the recovery budgets.

Crash faults route through the injector's *job-scoped* rank registry: each
fleet job registers its ranks and sync-thread daemons under its label, and
a generated ``aggregator_crash`` carries a ``job_index`` that addresses
exactly one job — the teardown interrupts that job's processes only, other
jobs see it purely as contention.  The crashed job re-enters the queue
under the fleet's restart policy (exponential backoff, pinned to the nodes
holding its journals, bounded retries) and replays its unflushed extents on
reopen — the paper's crash-recovery argument, exercised in a multi-tenant
cluster.  The infra fault kinds act on *physical* targets (nodes, servers,
links), which is exactly what a shared cluster degrades.

Paper correspondence: none (robustness harness for the fleet extension).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.chaos.generate import ChaosConfig, generate_schedule
from repro.chaos.invariants import InvariantMonitor
from repro.config import ClusterConfig
from repro.fleet.metrics import evaluate_job_slo
from repro.fleet.runner import FleetResult, FleetSpec, resolve_fleet_config, run_fleet
from repro.sim.core import DeadlockError


@dataclass
class FleetChaosResult:
    """Outcome of one fleet chaos trial."""

    seed: int
    fleet: FleetResult
    violations: list = field(default_factory=list)
    faults_injected: int = 0
    statuses: dict = field(default_factory=dict)  # status -> job count
    crashed_jobs: int = 0  # jobs the schedule actually tore down
    restarts: int = 0  # crash-triggered resubmissions across the fleet

    @property
    def ok(self) -> bool:
        return not self.violations


def fleet_chaos_schedule(
    spec: FleetSpec,
    config: ClusterConfig,
    seed: int,
    max_faults: int = 3,
    crash_probability: float = 0.35,
):
    """A seeded schedule sized to the fleet cluster.  Crash specs carry a
    ``job_index`` drawn from the fleet size, so each crash addresses exactly
    one (seeded-random) job through the injector's job-scoped registry."""
    chaos_cfg = ChaosConfig(
        num_nodes=config.num_nodes,
        num_servers=config.pfs.num_data_servers,
        num_ranks=config.num_ranks,
        num_files=spec.num_files,
        max_faults=max_faults,
        crash_probability=crash_probability,
        num_jobs=spec.fleet_size,
    )
    return generate_schedule(chaos_cfg, seed)


def audit_job_conservation(label: str, io: dict, journals) -> list[str]:
    """Per-job byte-conservation violations (empty list = clean).

    The same equations as the single-job monitor's quiescent audit, applied
    to one job's private ledger and journal registry.
    """
    out: list[str] = []
    if io["bytes_app"] != io["bytes_cached"] + io["bytes_direct"]:
        out.append(
            f"job {label}: inflow: bytes_app={io['bytes_app']} != "
            f"bytes_cached={io['bytes_cached']} + bytes_direct={io['bytes_direct']}"
        )
    unflushed = sum(j.unflushed_bytes for j in journals)
    accounted = (
        io["bytes_flushed"]
        + io["bytes_replayed"]
        + io["bytes_discarded"]
        + unflushed
    )
    if io["bytes_cached"] != accounted:
        out.append(
            f"job {label}: outflow: bytes_cached={io['bytes_cached']} != "
            f"flushed {io['bytes_flushed']} + replayed {io['bytes_replayed']} + "
            f"discarded {io['bytes_discarded']} + journaled {unflushed}"
        )
    if io["bytes_lost"] > unflushed:
        out.append(
            f"job {label}: loss accounting: bytes_lost={io['bytes_lost']} "
            f"exceeds the {unflushed} bytes still journaled"
        )
    return out


def run_fleet_chaos(
    fleet_size: int = 8,
    seed: int = 0,
    scale: float = 1.0,
    max_faults: int = 3,
    config: Optional[ClusterConfig] = None,
    fleet_seed: int = 2016,
    crash_probability: float = 0.35,
    max_restarts: int = 2,
    row_cache=None,
    dataplane: Optional[str] = None,
) -> FleetChaosResult:
    """Run one fleet chaos trial; violations make ``result.ok`` false.

    ``crash_probability``/``max_restarts`` parameterise the job-addressed
    crash draws and the fleet's restart budget; ``row_cache`` streams each
    job's row (restart counts and SLO verdicts included) to disk as it
    completes, keyed by the fleet point *and* the fault schedule.
    """
    spec = FleetSpec(
        fleet_size=fleet_size,
        num_nodes=8,
        procs_per_node=2,
        job_nodes=(1, 2),
        scale=scale,
        seed=fleet_seed,
        max_restarts=max_restarts,
    )
    cfg = resolve_fleet_config(spec, config)
    schedule = fleet_chaos_schedule(
        spec, cfg, seed, max_faults=max_faults, crash_probability=crash_probability
    )
    violations: list[str] = []
    statuses: dict[str, int] = {}
    state: dict = {}
    finished: list = []

    def on_machine(machine):
        monitor = InvariantMonitor(machine)
        monitor.watch()
        state["machine"] = machine
        state["monitor"] = monitor

    def on_complete(job, view, row):
        statuses[row.status] = statuses.get(row.status, 0) + 1
        # Completed-job snapshot: the inflow equation and loss bound must
        # already hold; the outflow equation is re-audited at quiescence
        # (an aborted job's background flush may still be in flight here).
        finished.append((view.job_label, view, row))

    fleet = run_fleet(
        spec,
        config=cfg,
        dataplane=dataplane,
        faults=schedule,
        row_cache=row_cache,
        on_complete=on_complete,
        on_machine=on_machine,
    )
    monitor = state["monitor"]
    try:
        monitor.drain()
    except DeadlockError as exc:
        violations.append(f"deadlock during drain: {exc}")
    violations.extend(monitor.check_quiescent())
    crashed_jobs = 0
    restarts = 0
    for label, view, row in finished:
        violations.extend(
            audit_job_conservation(label, view.io_stats, view.recovery.entries())
        )
        # Recovery SLOs, per job: a crashed job must come back, replay its
        # journals, and (when cached and "ok") lose nothing.
        violations.extend(evaluate_job_slo(row))
        if row.first_crash_time > 0:
            crashed_jobs += 1
        restarts += row.restarts
        if row.status == "failed" and view.io_stats["bytes_lost"] > sum(
            j.unflushed_bytes for j in view.recovery.entries()
        ):
            violations.append(
                f"job {label}: failed with bytes_lost exceeding its "
                f"remaining journals"
            )
    return FleetChaosResult(
        seed=seed,
        fleet=fleet,
        violations=violations,
        faults_injected=len(schedule.faults),
        statuses=statuses,
        crashed_jobs=crashed_jobs,
        restarts=restarts,
    )
