"""FIFO/backfill job scheduler with a lowest-first node allocator.

The scheduler owns the cluster's free-node pool.  Jobs are queued in
arrival order; whenever nodes free up (or a job arrives) the queue is
rescanned:

* **FIFO** (``backfill=False``) — only the head of the queue may start; a
  wide job at the head blocks everything behind it until it fits.
* **backfill** (the default) — any queued job that fits the current free
  pool starts immediately, in queue order (opportunistic backfill without
  reservations — small jobs slide past a blocked wide head).

Allocation is lowest-free-node-ids-first, which is deterministic and makes
placements reproducible across runs; released nodes re-sort into the pool.

Paper correspondence: none (fleet extension); stands in for the batch
scheduler in front of the paper's shared testbed.
"""

from __future__ import annotations

from typing import Callable, Optional


class FleetScheduler:
    """Admission queue + node allocator for one fleet run.

    ``launch(job, placement)`` is called synchronously the moment a job is
    granted nodes; the runner uses it to start the job's rank processes in
    the shared simulation.
    """

    def __init__(
        self,
        num_nodes: int,
        launch: Callable,
        backfill: bool = True,
    ):
        self.num_nodes = num_nodes
        self.free: list[int] = list(range(num_nodes))  # kept sorted
        self.queue: list = []  # pending jobs, arrival order
        self.launch = launch
        self.backfill = backfill
        self.running = 0
        self.started = 0
        self.backfilled = 0  # jobs started past a blocked queue head

    def submit(self, job, pinned=None) -> None:
        """Queue a job (``job.nodes`` is its node request) and try to start.

        ``pinned`` requests an exact placement (a tuple of node ids): the
        job starts only when *those* nodes are free.  Restarted jobs pin to
        their original placement because their recovery journals live on
        those nodes' cache devices — replay selects journals by physical
        node id, so a crashed job must come back where its data is.
        """
        if job.nodes > self.num_nodes:
            raise ValueError(
                f"job {job.job_id}: requests {job.nodes} nodes, but the "
                f"cluster has {self.num_nodes}"
            )
        if pinned is not None and len(pinned) != job.nodes:
            raise ValueError(
                f"job {job.job_id}: pinned placement {pinned} does not match "
                f"its {job.nodes}-node request"
            )
        self.queue.append((job, tuple(pinned) if pinned is not None else None))
        self._try_start()

    def release(self, placement) -> None:
        """Return a finished job's nodes to the pool and re-scan the queue."""
        self.free.extend(placement)
        self.free.sort()
        self.running -= 1
        self._try_start()

    def _alloc(self, count: int) -> Optional[tuple[int, ...]]:
        if count > len(self.free):
            return None
        placement = tuple(self.free[:count])
        del self.free[:count]
        return placement

    def _alloc_pinned(self, pinned: tuple) -> Optional[tuple[int, ...]]:
        if any(node not in self.free for node in pinned):
            return None
        for node in pinned:
            self.free.remove(node)
        return pinned

    def _try_start(self) -> None:
        i = 0
        while i < len(self.queue):
            job, pinned = self.queue[i]
            if pinned is not None:
                placement = self._alloc_pinned(pinned)
            else:
                placement = self._alloc(job.nodes)
            if placement is not None:
                del self.queue[i]
                self.running += 1
                self.started += 1
                if i > 0:
                    self.backfilled += 1
                self.launch(job, placement)
                continue  # queue[i] is now the next job; re-examine it
            if not self.backfill:
                return  # strict FIFO: a blocked head blocks the queue
            i += 1

    @property
    def idle(self) -> bool:
        return not self.queue and self.running == 0
