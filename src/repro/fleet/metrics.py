"""Interference metrics over a fleet's per-job results.

Percentiles use the nearest-rank method on the sorted sample — integer
index arithmetic only, so aggregates are bit-stable across platforms and
safe to compare byte-for-byte in the determinism tests.

Paper correspondence: none (fleet extension); the degraded-bandwidth ratio
generalises the paper's solo perceived-bandwidth metric (Eq. 2) to a
contended cluster.
"""

from __future__ import annotations

import math
from typing import Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sample."""
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q={q} outside [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def summarize_jobs(jobs) -> dict:
    """Aggregate queue/wall/stretch/degradation metrics over job results.

    ``jobs`` is a sequence of :class:`~repro.fleet.runner.FleetJobResult`.
    Stretch and degradation aggregates cover only jobs that finished
    cleanly (a crashed job's wall time is a teardown artifact, not a
    service time).
    """
    if not jobs:
        return {
            "jobs": 0,
            "ok": 0,
            "failed": 0,
            "queue_wait_mean": 0.0,
            "queue_wait_max": 0.0,
            "wall_p50": 0.0,
            "wall_p95": 0.0,
            "wall_p99": 0.0,
            "stretch_mean": 0.0,
            "stretch_p95": 0.0,
            "stretch_max": 0.0,
            "degraded_bw_mean": 0.0,
            "degraded_bw_min": 0.0,
        }
    ok = [j for j in jobs if j.status == "ok"]
    waits = [j.queue_wait for j in jobs]
    walls = [j.wall_time for j in ok] or [0.0]
    stretches = [j.stretch for j in ok] or [0.0]
    ratios = [j.degraded_bw for j in ok if j.degraded_bw > 0] or [0.0]
    return {
        "jobs": len(jobs),
        "ok": len(ok),
        "failed": len(jobs) - len(ok),
        "queue_wait_mean": sum(waits) / len(waits),
        "queue_wait_max": max(waits),
        "wall_p50": percentile(walls, 50),
        "wall_p95": percentile(walls, 95),
        "wall_p99": percentile(walls, 99),
        "stretch_mean": sum(stretches) / len(stretches),
        "stretch_p95": percentile(stretches, 95),
        "stretch_max": max(stretches),
        "degraded_bw_mean": sum(ratios) / len(ratios),
        "degraded_bw_min": min(ratios),
    }
