"""Interference metrics and recovery SLOs over a fleet's per-job results.

Percentiles use the nearest-rank method on the sorted sample — integer
index arithmetic only, so aggregates are bit-stable across platforms and
safe to compare byte-for-byte in the determinism tests.

**Recovery SLOs** (:func:`evaluate_job_slo`) turn the crash→restart→replay
timeline each :class:`~repro.fleet.runner.FleetJobResult` carries into
enforced budgets: time-to-restart, journal-replay duration, the
degraded-bandwidth window, and zero lost bytes for cached writes that
finished cleanly.  The fleet chaos harness asserts them per completed job,
and ``check_bench --slo`` gates the bench_fleet crash trial against budgets
committed in ``benchmarks/baseline_quick.json``.

Paper correspondence: the zero-loss SLO *is* the paper's central robustness
claim (SSD-cached collective writes survive a process crash); the
degraded-bandwidth ratio generalises the solo perceived-bandwidth metric
(Eq. 2) to a contended cluster.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence

#: Default per-job recovery budgets (simulated seconds / bytes).  Generous
#: by design — they catch a recovery path that stopped working (a restart
#: that never comes back, a replay that grinds), not scheduler weather; the
#: CI gate pins tighter, measured budgets in baseline_quick.json.
DEFAULT_RECOVERY_SLO = {
    "time_to_restart_max": 2.0,  # total crash -> next-incarnation-start
    "replay_duration_max": 1.0,  # total journal-replay time on reopen
    "degraded_window_max": 3.0,  # time_to_restart + replay_duration
    "bytes_lost_cached_max": 0,  # cached writes that finished "ok" lose nothing
}


def evaluate_job_slo(
    row, budgets: Optional[Mapping[str, float]] = None
) -> list[str]:
    """Recovery-SLO violations for one job row (empty list = within budget).

    Timing budgets apply only to jobs that actually crashed (a fault-free
    job's timeline fields are all zero); the zero-loss budget applies to
    every cache-enabled job that reports ``status == "ok"`` — the paper's
    claim is exactly that such a job, crashed or not, loses no cached byte.
    """
    b = dict(DEFAULT_RECOVERY_SLO)
    if budgets:
        b.update(budgets)
    out: list[str] = []
    label = f"job {row.job_id}"
    if row.first_crash_time > 0:
        if row.time_to_restart > b["time_to_restart_max"]:
            out.append(
                f"{label}: time_to_restart {row.time_to_restart:.6f}s > "
                f"budget {b['time_to_restart_max']}s"
            )
        if row.replay_duration > b["replay_duration_max"]:
            out.append(
                f"{label}: replay_duration {row.replay_duration:.6f}s > "
                f"budget {b['replay_duration_max']}s"
            )
        if row.degraded_window > b["degraded_window_max"]:
            out.append(
                f"{label}: degraded_window {row.degraded_window:.6f}s > "
                f"budget {b['degraded_window_max']}s"
            )
    if (
        row.status == "ok"
        and row.cache_mode == "enabled"
        and row.bytes_lost > b["bytes_lost_cached_max"]
    ):
        out.append(
            f"{label}: bytes_lost {row.bytes_lost} > "
            f"budget {b['bytes_lost_cached_max']} for cached writes"
        )
    return out


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sample."""
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q={q} outside [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def summarize_jobs(jobs) -> dict:
    """Aggregate queue/wall/stretch/degradation metrics over job results.

    ``jobs`` is a sequence of :class:`~repro.fleet.runner.FleetJobResult`.
    Stretch and degradation aggregates cover only jobs that finished
    cleanly (a crashed job's wall time is a teardown artifact, not a
    service time).
    """
    if not jobs:
        return {
            "jobs": 0,
            "ok": 0,
            "failed": 0,
            "crashed": 0,
            "restarts_total": 0,
            "replay_duration_total": 0.0,
            "time_to_restart_max": 0.0,
            "slo_violations": 0,
            "queue_wait_mean": 0.0,
            "queue_wait_max": 0.0,
            "wall_p50": 0.0,
            "wall_p95": 0.0,
            "wall_p99": 0.0,
            "stretch_mean": 0.0,
            "stretch_p95": 0.0,
            "stretch_max": 0.0,
            "degraded_bw_mean": 0.0,
            "degraded_bw_min": 0.0,
        }
    ok = [j for j in jobs if j.status == "ok"]
    waits = [j.queue_wait for j in jobs]
    walls = [j.wall_time for j in ok] or [0.0]
    stretches = [j.stretch for j in ok] or [0.0]
    ratios = [j.degraded_bw for j in ok if j.degraded_bw > 0] or [0.0]
    crashed = [j for j in jobs if j.first_crash_time > 0]
    return {
        "jobs": len(jobs),
        "ok": len(ok),
        "failed": len(jobs) - len(ok),
        "crashed": len(crashed),
        "restarts_total": sum(j.restarts for j in jobs),
        "replay_duration_total": sum(j.replay_duration for j in jobs),
        "time_to_restart_max": max(
            (j.time_to_restart for j in crashed), default=0.0
        ),
        "slo_violations": sum(len(j.slo_violations) for j in jobs),
        "queue_wait_mean": sum(waits) / len(waits),
        "queue_wait_max": max(waits),
        "wall_p50": percentile(walls, 50),
        "wall_p95": percentile(walls, 95),
        "wall_p99": percentile(walls, 99),
        "stretch_mean": sum(stretches) / len(stretches),
        "stretch_p95": percentile(stretches, 95),
        "stretch_max": max(stretches),
        "degraded_bw_mean": sum(ratios) / len(ratios),
        "degraded_bw_min": min(ratios),
    }
