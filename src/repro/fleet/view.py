"""Per-job views over one shared :class:`~repro.machine.Machine`.

A fleet run admits many jobs into a single simulation.  Each job gets a
:class:`JobView`: an object with the full Machine attribute surface that the
ROMIO/cache/MPI layers consume, but scoped to the job where the real system
scopes state per job:

* **rank namespace** — job ranks are 0..n-1; :meth:`JobView.node_of_rank`
  maps them onto the *physical* nodes the scheduler allocated, so the whole
  stack's invariant ("node ids are physical, rank→node goes through
  ``machine.node_of_rank``") places the job correctly;
* **PFS clients** — one client set per job (per-client bandwidth caps and
  channel links are per job-rank, as per-process clients would be);
* **recovery journals** — a private :class:`CacheRecoveryRegistry`, so one
  job's crash-recovery replay never sees another job's journals;
* **counters** — private ``io_stats``/``cache_stats`` ledgers, which is what
  makes per-job byte-conservation auditable in a shared world;
* **tracer** — every record is stamped with the job label (one Chrome-trace
  ``pid`` lane per job, see :meth:`~repro.sim.trace.Tracer.to_chrome_trace`).

Everything else — the event kernel, RNG streams, fabric, PFS servers, the
compute nodes and their SSDs/local filesystems — is the *shared* machine,
because that is exactly where the real system does not isolate jobs and
where interference comes from.

Paper correspondence: none (fleet extension); the shared/isolated split
mirrors the §IV testbed, where jobs share the BeeGFS servers and fabric but
own their files and cache extents.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.faults.recovery import CacheRecoveryRegistry
from repro.pfs.client import PFSClient


class _JobTracer:
    """Tracer facade that stamps every record with the owning job label."""

    __slots__ = ("_tracer", "_job")

    def __init__(self, tracer, job: str):
        self._tracer = tracer
        self._job = job

    @property
    def enabled(self) -> bool:
        return self._tracer.enabled

    def emit(self, time, component, event, **detail) -> None:
        detail.setdefault("job", self._job)
        self._tracer.emit(time, component, event, **detail)


class JobView:
    """One job's window onto a shared machine.

    ``placement`` is the tuple of physical node ids the job runs on; the
    job's config is the machine's config resized to that many nodes, so
    job-local code (aggregator selection, ``num_ranks``, per-node rank
    math) sees a cluster of exactly its own size.
    """

    def __init__(self, machine, job_id: int, placement, label: Optional[str] = None):
        placement = tuple(placement)
        if not placement:
            raise ValueError(f"job {job_id}: empty node placement")
        for node in placement:
            if not 0 <= node < machine.config.num_nodes:
                raise ValueError(
                    f"job {job_id}: placement node {node} outside the "
                    f"{machine.config.num_nodes}-node cluster"
                )
        self.machine = machine
        self.job_id = job_id
        self.placement = placement
        self.job_label = label if label is not None else f"j{job_id}"
        self.config = replace(machine.config, num_nodes=len(placement))
        # Shared substrate — one kernel, one fabric, one PFS, one node set.
        self.sim = machine.sim
        self.rng = machine.rng
        self.fabric = machine.fabric
        self.pfs = machine.pfs
        self.nodes = machine.nodes  # full physical list (indexed by node id)
        self.local_fs = machine.local_fs  # ditto
        self.dataplane = machine.dataplane
        self.faults = machine.faults
        # Job-scoped state.
        self.tracer = _JobTracer(machine.tracer, self.job_label)
        # Background daemons (sync threads) spawned on this job's behalf;
        # an aborted job interrupts the survivors so its nodes are clean.
        self.daemons: list = []
        self._clients: dict[int, PFSClient] = {}
        self.recovery = CacheRecoveryRegistry(self)
        self.cache_stats = {
            "retries": 0,
            "requeues": 0,
            "sync_failures": 0,
            "degraded": 0,
        }
        self.io_stats = {
            "bytes_app": 0,
            "bytes_cached": 0,
            "bytes_direct": 0,
            "bytes_flushed": 0,
            "bytes_replayed": 0,
            "bytes_discarded": 0,
            "bytes_lost": 0,
        }

    def node_of_rank(self, rank: int) -> int:
        """Physical node hosting this job's (job-local) ``rank``."""
        return self.placement[rank // self.config.procs_per_node]

    def pfs_client(self, rank: int) -> PFSClient:
        """This job's PFS client for ``rank`` (cached, tagged with the job)."""
        client = self._clients.get(rank)
        if client is None:
            node_id = self.node_of_rank(rank)
            client = PFSClient(
                self.pfs, node_id, name=f"{self.job_label}.client.r{rank}"
            )
            client.tag = self.job_label
            self._clients[rank] = client
        return client

    def local_fs_of_rank(self, rank: int):
        return self.local_fs[self.node_of_rank(rank)]

    @property
    def now(self) -> float:
        return self.sim.now
