"""Per-job specifications for fleet runs.

A :class:`FleetJobSpec` is one job's shape: benchmark, node count, cache
mode and workload sizing.  Jobs are generated deterministically from the
fleet spec by cycling the configured axes (node counts, cache modes,
benchmarks), so two fleets with the same spec contain byte-identical jobs.

Workload and hint construction mirrors the fault sweep's tiny-but-real
configurations (:mod:`repro.experiments.faultsweep`), minus the data
payloads: fleet conservation audits use the per-job byte ledgers, not
checksums, so carrying real bytes would only slow a 256-job fleet down.

Paper correspondence: §IV benchmarks (IOR, coll_perf, Flash-IO) as the job
mix; Table I/II hints per job.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import KiB
from repro.workloads import collperf_workload, flashio_workload, ior_workload

#: Benchmarks a fleet job may run; "mixed" in a FleetSpec cycles these.
JOB_BENCHMARKS = ("ior", "coll_perf", "flash_io")

#: Cache modes a fleet job may use; "mixed" cycles these.  "coherent" is
#: deliberately absent: fleet quiescence audits per-job journals, and the
#: coherent mode's stripe locks belong to the shared PFS (cross-job state).
JOB_CACHE_MODES = ("enabled", "disabled")


@dataclass(frozen=True)
class FleetJobSpec:
    """One job's shape inside a fleet (frozen: usable in cache keys)."""

    job_id: int
    benchmark: str = "ior"
    cache_mode: str = "enabled"  # "enabled" | "disabled"
    flush_flag: str = "flush_onclose"
    nodes: int = 1  # nodes requested from the allocator
    num_files: int = 2
    compute_delay: float = 0.02
    cb_buffer: int = 256 * KiB
    sync_chunk: int = 64 * KiB
    scale: float = 1.0
    seed: int = 2016

    def __post_init__(self):
        if self.benchmark not in JOB_BENCHMARKS:
            raise ValueError(
                f"job {self.job_id}: unknown benchmark {self.benchmark!r}; "
                f"expected one of {JOB_BENCHMARKS}"
            )
        if self.cache_mode not in JOB_CACHE_MODES:
            raise ValueError(
                f"job {self.job_id}: unknown cache mode {self.cache_mode!r}; "
                f"expected one of {JOB_CACHE_MODES}"
            )
        if self.nodes <= 0:
            raise ValueError(f"job {self.job_id}: nodes must be positive, got {self.nodes}")

    @property
    def label(self) -> str:
        return f"j{self.job_id}"

    @property
    def shape_key(self) -> tuple:
        """Everything but the job id — keys the solo-reference memo."""
        return (
            self.benchmark,
            self.cache_mode,
            self.flush_flag,
            self.nodes,
            self.num_files,
            self.compute_delay,
            self.cb_buffer,
            self.sync_chunk,
            self.scale,
            self.seed,
        )


def build_job_workload(job: FleetJobSpec, nprocs: int):
    """The job's per-file recipe (no data payloads; ledgers audit bytes)."""
    s = max(job.scale, 0.0)
    if job.benchmark == "coll_perf":
        block = max(8 * KiB, (int(128 * KiB * s) // (2 * KiB)) * 2 * KiB)
        return collperf_workload(nprocs, block_bytes=block, seed=job.seed)
    if job.benchmark == "flash_io":
        blocks = max(1, int(round(2 * s)))
        return flashio_workload(nprocs, blocks_per_proc=blocks, seed=job.seed)
    return ior_workload(
        nprocs,
        block_bytes=64 * KiB,
        segments=max(1, int(round(2 * s))),
        seed=job.seed,
    )


def job_hints(job: FleetJobSpec) -> dict[str, str]:
    """Table I/II hint strings for one job (one aggregator per job node)."""
    hints = {
        "cb_nodes": str(job.nodes),
        "cb_buffer_size": str(job.cb_buffer),
        "romio_cb_write": "enable",
        "striping_unit": str(256 * KiB),
        "striping_factor": "4",
        "ind_wr_buffer_size": str(job.sync_chunk),
    }
    if job.cache_mode == "enabled":
        hints.update(
            e10_cache="enable",
            e10_cache_flush_flag=job.flush_flag,
            e10_cache_discard_flag="enable",
        )
    return hints
