"""Chaos trials: one seeded schedule, both data planes, full invariant audit.

A :class:`ChaosTrialSpec` names a workload shape and a seed; the runner

1. draws the fault schedule for the seed (or takes the explicit one a
   shrinker / replay artifact carries),
2. runs the workload fault-free on a fresh machine for reference checksums,
3. runs the *same* workload under the schedule on **both** data planes
   (``bulk`` and ``chunked``), each with an attached
   :class:`~repro.chaos.invariants.InvariantMonitor`, recovering from
   injected crashes (repeatedly — cascades can kill the recovery job too)
   until the job converges or the attempt budget runs out,
4. drains each machine to quiescence, audits the conservation / coherence
   invariants, and
5. asserts the two planes agree on *every* simulated quantity (only the
   diagnostic event counts may differ) and that the persisted files are
   byte-identical to the reference (unless the schedule legitimately forced
   data loss, which the ledger still has to account for).

Results are plain dataclasses with ``to_dict``/``from_dict`` so they flow
through the same :class:`~repro.experiments.parallel.SweepRunner` /
result-cache machinery as every other sweep.

Paper correspondence: none (robustness harness, DESIGN.md §9).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Optional

from repro.chaos.generate import ChaosConfig, generate_schedule
from repro.chaos.invariants import InvariantMonitor
from repro.config import ClusterConfig, small_testbed
from repro.experiments.faultsweep import (
    FAULT_BENCHMARKS,
    FAULT_CACHE_MODES,
    FaultExperimentSpec,
    _checksums,
    build_fault_workload,
    fault_hints_for,
)
from repro.faults import FaultSchedule, FaultSpec, JobAborted
from repro.faults.errors import FaultError, SyncFailedError
from repro.romio.hints import CACHE_KINDS
from repro.machine import Machine
from repro.mpi.process import MPIWorld
from repro.romio.file import MPIIOLayer
from repro.sim.core import DeadlockError, Interrupt
from repro.workloads.phases import multi_phase_body

#: Cache modes cycled across seeds by :func:`chaos_trial_specs`.
CHAOS_CACHE_MODES = ("enabled", "coherent", "disabled")

#: Recovery attempts before a trial is declared unrecovered.  Cascades kill
#: at most one recovery job per armed spec, so two would do; the margin
#: covers transient fault windows that outlive the first recovery too.
MAX_RECOVERY_ATTEMPTS = 5


@dataclass(frozen=True)
class ChaosTrialSpec:
    """One chaos point: workload shape + schedule seed (or explicit faults)."""

    seed: int
    benchmark: str = "ior"
    cache_mode: str = "enabled"
    cache_kind: str = "extent"  # cache backend: extent file or NVMM WAL
    flush_flag: str = "flush_onclose"
    num_nodes: int = 4
    procs_per_node: int = 2
    num_files: int = 2
    compute_delay: float = 0.05
    scale: float = 1.0
    workload_seed: int = 2016
    max_faults: int = 3
    # Explicit schedule override (shrinker / replay artifacts).  With
    # ``generate`` True the schedule is drawn from ``seed`` and these two
    # fields are ignored.
    faults: tuple = ()
    sync_rpc_timeout: float = 0.0
    generate: bool = True

    def __post_init__(self):
        if self.benchmark not in FAULT_BENCHMARKS:
            raise ValueError(f"unknown benchmark {self.benchmark!r}")
        if self.cache_mode not in FAULT_CACHE_MODES:
            raise ValueError(f"unknown cache mode {self.cache_mode!r}")
        if self.cache_kind not in CACHE_KINDS:
            raise ValueError(f"unknown cache kind {self.cache_kind!r}")
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))

    @property
    def label(self) -> str:
        return f"seed{self.seed}"

    def scaled(self, **kw) -> "ChaosTrialSpec":
        return replace(self, **kw)

    def pinned(self, schedule: FaultSchedule) -> "ChaosTrialSpec":
        """The same spec with the schedule made explicit (replayable as-is)."""
        return replace(
            self,
            faults=schedule.faults,
            sync_rpc_timeout=schedule.sync_rpc_timeout,
            generate=False,
        )

    @classmethod
    def from_dict(cls, d: dict) -> "ChaosTrialSpec":
        fields_ = dict(d)
        fields_["faults"] = tuple(
            FaultSpec.from_dict(f) for f in fields_.get("faults", ())
        )
        return cls(**fields_)


@dataclass
class ChaosTrialResult:
    """Outcome of one chaos trial (both planes merged; they must agree)."""

    spec: ChaosTrialSpec
    schedule: dict  # the schedule actually run, serialized
    outcome: str  # survived | crash_recovered | data_loss | unrecovered | deadlock
    integrity_ok: bool  # persisted bytes match the fault-free reference
    planes_match: bool  # bulk and chunked agree on every simulated quantity
    mismatched: list  # snapshot keys where the planes disagreed
    violations: list  # invariant violations, tagged ref:/bulk:/chunked:
    crashes: int  # crash interrupts observed (bulk plane)
    recovery_attempts: int
    bytes_replayed: int
    files_recovered: int
    retries: int
    requeues: int
    sync_failures: int
    degraded: int
    faults_injected: int
    io_stats: dict = field(default_factory=dict)
    checksums: dict = field(default_factory=dict)
    events_bulk: int = 0
    events_chunked: int = 0

    @property
    def ok(self) -> bool:
        """Did this trial uphold every property the harness asserts?"""
        return (
            self.integrity_ok
            and self.planes_match
            and not self.violations
            and self.outcome not in ("unrecovered", "deadlock")
        )

    def to_dict(self) -> dict:
        d = asdict(self)
        d["spec"] = asdict(self.spec)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ChaosTrialResult":
        fields_ = dict(d)
        fields_["spec"] = ChaosTrialSpec.from_dict(fields_["spec"])
        return cls(**fields_)


# -- schedule / config resolution ---------------------------------------------
def resolve_chaos_config(
    spec: ChaosTrialSpec, config: Optional[ClusterConfig] = None
) -> ClusterConfig:
    if config is not None:
        return config
    return small_testbed(
        num_nodes=spec.num_nodes,
        procs_per_node=spec.procs_per_node,
        seed=spec.workload_seed,
    )


def schedule_for(spec: ChaosTrialSpec, cfg: ClusterConfig) -> FaultSchedule:
    """The schedule a spec runs: generated from the seed, or pinned."""
    if not spec.generate:
        return FaultSchedule(
            faults=spec.faults, sync_rpc_timeout=spec.sync_rpc_timeout
        ).validate(
            num_nodes=cfg.num_nodes,
            num_servers=cfg.pfs.num_data_servers,
            num_ranks=cfg.num_ranks,
        )
    chaos_cfg = ChaosConfig(
        num_nodes=cfg.num_nodes,
        num_servers=cfg.pfs.num_data_servers,
        num_ranks=cfg.num_ranks,
        num_files=spec.num_files,
        max_faults=spec.max_faults,
        # NVMM-backed trials opt into the device-tier draws (torn WAL
        # appends + GC pressure); extent trials keep the legacy sequence.
        cache_kind=spec.cache_kind,
        device_faults=spec.cache_kind == "nvmm",
    )
    return generate_schedule(chaos_cfg, spec.seed)


def _fault_spec_view(spec: ChaosTrialSpec, schedule: FaultSchedule) -> FaultExperimentSpec:
    """Adapter so the faultsweep workload/hints helpers serve chaos trials."""
    return FaultExperimentSpec(
        benchmark=spec.benchmark,
        scenario=f"chaos{spec.seed}",
        faults=schedule.faults,
        sync_rpc_timeout=schedule.sync_rpc_timeout,
        cache_mode=spec.cache_mode,
        cache_kind=spec.cache_kind,
        flush_flag=spec.flush_flag,
        num_nodes=spec.num_nodes,
        procs_per_node=spec.procs_per_node,
        num_files=spec.num_files,
        compute_delay=spec.compute_delay,
        scale=spec.scale,
        seed=spec.workload_seed,
    )


# -- one plane ----------------------------------------------------------------
def _run_phase(world: MPIWorld, body) -> str:
    """Run one job phase; classify how it ended.

    When a single rank dies of an uncaught error mid-collective, the
    surviving ranks of the phase are torn down like a real ``mpirun``
    would do — otherwise they wait on the dead rank's barrier forever and
    the no-progress watchdog reports a (correct but useless) deadlock.
    """
    sim = world.machine.sim
    procs = world.spawn(body)
    try:
        sim.run(until=sim.all_of(procs))
        return "ok"
    except Interrupt as exc:
        if isinstance(exc.cause, JobAborted):
            return "crash"  # the injector already interrupted every rank
        raise
    except SyncFailedError as exc:
        status, cause = "loss", exc
    except FaultError as exc:
        status, cause = "fault", exc
    for proc in procs:
        if proc.is_alive:
            proc.interrupt(JobAborted(cause))
    return status


def _run_plane(
    cfg: ClusterConfig,
    schedule: FaultSchedule,
    kind: Optional[str],
    workload,
    hints: dict,
    spec: ChaosTrialSpec,
    prefix: str,
    paths: list[str],
    trace: bool = False,
    profiler=None,
) -> tuple[dict, int, object]:
    """One full faulted job (+ recoveries) on one data plane.

    Returns ``(snapshot, events_fired, machine)`` — the snapshot holds every
    simulated quantity the planes must agree on; the diagnostic event count
    stays outside it.
    """
    machine = Machine(
        cfg,
        trace=trace,
        faults=schedule if schedule else None,
        profiler=profiler,
        dataplane=kind,
    )
    monitor = InvariantMonitor(machine)
    world = MPIWorld(machine)
    layer = MPIIOLayer(machine, world.comm, driver="beegfs", exchange_mode="model")
    deferred = spec.cache_mode != "disabled"
    body = multi_phase_body(
        layer,
        workload,
        hints,
        num_files=spec.num_files,
        compute_delay=spec.compute_delay,
        deferred_close=deferred,
        file_prefix=prefix,
    )
    crashes = 0
    data_loss = False
    attempts = 0
    monitor.watch()
    status = _run_phase(world, body)
    if status == "loss":
        data_loss = True
    if status == "fault":
        # The main write path has its own degradation fallbacks; a FaultError
        # escaping it is a bug, not a legitimate outcome.
        monitor.record("FaultError escaped the main write phase")
    while status == "crash" and attempts < MAX_RECOVERY_ATTEMPTS:
        crashes += 1
        attempts += 1
        # Recovery job on the same machine: the cluster survives, only the
        # MPI job died.  Re-opening each surviving file replays orphaned
        # cache extents; a cascade crash can kill this job too, in which
        # case we simply run another one.
        live = [p for p in paths if machine.pfs.exists(p)]
        rec_world = MPIWorld(machine)
        rec_layer = MPIIOLayer(
            machine, rec_world.comm, driver="beegfs", exchange_mode="model"
        )

        def recovery_body(ctx, _layer=rec_layer, _live=live):
            for path in _live:
                fh = yield from _layer.open(ctx.rank, path, {})
                yield from fh.close()

        monitor.watch()
        status = _run_phase(rec_world, recovery_body)
        if status == "loss":
            data_loss = True
        if status == "fault":
            # A transient window outlived the crash and hit the replay's
            # unguarded reads; the window is bounded, so another recovery
            # attempt (later in simulated time) gets through.
            status = "crash"
            crashes -= 1  # not a new crash, just a retry
    unrecovered = status == "crash"
    deadlocked = False
    try:
        monitor.drain()
    except DeadlockError as exc:
        deadlocked = True
        monitor.record(f"deadlock: {exc}")
    monitor.check_quiescent()
    snapshot = {
        "checksums": _checksums(machine, paths),
        "io_stats": dict(machine.io_stats),
        "cache_stats": dict(machine.cache_stats),
        "recovery": machine.recovery.stats(),
        "crashes": crashes,
        "recovery_attempts": attempts,
        "data_loss": data_loss,
        "unrecovered": unrecovered,
        "deadlock": deadlocked,
        "faults_injected": machine.faults.injected if machine.faults else 0,
        "violations": list(monitor.violations),
    }
    return snapshot, machine.sim.events_fired, machine


# -- the trial ----------------------------------------------------------------
def run_chaos_trial(
    spec: ChaosTrialSpec,
    config: Optional[ClusterConfig] = None,
    trace: bool = False,
    profiler=None,
) -> ChaosTrialResult:
    cfg = resolve_chaos_config(spec, config)
    schedule = schedule_for(spec, cfg)
    fspec = _fault_spec_view(spec, schedule)
    hints = fault_hints_for(fspec)
    prefix = f"/global/chaos_{spec.benchmark}_{spec.cache_mode}_s{spec.seed}_"
    paths = [f"{prefix}{k}" for k in range(spec.num_files)]
    workload = build_fault_workload(fspec, cfg.num_ranks)

    # Reference: fault-free, default data plane, same invariant audit.
    ref_machine = Machine(cfg, trace=trace)
    ref_monitor = InvariantMonitor(ref_machine)
    ref_world = MPIWorld(ref_machine)
    ref_layer = MPIIOLayer(
        ref_machine, ref_world.comm, driver="beegfs", exchange_mode="model"
    )
    ref_monitor.watch()
    ref_world.run(
        multi_phase_body(
            ref_layer,
            workload,
            hints,
            num_files=spec.num_files,
            compute_delay=spec.compute_delay,
            deferred_close=spec.cache_mode != "disabled",
            file_prefix=prefix,
        )
    )
    ref_monitor.drain()
    ref_monitor.check_quiescent()
    ref_checks = _checksums(ref_machine, paths)

    snaps: dict[str, dict] = {}
    events: dict[str, int] = {}
    tracers: dict[str, object] = {"ref": ref_machine.tracer}
    for kind in ("bulk", "chunked"):
        snaps[kind], events[kind], m = _run_plane(
            cfg,
            schedule,
            kind,
            workload,
            hints,
            spec,
            prefix,
            paths,
            trace=trace,
            profiler=profiler if kind == "bulk" else None,
        )
        tracers[kind] = m.tracer

    bulk, chunked = snaps["bulk"], snaps["chunked"]
    mismatched = sorted(k for k in bulk if bulk[k] != chunked[k])
    planes_match = not mismatched

    violations = [f"ref:{v}" for v in ref_monitor.violations]
    violations += [f"bulk:{v}" for v in bulk["violations"]]
    violations += [f"chunked:{v}" for v in chunked["violations"]]

    if bulk["deadlock"] or chunked["deadlock"]:
        outcome = "deadlock"
    elif bulk["unrecovered"] or chunked["unrecovered"]:
        outcome = "unrecovered"
    elif bulk["data_loss"] or chunked["data_loss"]:
        outcome = "data_loss"
    elif bulk["crashes"]:
        outcome = "crash_recovered"
    else:
        outcome = "survived"

    if outcome in ("survived", "crash_recovered"):
        integrity_ok = bool(ref_checks) and all(
            snaps[k]["checksums"] == ref_checks for k in snaps
        )
    else:
        # Lost or never-converged data cannot match the reference; the
        # conservation ledger (violations above) is the oracle instead.
        integrity_ok = True

    result = ChaosTrialResult(
        spec=spec,
        schedule=schedule.to_dict(),
        outcome=outcome,
        integrity_ok=integrity_ok,
        planes_match=planes_match,
        mismatched=mismatched,
        violations=violations,
        crashes=bulk["crashes"],
        recovery_attempts=bulk["recovery_attempts"],
        bytes_replayed=bulk["recovery"]["bytes_replayed"],
        files_recovered=bulk["recovery"]["files_recovered"],
        retries=bulk["cache_stats"].get("retries", 0),
        requeues=bulk["cache_stats"].get("requeues", 0),
        sync_failures=bulk["cache_stats"].get("sync_failures", 0),
        degraded=bulk["cache_stats"].get("degraded", 0),
        faults_injected=bulk["faults_injected"],
        io_stats=bulk["io_stats"],
        checksums=bulk["checksums"],
        events_bulk=events["bulk"],
        events_chunked=events["chunked"],
    )
    if trace:
        # Diagnostic side channel for tools/profile_sweep.py --chaos-seed;
        # not a dataclass field, so it never enters the result cache.
        result.tracers = tracers
    return result


def _run_chaos_point(spec: ChaosTrialSpec, config: Optional[ClusterConfig]):
    """Module-level so the process pool can pickle it by reference."""
    return run_chaos_trial(spec, config)


# -- spec batches / reporting -------------------------------------------------
def chaos_trial_specs(
    seeds,
    scale: float = 1.0,
    benchmark: str = "ior",
    max_faults: int = 3,
) -> list[ChaosTrialSpec]:
    """One trial per seed, cycling cache modes and flush flags."""
    specs = []
    for seed in seeds:
        cache_mode = CHAOS_CACHE_MODES[seed % len(CHAOS_CACHE_MODES)]
        specs.append(
            ChaosTrialSpec(
                seed=seed,
                benchmark=benchmark,
                cache_mode=cache_mode,
                # Every fourth caching trial runs on the NVMM WAL backend so
                # the smoke matrix exercises torn-append recovery too.
                cache_kind=(
                    "nvmm"
                    if seed % 4 == 3 and cache_mode != "disabled"
                    else "extent"
                ),
                flush_flag="flush_immediate" if (seed // 3) % 2 else "flush_onclose",
                scale=scale,
                max_faults=max_faults,
            )
        )
    return specs


def render_chaos_table(results: list[ChaosTrialResult]) -> str:
    header = (
        f"{'seed':>6} {'cache':<9} {'kind':<7} {'flush':<15} {'faults':>6} "
        f"{'outcome':<15} {'ok':<3} {'planes':<6} {'viol':>4} "
        f"{'replayed':>9} {'retry':>5}"
    )
    lines = [header, "-" * len(header)]
    for r in results:
        lines.append(
            f"{r.spec.seed:>6} {r.spec.cache_mode:<9} "
            f"{r.spec.cache_kind:<7} {r.spec.flush_flag:<15} "
            f"{len(r.schedule.get('faults', ())):>6} {r.outcome:<15} "
            f"{'y' if r.ok else 'N':<3} {'y' if r.planes_match else 'N':<6} "
            f"{len(r.violations):>4} {r.bytes_replayed:>9} {r.retries:>5}"
        )
    return "\n".join(lines)
