"""Replay a minimized chaos repro artifact.

Usage::

    PYTHONPATH=src python -m repro.chaos.replay chaos-repro-seed17.json

Loads the artifact written by the chaos sweep (or
:func:`repro.chaos.shrink.write_repro_artifact`), re-runs the pinned trial
spec — same workload, same explicit fault schedule, both data planes — and
reports the outcome.  Exit status is **1 while the recorded failure still
reproduces** and 0 once the trial passes, so the artifact doubles as a
regression test for the fix.

A cluster-config fingerprint mismatch (calibration constants changed since
the artifact was written) is reported as a warning: the schedule still
replays deterministically, but the failure may legitimately have moved.

Paper correspondence: none (robustness harness, DESIGN.md §9).
"""

from __future__ import annotations

import argparse
import sys

from repro.chaos.runner import resolve_chaos_config, run_chaos_trial
from repro.chaos.shrink import load_repro_artifact
from repro.experiments.resultcache import config_fingerprint


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.chaos.replay",
        description="Deterministically replay a minimized chaos failure.",
    )
    p.add_argument("artifact", help="repro JSON written by the chaos sweep")
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    spec, schedule, payload = load_repro_artifact(args.artifact)
    fingerprint = config_fingerprint(resolve_chaos_config(spec, None))
    if fingerprint != payload.get("config_fingerprint"):
        print(
            "warning: cluster-config fingerprint differs from the artifact "
            "(calibration changed since it was recorded); the schedule still "
            "replays deterministically but the failure may have moved",
            file=sys.stderr,
        )
    print(f"replaying seed {spec.seed}: {payload.get('reason', '(no reason recorded)')}")
    for i, fault in enumerate(schedule.faults):
        trigger = (
            f"on {fault.on_event}+{fault.delay:g}s"
            if fault.on_event
            else f"t={fault.start:g}s dur={fault.duration:g}s"
        )
        print(f"  faults[{i}]: {fault.kind} target={fault.target} {trigger}")
    if schedule.sync_rpc_timeout:
        print(f"  sync_rpc_timeout={schedule.sync_rpc_timeout:g}s")
    result = run_chaos_trial(spec)
    print(
        f"outcome={result.outcome} integrity={'ok' if result.integrity_ok else 'FAIL'} "
        f"planes={'match' if result.planes_match else 'MISMATCH:' + ','.join(result.mismatched)} "
        f"violations={len(result.violations)}"
    )
    for v in result.violations:
        print(f"  violation: {v}")
    if result.ok:
        print("trial passed — the recorded failure no longer reproduces")
        return 0
    print("trial FAILED — the recorded failure reproduces", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
