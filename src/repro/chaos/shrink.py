"""Greedy schedule shrinking + replayable JSON repro artifacts.

When a chaos trial fails, the generated schedule usually contains faults
that have nothing to do with the failure.  :func:`shrink_schedule` is a
greedy delta-debugger: it repeatedly tries dropping one fault (then the
sync-RPC timeout) and keeps any candidate that still reproduces the
failure, converging to a locally-minimal schedule — for a single-cause bug,
typically one or two faults.

The minimized schedule is written as a self-contained JSON artifact: the
pinned trial spec (schedule made explicit, so nothing depends on the
generator's draw order staying stable across versions), the cluster-config
fingerprint it ran against, and the human-readable reason.  Replay with::

    PYTHONPATH=src python -m repro.chaos.replay <artifact.json>

which exits non-zero while the failure still reproduces.

Paper correspondence: none (robustness harness, DESIGN.md §9).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Callable, Optional

from repro.experiments.resultcache import config_fingerprint
from repro.faults.spec import FaultSchedule

ARTIFACT_VERSION = 1


def shrink_schedule(
    schedule: FaultSchedule,
    still_fails: Callable[[FaultSchedule], bool],
    max_runs: int = 64,
) -> FaultSchedule:
    """Greedily minimize ``schedule`` while ``still_fails`` stays true.

    ``still_fails`` must return True for the input schedule's failure (the
    caller has already observed it, so it is never re-run here).  Each
    candidate drops exactly one fault; after no single drop reproduces,
    zeroing ``sync_rpc_timeout`` is tried.  ``max_runs`` bounds the number
    of candidate trials (quadratic worst case in the fault count).
    """
    current = schedule
    runs = 0
    progress = True
    while progress and runs < max_runs:
        progress = False
        for i in range(len(current.faults)):
            candidate = FaultSchedule(
                faults=current.faults[:i] + current.faults[i + 1 :],
                sync_rpc_timeout=current.sync_rpc_timeout,
            )
            runs += 1
            if still_fails(candidate):
                current = candidate
                progress = True
                break
            if runs >= max_runs:
                break
    if current.sync_rpc_timeout > 0 and runs < max_runs:
        candidate = FaultSchedule(faults=current.faults, sync_rpc_timeout=0.0)
        if still_fails(candidate):
            current = candidate
    return current


def write_repro_artifact(
    path,
    spec,
    schedule: FaultSchedule,
    reason: str,
    config=None,
    result: Optional[dict] = None,
) -> dict:
    """Write a minimized, replayable failure description; returns the payload.

    ``spec`` is a :class:`~repro.chaos.runner.ChaosTrialSpec`; the stored
    copy is *pinned* (schedule explicit, generation off) so the artifact
    replays the exact same faults even if the generator changes.
    """
    from repro.chaos.runner import resolve_chaos_config

    pinned = spec.pinned(schedule)
    payload = {
        "version": ARTIFACT_VERSION,
        "seed": spec.seed,
        "reason": reason,
        "spec": asdict(pinned),
        "schedule": schedule.to_dict(),
        "config_fingerprint": config_fingerprint(resolve_chaos_config(spec, config)),
        "replay": f"PYTHONPATH=src python -m repro.chaos.replay {path}",
    }
    if result is not None:
        payload["result"] = result
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def load_repro_artifact(path):
    """Load an artifact back into ``(spec, schedule, payload)``."""
    from repro.chaos.runner import ChaosTrialSpec

    payload = json.loads(Path(path).read_text())
    if payload.get("version") != ARTIFACT_VERSION:
        raise ValueError(
            f"unsupported repro artifact version {payload.get('version')!r} "
            f"(expected {ARTIFACT_VERSION})"
        )
    spec = ChaosTrialSpec.from_dict(payload["spec"])
    schedule = FaultSchedule.from_dict(payload["schedule"])
    return spec, schedule, payload
