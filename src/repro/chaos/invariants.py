"""Global invariant checking for chaos runs.

An :class:`InvariantMonitor` attaches to one :class:`~repro.machine.Machine`
and watches three families of properties that must hold *no matter what the
fault schedule does*:

**Conservation of bytes** (the ``machine.io_stats`` ledger).  At every event
boundary the bytes acknowledged to the application equal the bytes that
entered the cache plus the bytes written directly, and no byte leaves the
cache (flush / replay / policy discard) that never entered it.  At
quiescence the equation closes exactly: every cached byte is flushed,
replayed, discarded by policy, or still sitting in a *registered* journal —
and bytes reported lost via ``SyncFailedError`` are a subset of what the
journals still hold (a "lost" extent is never silently dropped from the
recovery metadata).

**Journal / lock coherence** (cache-journal ↔ stripe-ref ↔ PFS lock state).
A stripe lock is never simultaneously write- and read-held; at quiescence no
waiter is left queued (an interrupted waiter must have been abandoned, not
leaked); every stripe-ref a journal holds is backed by a write-held lock;
and every write-held lock is referenced by some registered journal — a
held lock with no journal pointing at it is *orphaned*: crash recovery
forgot to revoke the dead owner's lease.

**Progress** (the no-progress watchdog).  A periodic tick observes the event
heap; if the heap runs dry while registered processes are still alive, the
simulation can never advance again and the watchdog raises a diagnosed
:class:`~repro.sim.core.DeadlockError` naming each blocked process and what
it is waiting on.  (The kernel's ``run(until=event)`` raises the same
diagnosed error when its sentinel can no longer fire; the watchdog extends
the diagnosis to drains and fire-and-forget phases.)

The monitor only *reads* simulated state — attaching it never changes any
simulated quantity except the diagnostic event count (watchdog ticks).

Paper correspondence: none (robustness harness, DESIGN.md §9).
"""

from __future__ import annotations

from typing import Optional

from repro.intervals import IntervalSet
from repro.sim.core import DeadlockError, describe_blocked

_WATCHDOG = "invariant-watchdog"


class InvariantViolation(AssertionError):
    """A global invariant did not hold.  Carries all collected messages."""

    def __init__(self, violations: list[str]):
        super().__init__("; ".join(violations))
        self.violations = violations


class InvariantMonitor:
    """Attach invariant checking to one machine.

    Violations are *collected* (deduplicated, in ``self.violations``) rather
    than raised, so a chaos trial can run to completion and report every
    broken property at once; only a deadlock aborts the run (nothing can
    execute past it anyway).
    """

    def __init__(self, machine, interval: float = 0.005):
        self.machine = machine
        self.sim = machine.sim
        self.interval = interval
        self.violations: list[str] = []
        self._seen: set[str] = set()
        self.ticks = 0
        self._watchdog = None
        # Opt the kernel into process tracking: every Process constructed
        # from here on self-registers, which is what turns a bare "event
        # list empty" into a diagnosed DeadlockError.
        if self.sim.process_registry is None:
            self.sim.process_registry = {}

    # -- recording ----------------------------------------------------------------
    def record(self, message: str) -> None:
        """Record a violation (deduplicated; callers may report their own)."""
        if message not in self._seen:
            self._seen.add(message)
            self.violations.append(message)

    _violate = record

    # -- the watchdog -------------------------------------------------------------
    def watch(self) -> None:
        """(Re)arm the no-progress watchdog for the next run phase.

        The tick process re-checks the running invariants every ``interval``
        simulated seconds and parks itself once the heap drains with no
        process left waiting; arm it again before each new phase.
        """
        if self._watchdog is None or not self._watchdog.is_alive:
            self._watchdog = self.sim.process(self._tick(), name=_WATCHDOG)

    def _tick(self):
        sim = self.sim
        while True:
            yield sim.timeout(self.interval)
            self.ticks += 1
            self.check_running()
            if not sim.pending:
                blocked = self._blocked()
                if blocked:
                    raise self._deadlock(blocked)
                return  # nothing left to watch; park until rearmed

    def _blocked(self) -> list[tuple[str, str]]:
        registry = self.sim.process_registry or {}
        return [
            (name, reason)
            for name, reason in describe_blocked(registry)
            if name != _WATCHDOG
        ]

    @staticmethod
    def _deadlock(blocked: list[tuple[str, str]]) -> DeadlockError:
        detail = "; ".join(f"{name}: {reason}" for name, reason in blocked)
        return DeadlockError(
            f"no-progress watchdog: event list empty with {len(blocked)} "
            f"process(es) still waiting — {detail}",
            blocked,
        )

    def drain(self) -> None:
        """Run the simulator until the event heap is empty.

        Stray failures of fire-and-forget events during teardown (e.g. a
        generalized request failing after its waiter already gave up) are
        recorded, not fatal.  If live processes remain once the heap is dry,
        that is a deadlock: raise the diagnosed error.
        """
        sim = self.sim
        while sim.pending:
            try:
                sim.run()
            except DeadlockError:
                raise
            except Exception as exc:  # unobserved event failure mid-teardown
                self._violate(f"unobserved failure during drain: {exc!r}")
        blocked = self._blocked()
        if blocked:
            raise self._deadlock(blocked)

    # -- running invariants (hold at every event boundary) -------------------------
    def check_running(self) -> None:
        io = self.machine.io_stats
        if io["bytes_app"] != io["bytes_cached"] + io["bytes_direct"]:
            self._violate(
                f"byte conservation (inflow): bytes_app={io['bytes_app']} != "
                f"bytes_cached={io['bytes_cached']} + bytes_direct={io['bytes_direct']}"
            )
        outflow = io["bytes_flushed"] + io["bytes_replayed"] + io["bytes_discarded"]
        if outflow > io["bytes_cached"]:
            self._violate(
                f"byte conservation (outflow): flushed+replayed+discarded="
                f"{outflow} exceeds bytes_cached={io['bytes_cached']}"
            )
        for entry in self.machine.pfs.locks.snapshot():
            if entry["writer"] and entry["readers"]:
                self._violate(
                    f"lock state: stripe ({self._file_label(entry['file_id'])}, "
                    f"{entry['stripe']}) is write-held with "
                    f"{entry['readers']} concurrent reader(s)"
                )

    # -- quiescent invariants (hold once the heap has drained) ---------------------
    def check_quiescent(self) -> list[str]:
        """Full conservation + coherence audit; returns all violations."""
        self.check_running()
        io = self.machine.io_stats
        journals = self.machine.recovery.entries()
        unflushed = sum(j.unflushed_bytes for j in journals)
        accounted = (
            io["bytes_flushed"]
            + io["bytes_replayed"]
            + io["bytes_discarded"]
            + unflushed
        )
        if io["bytes_cached"] != accounted:
            self._violate(
                f"byte conservation (quiescent): bytes_cached={io['bytes_cached']}"
                f" != flushed {io['bytes_flushed']} + replayed "
                f"{io['bytes_replayed']} + discarded {io['bytes_discarded']} + "
                f"journaled {unflushed}"
            )
        if io["bytes_lost"] > unflushed:
            self._violate(
                f"loss accounting: bytes_lost={io['bytes_lost']} exceeds the "
                f"{unflushed} bytes still journaled — lost data vanished from "
                f"the recovery metadata"
            )
        # WAL coherence (cache_kind=nvmm journals): no record is both torn
        # and durable, and every unflushed byte the journal claims must be
        # reconstructible from durable records — a torn append that somehow
        # entered `cached` without a durable retry would be unrecoverable
        # data the ledger still counts as safe.
        for journal in journals:
            wal = getattr(journal, "wal", None)
            if wal is None:
                continue
            durable = IntervalSet()
            for rec in wal.records:
                if rec.torn and rec.durable:
                    self._violate(
                        f"WAL coherence: record seq={rec.seq} on node "
                        f"{journal.node_id} is both torn and durable"
                    )
                if rec.durable:
                    durable.add(rec.offset, rec.offset + rec.nbytes)
            for start, end in journal.unflushed():
                missing = durable.gaps(start, end).total
                if missing:
                    self._violate(
                        f"WAL coherence: journal r{journal.rank} holds "
                        f"[{start}, {end}) as unflushed but {missing} byte(s) "
                        f"have no durable WAL record"
                    )
        # Journal -> lock direction: a live stripe ref must be write-held.
        locks = self.machine.pfs.locks
        referenced: set[tuple[int, int]] = set()
        for journal in journals:
            for stripe, refs in journal.stripe_refs.items():
                if refs <= 0:
                    continue
                referenced.add((journal.file_id, stripe))
                held = locks.held(journal.file_id, stripe)
                if held != "write":
                    self._violate(
                        f"journal/lock coherence: journal r{journal.rank} holds "
                        f"{refs} ref(s) on stripe "
                        f"({self._file_label(journal.file_id)}, {stripe}) "
                        f"but the lock is {held}"
                    )
        # Lock -> journal direction: no orphans, no leaked waiters.
        for entry in self.machine.pfs.locks.snapshot():
            key = (entry["file_id"], entry["stripe"])
            label = (self._file_label(entry["file_id"]), entry["stripe"])
            if entry["queued"]:
                self._violate(
                    f"lock state: {entry['queued']} waiter(s) still queued on "
                    f"stripe {label} at quiescence"
                )
            if (entry["writer"] or entry["readers"]) and key not in referenced:
                self._violate(
                    f"orphaned lock: stripe {label} is "
                    f"{'write' if entry['writer'] else 'read'}-held but no "
                    f"registered journal references it"
                )
        return list(self.violations)

    def _file_label(self, file_id: int) -> str:
        """Stable name for a PFS file id in violation messages.

        File ids come from a process-global counter, so the raw id differs
        between the two data-plane runs of one trial (and between replays);
        the path is deterministic.
        """
        for path, f in self.machine.pfs._files.items():
            if f.file_id == file_id:
                return path
        return f"fid{file_id}"

    def assert_clean(self) -> None:
        """Raise :class:`InvariantViolation` if anything was recorded."""
        if self.violations:
            raise InvariantViolation(list(self.violations))

    def summary(self) -> Optional[str]:
        return "; ".join(self.violations) if self.violations else None
