"""Seeded random fault-schedule generation.

``generate_schedule(cfg, seed)`` draws a small, *survivable* fault schedule
from a :class:`random.Random` stream: every window is bounded (the retry /
re-queue budget of the sync path can usually outlast it), error rates stay
below 1.0, and trigger times are drawn from continuous distributions — so a
fault firing at exactly the same instant as an in-flight device operation
is measure-zero, which is what keeps bulk-vs-chunked runs byte-identical
under the same schedule.

Crashes are *event-anchored* rather than clock-driven: an
``aggregator_crash`` arms on ``write_done:<last>`` (all application writes
acknowledged, flush/close in flight — the window where cached extents are
guaranteed to be at risk), so the reference checksums remain the correct
oracle for the recovered file.  With probability ``cascade_probability`` a
second crash arms on ``recovery_replay`` — it fires while the *recovery*
job is replaying the first crash's journals, the nastiest point in the
state space (partially-replayed journals, revoked-and-reacquired locks).

The same draw for the same ``(cfg, seed)`` is guaranteed identical across
runs and platforms (``random.Random`` is specified), which is what makes a
seed a sufficient repro artifact for unshrunk schedules.

Paper correspondence: none (robustness harness, DESIGN.md §9).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.faults.spec import FaultSchedule, FaultSpec

#: Relative draw weights for the windowed (non-crash) fault kinds.
_WINDOWED_KINDS = (
    "ssd_io_error",
    "ssd_io_error",
    "ssd_io_error",
    "server_stall",
    "server_stall",
    "link_degrade",
    "link_degrade",
    "ssd_device_loss",
)


@dataclass(frozen=True)
class ChaosConfig:
    """Bounds for the schedule generator (all times in simulated seconds)."""

    num_nodes: int = 4
    num_servers: int = 4
    num_ranks: int = 8
    num_files: int = 2
    max_faults: int = 3  # windowed faults per schedule (crashes come extra)
    horizon: float = 0.12  # clock-driven windows start inside [start_min, horizon)
    start_min: float = 0.002
    min_window: float = 0.004
    max_window: float = 0.05  # survivable: shorter than the retry+requeue budget
    min_error_rate: float = 0.1
    max_error_rate: float = 0.7  # < 1.0 so retries eventually get through
    crash_probability: float = 0.35
    cascade_probability: float = 0.5  # second crash during recovery replay
    timeout_probability: float = 0.6  # arm the sync RPC watchdog alongside stalls
    sync_rpc_timeout: float = 0.01
    # Device-tier faults (drawn *after* the legacy sequence, and only for
    # configs that opt in — so existing (cfg, seed) schedules are unchanged).
    cache_kind: str = "extent"  # "nvmm" enables torn-WAL-append draws
    device_faults: bool = False  # enables ssd_gc_pressure draws
    torn_write_probability: float = 0.75
    gc_pressure_probability: float = 0.6
    max_gc_factor: float = 4.0
    # Fleet scope: > 0 makes crash draws job-addressed (a ``job_index``
    # uniform over the fleet's arrival order).  0 keeps the legacy untagged
    # single-job semantics and the legacy draw sequence.
    num_jobs: int = 0


def generate_schedule(cfg: ChaosConfig, seed: int) -> FaultSchedule:
    """One validated random schedule, fully determined by ``(cfg, seed)``."""
    rng = random.Random(seed)
    faults: list[FaultSpec] = []
    lost_nodes: set[int] = set()
    for _ in range(rng.randint(1, max(1, cfg.max_faults))):
        kind = rng.choice(_WINDOWED_KINDS)
        if kind == "ssd_device_loss" and len(lost_nodes) >= cfg.num_nodes:
            kind = "ssd_io_error"  # every device already lost once
        start = rng.uniform(cfg.start_min, cfg.horizon)
        duration = rng.uniform(cfg.min_window, cfg.max_window)
        if kind == "ssd_io_error":
            faults.append(
                FaultSpec(
                    kind,
                    target=rng.randrange(cfg.num_nodes),
                    start=start,
                    duration=duration,
                    rate=rng.uniform(cfg.min_error_rate, cfg.max_error_rate),
                )
            )
        elif kind == "server_stall":
            faults.append(
                FaultSpec(
                    kind,
                    target=rng.randrange(cfg.num_servers),
                    start=start,
                    duration=duration,
                )
            )
        elif kind == "link_degrade":
            faults.append(
                FaultSpec(
                    kind,
                    target=rng.randrange(cfg.num_nodes),
                    start=start,
                    duration=duration,
                    factor=rng.uniform(0.2, 0.9),
                )
            )
        else:  # ssd_device_loss — at most once per node (validate() enforces)
            target = rng.choice(sorted(set(range(cfg.num_nodes)) - lost_nodes))
            lost_nodes.add(target)
            faults.append(FaultSpec(kind, target=target, start=start))
    # Device-tier kinds come after the legacy draws and behind opt-in flags,
    # which keeps the rng draw sequence — and therefore every existing
    # (cfg, seed) → schedule mapping — byte-identical for extent configs.
    if cfg.cache_kind == "nvmm" and rng.random() < cfg.torn_write_probability:
        faults.append(
            FaultSpec(
                "nvmm_torn_write",
                target=rng.randrange(cfg.num_nodes),
                start=rng.uniform(cfg.start_min, cfg.horizon),
                duration=rng.uniform(cfg.min_window, cfg.max_window),
                rate=rng.uniform(cfg.min_error_rate, cfg.max_error_rate),
            )
        )
    if cfg.device_faults and rng.random() < cfg.gc_pressure_probability:
        faults.append(
            FaultSpec(
                "ssd_gc_pressure",
                target=rng.randrange(cfg.num_nodes),
                start=rng.uniform(cfg.start_min, cfg.horizon),
                duration=rng.uniform(cfg.min_window, cfg.max_window),
                factor=rng.uniform(1.5, cfg.max_gc_factor),
            )
        )
    if rng.random() < cfg.crash_probability:
        last = max(0, cfg.num_files - 1)
        # Draw order matters: the job draw comes *after* the legacy
        # target/delay draws and only when num_jobs opts in, so every
        # existing single-job (cfg, seed) → schedule mapping is unchanged.
        target = rng.randrange(max(1, cfg.num_ranks))
        delay = rng.uniform(5e-4, 6e-3)
        job_index = rng.randrange(cfg.num_jobs) if cfg.num_jobs > 0 else -1
        faults.append(
            FaultSpec(
                "aggregator_crash",
                target=target,
                on_event=f"write_done:{last}",
                delay=delay,
                job_index=job_index,
            )
        )
        if rng.random() < cfg.cascade_probability:
            # The cascade reuses the first crash's job_index: only a crashed
            # job ever replays, so addressing any other job would arm a
            # trigger that can never fire.  Killing the *restarted*
            # incarnation mid-replay is the point — it spends a second
            # retry from the restart budget at the nastiest moment.
            target = rng.randrange(max(1, cfg.num_ranks))
            delay = rng.uniform(2e-4, 1.5e-3)
            faults.append(
                FaultSpec(
                    "aggregator_crash",
                    target=target,
                    on_event="recovery_replay",
                    delay=delay,
                    job_index=job_index,
                )
            )
    timeout = 0.0
    if any(f.kind == "server_stall" for f in faults):
        if rng.random() < cfg.timeout_probability:
            timeout = cfg.sync_rpc_timeout
    schedule = FaultSchedule(faults=tuple(faults), sync_rpc_timeout=timeout)
    return schedule.validate(
        num_nodes=cfg.num_nodes,
        num_servers=cfg.num_servers,
        num_ranks=cfg.num_ranks,
        num_files=cfg.num_files,
        num_jobs=cfg.num_jobs or None,
    )
