"""Chaos harness: randomized fault schedules + global invariant checking.

The fault matrix (:mod:`repro.experiments.faultsweep`) asserts end-to-end
integrity for six *hand-picked* scenarios.  This package turns the same
machinery into a property-based harness: a seeded generator draws random —
but survivable — :class:`~repro.faults.FaultSchedule`\\ s (including cascades:
a second crash landing during recovery replay), an
:class:`~repro.chaos.invariants.InvariantMonitor` checks global invariants
(byte conservation, journal/lock coherence, a no-progress watchdog) on every
run, each trial executes on **both** data planes and must agree on every
simulated quantity, and a failing schedule is greedily shrunk to a minimal
replayable JSON artifact (``python -m repro.chaos.replay <artifact>``).

Paper correspondence: none — robustness harness for the §III cache
extensions (see DESIGN.md §9).
"""

from repro.chaos.generate import ChaosConfig, generate_schedule
from repro.chaos.invariants import InvariantMonitor, InvariantViolation
from repro.chaos.runner import (
    ChaosTrialResult,
    ChaosTrialSpec,
    chaos_trial_specs,
    render_chaos_table,
    run_chaos_trial,
)
from repro.chaos.shrink import load_repro_artifact, shrink_schedule, write_repro_artifact

__all__ = [
    "ChaosConfig",
    "ChaosTrialResult",
    "ChaosTrialSpec",
    "InvariantMonitor",
    "InvariantViolation",
    "chaos_trial_specs",
    "generate_schedule",
    "load_repro_artifact",
    "render_chaos_table",
    "run_chaos_trial",
    "shrink_schedule",
    "write_repro_artifact",
]
