"""MPE-style phase profiling.

The paper extracts the collective-write cost breakdown (Figs. 5, 6, 8, 10)
from ROMIO with MPE; here every rank owns a :class:`Profiler` that
accumulates wall-clock per named phase.  Phase names match the paper's
figure legends:

``shuffle_all2all`` — the dissemination ``MPI_Alltoall`` at the top of each
round's exchange; ``comm`` — ``MPI_Waitall`` over the data sends/receives;
``memcpy`` — assembling received pieces into the collective buffer;
``write`` — ``ADIO_WriteContig``; ``post_write`` — the error-code
``MPI_Allreduce`` after the last round; ``not_hidden_sync`` — cache
synchronisation time not hidden behind compute, charged at close;
``open``/``close``/``other`` — the rest.

Paper correspondence: §IV-B measurement methodology — the per-phase
timers behind Figs. 5/6/8/10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

PHASES = (
    "open",
    "offset_exch",
    "shuffle_all2all",
    "comm",
    "memcpy",
    "write",
    "post_write",
    "not_hidden_sync",
    "close",
    "other",
)


@dataclass
class PhaseProfile:
    """Accumulated seconds per phase for one rank (or an aggregate)."""

    seconds: dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, dt: float) -> None:
        if dt < 0:
            raise ValueError(f"negative duration {dt} for {phase}")
        self.seconds[phase] = self.seconds.get(phase, 0.0) + dt

    def get(self, phase: str) -> float:
        return self.seconds.get(phase, 0.0)

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def merged_with(self, other: "PhaseProfile") -> "PhaseProfile":
        out = PhaseProfile(dict(self.seconds))
        for phase, dt in other.seconds.items():
            out.add(phase, dt)
        return out

    def items(self) -> Iterator[tuple[str, float]]:
        return iter(self.seconds.items())


class Profiler:
    """Per-rank phase timer bound to the simulation clock.

    Usage inside a rank generator::

        with prof.phase("write") as _:
            ...  # not possible with generators; use explicit marks instead

        t0 = prof.mark()
        yield from ...
        prof.lap("write", t0)
    """

    def __init__(self, sim, rank: int):
        self.sim = sim
        self.rank = rank
        self.profile = PhaseProfile()

    def mark(self) -> float:
        return self.sim.now

    def lap(self, phase: str, t0: float) -> float:
        dt = self.sim.now - t0
        # Inlined PhaseProfile.add: lap runs twice per rank per exchange
        # round, so the extra call and the .get() lookup are measurable.
        if dt < 0:
            raise ValueError(f"negative duration {dt} for {phase}")
        seconds = self.profile.seconds
        seconds[phase] = seconds.get(phase, 0.0) + dt
        return dt


def aggregate_max(profiles: list[PhaseProfile]) -> PhaseProfile:
    """Per-phase maximum across ranks — the straggler view the paper plots."""
    out = PhaseProfile()
    for phase in PHASES:
        worst = max((p.get(phase) for p in profiles), default=0.0)
        if worst > 0:
            out.add(phase, worst)
    return out


def aggregate_mean(profiles: list[PhaseProfile]) -> PhaseProfile:
    if not profiles:
        return PhaseProfile()
    out = PhaseProfile()
    for phase in PHASES:
        vals = [p.get(phase) for p in profiles]
        mean = sum(vals) / len(vals)
        if mean > 0:
            out.add(phase, mean)
    return out
