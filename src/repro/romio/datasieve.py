"""Independent strided writes with data sieving (``ADIOI_GEN_WriteStrided``).

When collective buffering is off (``romio_cb_write=disable``) or the access
is not interleaved across ranks, every rank writes its own extents.  Dense
non-contiguous extents are *sieved*: the rank reads an
``ind_wr_buffer_size`` window, patches its pieces into it, and writes the
whole window back — one large I/O instead of many tiny ones, at the cost of
a read-modify-write and exclusive stripe locks over the window (POSIX
semantics).  Windows whose extents fully cover them (or contain a single
extent) skip the read.

Paper correspondence: §III-B — independent writes against cached files,
and the sieving fallback for sparse windows.
"""

from __future__ import annotations

from repro.access import RankAccess
from repro.romio.fd import ADIOFile
from repro.romio.profiling import Profiler


def write_strided(fd: ADIOFile, rank: int, access: RankAccess, prof: Profiler):
    """Generator: one rank's independent strided write; returns bytes written."""
    if access.empty:
        return 0
    sieve = fd.hints.ind_wr_buffer_size
    client = fd.machine.pfs_client(rank)
    written = 0
    pos = access.start_offset
    end = access.end_offset + 1
    while pos < end:
        hi = min(end, pos + sieve)
        ws = access.slice_window(pos, hi)
        if ws.nbytes == 0:
            pos = hi
            continue
        window = hi - pos
        dense = ws.nbytes == window
        if dense or ws.count == 1:
            # No holes (or one extent): write the covered range(s) directly.
            t0 = prof.mark()
            for off, length, buf in zip(ws.offsets, ws.lengths, ws.buffer_starts):
                data = None
                if access.data is not None:
                    data = access.data[int(buf) : int(buf) + int(length)]
                yield from fd.driver.write_contig(fd, rank, int(off), int(length), data)
                written += int(length)
            prof.lap("write", t0)
        else:
            # Sieve: read-modify-write the whole window under a write lock.
            t0 = prof.mark()
            stripes = fd.pfs_file.layout.stripes_covered(pos, window)
            held = []
            try:
                for s in stripes:
                    yield from fd.machine.pfs.locks.acquire(
                        fd.pfs_file.file_id, s, exclusive=True
                    )
                    held.append(s)
                old = yield from client.read(fd.pfs_file, pos, window)
                merged = None
                if access.data is not None:
                    import numpy as np

                    merged = (
                        old
                        if old is not None
                        else np.zeros(window, dtype=np.uint8)
                    )
                    payload = access.payload_for(ws)
                    cursor = 0
                    for off, length in zip(ws.offsets, ws.lengths):
                        o, l = int(off), int(length)
                        merged[o - pos : o - pos + l] = payload[cursor : cursor + l]
                        cursor += l
                yield from client.write(
                    fd.pfs_file, pos, window, data=merged, locking=False
                )
                written += ws.nbytes
                io_stats = getattr(fd.machine, "io_stats", None)
                if io_stats is not None:
                    io_stats["bytes_app"] += ws.nbytes
                    io_stats["bytes_direct"] += ws.nbytes
            finally:
                for s in held:
                    fd.machine.pfs.locks.release(fd.pfs_file.file_id, s, exclusive=True)
            prof.lap("write", t0)
        pos = hi
    return written


def write_contig_independent(fd: ADIOFile, rank: int, offset: int, nbytes: int, data, prof: Profiler):
    """Generator: plain independent contiguous write (``MPI_File_write_at``)."""
    t0 = prof.mark()
    yield from fd.driver.write_contig(fd, rank, offset, nbytes, data)
    prof.lap("write", t0)
    return nbytes


def read_strided(fd: ADIOFile, rank: int, access: RankAccess, prof: Profiler):
    """Generator: independent strided read with data sieving
    (``ADIOI_GEN_ReadStrided``).

    Reads always target the *global* file — the paper does not support reads
    from the cache (Section III-B).  Sparse windows are sieved: one large
    read covers the window and the rank's pieces are gathered from it.
    Returns the assembled flat buffer (``None`` when the file is virtual).

    In ``e10_cache=coherent`` mode the underlying PFS reads take shared
    stripe locks, so extents still in transit from someone's cache block
    until persistent.
    """
    if access.empty:
        return None
    import numpy as np

    sieve = fd.hints.ind_wr_buffer_size
    client = fd.machine.pfs_client(rank)
    coherent = fd.hints.cache_coherent
    out = np.zeros(access.total_bytes, dtype=np.uint8)
    have_data = False
    pos = access.start_offset
    end = access.end_offset + 1
    t0 = prof.mark()
    while pos < end:
        hi = min(end, pos + sieve)
        ws = access.slice_window(pos, hi)
        if ws.nbytes == 0:
            pos = hi
            continue
        window = hi - pos
        dense = ws.nbytes == window
        if dense or ws.count == 1:
            for off, length, buf in zip(ws.offsets, ws.lengths, ws.buffer_starts):
                got = yield from client.read(
                    fd.pfs_file, int(off), int(length), locking=coherent
                )
                if got is not None:
                    out[int(buf) : int(buf) + int(length)] = got
                    have_data = True
        else:
            got = yield from client.read(fd.pfs_file, pos, window, locking=coherent)
            if got is not None:
                for off, length, buf in zip(ws.offsets, ws.lengths, ws.buffer_starts):
                    o, l, b = int(off), int(length), int(buf)
                    out[b : b + l] = got[o - pos : o - pos + l]
                have_data = True
        pos = hi
    prof.lap("other", t0)
    return out if have_data else None
