"""MPI-IO file interface: ``MPI_File_open/write_all/sync/close``.

:class:`MPIIOLayer` is the per-communicator entry point (one per
machine+comm); each rank obtains an :class:`MPIFileHandle` from the
collective :meth:`MPIIOLayer.open`.  All file methods are generators to be
driven from rank processes.

MPI-IO consistency semantics (paper Section III-B) are enforced here: data
written through the cache becomes globally visible (persisted in the PFS)
only after flush-immediate synchronisation completes, after ``sync()``
returns, or after ``close()`` returns.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

import numpy as np

from repro.access import RankAccess
from repro.romio import datasieve, ext2ph
from repro.romio.adio import get_driver
from repro.romio.aggregation import select_aggregators
from repro.romio.fd import ADIOFile
from repro.romio.hints import Hints
from repro.sim.core import SimError


class MPIIOLayer:
    """ROMIO instance bound to a machine and a communicator."""

    def __init__(self, machine, comm, driver: str = "beegfs", exchange_mode: str = "auto"):
        self.machine = machine
        self.comm = comm
        self.driver = get_driver(driver)
        if exchange_mode == "auto":
            exchange_mode = "flow" if comm.size <= 32 else "model"
        if exchange_mode not in ("flow", "model"):
            raise SimError(f"unknown exchange mode {exchange_mode!r}")
        self.exchange_mode = exchange_mode
        self._open_slots: dict[str, list[ADIOFile]] = {}
        self._open_counts: dict[tuple[str, int], int] = {}

    # -- collective open ----------------------------------------------------------
    def open(self, rank: int, path: str, info: Optional[Mapping[str, Any]] = None):
        """Generator: ``MPI_File_open`` (collective).  Returns a handle."""
        gen = self._open_counts.get((path, rank), 0)
        self._open_counts[(path, rank)] = gen + 1
        slots = self._open_slots.setdefault(path, [])
        if len(slots) <= gen:
            hints = Hints.from_info(info)
            aggregators = select_aggregators(
                self.machine.config.num_nodes,
                self.machine.config.procs_per_node,
                hints.cb_nodes,
                spread=hints.cb_config_spread,
            )
            slots.append(
                ADIOFile(
                    self.machine,
                    self.comm,
                    path,
                    hints,
                    self.driver,
                    pfs_file=None,
                    aggregators=aggregators,
                    exchange_mode=self.exchange_mode,
                )
            )
        fd = slots[gen]
        prof = fd.profiler(rank)
        t0 = prof.mark()
        if rank == 0:
            client = self.machine.pfs_client(0)
            if self.machine.pfs.exists(path):
                pfs_file = yield from client.open(path)
            else:
                pfs_file = yield from client.create(
                    path,
                    stripe_size=fd.hints.striping_unit,
                    stripe_count=fd.hints.striping_factor,
                )
            fd.pfs_file = pfs_file
            if self.comm.flat_events:
                yield self.comm.bcast_event(rank, True, root=0, nbytes=64)
            else:
                yield from self.comm.bcast(rank, True, root=0, nbytes=64)
        elif self.comm.flat_events:
            yield self.comm.bcast_event(rank, None, root=0, nbytes=64)
        else:
            yield from self.comm.bcast(rank, None, root=0, nbytes=64)
        if fd.pfs_file is None:  # pragma: no cover - bcast ordering guard
            raise SimError("collective open: file handle missing after bcast")
        cache_wait = self.driver.open_cache(fd, rank)
        if cache_wait is not None:
            yield from cache_wait
        recovery = getattr(self.machine, "recovery", None)
        if fd.recovery_needed is None:
            # First rank to arrive snapshots whether orphaned cache extents
            # exist for this path; every rank then reuses the snapshot, so
            # the recovery barrier below stays symmetric even though replay
            # itself empties the registry.
            fd.recovery_needed = recovery is not None and recovery.has_orphans(path)
        if fd.recovery_needed:
            yield from recovery.replay(fd, rank)
            yield from self.comm.barrier(rank)
        prof.lap("open", t0)
        return MPIFileHandle(self, fd, rank)


class MPIFileHandle:
    """One rank's view of an open MPI file."""

    def __init__(self, layer: MPIIOLayer, fd: ADIOFile, rank: int):
        self.layer = layer
        self.fd = fd
        self.rank = rank
        self.closed = False

    @property
    def prof(self):
        return self.fd.profiler(self.rank)

    @property
    def hints(self) -> Hints:
        return self.fd.hints

    def get_info(self) -> dict[str, str]:
        """``MPI_File_get_info``."""
        return self.fd.hints.to_info()

    # -- writes ---------------------------------------------------------------------
    # The write wrappers validate eagerly and return the worker generator
    # itself (callers drive it with ``yield from``) instead of re-yielding
    # through a trampoline frame: every resume of a parked rank steps one
    # less generator — a measurable slice of full-grid wall time.
    def write_all(self, access: RankAccess):
        """``MPI_File_write_all`` over a flattened file view (generator)."""
        self._check_open()
        return ext2ph.write_strided_coll(self.fd, self.rank, access, self.prof)

    def write_at(self, offset: int, nbytes: int, data: Optional[np.ndarray] = None):
        """Independent contiguous write, ``MPI_File_write_at`` (generator)."""
        self._check_open()
        return datasieve.write_contig_independent(
            self.fd, self.rank, offset, nbytes, data, self.prof
        )

    def write_strided(self, access: RankAccess):
        """Independent strided write, data sieving (generator)."""
        self._check_open()
        return datasieve.write_strided(self.fd, self.rank, access, self.prof)

    # -- reads -----------------------------------------------------------------------
    def read_all(self, access: RankAccess):
        """Generator: ``MPI_File_read_all``.

        Collective semantics (all ranks arrive, all leave together) with the
        data path delegated to sieved independent reads of the global file.
        Reads from the cache are unsupported — exactly the restriction the
        paper states in Section III-B — so two-phase read aggregation (a
        ROMIO feature orthogonal to the paper's contribution) is not
        modelled; with ``e10_cache=coherent``, reads block on extents still
        in transit.
        """
        self._check_open()
        prof = self.prof
        t0 = prof.mark()
        flat_events = self.fd.comm.flat_events
        if flat_events:
            yield self.fd.comm.barrier_event(self.rank)
        else:
            yield from self.fd.comm.barrier(self.rank)
        data = yield from datasieve.read_strided(self.fd, self.rank, access, prof)
        if flat_events:
            yield self.fd.comm.barrier_event(self.rank)
        else:
            yield from self.fd.comm.barrier(self.rank)
        prof.lap("other", t0)
        return data

    def read_strided(self, access: RankAccess):
        """Independent strided read, data sieving (generator)."""
        self._check_open()
        return datasieve.read_strided(self.fd, self.rank, access, self.prof)

    def read_at(self, offset: int, nbytes: int):
        """Generator: independent read — always from the global file (reads
        from the cache are unsupported, paper Section III-B).  In coherent
        mode the read blocks on stripes whose data is still in transit."""
        self._check_open()
        client = self.layer.machine.pfs_client(self.rank)
        coherent = self.fd.hints.cache_coherent
        data = yield from client.read(self.fd.pfs_file, offset, nbytes, locking=coherent)
        return data

    # -- synchronisation ---------------------------------------------------------------
    def sync(self):
        """Generator: ``MPI_File_sync`` (collective) — after it returns, all
        cached data written so far is globally visible."""
        self._check_open()
        prof = self.prof
        t0 = prof.mark()
        flush_wait = self.fd.driver.flush(self.fd, self.rank)
        if flush_wait is not None:
            yield from flush_wait
        if self.fd.comm.flat_events:
            yield self.fd.comm.barrier_event(self.rank)
        else:
            yield from self.fd.comm.barrier(self.rank)
        prof.lap("not_hidden_sync" if self.fd.hints.cache_enabled else "other", t0)

    def close(self):
        """Generator: ``MPI_File_close`` (collective).

        With the cache enabled this is where any synchronisation not hidden
        behind the application's compute phase is paid — charged to the
        ``not_hidden_sync`` profile phase.
        """
        self._check_open()
        prof = self.prof
        t_flush = prof.mark()
        close_wait = self.fd.driver.close_rank(self.fd, self.rank)
        if close_wait is not None:
            yield from close_wait
        if self.fd.hints.cache_enabled:
            prof.lap("not_hidden_sync", t_flush)
        t0 = prof.mark()
        if self.rank == 0:
            client = self.layer.machine.pfs_client(0)
            yield from client.close(self.fd.pfs_file)
        if self.fd.comm.flat_events:
            yield self.fd.comm.barrier_event(self.rank)
        else:
            yield from self.fd.comm.barrier(self.rank)
        phase = "not_hidden_sync" if self.fd.hints.cache_enabled else "close"
        prof.lap(phase, t0)
        self.closed = True
        self.fd.closed_ranks.add(self.rank)

    def _check_open(self) -> None:
        if self.closed:
            raise SimError(f"rank {self.rank}: operation on closed file {self.fd.path}")
