"""The extended two-phase collective write (``ADIOI_Exch_and_write``).

Port of the algorithm the paper describes in Section II-A, step for step:

1. all ranks exchange access-pattern offsets (start/end),
2. the global region is split into file domains over the aggregators,
3. every rank derives which aggregators its data maps to,
4. per round (``collective buffer size`` worth of each domain):
   a dissemination ``MPI_Alltoall`` (who sends how much this round),
   the data exchange (``MPI_Isend``/``Irecv``/``Waitall``),
   aggregator assembly into the collective buffer (memcpy),
   and ``ADIO_WriteContig`` of the covered segments,
5. a final ``MPI_Allreduce`` of error codes (``post_write``).

Two exchange fidelities share this control flow:

* ``flow`` — every message is simulated individually and real payload bytes
  are shuffled and assembled, so the written file is verifiable
  byte-for-byte.  Used at test scale.
* ``model`` — per-round costs are precomputed vectorised over all rounds
  (per-NIC hot-spot bytes, message counts) and charged through
  arrival-synchronised ``timed`` collectives.  Used at the paper's
  512-rank scale where per-message simulation would be prohibitive.

Both preserve the global synchronisation structure: every round begins with
an all-ranks collective, so a slow aggregator (device jitter, cache flush
backlog) stalls everyone — the effect the paper measures as
``shuffle_all2all``/``post_write`` cost.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.access import RankAccess, coverage_in_window
from repro.intervals import IntervalSet
from repro.mpi.collectives import op_max
from repro.romio.fd import ADIOFile, CollectiveCallState
from repro.romio.profiling import Profiler
from repro.sim.core import SimError

_TAG_DATA = 1 << 20  # below the collective tag range, above user tags

# Sentinel return from _rounds_model: the timed ladder's tail slot already
# carried this rank through the step-5 allreduce, so the caller must not
# arrive at it again.  Real byte counts are never negative.
_LADDER_DONE = -1


def is_interleaved(pairs: list[tuple[int, int]]) -> bool:
    """ROMIO's check: any rank's start before the previous rank's end."""
    prev_end = None
    for st, end in pairs:
        if end < st:
            continue  # empty access
        if prev_end is not None and st <= prev_end:
            return True
        prev_end = end if prev_end is None else max(prev_end, end)
    return False


def write_strided_coll(fd: ADIOFile, rank: int, access: RankAccess, prof: Profiler):
    """Generator: ``ADIOI_GEN_WriteStridedColl`` for one rank.

    Returns the number of bytes this rank contributed.
    """
    comm = fd.comm
    call = fd.call_state(rank)
    call.accesses[rank] = access

    # ---- step 1: offset exchange -------------------------------------------------
    t0 = prof.mark()
    if fd.exchange_mode == "flow":
        pairs = yield from comm.allgather(
            rank, (access.start_offset, access.end_offset), nbytes=16
        )
    else:
        cost = comm.costs.small_collective(comm.size, 16)
        if comm.sim.flat:
            yield comm.timed_event(rank, cost, "offset_exch")
        else:
            yield from comm.timed(rank, cost, "offset_exch")
        pairs = None  # derived from the shared call state below
    prof.lap("offset_exch", t0)

    # Every rank computes identical values from identical inputs (as in
    # ROMIO); in simulation the shared call state lets the first arriver
    # compute them once.
    if call.max_end < call.min_st or pairs is not None:
        if pairs is None:
            pairs = [
                (call.accesses[r].start_offset, call.accesses[r].end_offset)
                for r in range(comm.size)
            ]
        call.interleaved = is_interleaved(pairs)
        nonempty = [(s, e) for s, e in pairs if e >= s]
        if nonempty:
            call.min_st = min(s for s, _ in nonempty)
            call.max_end = max(e for _, e in nonempty)

    use_collective = fd.hints.romio_cb_write == "enable" or (
        fd.hints.romio_cb_write == "automatic" and call.interleaved
    )
    if not use_collective:
        from repro.romio import datasieve  # local import to avoid a cycle

        nbytes = yield from datasieve.write_strided(fd, rank, access, prof)
        return nbytes

    if call.max_end < call.min_st:
        return 0

    # ---- step 2: file domains ----------------------------------------------------
    cb = fd.hints.cb_buffer_size
    if call.domains is None:
        call.domains = fd.driver.partition_domains(fd, call.min_st, call.max_end)
        call.ntimes = max(
            (-(-d.size // cb) for d in call.domains if d.size > 0), default=0
        )

    # Aggregators pin their collective buffer for the whole operation
    # (the memory-pressure effect of big cb_buffer_size, paper point (d)).
    node = fd.machine.nodes[comm.node_of(rank)]
    pinned = 0
    if fd.is_aggregator(rank):
        pinned = cb
        node.pin_memory(pinned)

    try:
        if fd.exchange_mode == "flow":
            nbytes = yield from _rounds_flow(fd, rank, access, call, prof)
        else:
            nbytes = yield from _rounds_model(fd, rank, access, call, prof)
    finally:
        if pinned:
            node.unpin_memory(pinned)

    if nbytes == _LADDER_DONE:
        # The timed ladder's tail slot already carried this rank through
        # the post-write allreduce (and its release hook wrote the
        # ``post_write`` lap), so step 5 would double-arrive.  Unpinning
        # above moved from the last-round release to the allreduce release
        # — pin accounting is stats-only and no pins occur in between, so
        # ``peak_pinned_bytes`` is unchanged.
        return access.total_bytes

    # ---- step 5: post-write error exchange ----------------------------------------
    t0 = prof.mark()
    if comm.flat_events:
        yield comm.allreduce_event(rank, 0, op_max, nbytes=4)
    else:
        yield from comm.allreduce(rank, 0, op_max, nbytes=4)
    prof.lap("post_write", t0)
    # MPI semantics: the call reports this rank's own contribution; ``nbytes``
    # (what this rank wrote as an aggregator) only feeds internal accounting.
    fd.pfs_file  # keep the handle alive for linters; aggregate is in the FS stats
    return access.total_bytes


# ---------------------------------------------------------------------------------
# flow fidelity: every message simulated, payload bytes really shuffled
# ---------------------------------------------------------------------------------


def _rounds_flow(fd: ADIOFile, rank: int, access: RankAccess, call, prof: Profiler):
    comm = fd.comm
    cb = fd.hints.cb_buffer_size
    written = 0
    for r in range(call.ntimes):
        # -- dissemination alltoall ------------------------------------------------
        send_sizes = [0] * comm.size
        slices = {}
        for d in call.domains:
            if d.size <= 0:
                continue
            lo = d.start + r * cb
            hi = min(d.end, lo + cb)
            if lo >= hi:
                continue
            ws = access.slice_window(lo, hi)
            if ws.nbytes > 0:
                slices[d.aggregator_rank] = ws
                send_sizes[d.aggregator_rank] = ws.nbytes
        t0 = prof.mark()
        counts = yield from comm.alltoall(rank, send_sizes, per_pair_bytes=16)
        prof.lap("shuffle_all2all", t0)

        # -- data exchange ------------------------------------------------------------
        send_reqs = []
        for dst, ws in slices.items():
            payload = (ws.offsets, ws.lengths, access.payload_for(ws))
            send_reqs.append(comm.isend(rank, dst, _TAG_DATA + r, payload, ws.nbytes))
        recv_reqs = []
        if fd.is_aggregator(rank):
            recv_reqs = [
                comm.irecv(rank, source=src, tag=_TAG_DATA + r)
                for src, c in enumerate(counts)
                if c > 0
            ]
        t0 = prof.mark()
        yield from comm.waitall(recv_reqs + send_reqs)
        prof.lap("comm", t0)

        # -- assembly + write ------------------------------------------------------------
        if fd.is_aggregator(rank) and recv_reqs:
            pieces = [req.result().payload for req in recv_reqs]
            total = sum(int(ls.sum()) for _, ls, _ in pieces)
            if total > 0:
                t0 = prof.mark()
                yield from fd.machine.nodes[comm.node_of(rank)].memcpy(total)
                prof.lap("memcpy", t0)
            segments, seg_data = _assemble(pieces)
            t0 = prof.mark()
            for (s, e), data in zip(segments, seg_data):
                yield from fd.driver.write_contig(fd, rank, s, e - s, data)
                written += e - s
            prof.lap("write", t0)
    return written


def _assemble(
    pieces: list[tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]]
) -> tuple[list[tuple[int, int]], list[Optional[np.ndarray]]]:
    """Merge received (offsets, lengths, payload) pieces into contiguous
    segments with assembled data (None when any contributor was virtual)."""
    cover = IntervalSet()
    for offs, lens, _ in pieces:
        for o, l in zip(offs, lens):
            cover.add(int(o), int(o) + int(l))
    segments = list(cover)
    have_data = all(p[2] is not None for p in pieces) and bool(segments)
    if not have_data:
        return segments, [None] * len(segments)
    buffers = [np.zeros(e - s, dtype=np.uint8) for s, e in segments]
    for offs, lens, payload in pieces:
        pos = 0
        for o, l in zip(offs, lens):
            o, l = int(o), int(l)
            for (s, e), buf in zip(segments, buffers):
                if s <= o and o + l <= e:
                    buf[o - s : o - s + l] = payload[pos : pos + l]
                    break
            else:  # pragma: no cover - assembly invariant
                raise SimError("received extent not inside any merged segment")
            pos += l
    return segments, buffers


# ---------------------------------------------------------------------------------
# model fidelity: vectorised per-round costs, arrival-synchronised charging
# ---------------------------------------------------------------------------------


_MODEL_CACHE_MAX = 64
_MODEL_CACHE_EXTENT_CAP = 64  # per-rank extents; larger patterns skip the memo


def _model_cache_key(fd: ADIOFile, call: CollectiveCallState, cb: int):
    """Translation-normalised content key for the per-round model arrays,
    or ``None`` when the pattern is too large to fingerprint cheaply.

    Every input the cached arrays depend on is in the key: the (shifted)
    per-rank extents and domains, the rank->node map, the aggregator list,
    the collective cost parameters, and the physical node count.  All the
    cached quantities are functions of byte counts inside shifted windows,
    so they are invariant under a common offset translation — patterns
    that differ only by a constant file offset (IOR segments, the per-file
    phases of a run) share one entry, bit for bit.
    """
    comm = fd.comm
    P = comm.size
    base = call.min_st
    sigs = []
    for r in range(P):
        acc = call.accesses.get(r)
        if acc is None or acc.empty:
            # An absent access contributes exactly like an empty one.
            sigs.append(b"")
            continue
        if len(acc) > _MODEL_CACHE_EXTENT_CAP:
            return None
        sigs.append((acc.offsets - base).tobytes() + acc.lengths.tobytes())
    costs = comm.costs
    return (
        P,
        len(fd.aggregators),
        call.ntimes,
        cb,
        len(fd.machine.nodes),
        costs.alpha,
        costs.beta_inv,
        costs.per_message,
        costs.procs_per_node,
        costs.shm_beta_inv,
        fd.machine.config.network.piece_overhead,
        tuple(fd.aggregators),
        tuple(comm.rank_to_node),
        tuple((d.start - base, d.end - base, d.aggregator_rank) for d in call.domains),
        tuple(sigs),
    )


def _prepare_model(fd: ADIOFile, call: CollectiveCallState, cb: int) -> None:
    machine = fd.machine
    key = _model_cache_key(fd, call, cb)
    cache = None
    if key is not None:
        cache = getattr(machine, "_ext2ph_model_cache", None)
        if cache is None:
            cache = machine._ext2ph_model_cache = {}
        profiler = machine.sim.profiler
        hit = cache.get(key)
        if hit is not None:
            if profiler is not None:
                profiler.count("ext2ph.model_cache_hit")
            (
                call.sends,
                call.recv_bytes,
                call.recv_pieces,
                call.shuffle_durations,
                call.alltoall_cost,
                merged_norm,
            ) = hit
            base = call.min_st
            call.merged_cov = (merged_norm[0] + base, merged_norm[1])
            call.prepared = True
            return
        if profiler is not None:
            profiler.count("ext2ph.model_cache_miss")
    comm = fd.comm
    P = comm.size
    naggs = len(fd.aggregators)
    ntimes = call.ntimes
    domains = call.domains
    bounds = np.empty((naggs, ntimes + 1), dtype=np.int64)
    for i, d in enumerate(domains):
        row = d.start + cb * np.arange(ntimes + 1, dtype=np.int64)
        np.clip(row, d.start, max(d.start, d.end), out=row)
        bounds[i] = row
    sends = np.zeros((P, naggs, ntimes), dtype=np.int64)
    pieces = np.zeros((P, naggs, ntimes), dtype=np.int64)
    flat = bounds.ravel()
    for r, acc in call.accesses.items():
        if acc.empty:
            continue
        cum = acc.cum_bytes(flat).reshape(naggs, ntimes + 1)
        sends[r] = np.diff(cum, axis=1)
        cnt = acc.cum_counts(flat).reshape(naggs, ntimes + 1)
        pieces[r] = np.diff(cnt, axis=1)
    call.sends = sends
    call.recv_bytes = sends.sum(axis=0)  # (naggs, ntimes)
    call.recv_pieces = pieces.sum(axis=0)  # (naggs, ntimes)

    node_of = np.array([comm.node_of(r) for r in range(P)], dtype=np.int64)
    agg_node = np.array([comm.node_of(a) for a in fd.aggregators], dtype=np.int64)
    cross = (node_of[:, None] != agg_node[None, :]).astype(np.int64)
    crossed = sends * cross[:, :, None]  # bytes that traverse NICs
    local = sends - crossed  # intra-node bytes (shared-memory transport)
    # Physical node count: a fleet JobView's config is job-sized, but the
    # node arrays below are indexed by physical node ids.
    num_nodes = len(fd.machine.nodes)
    out_node = np.zeros((num_nodes, ntimes))
    np.add.at(out_node, node_of, crossed.sum(axis=1))
    in_node = np.zeros((num_nodes, ntimes))
    np.add.at(in_node, agg_node, crossed.sum(axis=0))
    loop_node = np.zeros((num_nodes, ntimes))
    np.add.at(loop_node, agg_node, local.sum(axis=0))
    hot = np.maximum(out_node.max(axis=0), in_node.max(axis=0)) if ntimes else np.zeros(0)
    loop_hot = loop_node.max(axis=0) if ntimes else np.zeros(0)
    msgs = (sends > 0).sum(axis=1).max(axis=0) if P else np.zeros(ntimes)
    costs = comm.costs
    piece_cost = fd.machine.config.network.piece_overhead
    # Sender-side pack cost: the busiest rank's offset/length pairs this round.
    pack = pieces.sum(axis=1).max(axis=0) * piece_cost if P else np.zeros(ntimes)
    # NIC traffic and shared-memory traffic overlap; the round's exchange
    # lasts as long as the slower of the two at the hottest node.
    call.shuffle_durations = (
        costs.alpha
        + np.maximum(hot * costs.beta_inv, loop_hot * costs.shm_beta_inv)
        + msgs * costs.per_message
        + pack
    )
    call.alltoall_cost = costs.alltoall(P, 16)
    call.coverage()  # precompute merged extents for aggregator writes
    if cache is not None:
        if len(cache) >= _MODEL_CACHE_MAX:
            cache.clear()
        merged = call.merged_cov
        base = call.min_st
        cache[key] = (
            call.sends,
            call.recv_bytes,
            call.recv_pieces,
            call.shuffle_durations,
            call.alltoall_cost,
            (merged[0] - base, merged[1]),
        )
    call.prepared = True


def _rounds_model(fd: ADIOFile, rank: int, access: RankAccess, call, prof: Profiler):
    comm = fd.comm
    cb = fd.hints.cb_buffer_size
    if not call.prepared:
        _prepare_model(fd, call, cb)
    written = 0
    agg_idx = fd.agg_index.get(rank)
    domain = call.domains[agg_idx] if agg_idx is not None else None
    merged = call.merged_cov
    node = fd.machine.nodes[comm.node_of(rank)]
    label = f"c{call.index}"
    sim = fd.machine.sim
    bulk = getattr(fd.machine, "dataplane", "chunked") == "bulk"
    piece_overhead = fd.machine.config.network.piece_overhead
    memcpy_bw = fd.machine.config.ram.memcpy_bw
    flat = sim.flat  # flat engine: yield the release event, skip timed()'s frame
    a2a_label = f"a2a.{label}"
    x_label = f"x.{label}"

    # ---- timed-ladder fast path -------------------------------------------------
    # A rank that takes no per-round action (not an aggregator, or an
    # aggregator whose domain is empty / receives nothing in any round)
    # only marches through the 2·ntimes timed slots.  Pre-register it into
    # all of them at once and park it on the final release event: one
    # resume for the whole round loop instead of 2·ntimes.  Release
    # timestamps, profiler phase totals, and event counts are byte-
    # identical to the round-by-round path (see timed_ladder); the A/B
    # harness proves it against the heapq engine, which keeps this loop.
    if (
        bulk
        and comm.flat_events  # flat engine + model collectives + shared release:
        # the tail slot below is completed by the live ranks' allreduce_event
        and call.ntimes > 0
        and getattr(fd.machine, "faults", None) is None
        and (agg_idx is None or domain.size <= 0 or not call.recv_bytes[agg_idx].any())
    ):
        width = call.ladder_width
        if width is None:
            idle_aggs = sum(
                1
                for i, d in enumerate(call.domains)
                if d.size <= 0 or not call.recv_bytes[i].any()
            )
            width = call.ladder_width = comm.size - len(fd.aggregators) + idle_aggs
        if 0 < width < comm.size:
            steps = call.ladder_steps
            if steps is None:
                steps = call.ladder_steps = []
                for r in range(call.ntimes):
                    steps.append((a2a_label, call.alltoall_cost, "shuffle_all2all"))
                    steps.append((x_label, float(call.shuffle_durations[r]), "comm"))
            # The tail extends the ladder through step 5's error allreduce:
            # the member's arrival value/extra match the live ranks', the
            # fold walks ranks in index order (arrival order irrelevant),
            # and the tail hook writes the ``post_write`` lap — so members
            # park once for the whole call: 2 resumes instead of 3.
            yield comm.timed_ladder(
                rank,
                steps,
                width,
                prof.profile.seconds,
                tail=("allreduce", 0, {"reduce_op": op_max, "nbytes": 4}, "post_write"),
            )
            return _LADDER_DONE

    for r in range(call.ntimes):
        t0 = prof.mark()
        if flat:
            yield comm.timed_event(rank, call.alltoall_cost, a2a_label)
        else:
            yield from comm.timed(rank, call.alltoall_cost, a2a_label)
        prof.lap("shuffle_all2all", t0)
        t0 = prof.mark()
        if flat:
            yield comm.timed_event(rank, float(call.shuffle_durations[r]), x_label)
        else:
            yield from comm.timed(rank, float(call.shuffle_durations[r]), x_label)
        prof.lap("comm", t0)
        if agg_idx is None or domain.size <= 0:
            continue
        recv = int(call.recv_bytes[agg_idx, r])
        if recv <= 0:
            continue
        t0 = prof.mark()
        # Assembly: streaming copy plus the per-piece scatter cost (heap
        # merge + small-extent memcpy inefficiency).
        npieces = int(call.recv_pieces[agg_idx, r])
        if bulk:
            # Both delays are fixed at issue time; charge them as one event
            # landing at the exact chained-addition timestamp (floats are
            # not associative, so the two hops are added separately).
            t_mid = sim.now + npieces * piece_overhead
            yield sim.at(t_mid + recv / memcpy_bw)
        else:
            yield sim.timeout(npieces * piece_overhead)
            yield from node.memcpy(recv)
        prof.lap("memcpy", t0)
        lo = domain.start + r * cb
        hi = min(domain.end, lo + cb)
        t0 = prof.mark()
        for s, e in coverage_in_window(merged[0], merged[1], lo, hi):
            yield from fd.driver.write_contig(fd, rank, s, e - s, None)
            written += e - s
        prof.lap("write", t0)
    return written
