"""ROMIO: the MPI-IO implementation, ported from the paper's description.

The collective write path follows Fig. 2 of the paper exactly:
``MPI_File_write_all`` → ``ADIOI_GEN_WriteStridedColl`` →
``ADIOI_Exch_and_write`` (the extended two-phase algorithm) →
``ADIOI_W_Exchange_data`` per round → ``ADIO_WriteContig`` on aggregators.
The E10 cache extensions (Section III) hook ``ADIOI_GEN_WriteContig``,
``ADIOI_GEN_OpenColl``, ``ADIO_Close`` and ``ADIOI_GEN_Flush``.
"""

from repro.romio.hints import HintError, Hints
from repro.romio.file import MPIIOLayer
from repro.romio.profiling import PhaseProfile, Profiler

__all__ = ["HintError", "Hints", "MPIIOLayer", "PhaseProfile", "Profiler"]
