"""MPI-IO hints: ROMIO's collective-I/O hints (paper Table I) plus the
proposed E10 cache extensions (paper Table II).

Unknown hints are ignored (per the MPI standard, implementations are free
to ignore hints they do not understand); *known* hints with invalid values
raise :class:`HintError`, which is stricter than ROMIO but catches
experiment-configuration typos early.

Paper correspondence: Table I (ROMIO hints) and §III-A (the E10
extensions).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields
from typing import Any, Mapping, Optional

from repro.units import KiB, MiB, parse_size


class HintError(ValueError):
    """An understood hint was given a value outside its domain."""


#: Recognised cache backends (the ``e10_cache_kind`` hint / REPRO_CACHE_KIND
#: values): ``extent`` = sparse file on the scratch SSD (the paper's design),
#: ``nvmm`` = write-ahead log on byte-addressable persistent memory
#: (:mod:`repro.cache.nvmlog`).
CACHE_KINDS = ("extent", "nvmm")


def default_cache_kind() -> str:
    """The REPRO_CACHE_KIND environment selection (default: extent)."""
    kind = os.environ.get("REPRO_CACHE_KIND", "extent")
    if kind not in CACHE_KINDS:
        raise ValueError(
            f"REPRO_CACHE_KIND={kind!r}: expected one of {CACHE_KINDS}"
        )
    return kind


_TRISTATE = ("enable", "disable", "automatic")
_CACHE_MODES = ("enable", "disable", "coherent")
# "flush_none" is an evaluation extension: cache but never synchronise —
# used to measure the theoretical bandwidth (TBW) series of Figs. 4/7/9.
_FLUSH_FLAGS = ("flush_immediate", "flush_onclose", "flush_none")
_ONOFF = ("enable", "disable")


@dataclass
class Hints:
    """Parsed hint set attached to an open file handle.

    Field names follow the hint strings; see the ``from_info`` keys.
    """

    # --- Table I: collective I/O hints -------------------------------------
    romio_cb_write: str = "automatic"
    romio_cb_read: str = "automatic"
    cb_buffer_size: int = 16 * MiB  # ROMIO default
    cb_nodes: Optional[int] = None  # default: one aggregator per node
    cb_config_spread: bool = True  # place aggregators evenly across nodes
    # --- file layout hints ---------------------------------------------------
    striping_factor: Optional[int] = None  # stripe count
    striping_unit: Optional[int] = None  # stripe size [bytes]
    # --- independent I/O -------------------------------------------------------
    ind_wr_buffer_size: int = 512 * KiB  # also the cache sync chunk size
    # --- Table II: proposed E10 cache extensions -----------------------------
    e10_cache: str = "disable"
    e10_cache_path: str = "/scratch"
    e10_cache_flush_flag: str = "flush_onclose"
    e10_cache_discard_flag: str = "enable"
    e10_cache_kind: str = field(default_factory=default_cache_kind)

    unknown: dict[str, str] = field(default_factory=dict)

    # -- derived ----------------------------------------------------------------
    @property
    def cache_enabled(self) -> bool:
        return self.e10_cache in ("enable", "coherent")

    @property
    def cache_coherent(self) -> bool:
        return self.e10_cache == "coherent"

    @property
    def flush_immediate(self) -> bool:
        return self.e10_cache_flush_flag == "flush_immediate"

    @property
    def discard_on_close(self) -> bool:
        return self.e10_cache_discard_flag == "enable"

    # -- parsing -------------------------------------------------------------------
    @classmethod
    def from_info(cls, info: Optional[Mapping[str, Any]] = None) -> "Hints":
        """Build a hint set from an MPI_Info-like mapping of strings."""
        h = cls()
        if not info:
            return h
        for key, raw in info.items():
            value = str(raw)
            if key == "romio_cb_write":
                h.romio_cb_write = _choice(key, value, _TRISTATE)
            elif key == "romio_cb_read":
                h.romio_cb_read = _choice(key, value, _TRISTATE)
            elif key == "cb_buffer_size":
                h.cb_buffer_size = _size(key, value)
            elif key == "cb_nodes":
                h.cb_nodes = _positive_int(key, value)
            elif key == "cb_config_spread":
                h.cb_config_spread = _choice(key, value, _ONOFF) == "enable"
            elif key == "striping_factor":
                h.striping_factor = _positive_int(key, value)
            elif key == "striping_unit":
                h.striping_unit = _size(key, value)
            elif key == "ind_wr_buffer_size":
                h.ind_wr_buffer_size = _size(key, value)
            elif key == "e10_cache":
                h.e10_cache = _choice(key, value, _CACHE_MODES)
            elif key == "e10_cache_path":
                if not value.strip():
                    raise HintError(
                        f"hint e10_cache_path={value!r}: must be a non-empty path"
                    )
                h.e10_cache_path = value
            elif key == "e10_cache_flush_flag":
                h.e10_cache_flush_flag = _choice(key, value, _FLUSH_FLAGS)
            elif key == "e10_cache_discard_flag":
                h.e10_cache_discard_flag = _choice(key, value, _ONOFF)
            elif key == "e10_cache_kind":
                h.e10_cache_kind = _choice(key, value, CACHE_KINDS)
            else:
                h.unknown[key] = value  # MPI says: ignore, but keep for inspection
        return h.validate()

    def validate(self) -> "Hints":
        """Cross-field sanity checks; returns self so calls chain.

        ``from_info`` validates each hint as it parses, but hints objects are
        also built directly by tests and experiment code — this catches
        nonsense values regardless of how the object was constructed.
        """
        if self.cb_buffer_size <= 0:
            raise HintError(
                f"hint cb_buffer_size={self.cb_buffer_size}: must be positive"
            )
        if self.ind_wr_buffer_size <= 0:
            raise HintError(
                f"hint ind_wr_buffer_size={self.ind_wr_buffer_size}: must be positive"
            )
        if self.cb_nodes is not None and self.cb_nodes <= 0:
            raise HintError(f"hint cb_nodes={self.cb_nodes}: must be positive")
        if self.cache_enabled and not self.e10_cache_path.strip():
            raise HintError(
                f"hint e10_cache_path={self.e10_cache_path!r}: must be a "
                "non-empty path when e10_cache is enabled"
            )
        if self.e10_cache_kind not in CACHE_KINDS:
            raise HintError(
                f"hint e10_cache_kind={self.e10_cache_kind!r}: expected one "
                f"of {CACHE_KINDS}"
            )
        return self

    def to_info(self) -> dict[str, str]:
        """Round-trip back to the string form (MPI_File_get_info)."""
        out: dict[str, str] = {}
        for f in fields(self):
            if f.name == "unknown":
                continue
            value = getattr(self, f.name)
            if value is None:
                continue
            if f.name == "cb_config_spread":
                out[f.name] = "enable" if value else "disable"
            else:
                out[f.name] = str(value)
        out.update(self.unknown)
        return out


def _choice(key: str, value: str, allowed: tuple[str, ...]) -> str:
    v = value.strip().lower()
    if v not in allowed:
        raise HintError(f"hint {key}={value!r}: expected one of {allowed}")
    return v


def _size(key: str, value: str) -> int:
    try:
        n = parse_size(value)
    except ValueError as exc:
        raise HintError(f"hint {key}={value!r}: {exc}") from exc
    if n <= 0:
        raise HintError(f"hint {key}={value!r}: must be positive")
    return n


def _positive_int(key: str, value: str) -> int:
    try:
        n = int(value)
    except ValueError as exc:
        raise HintError(f"hint {key}={value!r}: not an integer") from exc
    if n <= 0:
        raise HintError(f"hint {key}={value!r}: must be positive")
    return n
