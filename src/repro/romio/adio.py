"""The Abstract Device I/O (ADIO) driver interface and registry.

ROMIO reaches each file system through an ADIO driver; the paper's cache
layer lives in the generic UFS driver and a BeeGFS driver adds
stripe-aligned file domains (footnote 1).  Driver methods are generators
run inside rank processes.

Paper correspondence: §II background — ROMIO's ADIO layering, the seam
the E10 cache (§III) hooks into.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.cachefile import CacheOpenError, CacheState
from repro.cache.policy import CachePolicy
from repro.romio.aggregation import FileDomain, partition_even, partition_stripe_aligned
from repro.romio.fd import ADIOFile
from repro.sim.core import SimError


class ADIODriver:
    """Base driver: generic behaviour, hook points for FS-specific logic."""

    name = "abstract"

    # ---- file domain partitioning ------------------------------------------------
    def partition_domains(
        self, fd: ADIOFile, min_st: int, max_end: int
    ) -> list[FileDomain]:
        return partition_even(min_st, max_end, fd.aggregators)

    # ---- open (ADIOI_GEN_OpenColl, per rank) -------------------------------------
    def open_cache(self, fd: ADIOFile, rank: int):
        """Open the cache file for an aggregator (if enabled).

        Returns a generator to drive, or ``None`` when there is nothing to
        wait on (most ranks, most configurations) — callers skip the empty
        frame.  'If for any reason the open of the cache file fails, the
        implementation reverts to standard open' — so failures leave the
        rank cache-less rather than erroring.
        """
        if not fd.hints.cache_enabled or not fd.is_aggregator(rank):
            fd.cache_states[rank] = None
            return None
        policy = CachePolicy.from_hints(fd.hints)
        try:
            state = CacheState(fd.machine, rank, fd.pfs_file, policy, fd.comm)
        except CacheOpenError as exc:
            fd.cache_states[rank] = None
            fd.open_error = str(exc)
            return None
        fd.cache_states[rank] = state
        return self._open_cache_wait(fd)

    @staticmethod
    def _open_cache_wait(fd: ADIOFile):
        # Opening the cache file costs one local metadata touch.
        yield fd.machine.sim.timeout(100e-6)

    # ---- contiguous write (ADIOI_GEN_WriteContig / ADIO_WriteContig) -------------
    def write_contig(
        self,
        fd: ADIOFile,
        rank: int,
        offset: int,
        nbytes: int,
        data: Optional[np.ndarray] = None,
    ):
        """Generator: write one contiguous extent.

        Cache enabled: write to the cache file and register a sync request
        (falling back to the direct path if the cache is full).  Cache
        disabled: pipelined striped write to the global file.
        """
        if nbytes <= 0:
            return
        io_stats = getattr(fd.machine, "io_stats", None)
        state = fd.cache_state(rank)
        if state is not None and not state.degraded:
            try:
                yield from state.write_through_cache(offset, nbytes, data)
                if io_stats is not None:
                    io_stats["bytes_app"] += nbytes
                return
            except OSError as exc:
                # ENOSPC on the scratch partition or a lost cache device:
                # degrade — this and subsequent extents go directly to the
                # global file, while extents already cached keep draining
                # through the sync thread (dropping the state here would
                # orphan their generalized requests and hang close).
                state.degrade(str(exc))
        client = fd.machine.pfs_client(rank)
        yield from client.write(fd.pfs_file, offset, nbytes, data=data, locking=self.write_locking(fd))
        if io_stats is not None:
            io_stats["bytes_app"] += nbytes
            io_stats["bytes_direct"] += nbytes

    def write_locking(self, fd: ADIOFile) -> bool:
        """Whether plain writes take stripe extent locks (POSIX-ish FS: yes)."""
        return True

    # ---- flush (ADIOI_GEN_Flush) ---------------------------------------------------
    def flush(self, fd: ADIOFile, rank: int):
        """Complete all outstanding cache synchronisation.

        Returns the cache state's flush generator, or ``None`` when the
        rank holds no cache state (nothing to wait on)."""
        state = fd.cache_state(rank)
        if state is None:
            return None
        return state.flush()

    # ---- close (ADIO_Close, per rank local part) -----------------------------------
    def close_rank(self, fd: ADIOFile, rank: int):
        """Flush + release this rank's cache resources.

        Returns a generator to drive, or ``None`` for cache-less ranks."""
        state = fd.cache_state(rank)
        if state is None:
            return None
        return self._close_rank_gen(fd, rank, state)

    @staticmethod
    def _close_rank_gen(fd: ADIOFile, rank: int, state):
        yield from state.close()
        fd.cache_states[rank] = None


class UFSDriver(ADIODriver):
    """The generic Unix-FS driver: even file domains (no layout knowledge).

    This is where the paper's prototype lives — the hint extensions are
    implemented 'in the ROMIO implementation of the Universal File System
    (UFS) ADIO driver'.
    """

    name = "ufs"


class BeeGFSDriver(ADIODriver):
    """BeeGFS driver: detects striping and aligns file domains to stripes
    (developed in the course of the paper's work, footnote 1)."""

    name = "beegfs"

    def partition_domains(self, fd: ADIOFile, min_st: int, max_end: int):
        stripe = fd.pfs_file.layout.stripe_size
        return partition_stripe_aligned(min_st, max_end, fd.aggregators, stripe)

    def write_locking(self, fd: ADIOFile) -> bool:
        # BeeGFS does not lock byte ranges for plain writes; coherence for
        # cached extents is handled by the cache layer when requested.
        return False


_DRIVERS = {d.name: d for d in (UFSDriver(), BeeGFSDriver())}


def get_driver(name: str) -> ADIODriver:
    try:
        return _DRIVERS[name]
    except KeyError:
        raise SimError(f"unknown ADIO driver {name!r}; have {sorted(_DRIVERS)}") from None
