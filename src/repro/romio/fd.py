"""The ADIO file descriptor shared by all ranks of a collective open.

Mirrors ROMIO's ``ADIO_File``: the global file handle, the parsed hints,
the aggregator list, the driver, and — new in the paper's implementation —
the per-aggregator ``cache_fd`` (here a :class:`~repro.cache.CacheState`).
Per-rank profilers live here too so the experiment harness can pull the
phase breakdown after the run.

``CollectiveCallState`` carries the per-``write_all`` shared scratch space
(every rank's access pattern, the file domains, the precomputed per-round
costs).  Ranks proceed through collective calls in lock-step, so call *n*
of every rank maps to the same state object.

Paper correspondence: §II/§III — the shared descriptor carrying hints,
file views, and per-file cache state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.access import RankAccess, merge_extent_arrays
from repro.cache.cachefile import CacheState
from repro.mpi.comm import Communicator
from repro.romio.aggregation import FileDomain
from repro.romio.hints import Hints
from repro.romio.profiling import Profiler


@dataclass
class CollectiveCallState:
    """Shared scratch for one collective write call (all ranks)."""

    index: int
    accesses: dict[int, RankAccess] = field(default_factory=dict)
    domains: Optional[list[FileDomain]] = None
    ntimes: int = 0
    # model-fidelity precomputations (filled by ext2ph._prepare_model)
    sends: Optional[np.ndarray] = None  # [rank, agg, round] bytes
    shuffle_durations: Optional[np.ndarray] = None  # [round]
    alltoall_cost: float = 0.0
    recv_bytes: Optional[np.ndarray] = None  # [agg, round]
    recv_pieces: Optional[np.ndarray] = None  # [agg, round] offset/length pairs
    merged_cov: Optional[tuple[np.ndarray, np.ndarray]] = None
    # timed-ladder fast path (ext2ph._rounds_model): member count and the
    # shared (label, duration, phase) step sequence, computed once per call
    ladder_width: Optional[int] = None
    ladder_steps: Optional[list[tuple[str, float, str]]] = None
    min_st: int = 0
    max_end: int = -1
    interleaved: bool = True
    prepared: bool = False

    def coverage(self) -> tuple[np.ndarray, np.ndarray]:
        if self.merged_cov is None:
            offs = [a.offsets for a in self.accesses.values()]
            lens = [a.lengths for a in self.accesses.values()]
            self.merged_cov = merge_extent_arrays(offs, lens)
        return self.merged_cov


class ADIOFile:
    """Shared collective state for one open file."""

    def __init__(
        self,
        machine,
        comm: Communicator,
        path: str,
        hints: Hints,
        driver,
        pfs_file,
        aggregators: list[int],
        exchange_mode: str = "model",
    ):
        self.machine = machine
        self.comm = comm
        self.path = path
        self.hints = hints
        self.driver = driver
        self.pfs_file = pfs_file
        self.aggregators = aggregators
        self.agg_index = {a: i for i, a in enumerate(aggregators)}
        self.exchange_mode = exchange_mode
        self.profilers: dict[int, Profiler] = {
            r: Profiler(machine.sim, r) for r in range(comm.size)
        }
        self.cache_states: dict[int, Optional[CacheState]] = {}
        self.cache_enabled_effective = hints.cache_enabled
        self._calls: list[CollectiveCallState] = []
        self._call_index: dict[int, int] = {}  # rank -> next call number
        self.open_error: Optional[str] = None
        self.closed_ranks: set[int] = set()
        # Tri-state crash-recovery snapshot: None until the first rank of the
        # collective open checks the recovery registry; then a bool shared by
        # every rank so the recovery barrier is symmetric.
        self.recovery_needed: Optional[bool] = None

    def is_aggregator(self, rank: int) -> bool:
        return rank in self.agg_index

    def profiler(self, rank: int) -> Profiler:
        return self.profilers[rank]

    def cache_state(self, rank: int) -> Optional[CacheState]:
        return self.cache_states.get(rank)

    def call_state(self, rank: int) -> CollectiveCallState:
        """This rank's next collective-call slot (created on first arrival)."""
        idx = self._call_index.get(rank, 0)
        self._call_index[rank] = idx + 1
        while len(self._calls) <= idx:
            self._calls.append(CollectiveCallState(index=len(self._calls)))
        return self._calls[idx]

    @property
    def node_of_rank(self):
        return self.comm.node_of
