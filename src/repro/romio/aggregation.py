"""Aggregator selection and file-domain partitioning.

Aggregator placement follows ROMIO's ``cb_config_list`` default — at most
one aggregator per node, chosen as the node's lowest rank.  With
``cb_config_spread`` (our default, matching how production sites configure
large clusters) the aggregator nodes are spaced evenly across the machine
so NIC load stays uniform; with it disabled they pack into the first
``cb_nodes`` nodes, ROMIO's literal default order.

File domains are contiguous byte ranges, one per aggregator.  The generic
(UFS) partitioner divides the accessed region evenly; the BeeGFS/Lustre
partitioner aligns domain boundaries to stripe boundaries to avoid stripe
false sharing (footnote 1 of the paper: the BeeGFS ADIO driver developed in
the course of that work does exactly this).

Paper correspondence: §II-A — ``cb_nodes`` selection and file-domain
partitioning, the knobs the §IV sweep varies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class FileDomain:
    """One aggregator's byte range ``[start, end)`` (empty when start >= end)."""

    aggregator_rank: int
    start: int
    end: int

    @property
    def size(self) -> int:
        return max(0, self.end - self.start)


def select_aggregators(
    num_nodes: int,
    procs_per_node: int,
    cb_nodes: Optional[int],
    spread: bool = True,
) -> list[int]:
    """Pick aggregator ranks: one per chosen node, the node's first rank."""
    limit = num_nodes if cb_nodes is None else min(cb_nodes, num_nodes)
    if limit <= 0:
        raise ValueError(f"cb_nodes must be positive, got {cb_nodes}")
    if spread:
        # Evenly spaced node indices, always including node 0.
        nodes = [(i * num_nodes) // limit for i in range(limit)]
    else:
        nodes = list(range(limit))
    return [n * procs_per_node for n in nodes]


def partition_even(
    start: int, end_inclusive: int, aggregators: list[int]
) -> list[FileDomain]:
    """ROMIO's generic equal division of ``[start, end_inclusive]``."""
    total = end_inclusive - start + 1
    if total <= 0:
        return [FileDomain(a, 0, 0) for a in aggregators]
    n = len(aggregators)
    base = total // n
    rem = total % n
    domains = []
    pos = start
    for i, agg in enumerate(aggregators):
        size = base + (1 if i < rem else 0)
        domains.append(FileDomain(agg, pos, pos + size))
        pos += size
    return domains


def partition_stripe_aligned(
    start: int, end_inclusive: int, aggregators: list[int], stripe_size: int
) -> list[FileDomain]:
    """Stripe-aligned division: every boundary is a stripe multiple.

    The first domain's start is the (unaligned) region start; all interior
    boundaries land on stripe multiples so no two aggregators ever touch the
    same stripe — eliminating extent-lock false sharing.
    """
    if stripe_size <= 0:
        raise ValueError(f"stripe_size must be positive, got {stripe_size}")
    total = end_inclusive - start + 1
    if total <= 0:
        return [FileDomain(a, 0, 0) for a in aggregators]
    n = len(aggregators)
    first_stripe = start // stripe_size
    last_stripe = end_inclusive // stripe_size
    nstripes = last_stripe - first_stripe + 1
    base = nstripes // n
    rem = nstripes % n
    domains = []
    stripe_pos = first_stripe
    for i, agg in enumerate(aggregators):
        count = base + (1 if i < rem else 0)
        lo = max(start, stripe_pos * stripe_size)
        hi = min(end_inclusive + 1, (stripe_pos + count) * stripe_size)
        if count == 0:
            domains.append(FileDomain(agg, 0, 0))
        else:
            domains.append(FileDomain(agg, lo, hi))
        stripe_pos += count
    return domains


def domains_are_stripe_aligned(domains: list[FileDomain], stripe_size: int) -> bool:
    """Do no two non-empty domains share a stripe?  (test/diagnostic helper)"""
    seen: dict[int, int] = {}
    for d in domains:
        if d.size <= 0:
            continue
        for stripe in (d.start // stripe_size, (d.end - 1) // stripe_size):
            owner = seen.get(stripe)
            if owner is not None and owner != d.aggregator_rank:
                return False
            seen[stripe] = d.aggregator_rank
    return True
