"""Half-open integer interval sets.

Used wherever the reproduction tracks byte coverage: which extents of a
cache file hold dirty data, which parts of the global file have been
persisted by the sync thread, and which holes remain.  Intervals are
``[start, end)`` pairs kept sorted and coalesced.

Paper correspondence: substrate for the extent arithmetic of §II-A file
domains and §III-B cached-extent tracking.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator


class IntervalSet:
    """A sorted, coalesced set of half-open ``[start, end)`` intervals."""

    __slots__ = ("_starts", "_ends", "_total")

    def __init__(self, intervals: Iterable[tuple[int, int]] = ()):
        self._starts: list[int] = []
        self._ends: list[int] = []
        self._total = 0  # running covered-byte count, kept exact by mutators
        for start, end in intervals:
            self.add(start, end)

    # -- mutation -------------------------------------------------------------
    def add(self, start: int, end: int) -> None:
        """Insert ``[start, end)``, merging any overlapping/adjacent runs."""
        if end < start:
            raise ValueError(f"interval end {end} before start {start}")
        if end == start:
            return
        starts, ends = self._starts, self._ends
        # Tail fast paths: coverage tracking is overwhelmingly sequential
        # (cache extents, sync progress), so most adds land at or beyond the
        # rightmost run — no bisect or insert needed.
        if not starts:
            starts.append(start)
            ends.append(end)
            self._total += end - start
            return
        last_end = ends[-1]
        if start > last_end:  # strictly past the tail: new rightmost run
            starts.append(start)
            ends.append(end)
            self._total += end - start
            return
        if start >= starts[-1]:  # touches/overlaps only the tail run
            if end > last_end:
                ends[-1] = end
                self._total += end - last_end
            return
        # Runs that touch [start, end): first with end >= start, last with start <= end.
        lo = bisect_left(ends, start)
        hi = bisect_right(starts, end)
        if lo < hi:  # merge with runs lo..hi-1
            absorbed = 0
            for i in range(lo, hi):
                absorbed += ends[i] - starts[i]
            start = min(start, starts[lo])
            end = max(end, ends[hi - 1])
            del starts[lo:hi]
            del ends[lo:hi]
            self._total += (end - start) - absorbed
        else:
            self._total += end - start
        starts.insert(lo, start)
        ends.insert(lo, end)

    def remove(self, start: int, end: int) -> None:
        """Delete ``[start, end)`` from the set (splitting runs as needed)."""
        if end < start:
            raise ValueError(f"interval end {end} before start {start}")
        if end == start:
            return
        starts, ends = self._starts, self._ends
        lo = bisect_right(ends, start)
        hi = bisect_left(starts, end)
        if lo >= hi:
            return
        keep: list[tuple[int, int]] = []
        if starts[lo] < start:
            keep.append((starts[lo], start))
        if ends[hi - 1] > end:
            keep.append((end, ends[hi - 1]))
        for i in range(lo, hi):
            self._total -= ends[i] - starts[i]
        del starts[lo:hi]
        del ends[lo:hi]
        for idx, (s, e) in enumerate(keep):
            starts.insert(lo + idx, s)
            ends.insert(lo + idx, e)
            self._total += e - s

    def clear(self) -> None:
        self._starts.clear()
        self._ends.clear()
        self._total = 0

    # -- queries ---------------------------------------------------------------
    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(zip(self._starts, self._ends))

    def __len__(self) -> int:
        return len(self._starts)

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __eq__(self, other) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._starts == other._starts and self._ends == other._ends

    def __repr__(self) -> str:
        runs = ", ".join(f"[{s},{e})" for s, e in self)
        return f"IntervalSet({runs})"

    @property
    def total(self) -> int:
        """Total bytes covered (O(1): maintained by the mutators)."""
        return self._total

    def covers(self, start: int, end: int) -> bool:
        """Is ``[start, end)`` fully contained?"""
        if end <= start:
            return True
        idx = bisect_right(self._starts, start) - 1
        return idx >= 0 and self._ends[idx] >= end

    def overlaps(self, start: int, end: int) -> bool:
        if end <= start:
            return False
        lo = bisect_right(self._ends, start)
        return lo < len(self._starts) and self._starts[lo] < end

    def intersect(self, start: int, end: int) -> "IntervalSet":
        out = IntervalSet()
        lo = bisect_right(self._ends, start)
        for i in range(lo, len(self._starts)):
            s, e = self._starts[i], self._ends[i]
            if s >= end:
                break
            out.add(max(s, start), min(e, end))
        return out

    def gaps(self, start: int, end: int) -> "IntervalSet":
        """The complement of the set within ``[start, end)``."""
        out = IntervalSet()
        pos = start
        for s, e in self:
            if e <= start:
                continue
            if s >= end:
                break
            if s > pos:
                out.add(pos, min(s, end))
            pos = max(pos, e)
            if pos >= end:
                break
        if pos < end:
            out.add(pos, end)
        return out

    def copy(self) -> "IntervalSet":
        new = IntervalSet()
        new._starts = list(self._starts)
        new._ends = list(self._ends)
        new._total = self._total
        return new
