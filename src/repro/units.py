"""Size and time units plus parsing helpers used throughout the library.

All sizes are plain ``int`` bytes and all times are ``float`` seconds; these
constants keep configuration code readable (``4 * MiB`` instead of
``4194304``) and :func:`parse_size` accepts the human-readable strings used
by MPI-IO hint values (e.g. ``"4m"``, ``"512k"``, ``"64MB"``).

Paper correspondence: none (shared constants; the §IV grids are stated
in these units).
"""

from __future__ import annotations

# Binary size units (bytes).
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

# Decimal size units, occasionally used for device datasheet numbers.
KB = 1000
MB = 1000 * KB
GB = 1000 * MB

# Time units (seconds).
USEC = 1e-6
MSEC = 1e-3

_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": KiB,
    "kb": KiB,
    "kib": KiB,
    "m": MiB,
    "mb": MiB,
    "mib": MiB,
    "g": GiB,
    "gb": GiB,
    "gib": GiB,
    "t": TiB,
    "tb": TiB,
    "tib": TiB,
}


def parse_size(value: int | str) -> int:
    """Parse a byte count from an int or a string like ``"4m"`` / ``"512 KiB"``.

    Suffixes are case-insensitive and binary (``k`` = 1024) following the
    ROMIO hint convention.  Raises ``ValueError`` for malformed input or
    negative sizes.
    """
    if isinstance(value, bool):
        raise ValueError(f"not a size: {value!r}")
    if isinstance(value, int):
        if value < 0:
            raise ValueError(f"negative size: {value}")
        return value
    text = str(value).strip().lower().replace(" ", "")
    idx = len(text)
    while idx > 0 and text[idx - 1].isalpha():
        idx -= 1
    num, suffix = text[:idx], text[idx:]
    if suffix not in _SUFFIXES:
        raise ValueError(f"unknown size suffix {suffix!r} in {value!r}")
    if not num:
        raise ValueError(f"missing numeric part in {value!r}")
    try:
        scalar = float(num)
    except ValueError as exc:
        raise ValueError(f"malformed size {value!r}") from exc
    if scalar < 0:
        raise ValueError(f"negative size: {value!r}")
    result = int(round(scalar * _SUFFIXES[suffix]))
    return result


def fmt_size(nbytes: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``fmt_size(4*MiB) == '4.0MiB'``."""
    value = float(nbytes)
    for unit, name in ((TiB, "TiB"), (GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if abs(value) >= unit:
            return f"{value / unit:.1f}{name}"
    return f"{int(value)}B"


def fmt_bw(bytes_per_sec: float) -> str:
    """Render a bandwidth as GiB/s or MiB/s, whichever reads naturally."""
    if bytes_per_sec >= GiB:
        return f"{bytes_per_sec / GiB:.2f} GiB/s"
    return f"{bytes_per_sec / MiB:.1f} MiB/s"
