"""File access patterns: per-rank extent lists.

A :class:`RankAccess` is a rank's flattened file view for one I/O call —
sorted, non-overlapping ``(offset, length)`` extents plus an optional
payload (the flat memory buffer, for data-verification runs).  The two-phase
algorithm spends its time intersecting extents with file-domain windows;
that operation is vectorised here (``searchsorted`` over prefix sums) so
benchmark-scale patterns (millions of extents for coll_perf's 3-D strides)
stay cheap.

``merge_extent_arrays`` computes the union coverage of many ranks' extents
in one vectorised pass — used by the model-fidelity exchange to know which
byte ranges an aggregator must write per round.

Paper correspondence: these are the offset/length lists the extended
two-phase algorithm exchanges in its first step (§II-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class WindowSlice:
    """The part of a rank's access that falls inside a window."""

    offsets: np.ndarray  # file offsets of the sub-extents
    lengths: np.ndarray
    nbytes: int
    count: int
    # byte positions (into the rank's flat buffer) where each sub-extent starts
    buffer_starts: np.ndarray


class RankAccess:
    """One rank's sorted extent list with prefix sums."""

    def __init__(
        self,
        offsets: np.ndarray,
        lengths: np.ndarray,
        data: Optional[np.ndarray] = None,
    ):
        offsets = np.asarray(offsets, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        if offsets.shape != lengths.shape or offsets.ndim != 1:
            raise ValueError("offsets/lengths must be equal-length 1-D arrays")
        if np.any(lengths < 0):
            raise ValueError("negative extent length")
        keep = lengths > 0
        offsets, lengths = offsets[keep], lengths[keep]
        order = np.argsort(offsets, kind="stable")
        self.offsets = offsets[order]
        self.lengths = lengths[order]
        ends = self.offsets + self.lengths
        if len(self.offsets) > 1 and np.any(self.offsets[1:] < ends[:-1]):
            raise ValueError("extents overlap")
        self.ends = ends
        # prefix[i] = bytes in extents [0, i)
        self.prefix = np.concatenate(([0], np.cumsum(self.lengths)))
        self.total_bytes = int(self.prefix[-1])
        if data is not None:
            data = np.asarray(data, dtype=np.uint8)
            if len(data) != self.total_bytes:
                raise ValueError(
                    f"payload is {len(data)} bytes, extents describe {self.total_bytes}"
                )
        self.data = data

    def __len__(self) -> int:
        return len(self.offsets)

    @property
    def empty(self) -> bool:
        return self.total_bytes == 0

    @property
    def start_offset(self) -> int:
        """ROMIO's st_offset (first accessed byte); 0 for an empty access."""
        return int(self.offsets[0]) if len(self.offsets) else 0

    @property
    def end_offset(self) -> int:
        """ROMIO's end_offset (last accessed byte, inclusive); -1 if empty."""
        return int(self.ends[-1]) - 1 if len(self.offsets) else -1

    def bytes_in_window(self, lo: int, hi: int) -> int:
        """Bytes of this access inside ``[lo, hi)`` — O(log n)."""
        if hi <= lo or self.empty:
            return 0
        i = int(np.searchsorted(self.ends, lo, side="right"))
        j = int(np.searchsorted(self.offsets, hi, side="left"))
        if i >= j:
            return 0
        inner = int(self.prefix[j] - self.prefix[i])
        # trim partial overlap at both boundaries
        head = max(0, lo - int(self.offsets[i]))
        tail = max(0, int(self.ends[j - 1]) - hi)
        return inner - head - tail

    def cum_bytes(self, positions: np.ndarray) -> np.ndarray:
        """Vectorised: bytes of this access strictly below each position.

        ``bytes_in_window(a, b) == cum_bytes([b]) - cum_bytes([a])``; used to
        compute every round's per-aggregator send size in one shot.
        """
        pos = np.asarray(positions, dtype=np.int64)
        if self.empty:
            return np.zeros(pos.shape, dtype=np.int64)
        k = np.searchsorted(self.offsets, pos, side="right") - 1
        kc = np.clip(k, 0, None)
        inside = np.clip(pos - self.offsets[kc], 0, self.lengths[kc])
        inside[k < 0] = 0
        return self.prefix[kc] * (k >= 0) + inside

    def cum_counts(self, positions: np.ndarray) -> np.ndarray:
        """Vectorised: number of extents starting strictly below each position.

        Differences approximate per-window piece counts (boundary pieces are
        attributed to the window holding their start), which is what the
        per-piece CPU cost model needs.
        """
        pos = np.asarray(positions, dtype=np.int64)
        if self.empty:
            return np.zeros(pos.shape, dtype=np.int64)
        return np.searchsorted(self.offsets, pos, side="left").astype(np.int64)

    def slice_window(self, lo: int, hi: int) -> WindowSlice:
        """Sub-extents of this access inside ``[lo, hi)`` with buffer mapping."""
        if hi <= lo or self.empty:
            z = np.empty(0, dtype=np.int64)
            return WindowSlice(z, z, 0, 0, z)
        i = int(np.searchsorted(self.ends, lo, side="right"))
        j = int(np.searchsorted(self.offsets, hi, side="left"))
        if i >= j:
            z = np.empty(0, dtype=np.int64)
            return WindowSlice(z, z, 0, 0, z)
        offs = self.offsets[i:j].copy()
        lens = self.lengths[i:j].copy()
        bufs = self.prefix[i:j].copy()
        head = lo - int(offs[0])
        if head > 0:
            offs[0] += head
            lens[0] -= head
            bufs[0] += head
        tail = int(offs[-1] + lens[-1]) - hi
        if tail > 0:
            lens[-1] -= tail
        nbytes = int(lens.sum())
        return WindowSlice(offs, lens, nbytes, int(len(offs)), bufs)

    def payload_for(self, ws: WindowSlice) -> Optional[np.ndarray]:
        """Gather the buffer bytes backing a window slice (None if virtual)."""
        if self.data is None or ws.nbytes == 0:
            return None
        parts = [
            self.data[int(b) : int(b) + int(l)]
            for b, l in zip(ws.buffer_starts, ws.lengths)
        ]
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.uint8)

    @classmethod
    def contiguous(cls, offset: int, nbytes: int, data: Optional[np.ndarray] = None) -> "RankAccess":
        return cls(np.array([offset]), np.array([nbytes]), data)

    @classmethod
    def empty_access(cls) -> "RankAccess":
        z = np.empty(0, dtype=np.int64)
        return cls(z, z)


def merge_extent_arrays(
    offset_arrays: list[np.ndarray], length_arrays: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Union coverage of many extent lists, vectorised.

    Returns merged ``(starts, ends)`` arrays sorted ascending, overlapping
    and adjacent runs coalesced.
    """
    if not offset_arrays:
        z = np.empty(0, dtype=np.int64)
        return z, z
    starts = np.concatenate([np.asarray(a, dtype=np.int64) for a in offset_arrays])
    lengths = np.concatenate([np.asarray(a, dtype=np.int64) for a in length_arrays])
    keep = lengths > 0
    starts, lengths = starts[keep], lengths[keep]
    if len(starts) == 0:
        z = np.empty(0, dtype=np.int64)
        return z, z
    order = np.argsort(starts, kind="stable")
    starts = starts[order]
    ends = starts + lengths[order]
    running_end = np.maximum.accumulate(ends)
    # A new run begins where the start exceeds every previous end.
    breaks = np.empty(len(starts), dtype=bool)
    breaks[0] = True
    breaks[1:] = starts[1:] > running_end[:-1]
    run_starts = starts[breaks]
    # End of each run = max end within the run = running_end at the last
    # element of the run.
    idx = np.flatnonzero(breaks)
    last_of_run = np.concatenate((idx[1:] - 1, [len(starts) - 1]))
    run_ends = running_end[last_of_run]
    return run_starts, run_ends


def coverage_in_window(
    merged_starts: np.ndarray, merged_ends: np.ndarray, lo: int, hi: int
) -> list[tuple[int, int]]:
    """Clip merged coverage runs to ``[lo, hi)`` — the aggregator's write list."""
    if hi <= lo or len(merged_starts) == 0:
        return []
    i = int(np.searchsorted(merged_ends, lo, side="right"))
    j = int(np.searchsorted(merged_starts, hi, side="left"))
    out = []
    for k in range(i, j):
        s = max(int(merged_starts[k]), lo)
        e = min(int(merged_ends[k]), hi)
        if s < e:
            out.append((s, e))
    return out
