"""repro — a simulated-cluster reproduction of
"Improving Collective I/O Performance Using Non-Volatile Memory Devices"
(Congiu, Narasimhamurthy, Süß, Brinkmann — IEEE CLUSTER 2016).

The package provides:

* a discrete-event simulated HPC cluster (:class:`repro.machine.Machine`)
  modelled on the DEEP-ER testbed — nodes with local SSDs and page caches,
  an InfiniBand-like fabric, and a BeeGFS-like parallel file system;
* a simulated MPI layer (:class:`repro.mpi.MPIWorld`) with point-to-point,
  collectives and generalized requests;
* a faithful port of ROMIO's extended two-phase collective write
  (:class:`repro.romio.MPIIOLayer`), extended with the paper's E10
  persistent-cache hints (``e10_cache``, ``e10_cache_path``,
  ``e10_cache_flush_flag``, ``e10_cache_discard_flag``,
  ``ind_wr_buffer_size``);
* the MPIWRAP deferred-close wrapper (:class:`repro.mpiwrap.MPIWrap`);
* the paper's three benchmarks (:mod:`repro.workloads`) and the experiment
  harness regenerating every evaluation figure (:mod:`repro.experiments`).

Quickstart::

    from repro import Machine, MPIWorld, MPIIOLayer, small_testbed
    from repro.access import RankAccess

    machine = Machine(small_testbed())
    world = MPIWorld(machine)
    romio = MPIIOLayer(machine, world.comm)

    def app(ctx):
        fh = yield from romio.open(ctx.rank, "/global/data", {"e10_cache": "enable"})
        yield from fh.write_all(RankAccess.contiguous(ctx.rank * 4096, 4096))
        yield from fh.close()

    world.run(app)

Paper correspondence: the package layers mirror the paper's structure —
ROMIO extensions (§II–III) over a simulated DEEP-ER testbed (§IV); see
ARCHITECTURE.md for the stack tour.
"""

from repro.access import RankAccess
from repro.config import ClusterConfig, deep_er_testbed, small_testbed
from repro.machine import Machine
from repro.mpi.process import MPIContext, MPIWorld
from repro.romio.file import MPIFileHandle, MPIIOLayer
from repro.romio.hints import HintError, Hints

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "HintError",
    "Hints",
    "MPIContext",
    "MPIFileHandle",
    "MPIIOLayer",
    "MPIWorld",
    "Machine",
    "RankAccess",
    "deep_er_testbed",
    "small_testbed",
    "__version__",
]
