"""Cache crash-recovery: journals of persisted-but-unflushed extents.

The paper's argument for an SSD cache over a DRAM one is that cached
collective writes *survive an aggregator crash* and can still be flushed to
the global file afterwards.  This module implements that recovery path:

* every :class:`~repro.cache.cachefile.CacheState` registers a
  :class:`CacheJournal` with the machine-wide :class:`CacheRecoveryRegistry`
  (sharing its ``cached`` interval set and stripe-lock refcounts by
  reference, so the journal is always current at zero bookkeeping cost) and
  unregisters it on a clean close;
* after a crash the journals stay behind — the sim-level stand-in for the
  small amount of per-file metadata a real implementation would persist
  next to the cache file;
* on the next collective ``MPI_File_open`` of the same path,
  :meth:`CacheRecoveryRegistry.replay` runs on the lowest rank of each node
  that holds a journal: it revokes the dead owner's stripe locks (server-side
  lease revocation), reads every *unflushed* extent back from the surviving
  cache file (``cached`` minus ``synced``, at sync-chunk granularity) and
  rewrites it through the synchronous client path.

Replay is idempotent by construction: a sync request that was mid-flight at
crash time may have persisted some chunks already, but rewriting the whole
extent stores identical bytes, so the recovered global file is byte-identical
to a fault-free run.  Transient faults that outlive the crash into the
recovery window (flaky reads, a stalled server tripping the sync-RPC
watchdog) are retried in place with the sync thread's backoff schedule
before the error is allowed to abort the recovering rank.

Paper correspondence: none — recovery semantics the paper leaves open
for its §III cache (journal + replay on next collective open).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.faults.errors import FaultError
from repro.intervals import IntervalSet

#: Retry discipline for replay writes hit by transient faults — the same
#: schedule as :class:`~repro.cache.policy.CachePolicy`'s sync-thread
#: defaults (replay has no per-open policy to read them from).
_RETRY_LIMIT = 4
_BACKOFF_BASE = 2e-3
_BACKOFF_FACTOR = 2.0


@dataclass
class CacheJournal:
    """What one aggregator's cache file would need for crash recovery."""

    path: str  # global file path
    rank: int  # owning aggregator rank (dead after a crash)
    node_id: int  # node holding the cache file
    local_path: str
    local_file: object  # the LocalFile handle (survives a process crash)
    file_id: int  # PFS file id (for lock revocation)
    sync_chunk: int  # ind_wr_buffer_size at write time
    discard_on_close: bool
    cached: IntervalSet = field(default_factory=IntervalSet)  # shared with CacheState
    synced: IntervalSet = field(default_factory=IntervalSet)
    stripe_refs: dict[int, int] = field(default_factory=dict)  # shared (coherent mode)
    # NVMM backend (cache_kind=nvmm): the write-ahead log to replay from
    # instead of the extent file; ``local_file`` is None in that mode.
    wal: Optional[object] = None
    # Set by the injector's crash teardown: the owning process died with
    # this journal still registered.  Replay touches *only* orphaned
    # journals — a restarted job re-registers a live journal for the same
    # path before the replay pass runs, and that one is not recoverable
    # state, it is the new incarnation's working cache.
    orphaned: bool = False

    def unflushed(self) -> list[tuple[int, int]]:
        """Extents written to the cache but not yet persisted globally."""
        out: list[tuple[int, int]] = []
        for start, end in self.cached:
            out.extend(self.synced.gaps(start, end))
        return out

    @property
    def unflushed_bytes(self) -> int:
        return sum(e - s for s, e in self.unflushed())


class CacheRecoveryRegistry:
    """Machine-wide directory of live cache journals + the replay pass."""

    def __init__(self, machine):
        self.machine = machine
        self._journals: list[CacheJournal] = []
        self.bytes_replayed = 0
        self.extents_replayed = 0
        self.files_recovered = 0
        self.recovery_time = 0.0

    # -- bookkeeping (driven by CacheState) --------------------------------------
    def register(self, journal: CacheJournal) -> None:
        self._journals.append(journal)

    def unregister(self, journal: CacheJournal) -> None:
        try:
            self._journals.remove(journal)
        except ValueError:
            pass

    def entries(self, path: Optional[str] = None) -> list[CacheJournal]:
        if path is None:
            return list(self._journals)
        return [j for j in self._journals if j.path == path]

    def has_orphans(self, path: str) -> bool:
        """Does any *orphaned* journal for ``path`` hold unflushed data?"""
        return any(j.orphaned and j.unflushed() for j in self.entries(path))

    # -- the replay pass (run during collective open) ------------------------------
    def replay(self, fd, rank: int):
        """Generator: replay this node's journals for ``fd.path``.

        Runs on the lowest rank of each node (the rank that would own the
        node's cache files); other ranks fall straight through and meet the
        replaying ranks at the barrier the caller places after this.
        """
        cfg = self.machine.config
        if rank % cfg.procs_per_node != 0:
            return
        node_id = self.machine.node_of_rank(rank)
        mine = [
            j for j in self.entries(fd.path) if j.node_id == node_id and j.orphaned
        ]
        if not mine:
            return
        sim = self.machine.sim
        t0 = sim.now
        # Cascade hook: faults armed on "recovery_replay" (a second crash
        # landing while the journal is being replayed) trigger from here.
        injector = getattr(self.machine, "faults", None)
        if injector is not None:
            injector.notify(
                "recovery_replay", job=getattr(self.machine, "job_label", None)
            )
        io_stats = getattr(self.machine, "io_stats", None)
        client = self.machine.pfs_client(rank)
        localfs = self.machine.local_fs[node_id]
        batch_chunks = max(1, cfg.flush_batch_chunks)
        for journal in mine:
            self._revoke_locks(journal)
            wal = journal.wal
            local_file = None
            if wal is None:
                local_file = localfs.open(journal.local_path, create=False)
            try:
                batch = journal.sync_chunk * batch_chunks
                for start, end in journal.unflushed():
                    pos = start
                    attempts = 0
                    while pos < end:
                        blen = min(batch, end - pos)
                        nchunks = math.ceil(blen / journal.sync_chunk)
                        try:
                            if wal is not None:
                                # WAL replay: assemble from durable records
                                # (torn records are CRC-skipped by the log).
                                data = yield from wal.read(pos, blen)
                            else:
                                data = yield from localfs.read(local_file, pos, blen)
                            yield from client.write_sync(
                                fd.pfs_file, pos, blen, data=data, rpc_count=nchunks
                            )
                        except FaultError:
                            # A transient window (flaky reads, a stalled
                            # server tripping the RPC watchdog) can outlive
                            # the crash into recovery.  Retry with the same
                            # backoff discipline as the sync thread —
                            # rewriting is idempotent — and only propagate
                            # once the budget is spent.
                            attempts += 1
                            if attempts <= _RETRY_LIMIT:
                                backoff = _BACKOFF_BASE * (
                                    _BACKOFF_FACTOR ** (attempts - 1)
                                )
                                yield sim.timeout(backoff)
                                continue
                            raise
                        attempts = 0
                        journal.synced.add(pos, pos + blen)
                        self.bytes_replayed += blen
                        if io_stats is not None:
                            io_stats["bytes_replayed"] += blen
                        pos += blen
                    self.extents_replayed += 1
            finally:
                if local_file is not None:
                    localfs.close(local_file)
            if wal is not None:
                if journal.discard_on_close:
                    wal.discard()
            elif journal.discard_on_close and localfs.writable:
                if localfs.exists(journal.local_path):
                    localfs.unlink(journal.local_path)
            self.unregister(journal)
            self.files_recovered += 1
        self.recovery_time += sim.now - t0
        self.machine.tracer.emit(
            sim.now,
            "recovery",
            "replay_done",
            path=fd.path,
            node=node_id,
            files=len(mine),
            bytes=self.bytes_replayed,
        )

    def _revoke_locks(self, journal: CacheJournal) -> None:
        """Release stripe locks the dead owner held over in-transit extents
        (coherent mode) — the server-side analogue of lease revocation."""
        locks = self.machine.pfs.locks
        for stripe in list(journal.stripe_refs):
            locks.release(journal.file_id, stripe, exclusive=True)
        journal.stripe_refs.clear()

    def stats(self) -> dict[str, float]:
        return {
            "bytes_replayed": self.bytes_replayed,
            "extents_replayed": self.extents_replayed,
            "files_recovered": self.files_recovered,
            "recovery_time": self.recovery_time,
        }
