"""Exception taxonomy for injected faults and the robustness machinery.

All injected I/O conditions derive from :class:`FaultError` (an ``OSError``),
so existing fallback paths that catch ``OSError`` — e.g. the ADIO driver's
revert-to-direct-write on cache failure — handle them without modification,
while the sync thread can narrowly catch :class:`FaultError` to drive its
retry/backoff loop.

Paper correspondence: none (fault-injection extension, see
:mod:`repro.faults`).
"""

from __future__ import annotations

from typing import Any


class FaultError(OSError):
    """Base class for injected I/O faults."""


class TransientIOError(FaultError):
    """A retryable device error (media hiccup, dropped request)."""


class DeviceLostError(FaultError):
    """The cache device failed into read-only mode (EROFS semantics).

    SATA/NVMe SSDs characteristically fail *read-only* at end of life: the
    controller refuses new program/erase cycles but already-written blocks
    remain readable.  Modelling device loss this way lets the sync thread
    keep draining persisted extents while new cache writes revert to the
    direct PFS path.
    """


class PFSTimeoutError(FaultError):
    """A synchronous PFS RPC exceeded the client's timeout (server stall)."""


class TornWriteError(FaultError):
    """An NVMM write-ahead-log append failed mid-record (power glitch):
    the partially-written record is present in the log with a bad CRC and
    was never acknowledged to the writer.  The cache layer retries the
    append; recovery replay skips the torn record (see
    :mod:`repro.cache.nvmlog`)."""


class SyncFailedError(OSError):
    """The sync thread exhausted its retry and re-queue budget for an extent."""


class JobAborted(RuntimeError):
    """Carried as the ``cause`` of the :class:`~repro.sim.core.Interrupt`
    thrown into every rank process when an aggregator crash fault fires —
    the simulated analogue of ``mpirun`` tearing the whole job down."""

    def __init__(self, spec: Any):
        super().__init__(f"job aborted by fault {spec!r}")
        self.spec = spec
