"""Declarative, hashable fault descriptions.

A :class:`FaultSpec` is a frozen dataclass so it can sit inside experiment
specs and flow through :func:`dataclasses.asdict` into the result-cache key —
two sweep points that differ only in their fault schedule hash to different
cache records, and identical schedules replay byte-identically from cache.

Triggering is either *clock-driven* (``start``/``duration`` in simulated
seconds) or *event-driven* (``on_event`` + ``delay``): the workload driver
emits named progress events (``write_done:<k>`` after the write phase of
file ``k``), which makes crash points robust against calibration changes —
"crash during the flush of the last file" stays meaningful no matter how
long the write phase takes.

Paper correspondence: none (fault-injection extension, see
:mod:`repro.faults`).
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

#: Recognised fault kinds, and which component each targets:
#:
#: ``ssd_io_error``      transient read errors on node ``target``'s SSD,
#:                       probability ``rate`` per I/O inside the window
#: ``ssd_device_loss``   node ``target``'s SSD goes read-only (EROFS) at the
#:                       trigger; persisted blocks stay readable
#: ``server_stall``      PFS data server ``target`` stops serving for
#:                       ``duration`` seconds (head-of-line blocks a worker)
#: ``link_degrade``      node ``target``'s NIC capacity is scaled by
#:                       ``factor`` for ``duration`` seconds
#: ``aggregator_crash``  every rank process is interrupted (job teardown);
#:                       node-local state — page cache, cache files — survives
#: ``ssd_gc_pressure``   writes on node ``target``'s cache device are
#:                       stretched by ``factor`` for ``duration`` seconds
#:                       (foreground garbage collection competing for the
#:                       dies; never raises — the window only slows writes)
#: ``nvmm_torn_write``   WAL appends on node ``target``'s NVMM region fail
#:                       mid-record with probability ``rate`` inside the
#:                       window, leaving a torn (bad-CRC) record in the log
#:                       that recovery must skip (cache_kind=nvmm only;
#:                       extent-mode caches never append to the WAL, so the
#:                       window is harmless there)
FAULT_KINDS = (
    "ssd_io_error",
    "ssd_device_loss",
    "server_stall",
    "link_degrade",
    "aggregator_crash",
    "ssd_gc_pressure",
    "nvmm_torn_write",
)


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault. Frozen + hashable: usable in sets and cache keys."""

    kind: str
    target: int = 0  # node id, or data-server index for server_stall
    start: float = 0.0  # trigger time (clock-driven specs)
    duration: float = 0.0  # window length; <= 0 means "until the end of time"
    rate: float = 1.0  # per-I/O error probability (ssd_io_error)
    factor: float = 1.0  # capacity multiplier (link_degrade)
    on_event: str = ""  # workload event name; overrides `start` when set
    delay: float = 0.0  # extra seconds after the event before triggering
    # Job addressing (aggregator_crash in a fleet): exactly which job's
    # ranks + daemons the teardown hits.  ``job_index`` names the nth job to
    # *arrive* (register ranks with the injector), ``job`` names a job by
    # its label ("j3").  Both unset = the legacy machine-wide (untagged)
    # registry, i.e. single-job semantics.
    job_index: int = -1  # nth-arriving job (-1 = untargeted)
    job: str = ""  # job label; overrides job_index when set

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.target < 0:
            raise ValueError(f"fault target must be >= 0, got {self.target}")
        if (self.job_index >= 0 or self.job) and self.kind != "aggregator_crash":
            raise ValueError(
                f"{self.kind}: job addressing (job_index/job) only applies to "
                f"aggregator_crash — infra faults act on physical targets"
            )
        if self.start < 0 or self.delay < 0:
            raise ValueError("fault start/delay must be >= 0")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.kind == "link_degrade" and not 0.0 < self.factor:
            raise ValueError(f"link_degrade factor must be > 0, got {self.factor}")
        if self.kind == "ssd_gc_pressure" and self.factor < 1.0:
            raise ValueError(
                f"ssd_gc_pressure factor must be >= 1 (a slowdown), got {self.factor}"
            )

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "FaultSpec":
        return cls(**dict(d))


@dataclass(frozen=True)
class FaultSchedule:
    """The full fault plan for one simulated job.

    ``sync_rpc_timeout`` arms the PFS client's synchronous-RPC watchdog: a
    ``write_sync`` round that exceeds it raises
    :class:`~repro.faults.errors.PFSTimeoutError` into the caller (the sync
    thread retries with backoff).  ``0`` leaves the watchdog off — the
    pre-fault behaviour of waiting forever.
    """

    faults: tuple[FaultSpec, ...] = ()
    sync_rpc_timeout: float = 0.0

    def __post_init__(self):
        # Tolerate lists from callers / JSON round-trips.
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))
        if self.sync_rpc_timeout < 0:
            raise ValueError("sync_rpc_timeout must be >= 0")

    def __bool__(self) -> bool:
        return bool(self.faults) or self.sync_rpc_timeout > 0

    def of_kind(self, kind: str) -> tuple[FaultSpec, ...]:
        return tuple(f for f in self.faults if f.kind == kind)

    def validate(
        self,
        num_nodes: int | None = None,
        num_servers: int | None = None,
        num_ranks: int | None = None,
        job: str | None = None,
        num_files: int | None = None,
        num_jobs: int | None = None,
    ) -> "FaultSchedule":
        """Reject schedules that would mis-execute instead of failing fast.

        Checks (each a clear ``ValueError``, raised before any machine is
        built — the injector's own target checks fire mid-construction and
        surface as :class:`~repro.sim.core.SimError` deep in a run):

        * node/server/rank targets within the given cluster bounds,
        * no duplicate ``ssd_device_loss`` on the same node (the second
          would re-fire on an already read-only device),
        * event-driven specs name a non-empty event,
        * ``write_done:<k>`` anchors point at a write phase the workload
          actually performs (``k < num_files`` — beyond it the trigger
          silently never fires),
        * ``job_index`` addressing stays inside the fleet (``< num_jobs``).

        Event anchors that no workload emits (neither a ``write_done:<k>``
        milestone nor ``recovery_replay``) raise a ``UserWarning`` instead
        of an error: custom drivers may emit custom milestones, but an
        unreachable trigger in a generated schedule is almost certainly a
        typo'd event name.

        Bounds are only enforced for dimensions the caller provides.
        ``job`` (a fleet job label) prefixes every message so a failure in
        a multi-job schedule is attributable.  Returns ``self`` so callers
        can chain it.
        """
        seen_loss: set[int] = set()
        prefix = f"job {job}: " if job is not None else ""
        for i, spec in enumerate(self.faults):
            where = f"{prefix}faults[{i}] ({spec.kind})"
            # Normally unreachable (FaultSpec's own ctor rejects these), but
            # kept so a schedule assembled by any other means fails here too.
            if spec.start < 0 or spec.delay < 0 or spec.duration < 0:
                raise ValueError(
                    f"{where}: negative trigger time or duration "
                    f"(start={spec.start}, delay={spec.delay}, "
                    f"duration={spec.duration})"
                )
            if spec.kind in (
                "ssd_io_error",
                "ssd_device_loss",
                "ssd_gc_pressure",
                "nvmm_torn_write",
            ):
                if num_nodes is not None and spec.target >= num_nodes:
                    raise ValueError(
                        f"{where}: targets node {spec.target}, but the "
                        f"cluster has {num_nodes} nodes"
                    )
            elif spec.kind == "link_degrade":
                if num_nodes is not None and spec.target >= num_nodes:
                    raise ValueError(
                        f"{where}: targets node {spec.target}, but the "
                        f"cluster has {num_nodes} nodes"
                    )
            elif spec.kind == "server_stall":
                if num_servers is not None and spec.target >= num_servers:
                    raise ValueError(
                        f"{where}: targets server {spec.target}, but the "
                        f"PFS has {num_servers} data servers"
                    )
            elif spec.kind == "aggregator_crash":
                if num_ranks is not None and spec.target >= num_ranks:
                    raise ValueError(
                        f"{where}: names rank {spec.target}, but the job "
                        f"has {num_ranks} ranks"
                    )
                if num_jobs is not None and spec.job_index >= num_jobs:
                    raise ValueError(
                        f"{where}: addresses job_index {spec.job_index}, but "
                        f"the fleet admits {num_jobs} jobs"
                    )
            if spec.on_event.startswith("write_done:"):
                try:
                    write_idx = int(spec.on_event.rpartition(":")[2])
                except ValueError:
                    raise ValueError(
                        f"{where}: malformed write milestone "
                        f"{spec.on_event!r} (expected write_done:<int>)"
                    ) from None
                if num_files is not None and write_idx >= num_files:
                    raise ValueError(
                        f"{where}: anchored on {spec.on_event!r}, but the "
                        f"workload writes only {num_files} file(s) — the "
                        f"trigger would silently never fire"
                    )
            elif spec.on_event and spec.on_event != "recovery_replay":
                warnings.warn(
                    f"{where}: event {spec.on_event!r} is not a milestone "
                    f"the phased workload driver emits (write_done:<k> or "
                    f"recovery_replay) — the trigger may be unreachable",
                    stacklevel=2,
                )
            if spec.delay > 0 and not spec.on_event:
                raise ValueError(
                    f"{where}: delay={spec.delay} has no on_event to anchor "
                    f"it — use start= for clock-driven triggers"
                )
            if spec.kind == "ssd_device_loss":
                if spec.target in seen_loss:
                    raise ValueError(
                        f"{where}: duplicate device loss on node "
                        f"{spec.target} — the device is already gone"
                    )
                seen_loss.add(spec.target)
        return self

    def to_dict(self) -> dict[str, Any]:
        return {
            "faults": [f.to_dict() for f in self.faults],
            "sync_rpc_timeout": self.sync_rpc_timeout,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "FaultSchedule":
        return cls(
            faults=tuple(FaultSpec.from_dict(f) for f in d.get("faults", ())),
            sync_rpc_timeout=float(d.get("sync_rpc_timeout", 0.0)),
        )

    @classmethod
    def of(cls, *faults: FaultSpec, sync_rpc_timeout: float = 0.0) -> "FaultSchedule":
        return cls(faults=tuple(faults), sync_rpc_timeout=sync_rpc_timeout)


def schedule_from_dicts(
    faults: Iterable[Mapping[str, Any]], sync_rpc_timeout: float = 0.0
) -> FaultSchedule:
    """Convenience for CLI/JSON callers."""
    return FaultSchedule(
        faults=tuple(FaultSpec.from_dict(f) for f in faults),
        sync_rpc_timeout=sync_rpc_timeout,
    )
