"""Deterministic fault injection and crash recovery (the robustness layer).

See :mod:`repro.faults.spec` for declaring fault schedules,
:mod:`repro.faults.injector` for how they are delivered, and
:mod:`repro.faults.recovery` for the cache crash-recovery journals the
paper's persistence argument rests on.

Paper correspondence: none — this subsystem extends the reproduction
beyond the paper, stress-testing the §III cache under failures.
"""

from repro.faults.errors import (
    DeviceLostError,
    FaultError,
    JobAborted,
    PFSTimeoutError,
    SyncFailedError,
    TransientIOError,
)
from repro.faults.injector import FaultInjector
from repro.faults.recovery import CacheJournal, CacheRecoveryRegistry
from repro.faults.spec import FAULT_KINDS, FaultSchedule, FaultSpec, schedule_from_dicts

__all__ = [
    "FAULT_KINDS",
    "CacheJournal",
    "CacheRecoveryRegistry",
    "DeviceLostError",
    "FaultError",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "JobAborted",
    "PFSTimeoutError",
    "SyncFailedError",
    "TransientIOError",
    "schedule_from_dicts",
]
