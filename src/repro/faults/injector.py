"""The fault injector: wires a :class:`FaultSchedule` into a live machine.

Determinism contract: every probabilistic decision draws from a *named*
:class:`~repro.sim.rng.RngStreams` stream (``faults.ssd.n<node>``), and all
triggering happens through ordinary simulator events, so a fault schedule
produces byte-identical outcomes for a given seed — in-process, across
processes, and under ``--jobs N`` sweep parallelism.

Injection points (each component holds a plain reference to the injector and
calls a narrow hook, so a machine without faults pays one ``is None`` test):

* :meth:`on_device_read` — raised into SSD reads (the sync thread's
  read-back path) as :class:`~repro.faults.errors.TransientIOError`.
* ``ssd_device_loss`` — flips the node's SSD to ``read_only``; the local FS
  turns subsequent writes/fallocates into
  :class:`~repro.faults.errors.DeviceLostError` (EROFS semantics) while
  reads keep working, which is the realistic SSD end-of-life mode and
  exactly what lets the sync thread drain already-cached extents.
* :meth:`server_gate` — yielded inside a data server's RPC service while a
  stall window is open (holding the worker: head-of-line blocking).
* ``link_degrade`` — scales one fabric endpoint's NIC capacity via
  :meth:`~repro.net.fabric.Fabric.set_node_bw_factor` for the window.
* ``aggregator_crash`` — interrupts one registered *job scope*'s rank
  processes (and its sync-thread daemons) with
  :class:`~repro.faults.errors.JobAborted`: the simulated ``mpirun``
  teardown.  Registration is job-scoped (:meth:`register_ranks` with a
  ``job_tag``): a fleet registers each job under its label and the spec's
  ``job``/``job_index`` addressing routes the crash to exactly that job —
  other jobs on the shared machine are untouched except via contention.
  Node-local state — page cache, cache files, the recovery journals —
  survives, because the paper's recovery argument is precisely that a
  *process* crash does not lose SSD contents.
* :meth:`on_device_write` — ``ssd_gc_pressure``: writes on the node's
  flash are stretched by ``factor`` while the window is open (foreground
  GC competing for the dies); a pure slowdown, never an error.
* :meth:`wal_tear_decision` — ``nvmm_torn_write``: a WAL append on the
  node's NVMM region fails mid-record, leaving a physically-present but
  bad-CRC record that recovery replay must skip (``cache_kind=nvmm``).

Paper correspondence: none (fault-injection extension); targets the
§II-B servers, §III cache devices, and §IV fabric.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.errors import JobAborted, TornWriteError, TransientIOError
from repro.faults.spec import FaultSchedule, FaultSpec
from repro.sim.core import Process, SimError


class _FaultState:
    """Runtime state of one scheduled fault (specs are frozen/shared)."""

    __slots__ = ("spec", "active_at")

    def __init__(self, spec: FaultSpec, active_at: Optional[float] = None):
        self.spec = spec
        self.active_at = active_at  # None until (event-)triggered


class _JobEntry:
    """One job's crash-interrupt scope: its rank processes, its background
    daemons, and the recovery registry whose journal descriptors the
    simulated OS closes when the job dies.  The untagged entry (key ``None``)
    is the legacy machine-wide scope of single-job runs."""

    __slots__ = ("ranks", "daemons", "recovery", "crashed")

    def __init__(self):
        self.ranks: list[Process] = []
        self.daemons: list[Process] = []
        self.recovery = None
        self.crashed: Optional[JobAborted] = None


class FaultInjector:
    """Drives one :class:`FaultSchedule` against one :class:`~repro.machine.Machine`."""

    def __init__(self, machine, schedule: FaultSchedule):
        self.machine = machine
        self.sim = machine.sim
        self.rng = machine.rng
        self.tracer = machine.tracer
        self.schedule = schedule
        self.sync_rpc_timeout = float(schedule.sync_rpc_timeout)
        self.crashed: Optional[JobAborted] = None  # the untagged scope's crash
        self.crash_time: Optional[float] = None  # most recent crash teardown
        self.injected = 0  # count of fault effects actually delivered
        # Job-scoped crash registries: tag -> _JobEntry.  Single-job runs
        # register under tag None (the machine-wide legacy scope); a fleet
        # registers each job under its label, so an aggregator_crash tears
        # down exactly one job's ranks and daemons.
        self._jobs: dict[Optional[str], _JobEntry] = {}
        self._arrival_order: dict[str, int] = {}  # tag -> nth-arriving index
        self._ssd_read: dict[int, list[_FaultState]] = {}
        self._gc_pressure: dict[int, list[_FaultState]] = {}
        self._wal_torn: dict[int, list[_FaultState]] = {}
        self._stalls: dict[int, list[_FaultState]] = {}
        self._by_event: dict[str, list[_FaultState]] = {}
        self._wire()

    # -- wiring ----------------------------------------------------------------
    def _wire(self) -> None:
        cfg = self.machine.config
        for spec in self.schedule.faults:
            self._validate_target(spec, cfg)
            state = _FaultState(spec)
            # Scoped bulk-dataplane fallback: attaching the injector to a
            # component is what routes its operations onto the reference
            # per-chunk path (the serve/_io fast paths bail on a non-None
            # injector).  Only the targeted SSD/server loses the fast path;
            # every other component keeps the fused/coalesced plan.  The
            # fast_path flag is cleared too so the scoping is inspectable.
            if spec.kind == "ssd_io_error":
                self._ssd_read.setdefault(spec.target, []).append(state)
                node = self.machine.nodes[spec.target]
                # The "cache device" is whichever medium the node's cache
                # reads come from: the scratch SSD (extent mode) or the
                # NVMM log region (cache_kind=nvmm).  Attach to both; the
                # idle one performs no I/O, so its hooks never fire.
                for dev in (node.ssd, node.nvmm):
                    dev.injector = self
                    dev.fault_node = spec.target
                    dev.fast_path = False
            elif spec.kind == "ssd_gc_pressure":
                self._gc_pressure.setdefault(spec.target, []).append(state)
                ssd = self.machine.nodes[spec.target].ssd
                ssd.injector = self
                ssd.fault_node = spec.target
                ssd.fast_path = False
            elif spec.kind == "nvmm_torn_write":
                # No device flag needed: the write-ahead log consults the
                # injector directly at append time (see NVMMWriteLog).
                self._wal_torn.setdefault(spec.target, []).append(state)
            elif spec.kind == "server_stall":
                self._stalls.setdefault(spec.target, []).append(state)
                server = self.machine.pfs.servers[spec.target]
                server.injector = self
                server.fast_path = False
                server.target.fast_path = False
            if spec.on_event:
                self._by_event.setdefault(spec.on_event, []).append(state)
            elif spec.kind in (
                "ssd_io_error",
                "server_stall",
                "ssd_gc_pressure",
                "nvmm_torn_write",
            ):
                # Window faults need no trigger process: activity inside the
                # window consults the clock.
                state.active_at = spec.start
            else:
                self.sim.process(
                    self._trigger_later(state, spec.start),
                    name=f"fault:{spec.kind}",
                )
        if self.sync_rpc_timeout > 0:
            self.machine.pfs.injector = self

    @staticmethod
    def _validate_target(spec: FaultSpec, cfg) -> None:
        if spec.kind in (
            "ssd_io_error",
            "ssd_device_loss",
            "ssd_gc_pressure",
            "nvmm_torn_write",
        ):
            if spec.target >= cfg.num_nodes:
                raise SimError(
                    f"{spec.kind} targets node {spec.target}, "
                    f"but the cluster has {cfg.num_nodes} nodes"
                )
        elif spec.kind == "server_stall":
            if spec.target >= cfg.pfs.num_data_servers:
                raise SimError(
                    f"server_stall targets server {spec.target}, "
                    f"but the PFS has {cfg.pfs.num_data_servers} data servers"
                )

    # -- registration ----------------------------------------------------------
    def register_ranks(
        self,
        procs: list[Process],
        job_tag: Optional[str] = None,
        recovery=None,
    ) -> None:
        """Adopt a job's rank processes as crash-interrupt targets.

        ``job_tag`` scopes the registration: a fleet registers each job
        under its label so ``aggregator_crash`` routes to exactly that job;
        single-job runs register untagged (``None``), the legacy
        machine-wide scope.  ``recovery`` is the registry whose journal
        descriptors the teardown closes (a fleet job's *private*
        :class:`~repro.faults.recovery.CacheRecoveryRegistry`); when omitted
        it falls back to ``machine.recovery``.

        A new world under the same tag replaces the old, *already-dead* set
        — and re-arms that scope's one-teardown-per-registration guard, so
        a crash spec still pending (e.g. armed on ``recovery_replay``) can
        tear the new incarnation down too.  Cascading crashes and fleet
        restarts are exactly this.  Re-registering while the previous set is
        still alive is an error: the old processes would silently lose crash
        coverage (and with them the daemons wired to their teardown).
        """
        entry = self._jobs.get(job_tag)
        if entry is None:
            entry = _JobEntry()
            self._jobs[job_tag] = entry
        elif any(p.is_alive for p in entry.ranks):
            scope = f"job {job_tag!r}" if job_tag is not None else "the machine"
            raise SimError(
                f"register_ranks: {scope} already has live registered rank "
                f"processes — a second registration would silently drop "
                f"their crash coverage (deregister or let them finish first)"
            )
        if job_tag is not None and job_tag not in self._arrival_order:
            self._arrival_order[job_tag] = len(self._arrival_order)
        entry.ranks = list(procs)
        if recovery is not None:
            entry.recovery = recovery
        entry.crashed = None
        if job_tag is None:
            self.crashed = None

    def deregister_job(self, job_tag: Optional[str]) -> None:
        """Drop a job's crash scope on teardown (its arrival index survives,
        so ``job_index`` addressing stays stable for later specs)."""
        self._jobs.pop(job_tag, None)

    def sync_faults_possible(self, node_id: int) -> bool:
        """Can a :class:`FaultError` reach a sync thread on ``node_id``?

        True when this node's SSD reads can fault or the sync RPC watchdog is
        armed (machine-wide).  Sync threads elsewhere keep the bulk flush
        loop: no exception source exists on their path, so dropping the
        retry scaffolding cannot change semantics.
        """
        return self.sync_rpc_timeout > 0 or node_id in self._ssd_read

    def register_daemon(self, proc: Process, job_tag: Optional[str] = None) -> None:
        """Register a background process (sync thread) that must be torn down
        with its job on a crash.  Daemons catch the Interrupt and die quietly."""
        entry = self._jobs.get(job_tag)
        if entry is None:
            entry = _JobEntry()
            self._jobs[job_tag] = entry
        entry.daemons.append(proc)

    # -- event-driven triggering -------------------------------------------------
    def notify(self, event: str, job: Optional[str] = None) -> None:
        """Workload progress notification (e.g. ``write_done:2``).

        ``job`` is the emitting job's label (``None`` outside a fleet).  An
        untargeted fault armed on the event is consumed by the *first*
        notification, whoever emits it (repeats — all ranks emit the same
        milestone — are no-ops); a job-addressed fault is consumed only by
        a notification from its target job, and stays armed across other
        jobs' identical milestones.
        """
        states = self._by_event.get(event)
        if not states:
            return
        remaining: list[_FaultState] = []
        for state in states:
            spec = state.spec
            if (spec.job or spec.job_index >= 0) and not self._job_matches(
                spec, job
            ):
                remaining.append(state)
                continue
            self.sim.process(
                self._trigger_later(state, spec.delay),
                name=f"fault:{spec.kind}",
            )
        if remaining:
            self._by_event[event] = remaining
        else:
            del self._by_event[event]

    def _job_matches(self, spec: FaultSpec, job_tag: Optional[str]) -> bool:
        if job_tag is None:
            return False
        if spec.job:
            return spec.job == job_tag
        return self._arrival_order.get(job_tag) == spec.job_index

    def _trigger_later(self, state: _FaultState, delay: float):
        yield self.sim.timeout(delay)
        self._activate(state)

    def _activate(self, state: _FaultState) -> None:
        spec = state.spec
        state.active_at = self.sim.now
        if spec.kind == "ssd_device_loss":
            self.injected += 1
            node = self.machine.nodes[spec.target]
            # Losing the cache device means losing whichever medium backs
            # the cache: the scratch SSD and the NVMM log region fail
            # read-only together (same EROFS end-of-life semantics).
            node.ssd.read_only = True
            node.nvmm.read_only = True
            self._emit("ssd_device_loss", node=spec.target)
        elif spec.kind == "link_degrade":
            self.injected += 1
            self.machine.fabric.set_node_bw_factor(spec.target, spec.factor)
            self._emit("link_degrade", node=spec.target, factor=spec.factor)
            if spec.duration > 0:
                self.sim.process(self._restore_link(spec), name="fault:link-restore")
        elif spec.kind == "aggregator_crash":
            self._fire_crash(spec)
        # ssd_io_error / server_stall: the window is now open; the per-I/O
        # hooks do the rest.

    def _restore_link(self, spec: FaultSpec):
        yield self.sim.timeout(spec.duration)
        self.machine.fabric.set_node_bw_factor(spec.target, 1.0)
        self._emit("link_restore", node=spec.target)

    # -- crash -------------------------------------------------------------------
    def _fire_crash(self, spec: FaultSpec) -> None:
        tag: Optional[str] = None
        if spec.job:
            tag = spec.job
        elif spec.job_index >= 0:
            tag = next(
                (
                    t
                    for t, index in self._arrival_order.items()
                    if index == spec.job_index
                ),
                None,
            )
            if tag is None:
                return  # the addressed job never arrived: the crash misses
        entry = self._jobs.get(tag)
        if entry is None or entry.crashed is not None:
            return  # no such scope, or one teardown per registration
        entry.crashed = JobAborted(spec)
        if tag is None:
            self.crashed = entry.crashed
        self.crash_time = self.sim.now
        self.injected += 1
        self._emit("aggregator_crash", target=spec.target, job=tag)
        # The OS closes a dead process's descriptors; without this the
        # recovery pass could never reclaim a replayed cache file's space.
        # The registry is the *job's* (a fleet job journals privately).
        recovery = entry.recovery
        if recovery is None:
            recovery = getattr(self.machine, "recovery", None)
        if recovery is not None:
            for journal in recovery.entries():
                # Every journal still registered at teardown lost its owner:
                # mark it orphaned so the next collective open replays it.
                # (A restart re-registers *live* journals for the same paths
                # before replay runs; those must never be treated as
                # recoverable state.)
                journal.orphaned = True
                if journal.local_file is None:
                    continue  # NVMM WAL journal: no descriptor to close
                fs = self.machine.local_fs[journal.node_id]
                while journal.local_file.open_count > 0:
                    fs.close(journal.local_file)
        for proc in entry.daemons:
            proc.interrupt(entry.crashed)
        for proc in entry.ranks:
            proc.interrupt(entry.crashed)

    # -- per-I/O hooks --------------------------------------------------------------
    def on_device_read(self, device, offset: int, nbytes: int) -> None:
        """Called from :meth:`StorageDevice._io` before servicing a read."""
        node = device.fault_node
        for state in self._ssd_read.get(node, ()):
            if not self._window_open(state):
                continue
            spec = state.spec
            rng = self.rng.stream(f"faults.ssd.n{node}")
            if spec.rate >= 1.0 or rng.random() < spec.rate:
                device.io_errors_injected += 1
                self.injected += 1
                self._emit("ssd_io_error", node=node, offset=offset, nbytes=nbytes)
                raise TransientIOError(
                    f"injected read error on {device.name} "
                    f"[{offset}, {offset + nbytes})"
                )

    def on_device_write(self, device, offset: int, nbytes: int, dt: float) -> float:
        """Called from :meth:`StorageDevice._io` after a write's service time
        is computed: returns *extra stall seconds* (never raises).  This is
        the ``ssd_gc_pressure`` hook — foreground garbage collection on the
        node's flash competing with host writes for the dies."""
        node = device.fault_node
        states = self._gc_pressure.get(node)
        if not states:
            return 0.0
        if device is not self.machine.nodes[node].ssd:
            return 0.0  # GC pressure is a flash phenomenon; NVMM has no GC
        extra = 0.0
        for state in states:
            if self._window_open(state):
                extra += dt * (state.spec.factor - 1.0)
        if extra > 0.0:
            self.injected += 1
            device.injected_stall_time += extra
            self._emit(
                "ssd_gc_pressure", node=node, offset=offset, nbytes=nbytes, stall=extra
            )
        return extra

    def wal_tear_decision(self, node_id: int, offset: int, nbytes: int) -> bool:
        """Should this WAL append tear (``nvmm_torn_write``)?  The log makes
        the call *before* charging device time so it can model the partial
        write + bad-CRC record, then raises
        :class:`~repro.faults.errors.TornWriteError` itself."""
        for state in self._wal_torn.get(node_id, ()):
            if not self._window_open(state):
                continue
            spec = state.spec
            rng = self.rng.stream(f"faults.nvmm.n{node_id}")
            if spec.rate >= 1.0 or rng.random() < spec.rate:
                self.injected += 1
                self._emit(
                    "nvmm_torn_write", node=node_id, offset=offset, nbytes=nbytes
                )
                return True
        return False

    def torn_write_error(self, node_id: int, offset: int, nbytes: int) -> TornWriteError:
        return TornWriteError(
            f"torn WAL append on node {node_id} [{offset}, {offset + nbytes})"
        )

    def server_gate(self, server_id: int):
        """Generator yielded inside a data server's RPC service path: blocks
        (holding the worker) until every open stall window on this server has
        passed.  An unbounded stall parks the RPC forever."""
        while True:
            wait = self._stall_remaining(server_id)
            if wait <= 0:
                return
            self.injected += 1
            self._emit("server_stall_block", server=server_id, wait=wait)
            if wait == float("inf"):
                yield self.sim.event(name=f"stall-forever.s{server_id}")
                return  # pragma: no cover - the event never fires
            yield self.sim.timeout(wait)

    def _stall_remaining(self, server_id: int) -> float:
        now = self.sim.now
        wait = 0.0
        for state in self._stalls.get(server_id, ()):
            if not self._window_open(state):
                continue
            if state.spec.duration <= 0:
                return float("inf")
            wait = max(wait, state.active_at + state.spec.duration - now)
        return wait

    def _window_open(self, state: _FaultState) -> bool:
        if state.active_at is None:
            return False
        now = self.sim.now
        if now < state.active_at:
            return False
        spec = state.spec
        return spec.duration <= 0 or now < state.active_at + spec.duration

    # -- bookkeeping -----------------------------------------------------------------
    def _emit(self, event: str, **detail) -> None:
        self.tracer.emit(self.sim.now, "faults", event, **detail)
