"""IOR: segmented shared-file collective writes.

The paper's configuration: each of the 512 ranks writes one 8 MB block per
segment for 8 segments — a 32 GB shared file.  IOR issues one collective
write per segment; within a segment the blocks are laid out in rank order:

    offset(rank, segment) = segment * (nprocs * block) + rank * block

Paper correspondence: §IV-D — the IOR runs of Figs. 9/10 (8 MB
transfers, segmented layout).
"""

from __future__ import annotations

import numpy as np

from repro.access import RankAccess
from repro.workloads.base import IOStep, Workload


# Dataless IOR patterns are immutable (RankAccess never mutates after
# construction), so identical shapes share one Workload: the per-rank
# extent arrays are built once per shape instead of once per experiment —
# a measurable slice of grid-sweep wall time at 512 ranks.
_WORKLOAD_CACHE: dict[tuple[int, int, int], Workload] = {}
_WORKLOAD_CACHE_MAX = 16


def ior_workload(
    nprocs: int,
    block_bytes: int = 8 * 1024 * 1024,
    segments: int = 8,
    with_data: bool = False,
    seed: int = 0,
) -> Workload:
    """Build the IOR pattern: ``segments`` collective steps of one block each."""
    if block_bytes <= 0 or segments <= 0:
        raise ValueError("block_bytes and segments must be positive")
    cache_key = None
    if not with_data:
        cache_key = (nprocs, block_bytes, segments)
        cached = _WORKLOAD_CACHE.get(cache_key)
        if cached is not None:
            return cached
    seg_bytes = nprocs * block_bytes

    def make_step(segment: int) -> IOStep:
        accesses: dict[int, RankAccess] = {}

        def access_fn(rank: int) -> RankAccess:
            offset = segment * seg_bytes + rank * block_bytes
            if with_data:
                rng = np.random.default_rng((seed * 7 + segment) * 100003 + rank)
                data = rng.integers(0, 256, size=block_bytes, dtype=np.uint8)
                return RankAccess.contiguous(offset, block_bytes, data)
            # Dataless accesses are immutable; one per (segment, rank) —
            # reused across the files of a phased run.
            acc = accesses.get(rank)
            if acc is None:
                acc = accesses[rank] = RankAccess.contiguous(offset, block_bytes, None)
            return acc

        return IOStep.collective(access_fn, label=f"segment{segment}")

    workload = Workload(
        name="ior",
        nprocs=nprocs,
        steps=tuple(make_step(s) for s in range(segments)),
        bytes_per_rank=block_bytes * segments,
        file_size=seg_bytes * segments,
        detail={"block_bytes": block_bytes, "segments": segments},
    )
    if cache_key is not None:
        if len(_WORKLOAD_CACHE) >= _WORKLOAD_CACHE_MAX:
            _WORKLOAD_CACHE.clear()
        _WORKLOAD_CACHE[cache_key] = workload
    return workload
