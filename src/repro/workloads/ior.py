"""IOR: segmented shared-file collective writes.

The paper's configuration: each of the 512 ranks writes one 8 MB block per
segment for 8 segments — a 32 GB shared file.  IOR issues one collective
write per segment; within a segment the blocks are laid out in rank order:

    offset(rank, segment) = segment * (nprocs * block) + rank * block

Paper correspondence: §IV-D — the IOR runs of Figs. 9/10 (8 MB
transfers, segmented layout).
"""

from __future__ import annotations

import numpy as np

from repro.access import RankAccess
from repro.workloads.base import IOStep, Workload


def ior_workload(
    nprocs: int,
    block_bytes: int = 8 * 1024 * 1024,
    segments: int = 8,
    with_data: bool = False,
    seed: int = 0,
) -> Workload:
    """Build the IOR pattern: ``segments`` collective steps of one block each."""
    if block_bytes <= 0 or segments <= 0:
        raise ValueError("block_bytes and segments must be positive")
    seg_bytes = nprocs * block_bytes

    def make_step(segment: int) -> IOStep:
        def access_fn(rank: int) -> RankAccess:
            offset = segment * seg_bytes + rank * block_bytes
            data = None
            if with_data:
                rng = np.random.default_rng((seed * 7 + segment) * 100003 + rank)
                data = rng.integers(0, 256, size=block_bytes, dtype=np.uint8)
            return RankAccess.contiguous(offset, block_bytes, data)

        return IOStep.collective(access_fn, label=f"segment{segment}")

    return Workload(
        name="ior",
        nprocs=nprocs,
        steps=tuple(make_step(s) for s in range(segments)),
        bytes_per_rank=block_bytes * segments,
        file_size=seg_bytes * segments,
        detail={"block_bytes": block_bytes, "segments": segments},
    )
