"""Multi-phase application driver — the paper's Fig. 3 workflows.

An application alternates I/O phases (write one shared file) with compute
phases.  Two workflows:

* **standard** (cache disabled): open → write → close → compute.
* **modified** (cache enabled): open → write → compute, with the close of
  file *k* deferred to just before the open of file *k+1*, so background
  cache synchronisation overlaps the compute phase and ``close`` only pays
  whatever is *not* hidden.

The driver records per-rank, per-phase timings that feed Equations (1)/(2)
(:mod:`repro.analysis.bandwidth`).

Paper correspondence: Fig. 3 — the write/compute/write workflow whose
overlap the cache exploits; drives every §IV measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.mpi.process import MPIContext
from repro.workloads.base import Workload


@dataclass
class PhaseTiming:
    """One rank's timings for one file phase (seconds)."""

    open_time: float = 0.0
    write_time: float = 0.0
    close_wait: float = 0.0
    compute_time: float = 0.0

    @property
    def io_time(self) -> float:
        """Eq. (1) denominator contribution: T_c(k) + max(0, T_s - C)."""
        return self.open_time + self.write_time + self.close_wait


def multi_phase_body(
    layer,
    workload: Workload,
    hints: dict,
    num_files: int = 4,
    compute_delay: float = 30.0,
    deferred_close: bool = False,
    file_prefix: str = "/global/out_",
    wrapper=None,
) -> Callable[[MPIContext], object]:
    """Build the per-rank generator body for a phased run.

    When ``wrapper`` (an :class:`~repro.mpiwrap.MPIWrap`) is given, opens
    and closes go through it and ``deferred_close`` is taken from its
    config (the legacy-application path); otherwise the body itself
    implements the modified workflow when ``deferred_close`` is set.
    """

    def body(ctx: MPIContext):
        timings: list[PhaseTiming] = []
        prev_handle = None
        for k in range(num_files):
            path = f"{file_prefix}{k}"
            if prev_handle is not None:
                t0 = ctx.now
                yield from prev_handle.close()
                timings[-1].close_wait = ctx.now - t0
                prev_handle = None
            t0 = ctx.now
            if wrapper is not None:
                fh = yield from wrapper.file_open(ctx.rank, path, hints)
            else:
                fh = yield from layer.open(ctx.rank, path, hints)
            timing = PhaseTiming(open_time=ctx.now - t0)
            t0 = ctx.now
            for step in workload.steps:
                if step.kind == "collective":
                    acc = step.access_fn(ctx.rank)
                    yield from fh.write_all(acc)
                elif step.kind == "rank0":
                    if ctx.rank == 0:
                        yield from fh.write_at(step.offset, step.nbytes)
                else:  # pragma: no cover - recipe construction guards this
                    raise ValueError(f"unknown step kind {step.kind!r}")
            timing.write_time = ctx.now - t0
            faults = getattr(ctx.machine, "faults", None)
            if faults is not None:
                # Milestone for event-triggered faults (e.g. an aggregator
                # crash "just after writing file k").  First arrival fires
                # untargeted specs; job-addressed specs (fleet crash
                # routing) only consume their own job's milestone.
                faults.notify(
                    f"write_done:{k}",
                    job=getattr(ctx.machine, "job_label", None),
                )
            timings.append(timing)
            if wrapper is not None:
                t0 = ctx.now
                yield from fh.close()  # may be deferred by the wrapper
                timing.close_wait = ctx.now - t0
            elif deferred_close:
                prev_handle = fh
            else:
                t0 = ctx.now
                yield from fh.close()
                timing.close_wait = ctx.now - t0
            if k < num_files - 1:
                # Compute phases sit *between* I/O phases; there is nothing
                # after the last write to hide its synchronisation behind
                # (the paper's C(k+1) = 0 for the final phase).
                t0 = ctx.now
                yield from ctx.compute(compute_delay)
                timing.compute_time = ctx.now - t0
        if prev_handle is not None:
            t0 = ctx.now
            yield from prev_handle.close()
            timings[-1].close_wait = ctx.now - t0
        if wrapper is not None:
            t0 = ctx.now
            yield from wrapper.finalize(ctx.rank)
            timings[-1].close_wait += ctx.now - t0
        return timings

    return body
