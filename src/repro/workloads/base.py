"""Workload step/recipe types shared by all three benchmarks.

Paper correspondence: §IV — the common shape of the three evaluated
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.access import RankAccess

AccessFn = Callable[[int], RankAccess]


@dataclass(frozen=True)
class IOStep:
    """One I/O operation inside a file phase.

    ``collective`` steps provide ``access_fn(rank)``; ``rank0`` steps are
    small independent metadata writes (headers/attributes) from rank 0 only,
    as HDF5 produces.
    """

    kind: str  # "collective" | "rank0"
    label: str = ""
    access_fn: Optional[AccessFn] = None
    offset: int = 0
    nbytes: int = 0

    @staticmethod
    def collective(access_fn: AccessFn, label: str = "") -> "IOStep":
        return IOStep(kind="collective", label=label, access_fn=access_fn)

    @staticmethod
    def rank0(offset: int, nbytes: int, label: str = "") -> "IOStep":
        return IOStep(kind="rank0", label=label, offset=offset, nbytes=nbytes)


@dataclass(frozen=True)
class Workload:
    """A named recipe: the per-file steps plus bookkeeping totals."""

    name: str
    nprocs: int
    steps: tuple[IOStep, ...]
    bytes_per_rank: int
    file_size: int
    detail: dict = field(default_factory=dict)

    def total_bytes(self) -> int:
        return self.file_size
