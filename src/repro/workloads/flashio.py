"""Flash-IO: the I/O kernel of the FLASH adaptive-mesh hydrodynamics code.

The checkpoint file (HDF5 in the original) stores each of the 24 unknowns
as a separate dataset of shape ``[total_blocks, nzb, nyb, nxb]`` written
with one collective call per variable; process *p* owns blocks
``[p*blocks_per_proc, (p+1)*blocks_per_proc)``, so each rank's piece of a
dataset is one contiguous extent in rank order.  The paper's configuration:
16 zones per direction, 80 blocks/process, 24 double-precision unknowns —
768 KiB per process per block and a checkpoint slightly over 30 GB, plus a
small HDF5 header/attribute region written by rank 0 per dataset.

The two plot files (with and without corner data) store a subset of
variables in single precision; the checkpoint dominates the I/O time, as in
the paper.

Paper correspondence: §IV-C — Flash-IO checkpoint writes (Figs. 7/8).
"""

from __future__ import annotations

import numpy as np

from repro.access import RankAccess
from repro.workloads.base import IOStep, Workload

HEADER_BYTES = 16 * 1024  # HDF5 superblock + tree metadata per dataset


def flashio_workload(
    nprocs: int,
    blocks_per_proc: int = 80,
    zones_per_dim: int = 16,
    num_unknowns: int = 24,
    elem_size: int = 8,
    with_data: bool = False,
    seed: int = 0,
    kind: str = "checkpoint",
) -> Workload:
    """Build one Flash-IO file recipe.

    ``kind`` selects the file: ``checkpoint`` (24 vars, double precision),
    ``plot`` (4 vars, single precision) or ``plot_corners`` (4 vars, single
    precision, zones+1 per direction).
    """
    if kind == "checkpoint":
        nvars, esize, zpd = num_unknowns, elem_size, zones_per_dim
    elif kind == "plot":
        nvars, esize, zpd = 4, 4, zones_per_dim
    elif kind == "plot_corners":
        nvars, esize, zpd = 4, 4, zones_per_dim + 1
    else:
        raise ValueError(f"unknown Flash-IO file kind {kind!r}")
    zones = zpd**3
    per_proc_per_var = blocks_per_proc * zones * esize
    dataset_bytes = per_proc_per_var * nprocs
    steps: list[IOStep] = []
    file_pos = 0
    for var in range(nvars):
        # HDF5 header / b-tree metadata: a small rank-0 write per dataset.
        steps.append(IOStep.rank0(file_pos, HEADER_BYTES, label=f"hdr{var}"))
        file_pos += HEADER_BYTES
        base = file_pos

        def make_access(base_offset: int, var_index: int):
            def access_fn(rank: int) -> RankAccess:
                offset = base_offset + rank * per_proc_per_var
                data = None
                if with_data:
                    rng = np.random.default_rng(
                        (seed * 31 + var_index) * 100003 + rank
                    )
                    data = rng.integers(0, 256, size=per_proc_per_var, dtype=np.uint8)
                return RankAccess.contiguous(offset, per_proc_per_var, data)

            return access_fn

        steps.append(IOStep.collective(make_access(base, var), label=f"unk{var:02d}"))
        file_pos += dataset_bytes
    return Workload(
        name=f"flash_io_{kind}",
        nprocs=nprocs,
        steps=tuple(steps),
        bytes_per_rank=per_proc_per_var * nvars,
        file_size=file_pos,
        detail={
            "kind": kind,
            "vars": nvars,
            "zones_per_dim": zpd,
            "blocks_per_proc": blocks_per_proc,
            "elem_size": esize,
        },
    )
