"""coll_perf: the MPICH collective-I/O benchmark.

A tridimensional array is block-distributed over a 3-D process grid; every
process writes its block to a shared file holding the array flattened in
row-major order.  A block is contiguous only along the innermost (z) axis,
so each rank's file view is a large set of small strided extents — the
classic "small I/O problem" pattern of Section I.

The paper's configuration: 512 processes (8×8×8 grid), 64 MB block per
process, 32 GB file.  With 8-byte elements that is a 128×256×256-element
block of a 1024×2048×2048 global array; each rank contributes 128×256 =
32768 extents of 2 KB.
"""

from __future__ import annotations

import numpy as np

from repro.access import RankAccess
from repro.workloads.base import IOStep, Workload


def _grid_dims(nprocs: int) -> tuple[int, int, int]:
    """Near-cubic 3-D factorisation of the process count (MPI_Dims_create)."""
    dims = [1, 1, 1]
    n = nprocs
    fac = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            fac.append(d)
            n //= d
        d += 1
    if n > 1:
        fac.append(n)
    for f in sorted(fac, reverse=True):
        dims[dims.index(min(dims))] *= f
    return tuple(sorted(dims, reverse=True))  # type: ignore[return-value]


def collperf_workload(
    nprocs: int,
    block_bytes: int = 64 * 1024 * 1024,
    elem_size: int = 8,
    with_data: bool = False,
    seed: int = 0,
) -> Workload:
    """Build the coll_perf pattern for ``nprocs`` ranks.

    ``block_bytes`` is the per-process block (64 MB in the paper).  The
    block shape keeps the innermost run at 256 elements when possible so the
    extent granularity matches the paper's configuration; smaller test
    blocks degrade gracefully to near-cubic shapes.

    ``with_data`` attaches deterministic payload bytes for verification runs
    (only sensible at test scale).
    """
    px, py, pz = _grid_dims(nprocs)
    elems = block_bytes // elem_size
    if elems * elem_size != block_bytes:
        raise ValueError(f"block_bytes {block_bytes} not a multiple of elem_size")
    # Choose a block shape bz <= 256 (the contiguous run), then near-square x/y.
    bz = min(256, elems)
    while elems % bz:
        bz //= 2
    rest = elems // bz
    by = int(np.sqrt(rest))
    while rest % by:
        by -= 1
    bx = rest // by
    NX, NY, NZ = bx * px, by * py, bz * pz

    def access_fn(rank: int) -> RankAccess:
        # Process coordinates in the grid (row-major rank ordering).
        cx = rank // (py * pz)
        cy = (rank // pz) % py
        cz = rank % pz
        x0, y0, z0 = cx * bx, cy * by, cz * bz
        xs = np.arange(x0, x0 + bx, dtype=np.int64)
        ys = np.arange(y0, y0 + by, dtype=np.int64)
        # offset(x, y) = ((x * NY + y) * NZ + z0) * elem_size
        offs = ((xs[:, None] * NY + ys[None, :]) * NZ + z0) * elem_size
        offs = offs.ravel()
        lens = np.full(offs.shape, bz * elem_size, dtype=np.int64)
        data = None
        if with_data:
            rng = np.random.default_rng(seed * 100003 + rank)
            data = rng.integers(0, 256, size=block_bytes, dtype=np.uint8)
        return RankAccess(offs, lens, data)

    return Workload(
        name="coll_perf",
        nprocs=nprocs,
        steps=(IOStep.collective(access_fn, label="3d-array"),),
        bytes_per_rank=block_bytes,
        file_size=block_bytes * nprocs,
        detail={
            "grid": (px, py, pz),
            "block": (bx, by, bz),
            "array": (NX, NY, NZ),
            "elem_size": elem_size,
        },
    )
