"""Benchmark workload generators: coll_perf, Flash-IO, IOR.

A workload is a recipe of per-file I/O steps; each step maps a rank to the
:class:`~repro.access.RankAccess` it passes to ``MPI_File_write_all`` (or a
small independent metadata write).  These reproduce the exact file access
patterns of the three benchmarks the paper evaluates (Section IV).
"""

from repro.workloads.base import IOStep, Workload
from repro.workloads.collperf import collperf_workload
from repro.workloads.flashio import flashio_workload
from repro.workloads.ior import ior_workload

__all__ = [
    "IOStep",
    "Workload",
    "collperf_workload",
    "flashio_workload",
    "ior_workload",
]
