"""Data-plane fidelity selection (``REPRO_DATAPLANE``).

Two byte-identical execution strategies for the simulated I/O data plane
(see docs/PERFORMANCE.md, "Bulk-transfer fast path"):

* ``bulk`` (the default) — device operations whose duration is fully
  determined at issue time are charged as a single timeout instead of a
  queue-grant/timeout round trip, collective releases share one event
  instead of one per rank, the sync thread's flush loop runs without the
  per-chunk retry scaffolding, and same-instant same-endpoint stripe-run
  flows are coalesced into weighted fabric flows.
* ``chunked`` — the reference path: every grant, release and chunk is its
  own kernel event.  Kept selectable for differential testing.  Under a
  :class:`~repro.faults.spec.FaultSchedule` the fallback is *scoped*: only
  components with an attached injector (the targeted SSD, the stalled
  server, sync threads a fault source can reach) take the chunked path, so
  retry/backoff/requeue semantics are untouched while everything else keeps
  the fast path (see :class:`~repro.faults.injector.FaultInjector`).

Every simulated quantity — timestamps, bandwidths, breakdowns, bytes —
must be identical between the two; only the diagnostic ``events`` count
may differ.  ``benchmarks/bench_engine.py`` asserts this on the IOR grid
(``BENCH_dataplane.json``).
"""

from __future__ import annotations

import os

DATAPLANE_KINDS = ("bulk", "chunked")


def default_dataplane_kind() -> str:
    """Data-plane selection: ``REPRO_DATAPLANE`` env var, default bulk."""
    kind = os.environ.get("REPRO_DATAPLANE", "bulk")
    if kind not in DATAPLANE_KINDS:
        raise ValueError(
            f"unknown REPRO_DATAPLANE {kind!r} (expected one of {DATAPLANE_KINDS})"
        )
    return kind
