"""The node-local scratch file system (``/scratch`` in the paper).

Models exactly what the E10 cache layer needs from ext4:

* a namespace (create/open/unlink) with capacity accounting against the
  30 GB partition,
* ``fallocate`` — instant extent reservation (the fast path
  ``ADIOI_Cache_alloc`` relies on) versus ``write_zeros`` fallback for file
  systems without it (charged at device speed, reproducing footnote 2 of
  the paper),
* buffered writes through the node's page cache with dirty throttling,
* reads at SSD read speed (the sync thread's read-back path), and
* ``fsync`` draining dirty pages.

Data contents are stored sparsely per file as ``(offset, ndarray)`` extents
when real payloads are supplied, so tests can verify cache-file contents
byte-for-byte; virtual (payload-free) writes only account sizes.

Paper correspondence: §IV-A ``/scratch`` behaviour — page-cache
absorption then device-speed writeback, as the cache layer (§III)
experiences it.
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from repro.faults.errors import DeviceLostError
from repro.hw.node import ComputeNode
from repro.intervals import IntervalSet
from repro.sim.core import Event, SimError


class ENOSPC(OSError):
    """Local partition out of space."""


class LocalFile:
    """An open file on the local FS."""

    _ids = itertools.count(1)

    def __init__(self, fs: "LocalFileSystem", path: str):
        self.fs = fs
        self.path = path
        self.file_id = next(LocalFile._ids)
        self.size = 0
        # Space is charged per covered byte range (files may be sparse: the
        # E10 cache stores extents at their global-file offsets).
        self.space = IntervalSet()
        # Verification extents in write order (overlaps overlay temporally).
        self.extents: list[tuple[int, np.ndarray]] = []
        self.open_count = 1
        self.unlinked = False

    @property
    def allocated(self) -> int:
        return self.space.total

    def data_image(self) -> np.ndarray:
        """Materialise the file contents (zero-filled holes) — test helper."""
        img = np.zeros(self.size, dtype=np.uint8)
        for off, arr in self.extents:
            img[off : off + len(arr)] = arr
        return img


class LocalFileSystem:
    """One node's scratch FS: namespace + capacity + timed I/O paths."""

    def __init__(self, node: ComputeNode, supports_fallocate: bool = True):
        self.node = node
        self.sim = node.sim
        self.supports_fallocate = supports_fallocate
        self.capacity = node.ssd.capacity_bytes
        self.used = 0
        self._files: dict[str, LocalFile] = {}

    @property
    def writable(self) -> bool:
        """False once the backing SSD has failed read-only (EROFS): no new
        data or namespace mutations, but existing blocks stay readable."""
        return not self.node.ssd.read_only

    def _check_writable(self) -> None:
        if self.node.ssd.read_only:
            raise DeviceLostError(
                f"scratch device on node {self.node.node_id} is read-only (EROFS)"
            )

    # -- namespace -------------------------------------------------------------
    def open(self, path: str, create: bool = True) -> LocalFile:
        f = self._files.get(path)
        if f is None:
            if not create:
                raise FileNotFoundError(path)
            f = LocalFile(self, path)
            self._files[path] = f
        else:
            f.open_count += 1
        return f

    def exists(self, path: str) -> bool:
        return path in self._files

    def close(self, f: LocalFile) -> None:
        f.open_count -= 1
        if f.open_count <= 0 and f.unlinked:
            self._reclaim(f)

    def unlink(self, path: str) -> None:
        f = self._files.get(path)
        if f is None:
            raise FileNotFoundError(path)
        f.unlinked = True
        del self._files[path]
        if f.open_count <= 0:
            self._reclaim(f)

    def _reclaim(self, f: LocalFile) -> None:
        self.used -= f.space.total
        f.space.clear()
        f.extents.clear()

    # -- allocation ---------------------------------------------------------------
    def fallocate(self, f: LocalFile, offset: int, nbytes: int):
        """Generator: reserve ``[offset, offset+nbytes)``.  Instant when
        supported; otherwise the implementation 'physically writes zeros to
        the file' (paper, footnote 2).
        """
        self._check_writable()
        grow = self._charge_range(f, offset, offset + nbytes)
        if grow == 0:
            return
        if self.supports_fallocate:
            yield self.sim.timeout(50e-6)  # one syscall + extent-tree update
        else:
            yield from self.node.ssd.write(offset, grow)
        f.size = max(f.size, offset + nbytes)

    def _charge_range(self, f: LocalFile, start: int, end: int) -> int:
        """Charge the uncovered part of ``[start, end)``; returns new bytes."""
        grow = f.space.gaps(start, end).total
        if grow == 0:
            return 0
        if self.used + grow > self.capacity:
            raise ENOSPC(
                f"scratch partition full on node {self.node.node_id}: "
                f"{self.used + grow} > {self.capacity}"
            )
        self.used += grow
        f.space.add(start, end)
        return grow

    # -- I/O -------------------------------------------------------------------
    def write(self, f: LocalFile, offset: int, nbytes: int, data: Optional[np.ndarray] = None):
        """Buffered write (page cache, dirty throttling).

        Dispatch, not a generator: the eager checks/charges run at call
        time (the same instant a ``yield from`` would start the frame) and
        the page-cache generator is returned directly — one frame less on
        the hot cached-write chain.
        """
        if nbytes < 0:
            raise SimError("negative write size")
        self._check_writable()
        end = offset + nbytes
        self._charge_range(f, offset, end)
        if data is not None:
            arr = np.asarray(data, dtype=np.uint8)
            if len(arr) != nbytes:
                raise SimError(f"payload length {len(arr)} != nbytes {nbytes}")
            f.extents.append((offset, arr.copy()))
        f.size = max(f.size, end)
        return self.node.page_cache.buffered_write(f.file_id, nbytes, offset=offset)

    def read(self, f: LocalFile, offset: int, nbytes: int):
        """Generator returning the requested bytes (None for virtual files).

        Dirty pages still in the page cache are served at memory speed; the
        remainder comes off the SSD.  The split is approximated by the
        file's current dirty fraction, which is exact for the sync thread's
        sequential read-back.
        """
        if offset + nbytes > f.size and not f.extents and f.size == 0:
            raise SimError(f"read past EOF of empty file {f.path}")
        dirty = self.node.page_cache.dirty_of(f.file_id)
        frac_cached = min(1.0, dirty / max(1, f.space.total or f.size))
        cached = int(nbytes * frac_cached)
        uncached = nbytes - cached
        if cached:
            yield self.sim.timeout(cached / self.node.config.ram.memcpy_bw)
        if uncached:
            yield from self.node.ssd.read(offset + cached, uncached)
        return self._gather(f, offset, nbytes)

    def read_event(self, f: LocalFile, offset: int, nbytes: int) -> Event:
        """Flat variant of :meth:`read` for ``sim.flat`` chains.

        Returns an Event whose value is the requested bytes, fired inline in
        the callback of the last underlying wait — exactly where the
        generator's caller would resume.  Caller gates on
        ``node.ssd.injector is None`` and ``nbytes > 0``.
        """
        if offset + nbytes > f.size and not f.extents and f.size == 0:
            raise SimError(f"read past EOF of empty file {f.path}")
        dirty = self.node.page_cache.dirty_of(f.file_id)
        frac_cached = min(1.0, dirty / max(1, f.space.total or f.size))
        cached = int(nbytes * frac_cached)
        uncached = nbytes - cached
        if not cached and not uncached:
            raise SimError("read_event requires nbytes > 0")
        done = Event(self.sim, name="lfs-read")

        def _finish():
            done._fire_inline(self._gather(f, offset, nbytes))

        ssd = self.node.ssd
        if cached:
            if uncached:
                self.sim.call_later(
                    cached / self.node.config.ram.memcpy_bw,
                    lambda: ssd.io_flat(offset + cached, uncached, False, _finish),
                )
            else:
                self.sim.call_later(cached / self.node.config.ram.memcpy_bw, _finish)
        else:
            ssd.io_flat(offset + cached, uncached, False, _finish)
        return done

    def fsync(self, f: LocalFile):
        return self.node.page_cache.fsync(f.file_id)

    # -- data assembly (verification support) ------------------------------------
    def _gather(self, f: LocalFile, offset: int, nbytes: int) -> Optional[np.ndarray]:
        if not f.extents:
            return None
        out = np.zeros(nbytes, dtype=np.uint8)
        end = offset + nbytes
        hit = False
        for ext_off, arr in f.extents:
            ext_end = ext_off + len(arr)
            lo = max(offset, ext_off)
            hi = min(end, ext_end)
            if lo < hi:
                out[lo - offset : hi - offset] = arr[lo - ext_off : hi - ext_off]
                hit = True
        return out if hit else None
