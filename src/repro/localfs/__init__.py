"""Node-local ext4-like file system on the scratch SSD partition."""

from repro.localfs.ext4 import LocalFile, LocalFileSystem

__all__ = ["LocalFile", "LocalFileSystem"]
