"""Node-local ext4-like file system on the scratch SSD partition.

Paper correspondence: §IV-A — the ext4 ``/scratch`` partition the cache
writes to.
"""

from repro.localfs.ext4 import LocalFile, LocalFileSystem

__all__ = ["LocalFile", "LocalFileSystem"]
