"""Collective operations.

Two interchangeable engines:

* :class:`ModelCollectives` — arrival-synchronised cost models.  Every rank
  entering its *n*-th collective joins slot *n*; when the last rank arrives,
  the slot computes the result and a LogGP-style duration, then releases all
  ranks together.  This preserves the property the paper's analysis hinges
  on — a collective costs each rank ``(t_last_arrival - t_my_arrival) +
  t_algorithm`` — while firing O(P) events per collective instead of
  O(P log P) messages.

* :class:`AlgorithmicCollectives` — the real message-passing algorithms
  (binomial bcast, recursive-doubling allreduce/barrier, pairwise-exchange
  alltoall) over the point-to-point transport.  Used at small scale to
  validate that the model engine's results and orderings are faithful.

Both return identical values; tests assert it.

Paper correspondence: the collectives the §II-A algorithm leans on
(alltoall dissemination, allreduce epilogue, barrier-style sync).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.net.message import Transport
from repro.sim.core import Event, SimError, Simulator

Op = Callable[[Any, Any], Any]


def op_sum(a, b):
    return a + b


def op_max(a, b):
    return a if a >= b else b


def op_min(a, b):
    return a if a <= b else b


def op_band(a, b):
    return a & b


def op_bor(a, b):
    return a | b


@dataclass
class CollectiveCosts:
    """Calibrated latency/bandwidth parameters for the model engine."""

    alpha: float  # per-stage latency (seconds)
    beta_inv: float  # per-byte time on the NIC (1 / bandwidth)
    per_message: float  # CPU cost to post/match one message
    procs_per_node: int = 1
    shm_beta_inv: float = 0.0  # per-byte time of intra-node shared-memory moves

    def stages(self, nprocs: int) -> int:
        return max(1, math.ceil(math.log2(max(2, nprocs))))

    def latency_bound(self, nprocs: int) -> float:
        return self.alpha * self.stages(nprocs)

    def small_collective(self, nprocs: int, nbytes: int = 8) -> float:
        """Barrier / scalar allreduce: 2·log2(P) latency stages."""
        return 2 * self.latency_bound(nprocs) + nbytes * self.beta_inv * self.stages(nprocs)

    def alltoall(self, nprocs: int, per_pair_bytes: float) -> float:
        """Pairwise exchange: P-1 rounds; per-node traffic shares the NIC."""
        fan = max(1, nprocs - 1)
        node_bytes = per_pair_bytes * fan * self.procs_per_node
        return (
            self.latency_bound(nprocs)
            + fan * self.per_message
            + node_bytes * self.beta_inv
        )

    def shuffle(self, out_bytes_per_node: dict[int, float], in_bytes_per_node: dict[int, float], max_msgs: int) -> float:
        """Bulk data exchange bounded by the hottest NIC in either direction."""
        hot_out = max(out_bytes_per_node.values(), default=0.0)
        hot_in = max(in_bytes_per_node.values(), default=0.0)
        return (
            self.alpha
            + max(hot_out, hot_in) * self.beta_inv
            + max_msgs * self.per_message
        )


@dataclass
class _Slot:
    op_name: str = ""
    arrivals: dict[int, Any] = field(default_factory=dict)
    release: dict[int, Event] = field(default_factory=dict)
    extra: dict[str, Any] = field(default_factory=dict)
    shared: Optional[Event] = None  # bulk data plane: one release for all ranks
    # Ladder pre-registration (see ModelCollectives.timed_ladder): ranks
    # counted as arrived without an entry in ``arrivals``.  ``pre_duration``
    # is the duration every pre-registered rank would have passed — by
    # construction identical to what the live arrivals pass.
    pre: int = 0
    pre_duration: float = 0.0


class _Ladder:
    """Bookkeeping for one pre-registered run of timed slots.

    Members (ranks that take no per-round action) are counted into every
    slot of the run up-front; the ladder reproduces their per-round
    profiler laps bit-for-bit via release hooks.  Members with identical
    starting phase totals share one running sum (``groups``), so the
    float accumulation sequence ``s0 + d0 + d1 + ...`` matches what each
    member's own ``lap`` calls would have produced.
    """

    __slots__ = ("base", "t_prev", "phases", "final", "groups", "members", "tail_slot")

    def __init__(self, base: int, now: float, phases: tuple[str, ...]):
        self.base = base
        self.t_prev = now  # release time of the previous slot (creation = round-0 arrival)
        self.phases = phases
        self.final: Optional[Event] = None
        self.groups: dict[tuple, dict[str, float]] = {}
        self.members: dict[tuple, list[dict[str, float]]] = {}
        self.tail_slot: Optional[_Slot] = None

    def join(self, seconds: dict[str, float]) -> None:
        key = tuple(seconds.get(p, 0.0) for p in self.phases)
        group = self.groups.get(key)
        if group is None:
            self.groups[key] = dict(zip(self.phases, key))
            self.members[key] = [seconds]
        else:
            self.members[key].append(seconds)


class _LadderHook:
    """Per-slot release callback: advances every group's running phase sum.

    Appended to the slot's shared event at ladder creation — before any
    member's resume callback — so the final slot's write-back lands before
    members continue into ``post_write``.
    """

    __slots__ = ("model", "ladder", "phase", "final")

    def __init__(self, model: "ModelCollectives", ladder: _Ladder, phase: str, final: bool):
        self.model = model
        self.ladder = ladder
        self.phase = phase
        self.final = final

    def __call__(self, _event: Event) -> None:
        ladder = self.ladder
        now = self.model.sim.now
        dt = now - ladder.t_prev
        ladder.t_prev = now
        phase = self.phase
        for sums in ladder.groups.values():
            sums[phase] = sums[phase] + dt
        if self.final:
            groups = ladder.groups
            for key, members in ladder.members.items():
                sums = groups[key]
                for seconds in members:
                    seconds.update(sums)
            del self.model._ladders[ladder.base]


class ModelCollectives:
    """Arrival-synchronised collectives with analytic durations.

    ``shared_release`` (bulk data plane) releases every rank through one
    shared event instead of one event per rank.  Per-rank release events are
    scheduled back-to-back in arrival order by :meth:`_complete`, so they
    fire consecutively with nothing interleaved; the shared event resumes
    the same rank continuations in the same (arrival) order within one
    event — timestamps and results are identical, events are O(1) per
    collective instead of O(P).
    """

    def __init__(
        self,
        sim: Simulator,
        nprocs: int,
        costs: CollectiveCosts,
        rank_to_node: Optional[list[int]] = None,
        shared_release: bool = False,
    ):
        self.sim = sim
        self.nprocs = nprocs
        self.costs = costs
        self.rank_to_node = rank_to_node or list(range(nprocs))
        self.shared_release = shared_release
        self._slot_index = [0] * nprocs
        self._slots: dict[int, _Slot] = {}
        self._ladders: dict[int, _Ladder] = {}
        self.invocations = 0

    def enter(self, rank: int, op_name: str, value: Any = None, **extra):
        """Generator: join this rank's next collective slot and wait for release."""
        idx = self._slot_index[rank]
        self._slot_index[rank] += 1
        slot = self._slots.get(idx)
        if slot is None:
            slot = self._slots[idx] = _Slot(op_name=op_name)
            if self.shared_release:
                slot.shared = Event(self.sim, name=f"coll:{op_name}[{idx}]")
        if slot.op_name != op_name:
            raise SimError(
                f"collective mismatch at slot {idx}: rank {rank} called "
                f"{op_name!r} but others called {slot.op_name!r}"
            )
        slot.arrivals[rank] = value
        for key, val in extra.items():
            slot.extra.setdefault(key, {})[rank] = val
        if slot.shared is not None:
            if len(slot.arrivals) + slot.pre == self.nprocs:
                self._complete(idx, slot)
            results = yield slot.shared
            return results[rank]
        ev = Event(self.sim, name=f"coll:{op_name}[{idx}]r{rank}")
        slot.release[rank] = ev
        if len(slot.arrivals) + slot.pre == self.nprocs:
            self._complete(idx, slot)
        result = yield ev
        return result

    # individual operations -------------------------------------------------
    def barrier(self, rank: int):
        return self.enter(rank, "barrier")

    def allreduce(self, rank: int, value: Any, op: Op = op_sum, nbytes: int = 8):
        return self.enter(rank, "allreduce", value, op={rank: None}, reduce_op=op, nbytes=nbytes)

    def allgather(self, rank: int, value: Any, nbytes: int = 8):
        return self.enter(rank, "allgather", value, nbytes=nbytes)

    def alltoall(self, rank: int, values: list[Any], per_pair_bytes: int = 16):
        if len(values) != self.nprocs:
            raise SimError(f"alltoall needs {self.nprocs} values, got {len(values)}")
        return self.enter(rank, "alltoall", values, nbytes=per_pair_bytes)

    def bcast(self, rank: int, value: Any, root: int = 0, nbytes: int = 8):
        return self.enter(rank, "bcast", (value if rank == root else None), root=root, nbytes=nbytes)

    def shuffle(self, rank: int, out_bytes: dict[int, float], msg_count: int = 0):
        """The ext2ph data exchange as a pseudo-collective.

        ``out_bytes`` maps destination rank -> bytes this rank sends there.
        Returns the per-rank inbound byte total (what this rank received).
        """
        return self.enter(rank, "shuffle", out_bytes, msgs=msg_count)

    def timed(self, rank: int, duration: float, label: str = "timed"):
        """A pre-costed synchronisation: all ranks arrive, all are released
        ``max(duration)`` after the last arrival.  Used when the exchange
        cost has been computed centrally (vectorised over rounds)."""
        return self.enter(rank, f"timed:{label}", duration)

    def timed_event(self, rank: int, duration: float, label: str = "timed") -> Event:
        """Flat fast path for :meth:`timed` (``sim.flat`` call sites).

        Identical slot bookkeeping and release scheduling as routing the
        arrival through :meth:`enter`, but the release event is returned
        for the rank body to ``yield`` directly — no generator frame per
        rank per round, no trampoline resume through ``enter``.  The event
        value (the results dict in shared-release mode, None per-rank) is
        discarded by every caller, exactly as ``timed``'s return value is.
        """
        op_name = f"timed:{label}"
        idx = self._slot_index[rank]
        self._slot_index[rank] += 1
        slot = self._slots.get(idx)
        if slot is None:
            slot = self._slots[idx] = _Slot(op_name=op_name)
            if self.shared_release:
                slot.shared = Event(self.sim, name=f"coll:{op_name}[{idx}]")
        if slot.op_name != op_name:
            raise SimError(
                f"collective mismatch at slot {idx}: rank {rank} called "
                f"{op_name!r} but others called {slot.op_name!r}"
            )
        slot.arrivals[rank] = duration
        if slot.shared is not None:
            if len(slot.arrivals) + slot.pre == self.nprocs:
                self._complete(idx, slot)
            return slot.shared
        # Pooled on the slotted engine; the plain op_name (no per-rank
        # f-string) keeps the hot per-rank release path allocation-free.
        ev = self.sim.event(op_name)
        slot.release[rank] = ev
        if len(slot.arrivals) + slot.pre == self.nprocs:
            self._complete(idx, slot)
        return ev

    def enter_event(self, rank: int, op_name: str, value: Any = None, **extra) -> Event:
        """Flat fast path for :meth:`enter`: identical arrival bookkeeping,
        but the shared release event is *returned* for the rank body to
        ``yield`` directly — no generator frame per rank per collective.

        Only valid with ``shared_release``, and only for call sites that
        discard the collective's result: the event's value is the whole
        results dict, not this rank's entry.
        """
        if not self.shared_release:  # pragma: no cover - callers gate on it
            raise SimError("enter_event requires shared_release collectives")
        idx = self._slot_index[rank]
        self._slot_index[rank] += 1
        slot = self._slots.get(idx)
        if slot is None:
            slot = self._slots[idx] = _Slot(op_name=op_name)
            slot.shared = Event(self.sim, name=f"coll:{op_name}[{idx}]")
        if slot.op_name != op_name:
            raise SimError(
                f"collective mismatch at slot {idx}: rank {rank} called "
                f"{op_name!r} but others called {slot.op_name!r}"
            )
        slot.arrivals[rank] = value
        for key, val in extra.items():
            slot.extra.setdefault(key, {})[rank] = val
        if len(slot.arrivals) + slot.pre == self.nprocs:
            self._complete(idx, slot)
        return slot.shared

    def timed_ladder(
        self,
        rank: int,
        steps: list[tuple[str, float, str]],
        width: int,
        seconds: dict[str, float],
        tail: Optional[tuple] = None,
    ) -> Event:
        """Pre-register ``rank`` into its next ``len(steps)`` timed slots.

        The fast path for ranks that take *no per-round action* inside a
        run of back-to-back timed collectives (the ext2ph round loop seen
        by non-aggregators): instead of arriving at each of the ``2n``
        slots round by round — one resume + one arrival per slot — the
        rank is counted into every slot at once and parks on the final
        slot's shared release event, which this method returns for the
        caller to ``yield``.

        ``steps`` is the run's ``(label, duration, phase)`` sequence; the
        durations must equal what the live ranks pass through
        :meth:`timed_event` for the same slots (they are computed from the
        same shared call state).  ``width`` is the total number of ranks
        that will take this ladder (all must, and none may also arrive
        live).  ``seconds`` is the member's profiler phase dict; release
        hooks reproduce the member's per-round lap additions bit-for-bit
        (see :class:`_Ladder`), so phase totals are byte-identical to the
        round-by-round path.

        Timestamp identity: completion of a slot moves earlier only
        *within* the release instant of the previous slot (pre-counted
        ranks would have arrived in that same instant, after callbacks
        that do no scheduling), so all release times — and therefore all
        durations charged to every rank — are unchanged.

        ``tail`` optionally extends the run with one trailing *value*
        collective ``(op_name, value, extra, phase)`` shared with the
        live ranks (ext2ph's post-write allreduce): the member's arrival
        is recorded in the tail slot's ``arrivals`` — NOT pre-counted,
        because value collectives fold ``arrivals[r]`` for every rank —
        and the ladder parks on the tail's release instead.  Arrival
        order is irrelevant to the fold (it walks ranks in index order),
        so members arriving at ladder creation rather than after round
        ``n`` changes no result.  The tail's release hook writes the
        member's final phase lap, replacing the member's own post-release
        lap; callers skip their live-path tail collective when the ladder
        covers it.
        """
        if not self.shared_release:  # pragma: no cover - callers gate on it
            raise SimError("timed_ladder requires shared_release collectives")
        idx = self._slot_index[rank]
        self._slot_index[rank] = idx + len(steps) + (1 if tail is not None else 0)
        ladder = self._ladders.get(idx)
        if ladder is None:
            ladder = self._create_ladder(idx, steps, width, tail)
        ladder.join(seconds)
        tail_slot = ladder.tail_slot
        if tail_slot is not None:
            _op, value, extra, _phase = tail
            tail_slot.arrivals[rank] = value
            for key, val in extra.items():
                tail_slot.extra.setdefault(key, {})[rank] = val
            # Live ranks cannot have all arrived yet (they are behind the
            # timed slots this ladder just created), so no completion
            # check is needed here.
        return ladder.final

    def _create_ladder(self, base: int, steps, width: int, tail: Optional[tuple]) -> _Ladder:
        sim = self.sim
        nsteps = len(steps)
        phases: list[str] = []
        for _label, _duration, phase in steps:
            if phase not in phases:
                phases.append(phase)
        if tail is not None and tail[3] not in phases:
            phases.append(tail[3])
        ladder = _Ladder(base, sim.now, tuple(phases))
        self._ladders[base] = ladder
        has_tail = tail is not None
        for j, (label, duration, phase) in enumerate(steps):
            op_name = f"timed:{label}"
            idx = base + j
            # Slot 0 may already exist (live ranks resumed ahead of the
            # first member within this instant); later slots cannot — the
            # lock-step live ranks cannot pass slot 0 before the ladder's
            # pre-registrations land.
            slot = self._slots.get(idx)
            if slot is None:
                slot = self._slots[idx] = _Slot(op_name=op_name)
                slot.shared = Event(self.sim, name=f"coll:{op_name}[{idx}]")
            elif slot.op_name != op_name:
                raise SimError(
                    f"collective mismatch at slot {idx}: ladder step "
                    f"{op_name!r} but others called {slot.op_name!r}"
                )
            slot.pre = width
            slot.pre_duration = duration
            # Before any member resume callback: members yield the final
            # event only after this loop runs.
            final = j == nsteps - 1 and not has_tail
            slot.shared.callbacks.append(_LadderHook(self, ladder, phase, final))
        if has_tail:
            tail_op, _value, _extra, tail_phase = tail
            idx = base + nsteps
            slot = self._slots.get(idx)
            if slot is None:
                slot = self._slots[idx] = _Slot(op_name=tail_op)
                slot.shared = Event(self.sim, name=f"coll:{tail_op}[{idx}]")
            elif slot.op_name != tail_op:  # pragma: no cover - symmetric callers
                raise SimError(
                    f"collective mismatch at slot {idx}: ladder tail "
                    f"{tail_op!r} but others called {slot.op_name!r}"
                )
            slot.shared.callbacks.append(_LadderHook(self, ladder, tail_phase, True))
            ladder.tail_slot = slot
            ladder.final = slot.shared
        else:
            ladder.final = self._slots[base + nsteps - 1].shared
        first = self._slots[base]
        if len(first.arrivals) + first.pre == self.nprocs:
            self._complete(base, first)
        return ladder

    # completion -------------------------------------------------------------
    def _complete(self, idx: int, slot: _Slot) -> None:
        self.invocations += 1
        op = slot.op_name
        costs = self.costs
        if op == "barrier":
            duration = costs.small_collective(self.nprocs)
            results = {r: None for r in slot.arrivals}
        elif op == "allreduce":
            reduce_op: Op = next(iter(slot.extra["reduce_op"].values()))
            nbytes = next(iter(slot.extra["nbytes"].values()))
            acc = None
            for r in range(self.nprocs):
                v = slot.arrivals[r]
                acc = v if acc is None else reduce_op(acc, v)
            duration = costs.small_collective(self.nprocs, nbytes)
            results = {r: acc for r in slot.arrivals}
        elif op == "allgather":
            gathered = [slot.arrivals[r] for r in range(self.nprocs)]
            nbytes = next(iter(slot.extra["nbytes"].values()))
            duration = costs.small_collective(self.nprocs, nbytes * self.nprocs)
            results = {r: list(gathered) for r in slot.arrivals}
        elif op == "alltoall":
            nbytes = next(iter(slot.extra["nbytes"].values()))
            results = {
                r: [slot.arrivals[s][r] for s in range(self.nprocs)]
                for r in slot.arrivals
            }
            duration = costs.alltoall(self.nprocs, nbytes)
        elif op == "bcast":
            roots = slot.extra["root"]
            root = next(iter(roots.values()))
            nbytes = next(iter(slot.extra["nbytes"].values()))
            value = slot.arrivals[root]
            duration = costs.latency_bound(self.nprocs) + nbytes * costs.beta_inv
            results = {r: value for r in slot.arrivals}
        elif op.startswith("timed:"):
            # Pre-registered ranks pass (by construction) the same duration
            # as every live arrival, so folding in ``pre_duration`` keeps
            # the max bit-identical to the all-live path.
            if slot.arrivals:
                duration = max(float(v) for v in slot.arrivals.values())
                if slot.pre and slot.pre_duration > duration:
                    duration = slot.pre_duration
            else:
                duration = float(slot.pre_duration)
            results = {r: None for r in slot.arrivals}
        elif op == "shuffle":
            out_node: dict[int, float] = {}
            in_node: dict[int, float] = {}
            in_rank = {r: 0.0 for r in slot.arrivals}
            msg_total = 0
            for src, outs in slot.arrivals.items():
                src_node = self.rank_to_node[src]
                for dst, nb in outs.items():
                    in_rank[dst] += nb
                    dst_node = self.rank_to_node[dst]
                    if dst_node != src_node:
                        out_node[src_node] = out_node.get(src_node, 0.0) + nb
                        in_node[dst_node] = in_node.get(dst_node, 0.0) + nb
                    msg_total += 1 if nb > 0 else 0
            per_rank_msgs = slot.extra.get("msgs", {})
            max_msgs = max(per_rank_msgs.values(), default=0) or max(
                (len([b for b in outs.values() if b > 0]) for outs in slot.arrivals.values()),
                default=0,
            )
            duration = costs.shuffle(out_node, in_node, max_msgs)
            results = in_rank
        else:  # pragma: no cover - guarded by enter()
            raise SimError(f"unknown collective {op!r}")
        if slot.shared is not None:
            slot.shared.succeed(results, delay=duration)
        else:
            for r, ev in slot.release.items():
                ev.succeed(results[r], delay=duration)
        del self._slots[idx]


class AlgorithmicCollectives:
    """Real message-passing collective algorithms over the transport.

    Only usable from inside rank processes; each operation is a generator.
    Tags are drawn from a reserved high range so they never collide with
    application traffic.
    """

    TAG_BASE = 1 << 24

    def __init__(self, sim: Simulator, transport: Transport, nprocs: int, payload_nbytes: Callable[[Any], int] = None):
        self.sim = sim
        self.transport = transport
        self.nprocs = nprocs
        self._epoch = [0] * nprocs
        self.payload_nbytes = payload_nbytes or (lambda v: 16)

    def _tag(self, rank: int, phase: int) -> int:
        # Per-collective-epoch, per-phase tag; epoch advances per call site.
        # 16 bits of phase space keeps pairwise alltoall steps collision-free
        # up to 64k ranks.
        return self.TAG_BASE + (self._epoch[rank] << 16) + phase

    def barrier(self, rank: int):
        yield from self.allreduce(rank, 0, op_sum)

    def allreduce(self, rank: int, value: Any, op: Op = op_sum):
        """Recursive doubling (power-of-two ranks fold the remainder first)."""
        n = self.nprocs
        epoch_tag = self._tag(rank, 0)
        self._epoch[rank] += 1
        pof2 = 1 << (n.bit_length() - 1) if n & (n - 1) else n
        rem = n - pof2
        acc = value
        newrank = rank
        if rank < 2 * rem:
            if rank % 2 == 0:  # even ranks in the remainder send and sit out
                yield self.transport.send(rank, rank + 1, epoch_tag, acc, self.payload_nbytes(acc))
                msg = yield self.transport.post_recv(rank, rank + 1, epoch_tag + 1)
                return msg.payload
            else:
                msg = yield self.transport.post_recv(rank, rank - 1, epoch_tag)
                acc = op(msg.payload, acc)
                newrank = rank // 2
        else:
            newrank = rank - rem
        mask = 1
        while mask < pof2:
            peer_new = newrank ^ mask
            peer = peer_new * 2 + 1 if peer_new < rem else peer_new + rem
            send_ev = self.transport.send(rank, peer, epoch_tag, acc, self.payload_nbytes(acc))
            recv_ev = self.transport.post_recv(rank, peer, epoch_tag)
            yield self.sim.all_of([send_ev, recv_ev])
            other = recv_ev.value.payload
            # commutative-op ordering: lower rank contributes first
            acc = op(other, acc) if peer < rank else op(acc, other)
            mask <<= 1
        if rank < 2 * rem and rank % 2 == 1:
            yield self.transport.send(rank, rank - 1, epoch_tag + 1, acc, self.payload_nbytes(acc))
        return acc

    def bcast(self, rank: int, value: Any, root: int = 0):
        """Binomial tree broadcast (the MPICH schedule)."""
        n = self.nprocs
        tag = self._tag(rank, 2)
        self._epoch[rank] += 1
        vrank = (rank - root) % n
        got = value if rank == root else None
        # Climb the mask until our set bit is found: that is our parent edge.
        mask = 1
        while mask < n:
            if vrank & mask:
                parent = ((vrank - mask) + root) % n
                msg = yield self.transport.post_recv(rank, parent, tag)
                got = msg.payload
                break
            mask <<= 1
        # Descend, forwarding to children below our edge.
        mask >>= 1
        while mask > 0:
            if vrank + mask < n:
                child = ((vrank + mask) + root) % n
                yield self.transport.send(rank, child, tag, got, self.payload_nbytes(got))
            mask >>= 1
        return got

    def alltoall(self, rank: int, values: list[Any]):
        """Pairwise exchange (XOR schedule for power-of-two, ring otherwise)."""
        n = self.nprocs
        tag = self._tag(rank, 3)
        self._epoch[rank] += 1
        if len(values) != n:
            raise SimError(f"alltoall needs {n} values")
        result: list[Any] = [None] * n
        result[rank] = values[rank]
        for step in range(1, n):
            if n & (n - 1) == 0:
                peer = rank ^ step
            else:
                peer = (rank + step) % n
                # ring schedule: receive from (rank - step) % n
            if n & (n - 1) == 0:
                send_to = recv_from = peer
            else:
                send_to = (rank + step) % n
                recv_from = (rank - step) % n
            send_ev = self.transport.send(rank, send_to, tag + step, values[send_to], self.payload_nbytes(values[send_to]))
            recv_ev = self.transport.post_recv(rank, recv_from, tag + step)
            yield self.sim.all_of([send_ev, recv_ev])
            result[recv_from] = recv_ev.value.payload
        return result

    def allgather(self, rank: int, value: Any):
        return self.alltoall(rank, [value] * self.nprocs)
