"""MPI derived datatypes for file views.

Real MPI-IO applications describe their file access with derived datatypes
(``MPI_Type_vector``, ``MPI_Type_create_subarray``, ...) passed to
``MPI_File_set_view``; ROMIO flattens the filetype into the offset/length
list that drives the two-phase algorithm.  This module provides the same
constructors and flattening, producing the
:class:`~repro.access.RankAccess` the rest of the stack consumes.

All sizes are bytes at this level (an elementary type is given by its
``extent``); a datatype is an immutable description with:

* ``size``    — bytes of actual data per instance (holes excluded),
* ``extent``  — bytes the instance spans in the file (holes included),
* ``segments()`` — the flattened (offset, length) runs of one instance.

Example — the coll_perf block as MPI would describe it::

    elem = Datatype.contiguous_bytes(8)                   # MPI_DOUBLE
    zrun = Datatype.contiguous(elem, 256)                 # one z-run
    filetype = Datatype.subarray(
        elem, sizes=(1024, 2048, 2048), subsizes=(128, 256, 256),
        starts=(0, 0, 0),
    )
    access = filetype.to_access(disp=0)

Paper correspondence: the file views (§II background) that produce each
benchmark's access pattern in §IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.access import RankAccess


class DatatypeError(ValueError):
    """Invalid datatype construction."""


@dataclass(frozen=True)
class Datatype:
    """An immutable flattened datatype: sorted disjoint byte runs."""

    offsets: tuple[int, ...]  # run start offsets within the extent
    lengths: tuple[int, ...]
    extent: int  # total span (may exceed the last run's end: trailing hole)

    def __post_init__(self):
        if len(self.offsets) != len(self.lengths):
            raise DatatypeError("offsets/lengths mismatch")
        prev_end = None
        for off, length in zip(self.offsets, self.lengths):
            if length <= 0:
                raise DatatypeError(f"non-positive run length {length}")
            if off < 0:
                raise DatatypeError(f"negative offset {off}")
            if prev_end is not None and off < prev_end:
                raise DatatypeError("runs overlap or are unsorted")
            prev_end = off + length
        if prev_end is not None and self.extent < prev_end:
            raise DatatypeError("extent smaller than the last run's end")

    # -- properties ---------------------------------------------------------
    @property
    def size(self) -> int:
        """Bytes of data (holes excluded) — MPI_Type_size."""
        return sum(self.lengths)

    @property
    def num_runs(self) -> int:
        return len(self.offsets)

    @property
    def contiguous(self) -> bool:
        return self.num_runs == 1 and self.offsets[0] == 0 and self.lengths[0] == self.extent

    def segments(self) -> Iterator[tuple[int, int]]:
        return iter(zip(self.offsets, self.lengths))

    # -- constructors (the MPI type-constructor family) -----------------------
    @classmethod
    def contiguous_bytes(cls, nbytes: int) -> "Datatype":
        """An elementary type of ``nbytes`` (e.g. 8 for MPI_DOUBLE)."""
        if nbytes <= 0:
            raise DatatypeError(f"non-positive elementary size {nbytes}")
        return cls((0,), (nbytes,), nbytes)

    @classmethod
    def contiguous(cls, oldtype: "Datatype", count: int) -> "Datatype":
        """MPI_Type_contiguous: ``count`` back-to-back instances."""
        return cls.vector(oldtype, count=count, blocklength=1, stride=1)

    @classmethod
    def vector(cls, oldtype: "Datatype", count: int, blocklength: int, stride: int) -> "Datatype":
        """MPI_Type_vector: ``count`` blocks of ``blocklength`` instances,
        block starts ``stride`` instances apart (in oldtype extents)."""
        if count <= 0 or blocklength <= 0:
            raise DatatypeError("count and blocklength must be positive")
        if stride < blocklength and count > 1:
            raise DatatypeError("stride smaller than blocklength would overlap")
        offs: list[int] = []
        lens: list[int] = []
        ext = oldtype.extent
        for block in range(count):
            base = block * stride * ext
            for inst in range(blocklength):
                for off, length in oldtype.segments():
                    offs.append(base + inst * ext + off)
                    lens.append(length)
        extent = ((count - 1) * stride + blocklength) * ext
        return cls._coalesced(offs, lens, extent)

    @classmethod
    def indexed(
        cls, oldtype: "Datatype", blocklengths: Sequence[int], displacements: Sequence[int]
    ) -> "Datatype":
        """MPI_Type_indexed: blocks of varying length at given displacements
        (both in oldtype extents); displacements must be increasing."""
        if len(blocklengths) != len(displacements):
            raise DatatypeError("blocklengths/displacements mismatch")
        offs: list[int] = []
        lens: list[int] = []
        ext = oldtype.extent
        for blocklength, disp in zip(blocklengths, displacements):
            if blocklength <= 0:
                raise DatatypeError("non-positive blocklength")
            for inst in range(blocklength):
                for off, length in oldtype.segments():
                    offs.append((disp + inst) * ext + off)
                    lens.append(length)
        extent = max(
            (d + b) * ext for d, b in zip(displacements, blocklengths)
        ) if blocklengths else 0
        return cls._coalesced(offs, lens, extent)

    @classmethod
    def subarray(
        cls,
        oldtype: "Datatype",
        sizes: Sequence[int],
        subsizes: Sequence[int],
        starts: Sequence[int],
    ) -> "Datatype":
        """MPI_Type_create_subarray (C order): an n-D block out of an n-D
        array — the coll_perf/block-decomposition workhorse."""
        if not (len(sizes) == len(subsizes) == len(starts)):
            raise DatatypeError("sizes/subsizes/starts rank mismatch")
        for size, sub, start in zip(sizes, subsizes, starts):
            if sub <= 0 or size <= 0:
                raise DatatypeError("sizes and subsizes must be positive")
            if start < 0 or start + sub > size:
                raise DatatypeError("subarray out of bounds")
        ext = oldtype.extent
        if not oldtype.contiguous:
            raise DatatypeError("subarray requires a contiguous element type")
        # Runs are contiguous along the last dimension.
        ndim = len(sizes)
        run_len = subsizes[-1] * ext
        # All index combinations over the outer dimensions, vectorised.
        outer = [np.arange(starts[d], starts[d] + subsizes[d]) for d in range(ndim - 1)]
        if outer:
            grids = np.meshgrid(*outer, indexing="ij")
            flat = np.zeros(grids[0].size, dtype=np.int64)
            stride = np.ones(ndim, dtype=np.int64)
            for d in range(ndim - 2, -1, -1):
                stride[d] = stride[d + 1] * sizes[d + 1]
            for d in range(ndim - 1):
                flat += grids[d].ravel() * stride[d]
            offs = (flat + starts[-1]) * ext
        else:
            offs = np.array([starts[-1] * ext], dtype=np.int64)
        lens = np.full(offs.shape, run_len, dtype=np.int64)
        extent = int(np.prod(np.asarray(sizes, dtype=np.int64))) * ext
        return cls._coalesced(offs.tolist(), lens.tolist(), extent)

    @classmethod
    def _coalesced(cls, offs: list[int], lens: list[int], extent: int) -> "Datatype":
        """Sort and merge adjacent runs."""
        order = sorted(range(len(offs)), key=offs.__getitem__)
        merged_offs: list[int] = []
        merged_lens: list[int] = []
        for idx in order:
            off, length = offs[idx], lens[idx]
            if merged_offs and merged_offs[-1] + merged_lens[-1] == off:
                merged_lens[-1] += length
            else:
                merged_offs.append(off)
                merged_lens.append(length)
        return cls(tuple(merged_offs), tuple(merged_lens), extent)

    # -- the MPI_File_set_view product --------------------------------------------
    def tiled(self, count: int) -> "Datatype":
        """``count`` repetitions of this type back to back (the file view
        semantics: the filetype tiles the file)."""
        return Datatype.contiguous(self, count)

    def to_access(
        self, disp: int = 0, count: int = 1, data: Optional[np.ndarray] = None
    ) -> RankAccess:
        """Flatten ``count`` tiles starting at displacement ``disp`` into the
        RankAccess consumed by ``write_all``/``read_all``."""
        if count < 0:
            raise DatatypeError("negative count")
        if count == 0 or self.num_runs == 0:
            return RankAccess.empty_access()
        base_offs = np.asarray(self.offsets, dtype=np.int64)
        base_lens = np.asarray(self.lengths, dtype=np.int64)
        tiles = disp + np.arange(count, dtype=np.int64)[:, None] * self.extent
        offs = (tiles + base_offs[None, :]).ravel()
        lens = np.broadcast_to(base_lens, (count, len(base_lens))).ravel()
        return RankAccess(offs, lens, data)
