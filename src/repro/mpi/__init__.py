"""Simulated MPI: point-to-point, collectives, requests, SPMD harness.

The API mirrors the subset of MPI that ROMIO's collective write path uses:
``isend``/``irecv``/``waitall``, ``MPI_Allreduce``, ``MPI_Alltoall(v)``,
``MPI_Bcast``, ``MPI_Barrier`` and generalized requests
(``MPI_Grequest_start``/``MPI_Grequest_complete``) for the cache sync
thread.  All calls are generator-based: ``result = yield from comm.recv(...)``.

Paper correspondence: the MPI substrate under the §II-A algorithm —
synchronisation and shuffle costs come from here.
"""

from repro.mpi.comm import Communicator
from repro.mpi.datatypes import Datatype, DatatypeError
from repro.mpi.process import MPIContext, MPIWorld
from repro.mpi.request import GeneralizedRequest, Request

ANY_SOURCE = -1
ANY_TAG = -1

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "Datatype",
    "DatatypeError",
    "GeneralizedRequest",
    "MPIContext",
    "MPIWorld",
    "Request",
]
