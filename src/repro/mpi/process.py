"""SPMD harness: run one generator body per rank on a simulated machine.

``MPIWorld.run(rank_body)`` spawns ``nprocs`` kernel processes, each
executing ``rank_body(ctx)`` where :class:`MPIContext` exposes the rank id,
the communicator, the owning compute node and convenience helpers.  The
return value is the list of per-rank results, in rank order.

Paper correspondence: stands in for the paper's 512-process MPI launch
(§IV-A).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.mpi.comm import Communicator
from repro.mpi.collectives import CollectiveCosts
from repro.net.message import Transport
from repro.sim.core import Simulator

RankBody = Callable[["MPIContext"], Generator]


class MPIContext:
    """What a rank body sees: its identity plus the machine around it."""

    def __init__(self, rank: int, comm: Communicator, machine: Any):
        self.rank = rank
        self.comm = comm
        self.machine = machine
        self.sim: Simulator = comm.sim
        self.node_id = comm.node_of(rank)

    @property
    def node(self):
        return self.machine.nodes[self.node_id]

    @property
    def nprocs(self) -> int:
        return self.comm.size

    @property
    def now(self) -> float:
        return self.sim.now

    def compute(self, seconds: float):
        """Emulate a computation phase of fixed duration."""
        yield self.sim.timeout(seconds)

    def is_aggregator_candidate(self) -> bool:
        """True for the lowest rank on each node (ROMIO's default cb layout)."""
        return self.rank % self.machine.config.procs_per_node == 0


class MPIWorld:
    """Builds the transport + communicator for a machine and runs rank bodies."""

    def __init__(self, machine: Any, collective_mode: str = "model"):
        self.machine = machine
        cfg = machine.config
        nprocs = cfg.num_ranks
        # Rank-to-node placement goes through the machine so a fleet
        # JobView can place a job's ranks on its allocated physical nodes.
        node_of = getattr(machine, "node_of_rank", None)
        if node_of is None:
            node_of = lambda r: r // cfg.procs_per_node  # noqa: E731
        rank_to_node = [node_of(r) for r in range(nprocs)]
        bulk = getattr(machine, "dataplane", "chunked") == "bulk"
        self.transport = Transport(
            machine.sim,
            machine.fabric,
            rank_to_node,
            cfg.network.per_message_overhead,
            coalesce=bulk,
        )
        costs = CollectiveCosts(
            alpha=cfg.network.alpha_collective,
            beta_inv=1.0 / cfg.network.nic_bw,
            per_message=cfg.network.per_message_overhead,
            procs_per_node=cfg.procs_per_node,
            shm_beta_inv=1.0 / cfg.network.shm_bw,
        )
        self.comm = Communicator(
            machine.sim,
            self.transport,
            nprocs,
            costs,
            collective_mode=collective_mode,
            shared_release=bulk,
        )

    def contexts(self) -> list[MPIContext]:
        return [MPIContext(r, self.comm, self.machine) for r in range(self.comm.size)]

    def spawn(self, rank_body: RankBody) -> list:
        """Start every rank; returns the kernel Process handles."""
        procs = []
        for ctx in self.contexts():
            procs.append(
                self.machine.sim.process(rank_body(ctx), name=f"rank{ctx.rank}")
            )
        inj = getattr(self.machine, "faults", None)
        if inj is not None:
            # Crash faults interrupt exactly these processes.  The scope is
            # the machine's job label (a fleet JobView carries one; a plain
            # Machine registers untagged), and the teardown closes journal
            # descriptors through the *job's* recovery registry.
            inj.register_ranks(
                procs,
                job_tag=getattr(self.machine, "job_label", None),
                recovery=getattr(self.machine, "recovery", None),
            )
        return procs

    def run(self, rank_body: RankBody, until: Optional[float] = None) -> list[Any]:
        """Spawn all ranks, run the simulation to completion, return results."""
        procs = self.spawn(rank_body)
        done = self.machine.sim.all_of(procs)
        return self.machine.sim.run(until=done)
