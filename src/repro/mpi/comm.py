"""The communicator: point-to-point plus collectives behind one object.

A :class:`Communicator` binds the transport, a collective engine, and the
rank-to-node map.  All blocking calls are generators (``yield from``); the
nonblocking ones return :class:`~repro.mpi.request.Request` handles
compatible with :func:`~repro.mpi.request.waitall`.

Paper correspondence: MPI substrate (§II background); the per-rank
endpoint the §II-A shuffle runs over.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.mpi import request as req_mod
from repro.mpi.collectives import (
    AlgorithmicCollectives,
    CollectiveCosts,
    ModelCollectives,
    Op,
    op_sum,
)
from repro.mpi.request import GeneralizedRequest, Request
from repro.net.message import ANY_SOURCE, ANY_TAG, Transport
from repro.sim.core import SimError, Simulator


class Communicator:
    """An MPI communicator over ``nprocs`` simulated ranks."""

    def __init__(
        self,
        sim: Simulator,
        transport: Transport,
        nprocs: int,
        costs: CollectiveCosts,
        collective_mode: str = "model",
        payload_nbytes: Optional[Callable[[Any], int]] = None,
        shared_release: bool = False,
    ):
        if collective_mode not in ("model", "algorithmic"):
            raise SimError(f"unknown collective mode {collective_mode!r}")
        self.sim = sim
        self.transport = transport
        self.nprocs = nprocs
        self.collective_mode = collective_mode
        self.rank_to_node = transport.rank_to_node
        self._model = ModelCollectives(
            sim, nprocs, costs, transport.rank_to_node, shared_release=shared_release
        )
        self._algo = AlgorithmicCollectives(sim, transport, nprocs, payload_nbytes)

    @property
    def size(self) -> int:
        return self.nprocs

    def node_of(self, rank: int) -> int:
        return self.rank_to_node[rank]

    # -- point to point -------------------------------------------------------
    def isend(self, source: int, dest: int, tag: int, payload: Any, nbytes: int) -> Request:
        if not (0 <= dest < self.nprocs):
            raise SimError(f"isend to invalid rank {dest}")
        ev = self.transport.send(source, dest, tag, payload, nbytes)
        return Request(ev, kind="isend", meta={"dest": dest, "tag": tag, "nbytes": nbytes})

    def irecv(self, rank: int, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        ev = self.transport.post_recv(rank, source, tag)
        return Request(ev, kind="irecv", meta={"source": source, "tag": tag})

    def send(self, source: int, dest: int, tag: int, payload: Any, nbytes: int):
        yield self.transport.send(source, dest, tag, payload, nbytes)

    def recv(self, rank: int, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        msg = yield self.transport.post_recv(rank, source, tag)
        return msg

    def waitall(self, requests: list[Request]):
        return req_mod.waitall(self.sim, requests)

    def grequest_start(self, meta: Optional[dict] = None) -> GeneralizedRequest:
        return GeneralizedRequest(self.sim, meta=meta)

    # -- collectives ------------------------------------------------------------
    # Each wrapper returns the engine's generator directly (callers drive it
    # with ``yield from``) instead of re-yielding through a one-level
    # trampoline frame — same values, one less generator per call.
    def barrier(self, rank: int):
        if self.collective_mode == "model":
            return self._model.barrier(rank)
        return self._algo.barrier(rank)

    def allreduce(self, rank: int, value: Any, op: Op = op_sum, nbytes: int = 8):
        if self.collective_mode == "model":
            return self._model.allreduce(rank, value, op, nbytes)
        return self._algo.allreduce(rank, value, op)

    def allgather(self, rank: int, value: Any, nbytes: int = 8):
        if self.collective_mode == "model":
            return self._model.allgather(rank, value, nbytes)
        return self._algo.allgather(rank, value)

    def alltoall(self, rank: int, values: list[Any], per_pair_bytes: int = 16):
        if self.collective_mode == "model":
            return self._model.alltoall(rank, values, per_pair_bytes)
        return self._algo.alltoall(rank, values)

    def bcast(self, rank: int, value: Any, root: int = 0, nbytes: int = 8):
        if self.collective_mode == "model":
            return self._model.bcast(rank, value, root, nbytes)
        return self._algo.bcast(rank, value, root)

    def shuffle(self, rank: int, out_bytes: dict[int, float], msg_count: int = 0):
        """Model-engine bulk exchange used by ext2ph's aggregated-flow mode."""
        return self._model.shuffle(rank, out_bytes, msg_count)

    def timed(self, rank: int, duration: float, label: str = "timed"):
        """Pre-costed synchronisation point (see ModelCollectives.timed)."""
        return self._model.timed(rank, duration, label)

    @property
    def shared_release(self) -> bool:
        return self._model.shared_release

    @property
    def flat_events(self) -> bool:
        """True when collectives can be yielded as bare release events.

        Call sites that discard a collective's result use this to pick the
        ``*_event`` fast path (``yield comm.barrier_event(rank)``) instead
        of driving a generator (``yield from comm.barrier(rank)``): same
        slot bookkeeping, same release event, same timestamps — one less
        generator frame per rank per collective.
        """
        return (
            self.sim.flat
            and self.collective_mode == "model"
            and self._model.shared_release
        )

    def barrier_event(self, rank: int):
        return self._model.enter_event(rank, "barrier")

    def allreduce_event(self, rank: int, value: Any, op: Op = op_sum, nbytes: int = 8):
        return self._model.enter_event(
            rank, "allreduce", value, reduce_op=op, nbytes=nbytes
        )

    def bcast_event(self, rank: int, value: Any, root: int = 0, nbytes: int = 8):
        return self._model.enter_event(
            rank, "bcast", (value if rank == root else None), root=root, nbytes=nbytes
        )

    def timed_ladder(self, rank, steps, width, seconds, tail=None):
        """Pre-register ``rank`` into its next ``len(steps)`` timed slots
        (plus an optional trailing value collective) and return the final
        release Event (see ModelCollectives.timed_ladder)."""
        return self._model.timed_ladder(rank, steps, width, seconds, tail)

    def timed_event(self, rank: int, duration: float, label: str = "timed"):
        """Flat variant of :meth:`timed`: returns the release Event to yield
        directly (see ModelCollectives.timed_event).  ``sim.flat`` call
        sites use this to skip one generator frame per rank per round."""
        return self._model.timed_event(rank, duration, label)

    @property
    def costs(self) -> CollectiveCosts:
        return self._model.costs
