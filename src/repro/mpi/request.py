"""MPI request objects.

:class:`Request` wraps a kernel event and provides ``test``/``wait``
semantics.  :class:`GeneralizedRequest` reproduces MPI generalized requests
(MPI-3 §12.2): created by user-level code (here: the E10 cache layer, one
per written extent) and completed asynchronously by a service thread calling
:meth:`GeneralizedRequest.complete` — the simulated analogue of
``MPI_Grequest_complete()``.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sim.core import Event, SimError, Simulator


class Request:
    """Handle to an in-flight nonblocking operation."""

    __slots__ = ("event", "kind", "meta")

    def __init__(self, event: Event, kind: str = "p2p", meta: Optional[dict] = None):
        self.event = event
        self.kind = kind
        self.meta = meta or {}

    @property
    def complete_now(self) -> bool:
        """MPI_Test: has the operation already finished?"""
        return self.event.fired

    def wait(self):
        """MPI_Wait — generator: ``result = yield from req.wait()``."""
        if self.event.fired:
            if not self.event.ok:
                raise self.event.value
            return self.event.value
        value = yield self.event
        return value

    def result(self) -> Any:
        if not self.event.fired:
            raise SimError("request not complete")
        return self.event.value


class GeneralizedRequest(Request):
    """A request completed by external (non-MPI-progress) activity."""

    __slots__ = ()

    def __init__(self, sim: Simulator, meta: Optional[dict] = None):
        super().__init__(Event(sim, name="grequest"), kind="grequest", meta=meta)

    def complete(self, value: Any = None) -> None:
        """MPI_Grequest_complete: mark the operation finished (idempotent
        completion is an error, matching MPI semantics)."""
        self.event.succeed(value)

    def fail(self, exc: BaseException) -> None:
        self.event.fail(exc)


def waitall(sim: Simulator, requests: list[Request]):
    """MPI_Waitall — generator yielding until every request completes.

    Returns the list of request values in order.  A failed request raises.
    """
    pending = [r.event for r in requests if not r.event.fired]
    if pending:
        yield sim.all_of(pending)
    out = []
    for r in requests:
        if not r.event.ok:
            raise r.event.value
        out.append(r.event.value)
    return out
