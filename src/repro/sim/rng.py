"""Deterministic random-number streams.

Every stochastic component (each I/O server's jitter, each device, the
aggregator placement shuffle) draws from its own named stream derived from a
single experiment seed, so adding a new consumer never perturbs existing
ones and every run is exactly reproducible.

Paper correspondence: none — determinism substrate (named streams keep
§IV runs bit-reproducible across processes).
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngStreams:
    """A factory of independent, name-keyed ``numpy`` generators."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    def lognormal_factor(self, name: str, sigma: float) -> float:
        """Draw a mean-1 lognormal multiplier — the standard service-jitter model.

        ``sigma`` is the shape parameter; ``sigma == 0`` returns exactly 1.0,
        letting callers disable jitter without branching.
        """
        if sigma <= 0.0:
            return 1.0
        # mean of lognormal(mu, sigma) is exp(mu + sigma^2/2); choose mu so
        # the mean is 1 and jitter never biases average throughput.
        mu = -0.5 * sigma * sigma
        return float(self.stream(name).lognormal(mu, sigma))

    def lognormal_fn(self, name: str, sigma: float):
        """Zero-arg callable form of :meth:`lognormal_factor`.

        The stream lookup and ``mu`` are resolved once; each call then draws
        from the same generator object the per-call form would use, so the
        sequence is identical.  Hot per-I/O jitter sites cache the callable
        instead of rebuilding the stream name and re-deriving ``mu`` on
        every service-time computation.
        """
        if sigma <= 0.0:
            return lambda: 1.0
        mu = -0.5 * sigma * sigma
        lognormal = self.stream(name).lognormal
        return lambda: float(lognormal(mu, sigma))
