"""Lightweight timeline tracing.

Components append :class:`TraceRecord` rows into a shared :class:`Tracer`;
tests and the experiment report use them to reconstruct what happened (which
server served which RPC, when each sync chunk landed, ...).  Tracing is off
by default — appending is a no-op unless enabled — so benchmark runs pay
nothing for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class TraceRecord:
    time: float
    component: str
    event: str
    detail: dict[str, Any] = field(default_factory=dict)


class Tracer:
    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.records: list[TraceRecord] = []

    def emit(self, time: float, component: str, event: str, **detail: Any) -> None:
        if self.enabled:
            self.records.append(TraceRecord(time, component, event, detail))

    def filter(self, component: str | None = None, event: str | None = None) -> Iterator[TraceRecord]:
        for rec in self.records:
            if component is not None and rec.component != component:
                continue
            if event is not None and rec.event != event:
                continue
            yield rec

    def clear(self) -> None:
        self.records.clear()
