"""Lightweight timeline tracing.

Components append :class:`TraceRecord` rows into a shared :class:`Tracer`;
tests and the experiment report use them to reconstruct what happened (which
server served which RPC, when each sync chunk landed, ...).  Tracing is off
by default — appending is a no-op unless enabled — so benchmark runs pay
nothing for it.

Long traced runs can bound memory with ``max_records``: the tracer keeps the
*most recent* records (a ring buffer) and counts what it dropped.  The
timeline exports to Chrome's ``chrome://tracing`` / Perfetto JSON format via
:meth:`Tracer.to_chrome_trace` for visual inspection.

Paper correspondence: none (diagnostics; pairs with
:mod:`repro.sim.profile` for engine accounting).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    time: float
    component: str
    event: str
    detail: dict[str, Any] = field(default_factory=dict)


#: Chrome-trace reserved color names for notable categories: injected
#: faults pop out red and recovery/replay activity green against the
#: default palette, so a faulted timeline reads at a glance.
CATEGORY_COLORS = {"faults": "terrible", "recovery": "good"}


class Tracer:
    def __init__(self, enabled: bool = False, max_records: Optional[int] = None):
        self.enabled = enabled
        self.max_records = max_records
        self.records: deque[TraceRecord] = deque(maxlen=max_records)
        self.dropped = 0

    def emit(self, time: float, component: str, event: str, **detail: Any) -> None:
        if self.enabled:
            if self.max_records is not None and len(self.records) == self.max_records:
                self.dropped += 1  # deque evicts the oldest on append
            self.records.append(TraceRecord(time, component, event, detail))

    def filter(self, component: str | None = None, event: str | None = None) -> Iterator[TraceRecord]:
        for rec in self.records:
            if component is not None and rec.component != component:
                continue
            if event is not None and rec.event != event:
                continue
            yield rec

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    # -- export --------------------------------------------------------------
    def to_chrome_trace(self, profiler=None) -> dict[str, Any]:
        """Render as the Chrome Trace Event JSON object format.

        Records become instant events (``ph: "i"``) with global scope; sim
        time (seconds) maps to trace microseconds.  Load the output in
        ``chrome://tracing`` or https://ui.perfetto.dev.

        Pass an attached :class:`~repro.sim.profile.SimProfiler` to merge
        its counters and component timers into the same view (a
        ``profiler`` track plus an ``otherData.profiler`` summary block).

        Records carrying a ``job`` detail (fleet runs: every record emitted
        through a :class:`~repro.fleet.view.JobView` tracer) get one Chrome
        process lane (``pid``) per job, named after the job label, instead
        of interleaving every job into row 0; untagged records keep pid 0.
        """
        events = []
        # pid 0 is the untagged (single-job / infrastructure) lane; each
        # distinct job label gets the next pid in first-appearance order.
        pids: dict[Any, int] = {}
        for rec in self.records:
            job = rec.detail.get("job")
            if job is None:
                pid = 0
            else:
                pid = pids.get(job)
                if pid is None:
                    pid = pids[job] = len(pids) + 1
            event: dict[str, Any] = {
                "name": rec.event,
                "cat": rec.component,
                "ph": "i",
                "s": "g",
                "ts": rec.time * 1e6,
                "pid": pid,
                "tid": rec.component,
                "args": rec.detail,
            }
            cname = CATEGORY_COLORS.get(rec.component)
            if cname is not None:
                event["cname"] = cname
            events.append(event)
        for job, pid in pids.items():
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "args": {"name": f"job {job}"},
                }
            )
        other: dict[str, Any] = {"dropped_records": self.dropped}
        if profiler is not None:
            events.extend(profiler.to_chrome_trace_events())
            other["profiler"] = profiler.snapshot()
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": other,
        }

    def write_chrome_trace(self, path: str, profiler=None) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(profiler=profiler), fh, default=str)
