"""Discrete-event simulation kernel.

A minimal, dependency-free DES engine in the style of SimPy: simulation
processes are Python generators that ``yield`` :class:`~repro.sim.core.Event`
objects and are resumed when those events fire.  Everything in the
reproduction — MPI ranks, I/O servers, cache sync threads — is a process on
one shared :class:`~repro.sim.core.Simulator`.

Paper correspondence: none — simulation substrate standing in for the
real cluster so the §IV evaluation can run anywhere.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimError,
    Simulator,
    Timeout,
)
from repro.sim.profile import SimProfiler
from repro.sim.resources import Resource, Store
from repro.sim.rng import RngStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "RngStreams",
    "SimError",
    "SimProfiler",
    "Simulator",
    "Store",
    "Timeout",
]
