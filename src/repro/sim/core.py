"""Event loop and generator-coroutine processes (the substrate under §IV).

The engine follows the classic event-list design: a binary heap of
``(time, sequence, event)`` entries.  Processes are generators; yielding an
:class:`Event` suspends the process until the event succeeds (the event's
value is sent back into the generator) or fails (the failure exception is
thrown into it).  ``yield from`` composes sub-routines, which is how the
whole ROMIO port is written.

Determinism: two events scheduled for the same timestamp fire in scheduling
order (the monotonically increasing sequence number breaks ties), so a run
with a fixed RNG seed is exactly reproducible.

Hot-path notes (measured by ``benchmarks/bench_engine.py``): the engine
recycles its internal *kick* events — the bootstrap, re-kick, and interrupt
events that exist only to resume a process — through a small free list
instead of allocating one per resume, and :meth:`Simulator.step` fast-paths
the overwhelmingly common single-waiter case.  An opt-in
:class:`~repro.sim.profile.SimProfiler` attached as ``Simulator.profiler``
counts events, heap pressure, and kick-pool reuse without costing anything
when absent.

Two engines implement the same contract (selected by ``REPRO_ENGINE``
through :func:`create_simulator`):

* :class:`Simulator` (``heapq``) — the historical binary-heap event list
  with generator processes everywhere.  Kept as the reference: the A/B
  harness in ``benchmarks/bench_engine.py`` asserts the slotted engine
  reproduces its results to the byte.
* :class:`SlottedSimulator` (``slotted``, the default) — a calendar-queue
  scheduler with an O(1) same-instant fast lane (most bulk-dataplane events
  are zero-delay), pooled/recycled ``Timeout``/``Deadline``/``Event``
  objects, and ``sim.flat = True``, which switches the hottest process
  bodies (collective releases, device I/O, the sync-thread flush chain) to
  flattened state-machine callbacks that bypass generator resume.  The
  firing order is provably identical to the heap's ``(time, seq)`` order:
  the lane is FIFO over events due *now*, and advancing the clock moves one
  exact-timestamp bucket (FIFO in scheduling order) onto the lane.

See docs/PERFORMANCE.md ("The slotted scheduler") for the design and the
equality argument.
"""

from __future__ import annotations

import heapq
import os
import sys
from bisect import insort
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

if sys.implementation.name == "cpython":
    from sys import getrefcount as _refcount
else:  # pragma: no cover - non-CPython: refcounts are unreliable there
    def _refcount(obj: Any) -> int:
        return 3  # always "shared": disables event recycling

ProcGen = Generator["Event", Any, Any]


class SimError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class DeadlockError(SimError):
    """The simulation can make no further progress but processes still wait.

    Raised instead of the bare "event list empty" :class:`SimError` when a
    process registry is attached (chaos/invariant runs): carries a diagnosed
    list of ``(process name, wait reason)`` pairs so a simulated-time
    deadlock reads like a stack dump instead of a silent hang.
    """

    def __init__(self, message: str, blocked: list[tuple[str, str]] | None = None):
        super().__init__(message)
        self.blocked = blocked or []


def describe_blocked(registry) -> list[tuple[str, str]]:
    """``(name, wait reason)`` for every live process in a registry."""
    out = []
    for proc in registry:
        if not proc.is_alive:
            continue
        target = proc._target
        if target is None:
            reason = "running (no wait target)"
        else:
            reason = f"waiting on {target.name or type(target).__name__}"
        out.append((proc.name, reason))
    return out


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value given by the interrupter.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* (scheduled to fire) via :meth:`succeed` or
    :meth:`fail` and *fired* when the simulator pops it off the event list
    and resumes its waiters.  Callbacks receive the event itself.
    """

    # ``abandon`` is an optional hook: a resource/lock layer that queued a
    # waiter event stores a cleanup callable here, and
    # :meth:`Process.interrupt` invokes it so an interrupted waiter never
    # leaves an orphaned queue entry or leaked slot.  Initialised to None
    # (rather than left unset) so the slotted engine's recycler can clear it
    # with a plain store instead of a guarded ``del``.
    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_fired", "name", "abandon")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._fired = False
        self.abandon: Optional[Callable[[Event], None]] = None

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimError(f"event {self!r} has no outcome yet")
        return self._ok

    @property
    def value(self) -> Any:
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._triggered:
            raise SimError(f"event {self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire by throwing ``exc`` into waiters."""
        if self._triggered:
            raise SimError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise SimError("Event.fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.sim._schedule(self, delay)
        return self

    def adopt(self, ok: bool, value: Any) -> "Event":
        """Install a fired outcome on a fresh internal event.

        The one audited path that marks an event triggered *with* an
        outcome but without the one-shot guard or the scheduling side
        effect of :meth:`succeed`/:meth:`fail`.  Used by the re-kick path
        (re-delivering an already-fired target to a process) and by the
        slotted engine's Timeout/Deadline/Event pools when re-arming a
        recycled object.  Callers schedule the event themselves.
        """
        self._ok = ok
        self._value = value
        self._triggered = True
        return self

    def _fire_inline(self, value: Any = None, ok: bool = True) -> None:
        """Fire this event synchronously, inside the current callback.

        Flattened state machines (``sim.flat``) use this to resume their
        waiters at *exactly* the lane position where the generator version
        would have resumed them — i.e. within the callback of the chain's
        final real event, not one zero-delay hop later.  The event never
        enters the event list (it does not count toward ``events_fired``),
        so the waiter cannot be overtaken by other same-instant events the
        way a ``succeed()``-scheduled completion could be.
        """
        self._triggered = True
        self._ok = ok
        self._value = value
        self._fired = True
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            if len(callbacks) == 1:
                callbacks[0](self)
            else:
                for cb in callbacks:
                    cb(self)
        elif not ok:
            raise value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self._fired else ("triggered" if self._triggered else "pending")
        label = f" {self.name}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class _Kick(Event):
    """A pooled internal event whose only job is to resume one process.

    Kicks fire exactly once, are referenced by nothing after firing (the
    process's ``_target`` points at the *real* event, never the kick), and
    carry no identity semantics — so :meth:`Simulator.step` can safely
    recycle them through :attr:`Simulator._kick_pool`.
    """

    __slots__ = ()

    def _reset(self, name: str) -> None:
        self.name = name
        self._value = None
        self._ok = None
        self._triggered = False
        self._fired = False


class _Call:
    """A bare scheduled callback — the cheapest thing the engine dispatches.

    No Event identity: no waiters, no payload, no success/failure, no
    handle ever returned to the caller (so no reference can outlive the
    fire and the pool needs no refcount guard).  Flattened fast paths use
    :meth:`Simulator.call_soon` / :meth:`Simulator.call_later` for their
    internal chain steps — the hops no generator ever awaits — turning a
    pooled Timeout + callbacks-list dispatch into a single ``fn()``.
    """

    __slots__ = ("fn",)

    def __init__(self) -> None:
        self.fn = None


class Timeout(Event):
    """An event that fires after a fixed delay; created pre-triggered."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimError(f"negative timeout {delay}")
        # Static name: formatting a per-instance label would cost more than
        # the rest of construction combined on the hot path; the repr below
        # carries the delay for debugging.
        super().__init__(sim, name="timeout")
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        sim._schedule(self, delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self._fired else "triggered"
        return f"<Timeout({self.delay:g}) {state}>"


class Deadline(Event):
    """An event that fires at an **absolute** simulated instant.

    Like :class:`Timeout` but scheduled at ``when`` rather than ``now +
    delay``: when a caller has computed a completion timestamp through a
    chain of float additions, rescheduling via a delay (``when - now``)
    would re-round and land on a slightly different instant.  The bulk
    data-plane fast path uses this to charge a fused sequence of timeouts
    as one event at *exactly* the timestamp the unfused sequence reaches.
    """

    __slots__ = ("when",)

    def __init__(self, sim: "Simulator", when: float, value: Any = None):
        if when < sim.now:
            raise SimError(f"deadline {when} is in the past (now={sim.now})")
        super().__init__(sim, name="deadline")
        self.when = when
        self._triggered = True
        self._ok = True
        self._value = value
        sim._schedule_at(self, when)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self._fired else "triggered"
        return f"<Deadline({self.when:g}) {state}>"


class Process(Event):
    """A running generator.  As an Event it fires when the generator returns.

    The event value is the generator's return value; if the generator raises,
    waiters see the exception (unless nobody waits, in which case the error
    propagates out of :meth:`Simulator.run` to avoid silent loss).
    """

    __slots__ = ("gen", "_target", "_defunct")

    def __init__(self, sim: "Simulator", gen: ProcGen, name: str = ""):
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        if not hasattr(gen, "send"):
            raise SimError(f"process body must be a generator, got {type(gen).__name__}")
        self.gen = gen
        self._target: Optional[Event] = None
        self._defunct = False
        if sim.process_registry is not None:
            sim.process_registry[self] = None
        # Bootstrap: resume the generator at time now (pooled kick).
        boot = sim._kick("init")
        boot.callbacks.append(self._resume)
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered or self._defunct:
            return
        # Detach from whatever the process was waiting on.
        target = self._target
        if target is not None:
            if self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
            hook = target.abandon
            if hook is not None:
                target.abandon = None
                hook(target)
        self._target = None
        kick = self.sim._kick("interrupt")
        kick.callbacks.append(lambda ev: self._step(throw=Interrupt(cause)))
        kick.succeed()

    # -- internal -----------------------------------------------------------
    def _unregister(self) -> None:
        reg = self.sim.process_registry
        if reg is not None:
            reg.pop(self, None)

    def _resume(self, event: Event) -> None:
        # The send path of _step, inlined (KEEP IN SYNC): one Python call
        # per resume matters at grid event volumes.
        self._target = None
        if not event._ok:
            self._step(throw=event._value)
            return
        if self._defunct:
            return
        sim = self.sim
        sim.active_process = self
        try:
            target = self.gen.send(event._value)
        except StopIteration as stop:
            sim.active_process = None
            self._defunct = True
            self._unregister()
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim.active_process = None
            self._defunct = True
            self._unregister()
            self.fail(exc)
            return
        sim.active_process = None
        if isinstance(target, Event):
            if target._fired:
                kick = sim._kick("rekick")
                kick.adopt(target._ok, target._value)
                kick.callbacks.append(self._resume)
                sim._schedule(kick, 0.0)
            else:
                target.callbacks.append(self._resume)
            self._target = target
            return
        self._defunct = True
        self._unregister()
        self.fail(SimError(f"process {self.name!r} yielded {target!r}, expected an Event"))

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        if self._defunct:
            return
        self.sim.active_process = self
        try:
            if throw is not None:
                target = self.gen.throw(throw)
            else:
                target = self.gen.send(send)
        except StopIteration as stop:
            self._defunct = True
            self._unregister()
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self._defunct = True
            self._unregister()
            self.fail(exc)
            return
        finally:
            self.sim.active_process = None
        if not isinstance(target, Event):
            self._defunct = True
            self._unregister()
            self.fail(SimError(f"process {self.name!r} yielded {target!r}, expected an Event"))
            return
        if target._fired:
            # Already fired (e.g. a stored value event): resume immediately
            # via a zero-delay kick so we don't recurse unboundedly.
            kick = self.sim._kick("rekick")
            kick.adopt(target._ok, target._value)
            kick.callbacks.append(self._resume)
            self.sim._schedule(kick, 0.0)
        else:
            target.callbacks.append(self._resume)
        self._target = target


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name=type(self).__name__)
        self.events = list(events)
        self._pending = 0
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            if ev._fired:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)
                self._pending += 1

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once every child event has fired; value is the list of values.

    A failing child fails the condition with the child's exception.
    """

    __slots__ = ("_done",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        self._done = 0
        super().__init__(sim, events)
        self._check()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._done += 1
        self._check()

    def _check(self) -> None:
        if not self._triggered and self._done == len(self.events):
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Fires when the first child fires; value is that child's value."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event._ok:
            self.succeed(event)
        else:
            self.fail(event._value)


class Simulator:
    """The event loop.  One instance per simulated cluster run.

    This is the ``heapq`` engine: a binary heap of ``(time, seq, event)``
    tuples.  :class:`SlottedSimulator` subclasses it with a calendar-queue
    event list and object pooling; :func:`create_simulator` picks between
    them (``REPRO_ENGINE``).
    """

    __slots__ = (
        "now",
        "_heap",
        "_seq",
        "active_process",
        "_event_count",
        "_kick_pool",
        "profiler",
        "process_registry",
    )

    #: Engine name as selected by ``REPRO_ENGINE`` / :func:`create_simulator`.
    kind = "heapq"
    #: True when flattened (callback state machine) fast paths should be
    #: used instead of the equivalent generator processes.  The heapq engine
    #: keeps the generator paths so an A/B run compares the full legacy
    #: configuration against the full slotted one.
    flat = False

    # Kicks recycled beyond this depth are simply dropped; the pool only has
    # to absorb the steady-state resume churn, not a worst-case burst.
    _KICK_POOL_MAX = 256

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self.active_process: Optional[Process] = None
        self._event_count = 0
        self._kick_pool: list[_Kick] = []
        # Opt-in engine instrumentation (see repro.sim.profile.SimProfiler);
        # a plain attribute so attaching costs nothing when unused.
        self.profiler = None
        # Opt-in process registry (ordered dict used as a set).  When a dict
        # is attached before processes are created, every Process registers
        # itself and deadlock reports can name who is blocked and on what.
        self.process_registry: Optional[dict] = None

    # -- construction helpers ------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def at(self, when: float, value: Any = None) -> Deadline:
        """An event firing at the absolute instant ``when`` (see Deadline)."""
        return Deadline(self, when, value)

    def call_soon(self, fn: Callable[[], None]) -> None:
        """Run ``fn()`` at the current instant, after everything already
        scheduled for it — the fire-and-forget form of a zero-delay timeout
        with one callback (and dispatched at exactly that lane position)."""
        t = Timeout(self, 0.0)
        t.callbacks.append(lambda _ev: fn())

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay``, at the position a timeout scheduled
        now for the same instant would fire."""
        t = Timeout(self, delay)
        t.callbacks.append(lambda _ev: fn())

    def process(self, gen: ProcGen, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _kick(self, name: str) -> _Kick:
        """A recycled internal resume event (see :class:`_Kick`)."""
        pool = self._kick_pool
        if pool:
            kick = pool.pop()
            kick._reset(name)
            if self.profiler is not None:
                self.profiler.count("sim.kick_reused")
            return kick
        return _Kick(self, name=name)

    def _schedule(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))
        if self.profiler is not None:
            self.profiler.heap_sample(len(self._heap))

    def _schedule_at(self, event: Event, when: float) -> None:
        """Schedule at an absolute timestamp (no ``now + delay`` rounding)."""
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, event))
        if self.profiler is not None:
            self.profiler.heap_sample(len(self._heap))

    def step(self) -> None:
        """Fire the single next event."""
        when, _, event = heapq.heappop(self._heap)
        if when < self.now:
            raise SimError("event list corrupted: time went backwards")
        self.now = when
        event._fired = True
        self._event_count += 1
        callbacks = event.callbacks
        if callbacks:
            event.callbacks = []
            if len(callbacks) == 1:
                # Fast path: almost every event has exactly one waiter (the
                # process that yielded it), so skip the loop machinery.
                callbacks[0](event)
            else:
                for cb in callbacks:
                    cb(event)
        elif not event._ok:
            # Unhandled failure: a bare event or a crashed process nobody
            # waited on — propagate instead of losing the error silently.
            raise event._value
        if type(event) is _Kick and len(self._kick_pool) < self._KICK_POOL_MAX:
            event._value = None  # drop any payload reference
            self._kick_pool.append(event)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the event list drains, a deadline passes, or an event fires.

        ``until`` may be a timestamp or an Event (e.g. a Process); when it is
        an event, its value is returned.
        """
        if isinstance(until, Event):
            sentinel = until
            while not sentinel._fired:
                if not self._heap:
                    raise self._deadlock(sentinel)
                self.step()
            if sentinel._ok:
                return sentinel._value
            raise sentinel._value
        deadline = float("inf") if until is None else float(until)
        while self._heap and self._heap[0][0] <= deadline:
            self.step()
        if until is not None and self.now < deadline:
            self.now = deadline
        return None

    def _deadlock(self, sentinel: Event) -> SimError:
        """Build the error for an empty event list with ``sentinel`` unfired.

        With a process registry attached this is a diagnosed
        :class:`DeadlockError` naming each blocked process and its wait
        target; without one, the historical bare :class:`SimError`.
        """
        msg = f"deadlock: event list empty but {sentinel!r} never fired"
        if self.process_registry is None:
            return SimError(msg)
        blocked = describe_blocked(self.process_registry)
        if blocked:
            detail = "; ".join(f"{name}: {reason}" for name, reason in blocked)
            msg = f"{msg} — blocked processes: {detail}"
        return DeadlockError(msg, blocked)

    @property
    def events_fired(self) -> int:
        return self._event_count

    @property
    def pending(self) -> int:
        """Number of scheduled-but-unfired events (engine-agnostic).

        External observers (the chaos invariant monitor, teardown drains)
        use this instead of poking at engine internals like ``_heap``.
        """
        return len(self._heap)


class CalendarQueue:
    """A calendar queue over *distinct* float timestamps (Brown 1988).

    The slotted engine stores one entry per distinct future instant (events
    sharing an instant live in one FIFO bucket beside this spine), so the
    queue only ever sees strictly increasing pops of unique keys.

    Slots partition time into ``width``-sized days; a timestamp hashes to
    slot ``int(t / width) % nslots``.  :meth:`pop` scans one *year* (all
    ``nslots`` days) forward from the last popped instant; because every
    pending timestamp is >= that instant, the first entry found within its
    own day is the global minimum.  If a whole year holds nothing (a sparse
    far-future horizon), a direct min search across all slots is the
    fallback — correct regardless of calendar tuning.  The slot count grows
    and shrinks with occupancy (``resizes`` counts them) and the width is
    re-estimated from the observed inter-event gaps on each resize.
    """

    __slots__ = (
        "_slots",
        "_nslots",
        "_width",
        "_floor",
        "_count",
        "_stamp",
        "_peek_slot",
        "_peek_stamp",
        "resizes",
    )

    def __init__(self, nslots: int = 32, width: float = 1.0):
        self._nslots = nslots
        self._width = width
        self._slots: list[list[float]] = [[] for _ in range(nslots)]
        self._floor = 0.0  # last popped instant; every entry is >= this
        self._count = 0
        # peek→pop memo: the run loop's deadline path peeks, checks the
        # horizon, then immediately pops the same minimum.  ``_stamp``
        # increments on every mutation; when :meth:`pop` sees the stamp
        # :meth:`peek` recorded, the located slot is still the minimum and
        # the second year-scan is skipped.
        self._stamp = 0
        self._peek_slot: Optional[list[float]] = None
        self._peek_stamp = -1
        self.resizes = 0

    def __len__(self) -> int:
        return self._count

    def push(self, t: float) -> None:
        insort(self._slots[int(t / self._width) % self._nslots], t)
        self._count += 1
        self._stamp += 1
        if self._count > 2 * self._nslots:
            self._resize(2 * self._nslots)

    def _locate(self) -> Optional[list[float]]:
        """The slot list whose head is the global minimum, or None."""
        if not self._count:
            return None
        width = self._width
        nslots = self._nslots
        slots = self._slots
        i = int(self._floor / width)
        for _ in range(nslots):
            slot = slots[i % nslots]
            # Same-day test via the same day function used at insertion:
            # comparing against the boundary product (i+1)*width instead is
            # NOT equivalent under floating point (the product can round to
            # a value int(t/width) still maps into day i) and skips days.
            if slot and int(slot[0] / width) <= i:
                return slot
            i += 1
        # Direct search: nothing due within a year of the floor.
        best = None
        for slot in slots:
            if slot and (best is None or slot[0] < best[0]):
                best = slot
        return best

    def peek(self) -> Optional[float]:
        slot = self._locate()
        self._peek_slot = slot
        self._peek_stamp = self._stamp
        return slot[0] if slot is not None else None

    def pop(self) -> float:
        if self._peek_stamp == self._stamp:
            slot = self._peek_slot
        else:
            slot = self._locate()
        if slot is None:
            raise IndexError("pop from empty CalendarQueue")
        self._stamp += 1
        t = slot.pop(0)
        self._floor = t
        self._count -= 1
        if self._nslots > 8 and self._count * 4 < self._nslots:
            self._resize(self._nslots // 2)
        return t

    def _resize(self, nslots: int) -> None:
        items = [t for slot in self._slots for t in slot]
        items.sort()
        self.resizes += 1
        self._stamp += 1
        self._peek_slot = None  # slot lists are rebuilt below
        width = self._width
        if len(items) > 1:
            gap = (items[-1] - items[0]) / (len(items) - 1)
            if gap > 0.0:
                # The classic heuristic: a day holds ~3 events on average.
                width = gap * 3.0
        self._nslots = nslots
        self._width = width
        slots: list[list[float]] = [[] for _ in range(nslots)]
        for t in items:  # ascending, so each slot list stays sorted
            slots[int(t / width) % nslots].append(t)
        self._slots = slots
        self._count = len(items)


class SlottedSimulator(Simulator):
    """The slotted, allocation-free engine (``REPRO_ENGINE=slotted``).

    Three structural changes against the heap engine, none of which alter
    the firing order (the A/B harness in ``benchmarks/bench_engine.py``
    enforces byte-identical results):

    * **Same-instant fast lane.**  Events due at the current instant go on
      a FIFO deque; scheduling and firing one is O(1) with no comparisons.
      Most events in a bulk-dataplane run are zero-delay (grants, kicks,
      collective releases), so this lane carries the bulk of the traffic.
    * **Calendar-queue spine.**  Future events land in an exact-timestamp
      FIFO bucket (``dict``); only *distinct* timestamps enter the
      :class:`CalendarQueue`.  Advancing the clock pops the nearest
      timestamp and moves its whole bucket onto the lane — bucket FIFO
      order is scheduling order, and later same-instant arrivals append
      behind it, which is exactly the heap's ``(time, seq)`` order.
    * **Event pooling.**  Fired ``Timeout``/``Deadline``/``Event`` objects
      (exact types only) are recycled through free lists when nothing else
      references them (``sys.getrefcount == 2`` at the recycle point), the
      way ``_Kick`` always was.  ``sim.timeout()`` then costs a pop and a
      re-arm instead of an allocation.

    The class also sets ``flat = True``: call sites with flattened
    state-machine fast paths (collective releases, device I/O, the
    sync-thread flush chain) switch off their generator bodies.
    """

    __slots__ = (
        "_lane",
        "_buckets",
        "_times",
        "_timeout_pool",
        "_deadline_pool",
        "_event_pool",
        "_call_pool",
        "_memo_when",
        "_memo_bucket",
    )

    kind = "slotted"
    flat = True

    # Each pool is bounded so a teardown burst cannot pin a run's worth of
    # events; steady-state churn fits comfortably.
    _EVENT_POOL_MAX = 512

    def __init__(self):
        super().__init__()
        self._heap = None  # poison: any heap-engine codepath fails loudly
        self._lane: deque[Event | _Call] = deque()
        self._buckets: dict[float, list[Event | _Call]] = {}
        self._times = CalendarQueue()
        self._timeout_pool: list[Timeout] = []
        self._deadline_pool: list[Deadline] = []
        self._event_pool: list[Event] = []
        self._call_pool: list[_Call] = []
        # One-entry interned-timestamp memo: the most recently touched
        # future bucket.  Shuffle waves and fabric wakes schedule dozens of
        # events at one exact instant; the memo turns those repeat appends
        # into a float compare + list append, skipping the dict probe (and
        # the CalendarQueue push that a bucket miss would re-check).
        # Invalidated at every bucket-pop site so a drained instant can
        # never swallow a new append — see step()/run() (KEEP IN SYNC).
        self._memo_when: float = -1.0
        self._memo_bucket: Optional[list] = None

    # -- pooled construction --------------------------------------------------
    def event(self, name: str = "") -> Event:
        pool = self._event_pool
        if pool:
            ev = pool.pop()
            ev.name = name
            if self.profiler is not None:
                self.profiler.count("sim.event_pool_reused")
            return ev
        if self.profiler is not None:
            self.profiler.count("sim.event_pool_alloc")
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool and delay >= 0:
            t = pool.pop()
            t.delay = delay
            t.adopt(True, value)
            self._schedule(t, delay)
            if self.profiler is not None:
                self.profiler.count("sim.event_pool_reused")
            return t
        if self.profiler is not None:
            self.profiler.count("sim.event_pool_alloc")
        return Timeout(self, delay, value)

    def at(self, when: float, value: Any = None) -> Deadline:
        pool = self._deadline_pool
        if pool and when >= self.now:
            d = pool.pop()
            d.when = when
            d.adopt(True, value)
            self._schedule_at(d, when)
            if self.profiler is not None:
                self.profiler.count("sim.event_pool_reused")
            return d
        if self.profiler is not None:
            self.profiler.count("sim.event_pool_alloc")
        return Deadline(self, when, value)

    def call_soon(self, fn: Callable[[], None]) -> None:
        pool = self._call_pool
        if pool:
            c = pool.pop()
            if self.profiler is not None:
                self.profiler.count("sim.call_pool_reused")
        else:
            c = _Call()
            if self.profiler is not None:
                self.profiler.count("sim.call_pool_alloc")
        c.fn = fn
        self._lane.append(c)

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        if delay == 0.0:
            self.call_soon(fn)
            return
        if delay < 0.0:
            raise SimError(f"cannot schedule in the past (delay={delay})")
        pool = self._call_pool
        if pool:
            c = pool.pop()
            if self.profiler is not None:
                self.profiler.count("sim.call_pool_reused")
        else:
            c = _Call()
            if self.profiler is not None:
                self.profiler.count("sim.call_pool_alloc")
        c.fn = fn
        when = self.now + delay
        if when == self._memo_when:
            self._memo_bucket.append(c)
            return
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = bucket = [c]
            self._times.push(when)
        else:
            bucket.append(c)
        self._memo_when = when
        self._memo_bucket = bucket

    # -- scheduling -----------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        if delay == 0.0:
            self._lane.append(event)
        elif delay > 0.0:
            self._schedule_at(event, self.now + delay)
        else:
            raise SimError(f"cannot schedule in the past (delay={delay})")
        if self.profiler is not None:
            self.profiler.heap_sample(len(self._lane) + len(self._buckets))

    def _schedule_at(self, event: Event, when: float) -> None:
        if when <= self.now:
            if when < self.now:
                raise SimError(f"cannot schedule in the past (when={when})")
            self._lane.append(event)
            return
        if when == self._memo_when:
            self._memo_bucket.append(event)
            return
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = bucket = [event]
            self._times.push(when)
        else:
            bucket.append(event)
        self._memo_when = when
        self._memo_bucket = bucket

    # -- the loop -------------------------------------------------------------
    def step(self) -> None:
        """Fire the single next event."""
        lane = self._lane
        if not lane:
            when = self._times.pop()  # IndexError when truly empty
            if when < self.now:
                raise SimError("event list corrupted: time went backwards")
            self.now = when
            lane.extend(self._buckets.pop(when))
            if when == self._memo_when:
                self._memo_when = -1.0
                self._memo_bucket = None
        event = lane.popleft()
        if event.__class__ is _Call:
            fn = event.fn
            event.fn = None
            if len(self._call_pool) < self._EVENT_POOL_MAX:
                self._call_pool.append(event)
            self._event_count += 1
            fn()
            return
        event._fired = True
        self._event_count += 1
        callbacks = event.callbacks
        if callbacks:
            if len(callbacks) == 1:
                # Keep the (now empty) list on the event: a recycled event
                # reuses it, saving a list allocation per fire.
                cb = callbacks[0]
                callbacks.clear()
                cb(event)
            else:
                event.callbacks = []
                for cb in callbacks:
                    cb(event)
        elif not event._ok:
            raise event._value
        # Recycle (exact types only — subclasses carry extra identity).  The
        # refcount guard proves nothing else holds the object: 2 == the
        # `event` local plus the getrefcount argument itself.
        cls = event.__class__
        if cls is Timeout:
            pool = self._timeout_pool
        elif cls is Event:
            pool = self._event_pool
        elif cls is _Kick:
            if len(self._kick_pool) < self._KICK_POOL_MAX:
                event._value = None
                self._kick_pool.append(event)
            return
        elif cls is Deadline:
            pool = self._deadline_pool
        else:
            return
        if len(pool) < self._EVENT_POOL_MAX and _refcount(event) == 2:
            # Scrub to factory state (payload refs dropped now, not at reuse).
            event._value = None
            event._ok = None
            event._triggered = False
            event._fired = False
            event.abandon = None
            pool.append(event)

    def run(self, until: Optional[float | Event] = None) -> Any:
        # Hot state bound to locals: the per-event self-attribute lookups
        # and the step() call itself are measurable at grid event volumes.
        # The loop bodies below are step() inlined — KEEP THEM IN SYNC.
        lane = self._lane
        buckets = self._buckets
        times = self._times
        timeout_pool = self._timeout_pool
        event_pool = self._event_pool
        deadline_pool = self._deadline_pool
        kick_pool = self._kick_pool
        kick_max = self._KICK_POOL_MAX
        pool_max = self._EVENT_POOL_MAX
        call_pool = self._call_pool

        if isinstance(until, Event):
            sentinel = until
            while not sentinel._fired:
                if not lane:
                    if not buckets:
                        raise self._deadlock(sentinel)
                    when = times.pop()
                    if when < self.now:
                        raise SimError("event list corrupted: time went backwards")
                    self.now = when
                    lane.extend(buckets.pop(when))
                    if when == self._memo_when:
                        self._memo_when = -1.0
                        self._memo_bucket = None
                event = lane.popleft()
                if event.__class__ is _Call:
                    fn = event.fn
                    event.fn = None
                    if len(call_pool) < pool_max:
                        call_pool.append(event)
                    self._event_count += 1
                    fn()
                    continue
                event._fired = True
                self._event_count += 1
                callbacks = event.callbacks
                if callbacks:
                    if len(callbacks) == 1:
                        cb = callbacks[0]
                        callbacks.clear()
                        cb(event)
                    else:
                        event.callbacks = []
                        for cb in callbacks:
                            cb(event)
                elif not event._ok:
                    raise event._value
                cls = event.__class__
                if cls is Timeout:
                    pool = timeout_pool
                elif cls is Event:
                    pool = event_pool
                elif cls is _Kick:
                    if len(kick_pool) < kick_max:
                        event._value = None
                        kick_pool.append(event)
                    continue
                elif cls is Deadline:
                    pool = deadline_pool
                else:
                    continue
                if len(pool) < pool_max and _refcount(event) == 2:
                    event._value = None
                    event._ok = None
                    event._triggered = False
                    event._fired = False
                    event.abandon = None
                    pool.append(event)
            if sentinel._ok:
                return sentinel._value
            raise sentinel._value

        deadline = float("inf") if until is None else float(until)
        while True:
            if not lane:
                nxt = times.peek()
                if nxt is None or nxt > deadline:
                    break
                times.pop()
                self.now = nxt
                lane.extend(buckets.pop(nxt))
                if nxt == self._memo_when:
                    self._memo_when = -1.0
                    self._memo_bucket = None
            elif self.now > deadline:
                break
            event = lane.popleft()
            if event.__class__ is _Call:
                fn = event.fn
                event.fn = None
                if len(call_pool) < pool_max:
                    call_pool.append(event)
                self._event_count += 1
                fn()
                continue
            event._fired = True
            self._event_count += 1
            callbacks = event.callbacks
            if callbacks:
                if len(callbacks) == 1:
                    cb = callbacks[0]
                    callbacks.clear()
                    cb(event)
                else:
                    event.callbacks = []
                    for cb in callbacks:
                        cb(event)
            elif not event._ok:
                raise event._value
            cls = event.__class__
            if cls is Timeout:
                pool = timeout_pool
            elif cls is Event:
                pool = event_pool
            elif cls is _Kick:
                if len(kick_pool) < kick_max:
                    event._value = None
                    kick_pool.append(event)
                continue
            elif cls is Deadline:
                pool = deadline_pool
            else:
                continue
            if len(pool) < pool_max and _refcount(event) == 2:
                event._value = None
                event._ok = None
                event._triggered = False
                event._fired = False
                event.abandon = None
                pool.append(event)
        if until is not None and self.now < deadline:
            self.now = deadline
        return None

    @property
    def pending(self) -> int:
        return len(self._lane) + sum(len(b) for b in self._buckets.values())


#: Engine registry: ``REPRO_ENGINE`` / :func:`create_simulator` names.
ENGINE_KINDS: dict[str, type[Simulator]] = {
    "slotted": SlottedSimulator,
    "heapq": Simulator,
}


def default_engine_kind() -> str:
    """Engine selected by ``REPRO_ENGINE`` (default: ``slotted``)."""
    kind = os.environ.get("REPRO_ENGINE", "slotted")
    if kind not in ENGINE_KINDS:
        raise SimError(
            f"unknown engine {kind!r} in REPRO_ENGINE "
            f"(expected one of {sorted(ENGINE_KINDS)})"
        )
    return kind


def create_simulator(kind: Optional[str] = None) -> Simulator:
    """Build the selected event-loop engine (argument beats environment)."""
    kind = kind if kind is not None else default_engine_kind()
    try:
        cls = ENGINE_KINDS[kind]
    except KeyError:
        raise SimError(
            f"unknown engine {kind!r} (expected one of {sorted(ENGINE_KINDS)})"
        ) from None
    return cls()
