"""Event loop and generator-coroutine processes (the substrate under §IV).

The engine follows the classic event-list design: a binary heap of
``(time, sequence, event)`` entries.  Processes are generators; yielding an
:class:`Event` suspends the process until the event succeeds (the event's
value is sent back into the generator) or fails (the failure exception is
thrown into it).  ``yield from`` composes sub-routines, which is how the
whole ROMIO port is written.

Determinism: two events scheduled for the same timestamp fire in scheduling
order (the monotonically increasing sequence number breaks ties), so a run
with a fixed RNG seed is exactly reproducible.

Hot-path notes (measured by ``benchmarks/bench_engine.py``): the engine
recycles its internal *kick* events — the bootstrap, re-kick, and interrupt
events that exist only to resume a process — through a small free list
instead of allocating one per resume, and :meth:`Simulator.step` fast-paths
the overwhelmingly common single-waiter case.  An opt-in
:class:`~repro.sim.profile.SimProfiler` attached as ``Simulator.profiler``
counts events, heap pressure, and kick-pool reuse without costing anything
when absent.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

ProcGen = Generator["Event", Any, Any]


class SimError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class DeadlockError(SimError):
    """The simulation can make no further progress but processes still wait.

    Raised instead of the bare "event list empty" :class:`SimError` when a
    process registry is attached (chaos/invariant runs): carries a diagnosed
    list of ``(process name, wait reason)`` pairs so a simulated-time
    deadlock reads like a stack dump instead of a silent hang.
    """

    def __init__(self, message: str, blocked: list[tuple[str, str]] | None = None):
        super().__init__(message)
        self.blocked = blocked or []


def describe_blocked(registry) -> list[tuple[str, str]]:
    """``(name, wait reason)`` for every live process in a registry."""
    out = []
    for proc in registry:
        if not proc.is_alive:
            continue
        target = proc._target
        if target is None:
            reason = "running (no wait target)"
        else:
            reason = f"waiting on {target.name or type(target).__name__}"
        out.append((proc.name, reason))
    return out


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value given by the interrupter.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* (scheduled to fire) via :meth:`succeed` or
    :meth:`fail` and *fired* when the simulator pops it off the event list
    and resumes its waiters.  Callbacks receive the event itself.
    """

    # ``abandon`` is an optional hook slot, deliberately left uninitialized on
    # the hot path: a resource/lock layer that queued a waiter event stores a
    # cleanup callable here, and :meth:`Process.interrupt` invokes it so an
    # interrupted waiter never leaves an orphaned queue entry or leaked slot.
    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_fired", "name", "abandon")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._fired = False

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimError(f"event {self!r} has no outcome yet")
        return self._ok

    @property
    def value(self) -> Any:
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._triggered:
            raise SimError(f"event {self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire by throwing ``exc`` into waiters."""
        if self._triggered:
            raise SimError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise SimError("Event.fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.sim._schedule(self, delay)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self._fired else ("triggered" if self._triggered else "pending")
        label = f" {self.name}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class _Kick(Event):
    """A pooled internal event whose only job is to resume one process.

    Kicks fire exactly once, are referenced by nothing after firing (the
    process's ``_target`` points at the *real* event, never the kick), and
    carry no identity semantics — so :meth:`Simulator.step` can safely
    recycle them through :attr:`Simulator._kick_pool`.
    """

    __slots__ = ()

    def _reset(self, name: str) -> None:
        self.name = name
        self._value = None
        self._ok = None
        self._triggered = False
        self._fired = False


class Timeout(Event):
    """An event that fires after a fixed delay; created pre-triggered."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimError(f"negative timeout {delay}")
        # Static name: formatting a per-instance label would cost more than
        # the rest of construction combined on the hot path; the repr below
        # carries the delay for debugging.
        super().__init__(sim, name="timeout")
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        sim._schedule(self, delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self._fired else "triggered"
        return f"<Timeout({self.delay:g}) {state}>"


class Deadline(Event):
    """An event that fires at an **absolute** simulated instant.

    Like :class:`Timeout` but scheduled at ``when`` rather than ``now +
    delay``: when a caller has computed a completion timestamp through a
    chain of float additions, rescheduling via a delay (``when - now``)
    would re-round and land on a slightly different instant.  The bulk
    data-plane fast path uses this to charge a fused sequence of timeouts
    as one event at *exactly* the timestamp the unfused sequence reaches.
    """

    __slots__ = ("when",)

    def __init__(self, sim: "Simulator", when: float, value: Any = None):
        if when < sim.now:
            raise SimError(f"deadline {when} is in the past (now={sim.now})")
        super().__init__(sim, name="deadline")
        self.when = when
        self._triggered = True
        self._ok = True
        self._value = value
        sim._schedule_at(self, when)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self._fired else "triggered"
        return f"<Deadline({self.when:g}) {state}>"


class Process(Event):
    """A running generator.  As an Event it fires when the generator returns.

    The event value is the generator's return value; if the generator raises,
    waiters see the exception (unless nobody waits, in which case the error
    propagates out of :meth:`Simulator.run` to avoid silent loss).
    """

    __slots__ = ("gen", "_target", "_defunct")

    def __init__(self, sim: "Simulator", gen: ProcGen, name: str = ""):
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        if not hasattr(gen, "send"):
            raise SimError(f"process body must be a generator, got {type(gen).__name__}")
        self.gen = gen
        self._target: Optional[Event] = None
        self._defunct = False
        if sim.process_registry is not None:
            sim.process_registry[self] = None
        # Bootstrap: resume the generator at time now (pooled kick).
        boot = sim._kick("init")
        boot.callbacks.append(self._resume)
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered or self._defunct:
            return
        # Detach from whatever the process was waiting on.
        target = self._target
        if target is not None:
            if self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
            hook = getattr(target, "abandon", None)
            if hook is not None:
                target.abandon = None
                hook(target)
        self._target = None
        kick = self.sim._kick("interrupt")
        kick.callbacks.append(lambda ev: self._step(throw=Interrupt(cause)))
        kick.succeed()

    # -- internal -----------------------------------------------------------
    def _unregister(self) -> None:
        reg = self.sim.process_registry
        if reg is not None:
            reg.pop(self, None)

    def _resume(self, event: Event) -> None:
        self._target = None
        if event._ok:
            self._step(send=event._value)
        else:
            self._step(throw=event._value)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        if self._defunct:
            return
        self.sim.active_process = self
        try:
            if throw is not None:
                target = self.gen.throw(throw)
            else:
                target = self.gen.send(send)
        except StopIteration as stop:
            self._defunct = True
            self._unregister()
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self._defunct = True
            self._unregister()
            self.fail(exc)
            return
        finally:
            self.sim.active_process = None
        if not isinstance(target, Event):
            self._defunct = True
            self._unregister()
            self.fail(SimError(f"process {self.name!r} yielded {target!r}, expected an Event"))
            return
        if target._fired:
            # Already fired (e.g. a stored value event): resume immediately
            # via a zero-delay kick so we don't recurse unboundedly.
            kick = self.sim._kick("rekick")
            kick._ok, kick._value = target._ok, target._value
            kick._triggered = True
            kick.callbacks.append(self._resume)
            self.sim._schedule(kick, 0.0)
        else:
            target.callbacks.append(self._resume)
        self._target = target


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name=type(self).__name__)
        self.events = list(events)
        self._pending = 0
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            if ev._fired:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)
                self._pending += 1

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once every child event has fired; value is the list of values.

    A failing child fails the condition with the child's exception.
    """

    __slots__ = ("_done",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        self._done = 0
        super().__init__(sim, events)
        self._check()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._done += 1
        self._check()

    def _check(self) -> None:
        if not self._triggered and self._done == len(self.events):
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Fires when the first child fires; value is that child's value."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event._ok:
            self.succeed(event)
        else:
            self.fail(event._value)


class Simulator:
    """The event loop.  One instance per simulated cluster run."""

    # Kicks recycled beyond this depth are simply dropped; the pool only has
    # to absorb the steady-state resume churn, not a worst-case burst.
    _KICK_POOL_MAX = 256

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self.active_process: Optional[Process] = None
        self._event_count = 0
        self._kick_pool: list[_Kick] = []
        # Opt-in engine instrumentation (see repro.sim.profile.SimProfiler);
        # a plain attribute so attaching costs nothing when unused.
        self.profiler = None
        # Opt-in process registry (ordered dict used as a set).  When a dict
        # is attached before processes are created, every Process registers
        # itself and deadlock reports can name who is blocked and on what.
        self.process_registry: Optional[dict] = None

    # -- construction helpers ------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def at(self, when: float, value: Any = None) -> Deadline:
        """An event firing at the absolute instant ``when`` (see Deadline)."""
        return Deadline(self, when, value)

    def process(self, gen: ProcGen, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _kick(self, name: str) -> _Kick:
        """A recycled internal resume event (see :class:`_Kick`)."""
        pool = self._kick_pool
        if pool:
            kick = pool.pop()
            kick._reset(name)
            if self.profiler is not None:
                self.profiler.count("sim.kick_reused")
            return kick
        return _Kick(self, name=name)

    def _schedule(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))
        if self.profiler is not None:
            self.profiler.heap_sample(len(self._heap))

    def _schedule_at(self, event: Event, when: float) -> None:
        """Schedule at an absolute timestamp (no ``now + delay`` rounding)."""
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, event))
        if self.profiler is not None:
            self.profiler.heap_sample(len(self._heap))

    def step(self) -> None:
        """Fire the single next event."""
        when, _, event = heapq.heappop(self._heap)
        if when < self.now:
            raise SimError("event list corrupted: time went backwards")
        self.now = when
        event._fired = True
        self._event_count += 1
        callbacks = event.callbacks
        if callbacks:
            event.callbacks = []
            if len(callbacks) == 1:
                # Fast path: almost every event has exactly one waiter (the
                # process that yielded it), so skip the loop machinery.
                callbacks[0](event)
            else:
                for cb in callbacks:
                    cb(event)
        elif not event._ok:
            # Unhandled failure: a bare event or a crashed process nobody
            # waited on — propagate instead of losing the error silently.
            raise event._value
        if type(event) is _Kick and len(self._kick_pool) < self._KICK_POOL_MAX:
            event._value = None  # drop any payload reference
            self._kick_pool.append(event)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the event list drains, a deadline passes, or an event fires.

        ``until`` may be a timestamp or an Event (e.g. a Process); when it is
        an event, its value is returned.
        """
        if isinstance(until, Event):
            sentinel = until
            while not sentinel._fired:
                if not self._heap:
                    raise self._deadlock(sentinel)
                self.step()
            if sentinel._ok:
                return sentinel._value
            raise sentinel._value
        deadline = float("inf") if until is None else float(until)
        while self._heap and self._heap[0][0] <= deadline:
            self.step()
        if until is not None and self.now < deadline:
            self.now = deadline
        return None

    def _deadlock(self, sentinel: Event) -> SimError:
        """Build the error for an empty event list with ``sentinel`` unfired.

        With a process registry attached this is a diagnosed
        :class:`DeadlockError` naming each blocked process and its wait
        target; without one, the historical bare :class:`SimError`.
        """
        msg = f"deadlock: event list empty but {sentinel!r} never fired"
        if self.process_registry is None:
            return SimError(msg)
        blocked = describe_blocked(self.process_registry)
        if blocked:
            detail = "; ".join(f"{name}: {reason}" for name, reason in blocked)
            msg = f"{msg} — blocked processes: {detail}"
        return DeadlockError(msg, blocked)

    @property
    def events_fired(self) -> int:
        return self._event_count
