"""Opt-in engine instrumentation: where does a simulated run spend its time?

A :class:`SimProfiler` is attached to a simulator (``sim.profiler = prof``,
or via ``Machine(config, profiler=prof)``) and collects three kinds of data
while the run executes:

* **counters** — monotone integers bumped by instrumented components
  (events scheduled, fabric recomputes, flows re-rated, kick-pool reuse);
* **timers** — cumulative wall-clock seconds inside a component, via the
  :meth:`timer` context manager (``with prof.timer("fabric.recompute"):``);
* **heap stats** — peak event-list depth, sampled on every schedule.

Everything is plain-dict state with no background machinery, so profiling
a run perturbs it as little as possible — and an *absent* profiler costs a
single ``is None`` check per instrumentation site.  The collected data
feeds ``BENCH_engine.json`` (see ``benchmarks/bench_engine.py`` and
``tools/profile_sweep.py``) and can be merged into the Chrome-trace export
of :class:`repro.sim.trace.Tracer` for side-by-side visual inspection in
``chrome://tracing`` / Perfetto.

Paper correspondence: none (engine instrumentation; see
docs/PERFORMANCE.md).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Optional

from repro.sim.core import Simulator


class SimProfiler:
    """Engine-level counters, component timers, and heap statistics."""

    def __init__(self):
        self.counters: dict[str, int] = {}
        self.timings: dict[str, float] = {}  # cumulative seconds per key
        self.timer_calls: dict[str, int] = {}
        self.heap_peak = 0

    # -- collection ----------------------------------------------------------
    def count(self, key: str, n: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + n

    @contextmanager
    def timer(self, key: str):
        """Accumulate wall-clock time spent in a component section."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.timings[key] = self.timings.get(key, 0.0) + dt
            self.timer_calls[key] = self.timer_calls.get(key, 0) + 1

    def lap(self, key: str, t0: float) -> None:
        """Record one timed span ending now — the manual alternative to
        :meth:`timer` for hot sites that cannot afford a context manager
        (``t0`` from ``time.perf_counter()``)."""
        dt = time.perf_counter() - t0
        self.timings[key] = self.timings.get(key, 0.0) + dt
        self.timer_calls[key] = self.timer_calls.get(key, 0) + 1

    def heap_sample(self, depth: int) -> None:
        if depth > self.heap_peak:
            self.heap_peak = depth

    # -- reporting -----------------------------------------------------------
    def snapshot(self, sim: Optional[Simulator] = None) -> dict[str, Any]:
        """JSON-safe summary; pass the simulator for event/clock totals."""
        out: dict[str, Any] = {
            "counters": dict(sorted(self.counters.items())),
            "timings_s": {k: self.timings[k] for k in sorted(self.timings)},
            "timer_calls": dict(sorted(self.timer_calls.items())),
            "heap_peak": self.heap_peak,
        }
        if sim is not None:
            out["events_fired"] = sim.events_fired
            out["sim_time"] = sim.now
        return out

    def to_chrome_trace_events(self) -> list[dict[str, Any]]:
        """Counter/timer totals as Chrome Trace metadata-style rows.

        Emitted as ``ph: "C"`` (counter) samples at ts=0 so they render in
        the same Perfetto view as a :class:`~repro.sim.trace.Tracer`
        timeline (see ``Tracer.to_chrome_trace(profiler=...)``).
        """
        rows: list[dict[str, Any]] = [
            {
                "name": f"profiler/{key}",
                "ph": "C",
                "ts": 0,
                "pid": 0,
                "tid": "profiler",
                "args": {"value": value},
            }
            for key, value in sorted(self.counters.items())
        ]
        rows.extend(
            {
                "name": f"profiler/{key}.wall_s",
                "ph": "C",
                "ts": 0,
                "pid": 0,
                "tid": "profiler",
                "args": {"value": self.timings[key]},
            }
            for key in sorted(self.timings)
        )
        return rows
