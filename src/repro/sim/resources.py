"""Queueing primitives built on the event kernel.

:class:`Resource` is a counted FIFO server (device queues, lock slots);
:class:`Store` is an unbounded FIFO mailbox used for message queues and the
cache sync thread's work queue.

Paper correspondence: none — queueing substrate under the §II-B server
and §IV-A device models.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator, Optional

from repro.sim.core import Event, SimError, Simulator


class Resource:
    """A counted resource with FIFO granting.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            ...
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        self._acq_name = "acquire:" + name  # precomputed: request() is hot
        self._abandon_cb = self._abandon_request  # bound once: request() is hot

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_len(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        ev = Event(self.sim, name=self._acq_name)
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        ev.abandon = self._abandon_cb
        return ev

    def _abandon_request(self, ev: Event) -> None:
        """Interrupt hook: undo a pending or granted-but-unfired request.

        Without this, interrupting a queued requester leaves its event in
        ``_waiters``; a later :meth:`release` would transfer the slot to the
        dead event and the resource would be held forever.
        """
        if ev._triggered:
            self.release()
        else:
            self._waiters.remove(ev)

    def try_acquire(self) -> bool:
        """Take a slot synchronously if one is free *and* nobody is queued.

        This is exactly the condition under which :meth:`request` grants
        immediately; the only difference is that the caller skips the
        zero-delay grant event and continues in the same simulator turn.
        FIFO fairness is preserved: with waiters present the method always
        fails, so a fast-path caller can never overtake the queue.
        """
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimError(f"release of idle resource {self.name!r}")
        if self._waiters:
            nxt = self._waiters.popleft()
            nxt.succeed()
        else:
            self._in_use -= 1

    def acquire(self) -> Generator[Event, Any, "Resource"]:
        """``yield from resource.acquire()`` convenience wrapper."""
        yield self.request()
        return self

    def use(self, duration_fn: Callable[[], float]):
        """Process body: hold the resource for ``duration_fn()`` sim-seconds."""

        def _body():
            yield self.request()
            try:
                yield self.sim.timeout(duration_fn())
            finally:
                self.release()

        return _body()


class Store:
    """Unbounded FIFO of items; ``get`` blocks until an item is available."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._get_name = "get:" + name
        self._abandon_cb = self._abandon_get  # bound once: get() is hot

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim, name=self._get_name)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        ev.abandon = self._abandon_cb
        return ev

    def _abandon_get(self, ev: Event) -> None:
        """Interrupt hook: return an undelivered item or dequeue the getter."""
        if ev._triggered:
            # The item was already popped for this getter; put it back at the
            # head (it was logically first) and hand it to the next getter.
            self._items.appendleft(ev._value)
            if self._getters:
                self._getters.popleft().succeed(self._items.popleft())
        else:
            self._getters.remove(ev)

    def try_get(self) -> Optional[Any]:
        """Non-blocking pop; None when empty."""
        if self._items:
            return self._items.popleft()
        return None
