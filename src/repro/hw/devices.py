"""Block-device service-time models.

Devices are FIFO servers: requests queue and are served one at a time (the
RAID group and the SSD both present a single logical stream at this
granularity).  Service time models distinguish the two device classes the
paper contrasts:

* :class:`HDDRaidDevice` — a BeeGFS storage target (8+2 RAID6 of SAS
  drives): a seek penalty is charged whenever a request is not sequential
  with the previous one on this target, plus streaming time at the group
  bandwidth.  Optional lognormal jitter reproduces the server-side
  variability that makes one aggregator the straggler (the paper's global
  synchronisation cost).

* :class:`SSDDevice` — the node-local SATA SSD: constant per-request
  latency plus streaming time; no seek term, no jitter worth modelling.

Paper correspondence: §IV-A device characteristics — the SATA SSD
scratch partition and the servers' RAID6 SAS targets.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.core import Simulator
from repro.sim.resources import Resource
from repro.sim.rng import RngStreams


class StorageDevice:
    """Base: FIFO queue + subclass-provided service time."""

    def __init__(self, sim: Simulator, name: str, capacity_bytes: int):
        self.sim = sim
        self.name = name
        self.capacity_bytes = int(capacity_bytes)
        self.queue = Resource(sim, capacity=1, name=f"dev:{name}")
        self.bytes_written = 0
        self.bytes_read = 0
        self.requests_served = 0
        self.busy_time = 0.0
        # Per-job accounting (repro.fleet): while a fleet job owns this
        # node, its label is set here and every request is charged to the
        # tag as well — the device-side analogue of DataServer.rpcs_by_tag.
        # Cumulative totals above are machine-lifetime; successive jobs on
        # the same node read their own tag instead of resetting them.
        # Untagged (single-job) runs never touch the dicts.
        self.job_tag: Optional[str] = None
        self.requests_by_tag: dict[str, int] = {}
        self.bytes_written_by_tag: dict[str, int] = {}
        self.bytes_read_by_tag: dict[str, int] = {}
        # Chrome-trace hook (attached by Machine when tracing is on; the
        # FTL model emits GC records through it).
        self.tracer = None
        # Fault-injection hooks (set by repro.faults.FaultInjector when a
        # schedule targets this device; a healthy run pays one None test).
        self.injector = None
        self.fault_node: Optional[int] = None
        self.read_only = False  # device failed into its end-of-life RO mode
        self.io_errors_injected = 0
        self.injected_stall_time = 0.0  # ssd_gc_pressure windows (injected)
        # Bulk data-plane flag (set by Machine under REPRO_DATAPLANE=bulk):
        # when the queue is free and no injector is attached, an op's
        # duration is fully determined at issue time, so it is charged as a
        # single timeout instead of a grant-event round trip.
        self.fast_path = False

    # subclass hooks -----------------------------------------------------------
    def service_time(self, offset: int, nbytes: int, is_write: bool) -> float:
        raise NotImplementedError

    # accounting -----------------------------------------------------------------
    def _account(self, nbytes: int, is_write: bool) -> None:
        self.requests_served += 1
        if is_write:
            self.bytes_written += nbytes
        else:
            self.bytes_read += nbytes
        tag = self.job_tag
        if tag is not None:
            self.requests_by_tag[tag] = self.requests_by_tag.get(tag, 0) + 1
            ledger = self.bytes_written_by_tag if is_write else self.bytes_read_by_tag
            ledger[tag] = ledger.get(tag, 0) + nbytes

    # generator API --------------------------------------------------------------
    def write(self, offset: int, nbytes: int):
        """Process body: queue for the device, then hold it for the service time."""
        return self._io(offset, nbytes, True)

    def read(self, offset: int, nbytes: int):
        return self._io(offset, nbytes, False)

    def _io(self, offset: int, nbytes: int, is_write: bool):
        if self.fast_path and self.injector is None and self.queue.try_acquire():
            # Bulk fast path: the slot is ours synchronously (same condition
            # under which request() grants immediately), no fault hook can
            # fire, so the completion timestamp is determined now.  All
            # device state (head position, stream table, RNG jitter) is
            # touched under the slot in grant order, exactly as on the slow
            # path; the only difference is one fewer kernel event.
            try:
                dt = self.service_time(offset, nbytes, is_write)
                self.busy_time += dt
                self._account(nbytes, is_write)
                yield self.sim.timeout(dt)
            finally:
                self.queue.release()
            return
        yield self.queue.request()
        try:
            if self.injector is not None and not is_write:
                # May raise TransientIOError; the finally still releases.
                self.injector.on_device_read(self, offset, nbytes)
            dt = self.service_time(offset, nbytes, is_write)
            if self.injector is not None and is_write:
                # GC-pressure windows stretch writes (never raise): the hook
                # returns extra stall seconds for this request.
                dt += self.injector.on_device_write(self, offset, nbytes, dt)
            self.busy_time += dt
            self._account(nbytes, is_write)
            yield self.sim.timeout(dt)
        finally:
            self.queue.release()

    # flat API -------------------------------------------------------------------
    def io_flat(self, offset: int, nbytes: int, is_write: bool, on_done) -> None:
        """Flat state-machine variant of :meth:`_io` (``sim.flat`` chains).

        Caller gates on ``self.injector is None`` (no fault hook to run, so
        the grant/service/release sequence is fully determined).  Every
        accounting step — grant, service-time draw, stream-table update,
        counters, release — runs in the *same event callback* as the
        generator version would, so the two paths are schedule-identical;
        ``on_done()`` is invoked where the generator's caller would resume.
        """
        if self.fast_path and self.queue.try_acquire():
            self._io_serve(offset, nbytes, is_write, on_done)
            return
        req = self.queue.request()
        req.callbacks.append(
            lambda _ev: self._io_serve(offset, nbytes, is_write, on_done)
        )

    def _io_serve(self, offset: int, nbytes: int, is_write: bool, on_done) -> None:
        dt = self.service_time(offset, nbytes, is_write)
        self.busy_time += dt
        self._account(nbytes, is_write)
        def _served():
            self.queue.release()
            on_done()

        self.sim.call_later(dt, _served)


class HDDRaidDevice(StorageDevice):
    """One parallel-FS storage target: RAID6 group of spinning drives."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        stream_bw: float,
        seek_time: float,
        capacity_bytes: int,
        sequential_seek_factor: float = 0.04,
        jitter_sigma: float = 0.0,
        rng: Optional[RngStreams] = None,
    ):
        super().__init__(sim, name, capacity_bytes)
        self.stream_bw = float(stream_bw)
        self.seek_time = float(seek_time)
        self.sequential_seek_factor = float(sequential_seek_factor)
        self.jitter_sigma = float(jitter_sigma)
        self.rng = rng
        self._jitter = None  # cached draw callable (lazy: rng may be swapped)
        self._head_pos: Optional[int] = None
        self.seeks = 0
        self.seeks_by_tag: dict[str, int] = {}

    def service_time(self, offset: int, nbytes: int, is_write: bool) -> float:
        sequential = self._head_pos is not None and offset == self._head_pos
        seek = self.seek_time * (self.sequential_seek_factor if sequential else 1.0)
        if not sequential:
            self.seeks += 1
            if self.job_tag is not None:
                self.seeks_by_tag[self.job_tag] = (
                    self.seeks_by_tag.get(self.job_tag, 0) + 1
                )
        self._head_pos = offset + nbytes
        base = seek + nbytes / self.stream_bw
        if self.jitter_sigma > 0.0 and self.rng is not None:
            jitter = self._jitter
            if jitter is None:
                jitter = self._jitter = self.rng.lognormal_fn(
                    f"{self.name}.jitter", self.jitter_sigma
                )
            base *= jitter()
        return base


class SSDDevice(StorageDevice):
    """Node-local SATA SSD: latency + streaming, direction-dependent bandwidth."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        write_bw: float,
        read_bw: float,
        latency: float,
        capacity_bytes: int,
    ):
        super().__init__(sim, name, capacity_bytes)
        self.write_bw = float(write_bw)
        self.read_bw = float(read_bw)
        self.latency = float(latency)

    def service_time(self, offset: int, nbytes: int, is_write: bool) -> float:
        bw = self.write_bw if is_write else self.read_bw
        return self.latency + nbytes / bw
