"""Compute node: cores, RAM with page-cache accounting, and the local SSD.

The piece that matters for the paper is the node's *buffered write path*:
collective-buffer-sized writes into the local ext4 scratch partition land in
the page cache at memory-copy speed and are drained to the SSD by a
writeback daemon, exactly like Linux dirty throttling.  A writer that would
push dirty bytes past ``dirty_ratio * ram`` blocks until writeback catches
up, so sustained over-capacity writes degrade to device speed — and short
checkpoint bursts (the paper's workloads) complete at near-memory speed,
which is where the 10–20× aggregate cache bandwidth comes from.

Paper correspondence: §IV-A node configuration (8 ranks/node, page
cache, local SSD).
"""

from __future__ import annotations


from repro.config import ClusterConfig
from repro.hw.devices import SSDDevice
from repro.hw.flash import NVMMDevice, create_node_ssd
from repro.sim.core import Event, Simulator
from repro.units import MiB


class PageCache:
    """Dirty-page ledger + writeback daemon for one node's scratch FS."""

    def __init__(
        self,
        sim: Simulator,
        device: SSDDevice,
        memcpy_bw: float,
        dirty_limit: int,
        writeback_chunk: int = 4 * MiB,
    ):
        self.sim = sim
        self.device = device
        self.memcpy_bw = float(memcpy_bw)
        self.dirty_limit = int(dirty_limit)
        self.writeback_chunk = int(writeback_chunk)
        self.dirty = 0
        self._dirty_by_file: dict[int, int] = {}
        # Dirty extents in write order per file: (offset, nbytes) at the
        # file's real offsets, so writeback presents genuine addresses to
        # the device.  The stream SSD model ignores offsets entirely (its
        # service time and event sequence are unchanged); the FTL tier
        # needs them to see the overwrite pattern cache files produce.
        self._dirty_extents: dict[int, list[tuple[int, int]]] = {}
        self._throttle_waiters: list[Event] = []
        self._flush_waiters: list[tuple[int, Event]] = []  # (file_id, event)
        self._daemon_running = False
        self._wb_offset = 0

    def buffered_write(self, file_id: int, nbytes: int, offset: int = 0):
        """Generator: absorb ``nbytes`` into the page cache, throttling if full."""
        remaining = int(nbytes)
        pos = int(offset)
        while remaining > 0:
            room = self.dirty_limit - self.dirty
            if room <= 0:
                ev = Event(self.sim, name="dirty-throttle")
                self._throttle_waiters.append(ev)
                yield ev
                continue
            chunk = min(remaining, room)
            yield self.sim.timeout(chunk / self.memcpy_bw)
            self.dirty += chunk
            self._dirty_by_file[file_id] = self._dirty_by_file.get(file_id, 0) + chunk
            self._dirty_extents.setdefault(file_id, []).append((pos, chunk))
            pos += chunk
            remaining -= chunk
            self._ensure_daemon()

    def fsync(self, file_id: int):
        """Generator: wait until this file has no dirty pages."""
        if self._dirty_by_file.get(file_id, 0) <= 0:
            return
        ev = Event(self.sim, name=f"fsync:{file_id}")
        self._flush_waiters.append((file_id, ev))
        self._ensure_daemon()
        yield ev

    def dirty_of(self, file_id: int) -> int:
        return self._dirty_by_file.get(file_id, 0)

    # -- writeback -----------------------------------------------------------
    def _ensure_daemon(self) -> None:
        if not self._daemon_running and self.dirty > 0:
            self._daemon_running = True
            self.sim.process(self._writeback(), name="writeback")

    def _writeback(self):
        while self.dirty > 0:
            # Pick the file with the most dirty pages (approximates Linux's
            # per-inode round robin; exactness does not matter for timing).
            file_id = max(self._dirty_by_file, key=self._dirty_by_file.get)
            chunk = min(self.writeback_chunk, self._dirty_by_file[file_id])
            yield from self.device.write(self._pop_extent(file_id, chunk), chunk)
            self.dirty -= chunk
            left = self._dirty_by_file[file_id] - chunk
            if left > 0:
                self._dirty_by_file[file_id] = left
            else:
                del self._dirty_by_file[file_id]
            self._wake_waiters()
        self._daemon_running = False

    def _pop_extent(self, file_id: int, chunk: int) -> int:
        """Consume ``chunk`` dirty bytes of ``file_id``'s extent FIFO and
        return the device offset to write them at (the first piece's file
        offset; one coalesced device write per chunk, as before)."""
        extents = self._dirty_extents.get(file_id)
        if not extents:  # defensive: ledger and extents should agree
            off = self._wb_offset
            self._wb_offset += chunk
            return off
        dev_off = extents[0][0]
        need = chunk
        while need > 0 and extents:
            off, size = extents[0]
            if size <= need:
                extents.pop(0)
                need -= size
            else:
                extents[0] = (off + need, size - need)
                need = 0
        if not extents:
            self._dirty_extents.pop(file_id, None)
        return dev_off

    def _wake_waiters(self) -> None:
        if self.dirty < self.dirty_limit and self._throttle_waiters:
            waiters, self._throttle_waiters = self._throttle_waiters, []
            for ev in waiters:
                ev.succeed()
        if self._flush_waiters:
            still = []
            for file_id, ev in self._flush_waiters:
                if self._dirty_by_file.get(file_id, 0) <= 0:
                    ev.succeed()
                else:
                    still.append((file_id, ev))
            self._flush_waiters = still


class ComputeNode:
    """One cluster node: id, local SSD, page cache, memory accounting."""

    def __init__(self, sim: Simulator, node_id: int, config: ClusterConfig):
        self.sim = sim
        self.node_id = node_id
        self.config = config
        # Device tier (ClusterConfig.ssd_kind / REPRO_SSD): the stream
        # SSDDevice by default (byte-identical to pre-FTL results), or the
        # page/block/LUN flash model — see repro.hw.flash and docs/DEVICES.md.
        self.ssd = create_node_ssd(sim, node_id, config)
        # Byte-addressable NVMM region (the cache_kind=nvmm WAL medium).
        # Constructing it is event-free, so nodes always carry one and the
        # extent-cache default never touches it.
        self.nvmm = NVMMDevice(sim, name=f"nvmm{node_id}", nvmm=config.nvmm)
        self.page_cache = PageCache(
            sim,
            self.ssd,
            memcpy_bw=config.ram.memcpy_bw,
            dirty_limit=int(config.ram.dirty_ratio * config.ram.capacity),
        )
        # Collective-buffer memory accounting (the paper's memory-pressure
        # discussion): peak bytes pinned by ROMIO on this node.
        self.pinned_bytes = 0
        self.peak_pinned_bytes = 0

    def pin_memory(self, nbytes: int) -> None:
        self.pinned_bytes += nbytes
        if self.pinned_bytes > self.peak_pinned_bytes:
            self.peak_pinned_bytes = self.pinned_bytes

    def unpin_memory(self, nbytes: int) -> None:
        self.pinned_bytes = max(0, self.pinned_bytes - nbytes)

    def memcpy(self, nbytes: int):
        """Generator: charge a memory copy of ``nbytes``."""
        yield self.sim.timeout(nbytes / self.config.ram.memcpy_bw)
