"""Hardware models: storage devices and compute nodes.

Paper correspondence: §IV-A testbed hardware (SSD scratch devices,
RAID6 server targets, node RAM).
"""

from repro.hw.devices import HDDRaidDevice, SSDDevice, StorageDevice
from repro.hw.flash import (
    SSD_KINDS,
    FlashSSDDevice,
    NVMMDevice,
    create_node_ssd,
    default_ssd_kind,
)
from repro.hw.node import ComputeNode

__all__ = [
    "ComputeNode",
    "FlashSSDDevice",
    "HDDRaidDevice",
    "NVMMDevice",
    "SSDDevice",
    "SSD_KINDS",
    "StorageDevice",
    "create_node_ssd",
    "default_ssd_kind",
]
