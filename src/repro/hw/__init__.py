"""Hardware models: storage devices and compute nodes."""

from repro.hw.devices import HDDRaidDevice, SSDDevice, StorageDevice
from repro.hw.node import ComputeNode

__all__ = ["ComputeNode", "HDDRaidDevice", "SSDDevice", "StorageDevice"]
