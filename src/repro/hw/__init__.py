"""Hardware models: storage devices and compute nodes.

Paper correspondence: §IV-A testbed hardware (SSD scratch devices,
RAID6 server targets, node RAM).
"""

from repro.hw.devices import HDDRaidDevice, SSDDevice, StorageDevice
from repro.hw.node import ComputeNode

__all__ = ["ComputeNode", "HDDRaidDevice", "SSDDevice", "StorageDevice"]
