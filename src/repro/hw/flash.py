"""FTL-aware flash device + byte-addressable NVMM device models.

The stream :class:`~repro.hw.devices.SSDDevice` charges latency + bytes/bw
and nothing else, so the sync thread's steady overwrite load — exactly the
access pattern where flash behaves worst — costs nothing extra.  This
module adds the realistic tier:

* :class:`FlashSSDDevice` — a page/block/LUN SSD with a page-mapped FTL:
  logical pages stripe across ``num_luns`` independently-programmable dies,
  writes append at each LUN's active block, overwrites invalidate the old
  physical page, and a greedy foreground garbage collector (victim = most
  invalid pages) reclaims erase blocks from the over-provisioning pool when
  a LUN's free pool runs low.  Program/erase asymmetry, GC relocation
  traffic and erase stalls are charged inside the host request that
  triggered them, so write amplification shows up as *service time* where
  the cache layer can feel it.  All FTL bookkeeping runs synchronously in
  :meth:`service_time` — no extra simulator events — so the device drops
  into the bulk/flat fast paths unchanged.

* :class:`NVMMDevice` — DIMM-attached persistent memory (the
  ``cache_kind=nvmm`` write-ahead-log medium): load/store bandwidth with a
  per-record persistence-barrier cost, no pages, no GC.

Device selection follows the :mod:`repro.dataplane` idiom: ``REPRO_SSD``
picks ``stream`` (default, byte-identical to the pre-FTL model) or ``ftl``;
an explicit ``ClusterConfig.ssd_kind`` wins over the environment.

Calibration sources: Liu et al., "Performance characterization of NVMe
flash devices" (arXiv:1705.03598) for flash timing constants and the
NVMM read/write asymmetry; NVCache (arXiv:2105.10397) for the WAL-mode
device role.  See docs/DEVICES.md for the parameter tables.

Paper correspondence: §IV-A node-local non-volatile devices — the
realistic tier behind the paper's SATA SSD scratch partition (ROADMAP
item 4).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.config import ClusterConfig, FlashConfig, NVMMConfig
from repro.hw.devices import SSDDevice, StorageDevice
from repro.sim.core import Simulator

#: Recognised node-SSD model kinds (the REPRO_SSD values).
SSD_KINDS = ("stream", "ftl")


def default_ssd_kind() -> str:
    """The REPRO_SSD environment selection (default: stream)."""
    kind = os.environ.get("REPRO_SSD", "stream")
    if kind not in SSD_KINDS:
        raise ValueError(f"REPRO_SSD={kind!r}: expected one of {SSD_KINDS}")
    return kind


def create_node_ssd(sim: Simulator, node_id: int, config: ClusterConfig) -> StorageDevice:
    """Build one node's scratch SSD per ``config.ssd_kind`` / ``REPRO_SSD``."""
    kind = config.ssd_kind if config.ssd_kind is not None else default_ssd_kind()
    if kind == "ftl":
        return FlashSSDDevice(
            sim,
            name=f"ssd{node_id}",
            flash=config.flash,
            capacity_bytes=config.ssd.capacity,
        )
    if kind != "stream":
        raise ValueError(f"unknown ssd_kind {kind!r}: expected one of {SSD_KINDS}")
    return SSDDevice(
        sim,
        name=f"ssd{node_id}",
        write_bw=config.ssd.write_bw,
        read_bw=config.ssd.read_bw,
        latency=config.ssd.latency,
        capacity_bytes=config.ssd.capacity,
    )


class FlashSSDDevice(StorageDevice):
    """Page/block/LUN flash with a page-mapped FTL and greedy foreground GC.

    The logical space is the advertised partition (``capacity_bytes``);
    physical flash adds ``over_provisioning`` more erase blocks.  Logical
    page ``n`` lives on LUN ``n % num_luns`` (sequential streams engage all
    dies); the writeback daemon's monotonically increasing offsets wrap
    modulo the logical space, which is how a steadily-flushing cache cycles
    the partition and ages the FTL.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        flash: FlashConfig,
        capacity_bytes: int,
    ):
        super().__init__(sim, name, capacity_bytes)
        self.flash = flash
        ps = flash.page_size
        ppb = flash.pages_per_block
        self.page_size = ps
        self.pages_per_block = ppb
        self.num_luns = flash.num_luns
        self.logical_pages = max(1, -(-int(capacity_bytes) // ps))
        # Size each LUN independently: its logical share plus at least two
        # over-provisioned blocks.  The floor of two is a liveness
        # requirement, not tuning — one block backs the GC write frontier
        # and one keeps the free pool from draining to zero, which is what
        # guarantees relocation always has a destination (see _collect).
        lpages_per_lun = -(-self.logical_pages // self.num_luns)
        lblocks_per_lun = -(-lpages_per_lun // ppb)
        op_per_lun = max(2, int(lblocks_per_lun * flash.over_provisioning))
        per_lun = lblocks_per_lun + op_per_lun
        phys_blocks = per_lun * self.num_luns
        self.num_blocks = phys_blocks
        # GC engages when a LUN's free pool dips to this many blocks; at
        # least 2 so relocation always has a block to write into.
        self.gc_reserve_blocks = max(2, int(per_lun * flash.gc_free_fraction))

        # FTL state.  Block b belongs to LUN b % num_luns; page addresses
        # are ppn = block * pages_per_block + slot.
        self._l2p: dict[int, int] = {}
        self._p2l: dict[int, int] = {}
        self._valid = [0] * phys_blocks  # valid pages per block
        self._next_slot = [0] * phys_blocks  # program point (reset by erase)
        self._free: list[list[int]] = [[] for _ in range(self.num_luns)]
        self._closed: list[set[int]] = [set() for _ in range(self.num_luns)]
        self._active: list[int] = []
        # Separate GC write frontier per LUN (lazily opened): host writes
        # and relocation never share a block, so a GC pass can always
        # budget its destination slots up front.
        self._gc_active: list[Optional[int]] = [None] * self.num_luns
        for lun in range(self.num_luns):
            blocks = list(range(lun, phys_blocks, self.num_luns))
            self._active.append(blocks[0])
            self._free[lun] = blocks[:0:-1]  # pop() hands out ascending ids

        # Accounting (surfaced via SimProfiler counters + Chrome traces).
        self.host_pages_programmed = 0
        self.gc_pages_programmed = 0
        self.pages_read = 0
        self.blocks_erased = 0
        self.gc_runs = 0
        self.gc_stall_time = 0.0
        self._profiler = getattr(sim, "profiler", None)

    @property
    def pages_programmed(self) -> int:
        """Total pages programmed (host + GC relocation)."""
        return self.host_pages_programmed + self.gc_pages_programmed

    @property
    def write_amplification(self) -> float:
        """Physical pages programmed per host page programmed (>= 1)."""
        if self.host_pages_programmed == 0:
            return 1.0
        return self.pages_programmed / self.host_pages_programmed

    # -- service-time model -------------------------------------------------------
    def service_time(self, offset: int, nbytes: int, is_write: bool) -> float:
        fc = self.flash
        if nbytes <= 0:
            return fc.read_page_time if not is_write else fc.program_page_time
        first = offset // self.page_size
        last = (offset + nbytes - 1) // self.page_size
        npages = last - first + 1
        per_lun = -(-npages // self.num_luns)  # dies work in parallel
        bus = nbytes / fc.bus_bw
        if not is_write:
            self.pages_read += npages
            return max(per_lun * fc.read_page_time, bus)
        gc_stall = 0.0
        for lpn in range(first, last + 1):
            gc_stall += self._program_lpn(lpn % self.logical_pages)
        self.host_pages_programmed += npages
        prof = self._profiler
        if prof is not None:
            prof.count("flash.host_pages", npages)
            if gc_stall > 0.0:
                prof.count("flash.gc_stall_us", int(gc_stall * 1e6))
        return max(per_lun * fc.program_page_time, bus) + gc_stall

    # -- FTL internals ------------------------------------------------------------
    def _program_lpn(self, lpn: int) -> float:
        """Map ``lpn`` onto a fresh physical page; returns GC stall seconds."""
        old = self._l2p.get(lpn)
        if old is not None:
            self._valid[old // self.pages_per_block] -= 1
            del self._p2l[old]
        lun = lpn % self.num_luns
        stall = 0.0
        if self._next_slot[self._active[lun]] >= self.pages_per_block:
            stall = self._open_new_block(lun)
        ppn = self._program_into_active(lun, lpn)
        self._l2p[lpn] = ppn
        return stall

    def _program_into_active(self, lun: int, lpn: int) -> int:
        block = self._active[lun]
        slot = self._next_slot[block]
        # Erase-before-program: a slot is programmed at most once per erase
        # cycle; _open_new_block retires full blocks before this point.
        assert slot < self.pages_per_block, "program past erase-block end"
        self._next_slot[block] = slot + 1
        self._valid[block] += 1
        ppn = block * self.pages_per_block + slot
        self._p2l[ppn] = lpn
        return ppn

    def _open_new_block(self, lun: int) -> float:
        """Retire the full active block, pull a free one, GC if pool is low."""
        self._closed[lun].add(self._active[lun])
        stall = 0.0
        while len(self._free[lun]) < self.gc_reserve_blocks and self._closed[lun]:
            gained = self._collect(lun)
            stall += gained
            if gained == 0.0:  # no victim reclaimable right now
                break
        assert self._free[lun], "flash LUN exhausted: every block fully valid"
        self._active[lun] = self._free[lun].pop()
        return stall

    def _gc_slack(self, lun: int) -> int:
        """Free slots on the GC write frontier (0 when closed / not open)."""
        block = self._gc_active[lun]
        if block is None:
            return 0
        return self.pages_per_block - self._next_slot[block]

    def _gc_program(self, lun: int, lpn: int) -> int:
        """Program one relocated page onto the GC write frontier."""
        block = self._gc_active[lun]
        if block is None or self._next_slot[block] >= self.pages_per_block:
            if block is not None:
                self._closed[lun].add(block)
            # _collect budgeted destination slots before starting the pass,
            # so the pool cannot be empty here.
            assert self._free[lun], "GC frontier switch with empty free pool"
            self._gc_active[lun] = block = self._free[lun].pop()
        slot = self._next_slot[block]
        self._next_slot[block] = slot + 1
        self._valid[block] += 1
        ppn = block * self.pages_per_block + slot
        self._p2l[ppn] = lpn
        return ppn

    def _collect(self, lun: int) -> float:
        """One greedy GC pass: relocate the most-invalid closed block."""
        ppb = self.pages_per_block
        # A full GC frontier joins the closed set (its stale pages become
        # reclaimable); a partial one stays the relocation destination.
        gc_block = self._gc_active[lun]
        if gc_block is not None and self._next_slot[gc_block] >= ppb:
            self._closed[lun].add(gc_block)
            self._gc_active[lun] = None
        # The host's active block is in the closed set while it is being
        # retired, but it must never be the victim: erasing the program
        # point would let slots be re-programmed without an erase cycle.
        candidates = self._closed[lun] - {self._active[lun]}
        if not candidates:
            return 0.0
        victim = max(candidates, key=lambda b: ppb - self._valid[b])
        moved = self._valid[victim]
        if moved >= ppb:
            return 0.0  # fully valid: erasing it frees nothing
        if moved > self._gc_slack(lun) + len(self._free[lun]) * ppb:
            return 0.0  # survivors don't fit before the victim's erase lands
        self._closed[lun].discard(victim)
        fc = self.flash
        stall = fc.erase_block_time
        if moved:
            base = victim * ppb
            survivors = [
                (ppn, self._p2l[ppn])
                for ppn in range(base, base + ppb)
                if ppn in self._p2l
            ]
            for ppn, lpn in survivors:
                del self._p2l[ppn]
                self._valid[victim] -= 1
                self._l2p[lpn] = self._gc_program(lun, lpn)
            stall += moved * (fc.read_page_time + fc.program_page_time)
            self.gc_pages_programmed += moved
        # Erase the now-empty victim back into the free pool.
        self._next_slot[victim] = 0
        self._free[lun].append(victim)
        self.blocks_erased += 1
        self.gc_runs += 1
        self.gc_stall_time += stall
        prof = self._profiler
        if prof is not None:
            prof.count("flash.gc_runs")
            prof.count("flash.gc_pages", moved)
            prof.count("flash.blocks_erased")
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                self.sim.now,
                "flash",
                "gc",
                device=self.name,
                lun=lun,
                victim=victim,
                moved=moved,
                stall=stall,
            )
        return stall

    def stats(self) -> dict[str, float]:
        return {
            "host_pages_programmed": self.host_pages_programmed,
            "gc_pages_programmed": self.gc_pages_programmed,
            "pages_read": self.pages_read,
            "blocks_erased": self.blocks_erased,
            "gc_runs": self.gc_runs,
            "gc_stall_time": self.gc_stall_time,
            "write_amplification": self.write_amplification,
        }


class NVMMDevice(StorageDevice):
    """Byte-addressable persistent memory: load/store + persistence barrier.

    No pages, no FTL: service time is latency + bytes/bandwidth with the
    read/write asymmetry of 3D-XPoint-class media.  ``persist_barrier`` is
    the CLWB+SFENCE drain the WAL pays once per appended record (charged by
    :class:`repro.cache.nvmlog.NVMMWriteLog`, not per device request).
    """

    def __init__(self, sim: Simulator, name: str, nvmm: NVMMConfig):
        super().__init__(sim, name, nvmm.capacity)
        self.nvmm = nvmm
        self.read_bw = float(nvmm.read_bw)
        self.write_bw = float(nvmm.write_bw)
        self.latency = float(nvmm.latency)
        self.persist_barrier = float(nvmm.persist_barrier)
        # Bytes of the log region currently reserved by NVMMWriteLog
        # instances on this node (headers included).
        self.log_used = 0

    def service_time(self, offset: int, nbytes: int, is_write: bool) -> float:
        bw = self.write_bw if is_write else self.read_bw
        return self.latency + nbytes / bw
