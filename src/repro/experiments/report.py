"""Rendering of figure data as text tables and EXPERIMENTS.md sections."""

from __future__ import annotations

from typing import Mapping

from repro.romio.profiling import PHASES


def render_bandwidth_table(
    title: str, data: Mapping[str, Mapping[str, float]], unit: str = "GiB/s"
) -> str:
    """Rows = <agg>_<cbsize> configs, columns = the three series."""
    series = list(next(iter(data.values())).keys())
    widths = [max(len("config"), max(len(k) for k in data))] + [
        max(len(s), 8) for s in series
    ]
    lines = [title, ""]
    header = "  ".join(
        name.ljust(w) for name, w in zip(["config"] + series, widths)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label, row in data.items():
        cells = [label.ljust(widths[0])]
        for s, w in zip(series, widths[1:]):
            cells.append(f"{row[s]:.2f}".rjust(w))
        lines.append("  ".join(cells))
    lines.append(f"(values in {unit})")
    return "\n".join(lines)


def render_breakdown_table(title: str, data: Mapping[str, Mapping[str, float]]) -> str:
    """Rows = configs, columns = collective-I/O phases (seconds)."""
    phases = [p for p in PHASES if any(p in row for row in data.values())]
    widths = [max(len("config"), max(len(k) for k in data))] + [
        max(len(p), 8) for p in phases
    ]
    lines = [title, ""]
    header = "  ".join(n.ljust(w) for n, w in zip(["config"] + phases, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for label, row in data.items():
        cells = [label.ljust(widths[0])]
        for p, w in zip(phases, widths[1:]):
            cells.append(f"{row.get(p, 0.0):.3f}".rjust(w))
        lines.append("  ".join(cells))
    lines.append("(per-phase seconds, straggler view, summed over the run's files)")
    return "\n".join(lines)


def render_bars(
    title: str, data: Mapping[str, Mapping[str, float]], series: str, width: int = 50
) -> str:
    """A quick ASCII bar chart of one series (e.g. 'BW Cache Enable')."""
    values = {label: row[series] for label, row in data.items()}
    peak = max(values.values()) or 1.0
    lines = [f"{title} — {series}", ""]
    for label, value in values.items():
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(f"{label:>9s} | {bar} {value:.2f}")
    return "\n".join(lines)


def shape_checks_bandwidth(data: Mapping[str, Mapping[str, float]]) -> dict[str, bool]:
    """The paper's qualitative claims, checkable on any bandwidth figure."""
    labels = list(data)
    enabled = [data[l]["BW Cache Enable"] for l in labels]
    disabled = [data[l]["BW Cache Disable"] for l in labels]
    tbw = [data[l]["TBW Cache Enable"] for l in labels]
    agg_of = lambda l: int(l.split("_")[0])  # noqa: E731
    big_aggs = [i for i, l in enumerate(labels) if agg_of(l) >= 16]
    small_aggs = [i for i, l in enumerate(labels) if agg_of(l) == 8]
    return {
        # cache wins clearly once enough aggregators flush in parallel
        "cache_speedup_at_16plus_aggregators": all(
            enabled[i] > 1.5 * disabled[i] for i in big_aggs
        ),
        # at 8 aggregators the flush cannot hide: perceived < theoretical
        "not_hidden_at_8_aggregators": all(
            enabled[i] < 0.9 * tbw[i] for i in small_aggs
        ),
        # the theoretical series grows with the number of aggregators
        "tbw_scales_with_aggregators": max(
            tbw[i] for i in small_aggs
        ) < max(tbw[i] for i in big_aggs),
    }
