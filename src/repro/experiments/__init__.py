"""Experiment harness: sweep runner and figure/table regeneration."""

from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSpec,
    default_scale,
    run_experiment,
    run_experiment_cached,
)

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "default_scale",
    "run_experiment",
    "run_experiment_cached",
]
