"""Experiment harness: sweep runner and figure/table regeneration.

Paper correspondence: the §IV evaluation harness (sweeps, figures,
tables); not itself part of the paper's design.
"""

from repro.experiments.parallel import SweepError, SweepRunner, default_jobs
from repro.experiments.resultcache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    cache_key,
    config_fingerprint,
    default_cache,
)
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSpec,
    default_scale,
    resolve_config,
    run_experiment,
    run_experiment_cached,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ExperimentResult",
    "ExperimentSpec",
    "ResultCache",
    "SweepError",
    "SweepRunner",
    "cache_key",
    "config_fingerprint",
    "default_cache",
    "default_jobs",
    "default_scale",
    "resolve_config",
    "run_experiment",
    "run_experiment_cached",
]
