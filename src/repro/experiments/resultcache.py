"""Content-addressed on-disk cache for experiment results.

A measurement point is fully determined by its :class:`ExperimentSpec` *and*
the :class:`~repro.config.ClusterConfig` it runs on (the simulation is
deterministic), so a result can be reused across processes and sessions as
long as both are part of the cache key.  The key is the SHA-256 of the
canonicalised spec, the config fingerprint, and :data:`CACHE_SCHEMA_VERSION`;
bumping the version constant invalidates every existing entry, which is the
intended escape hatch whenever a code change alters simulation output without
touching spec or config.

Records are single JSON files under ``.repro_cache/<key[:2]>/<key>.json``
(override the root with ``REPRO_CACHE_DIR``; disable the default cache
entirely with ``REPRO_CACHE=0``).  Writes are atomic (tmp file + rename) so
concurrent sweep processes cannot corrupt each other; a corrupt or truncated
record is treated as a miss, never as an error.

Paper correspondence: none (harness infrastructure); it memoises §IV
measurement points across runs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.config import ClusterConfig
    from repro.experiments.runner import ExperimentResult, ExperimentSpec

# Bump whenever simulation output changes for an unchanged (spec, config) —
# e.g. a calibration constant moves out of ClusterConfig, or a cost model is
# corrected.  Old entries become unreachable (different key) and are never
# read again.
# v2: fault results gained invariant_violations and drain-to-quiescence
# (shifts the diagnostic event count); chaos trial results joined the cache.
# v3: the key gained the *resolved* device tier — REPRO_SSD / REPRO_CACHE_KIND
# select different device models without touching spec or config, so the
# environment defaults must be baked into the address or an ftl-mode run
# would alias a stream-mode entry.
CACHE_SCHEMA_VERSION = 3

DEFAULT_CACHE_DIR = ".repro_cache"


def _canonical_json(obj) -> str:
    """Deterministic JSON for hashing: sorted keys, no whitespace drift."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def config_fingerprint(config: "ClusterConfig") -> str:
    """SHA-256 over the full nested config (every calibration constant)."""
    payload = _canonical_json(dataclasses.asdict(config))
    return hashlib.sha256(payload.encode()).hexdigest()


def cache_key(spec: "ExperimentSpec", config: "ClusterConfig") -> str:
    """Content address of one measurement point.

    Two sweeps share an entry iff the spec, the *entire* cluster config, and
    the cache schema version all match — this is what fixes the historical
    memo bug where the config was ignored and two different clusters could
    alias to one result.
    """
    from repro.hw.flash import default_ssd_kind
    from repro.romio.hints import default_cache_kind

    payload = _canonical_json(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "spec": dataclasses.asdict(spec),
            "config": config_fingerprint(config),
            # Device-tier selections that default through the environment:
            # an explicit config/hint value already fingerprints via spec or
            # config, but the env-resolved defaults must be keyed here.
            "ssd_kind": config.ssd_kind or default_ssd_kind(),
            "cache_kind": default_cache_kind(),
        }
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Durable spec+config → :class:`ExperimentResult` store.

    ``get``/``put`` never raise on cache-file problems: a missing, corrupt,
    mismatched, or unreadable record is a miss (counted in ``corrupt`` when
    the file existed but could not be used).  Hit/miss/store counters make
    "a warm re-run performs zero simulations" directly assertable.
    """

    def __init__(
        self,
        root: Optional[str | Path] = None,
        enabled: bool = True,
        result_cls: Optional[type] = None,
    ):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.enabled = enabled
        # The record type deserialised on a hit.  Defaults to
        # ExperimentResult (resolved lazily: import cycle); the fault sweep
        # stores FaultExperimentResult records in its own cache instance.
        self._result_cls = result_cls
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    @classmethod
    def disabled(cls, result_cls: Optional[type] = None) -> "ResultCache":
        """A no-op cache: every get misses, every put is dropped."""
        return cls(enabled=False, result_cls=result_cls)

    def _record_cls(self) -> type:
        if self._result_cls is None:
            from repro.experiments.runner import ExperimentResult

            self._result_cls = ExperimentResult
        return self._result_cls

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(
        self, spec: "ExperimentSpec", config: "ClusterConfig"
    ) -> Optional["ExperimentResult"]:
        if not self.enabled:
            self.misses += 1
            return None
        key = cache_key(spec, config)
        path = self._path(key)
        try:
            record = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            self.corrupt += 1
            self.misses += 1
            return None
        try:
            if record["schema"] != CACHE_SCHEMA_VERSION or record["key"] != key:
                raise ValueError("stale or mismatched record")
            result = self._record_cls().from_dict(record["result"])
        except (KeyError, TypeError, ValueError):
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(
        self,
        spec: "ExperimentSpec",
        config: "ClusterConfig",
        result: "ExperimentResult",
    ) -> Optional[Path]:
        if not self.enabled:
            return None
        key = cache_key(spec, config)
        path = self._path(key)
        record = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "config_fingerprint": config_fingerprint(config),
            "result": result.to_dict(),
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(record, fh)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            return None  # read-only FS, disk full, ...: caching is best-effort
        self.stores += 1
        return path

    def clear(self) -> int:
        """Delete every record under the cache root; return the count."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("??/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
        }


def default_cache() -> ResultCache:
    """The process-default cache: ``.repro_cache/`` unless ``REPRO_CACHE=0``."""
    enabled = os.environ.get("REPRO_CACHE", "1") != "0"
    return ResultCache(enabled=enabled)
