"""Post-run machine utilisation summaries.

Collects, from a finished :class:`~repro.machine.Machine`, the counters the
paper's discussion touches on: how much data moved over the fabric, how busy
each storage tier was, lock contention, MDS load, and per-node SSD and
memory-pressure figures.  The experiment harness attaches one of these to
results on request, and the report module renders it.

Paper correspondence: §IV diagnostics (utilisation next to the figures'
bandwidth numbers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine import Machine
from repro.units import fmt_size


@dataclass(frozen=True)
class TierStats:
    bytes_written: int
    bytes_read: int
    busy_time: float
    requests: int


@dataclass(frozen=True)
class MachineStats:
    sim_time: float
    fabric_bytes: int
    messages_sent: int
    ssd: TierStats
    pfs_targets: TierStats
    server_rpcs: int
    mds_ops: int
    lock_acquires: int
    lock_contended: int
    peak_pinned: int
    scratch_used: int
    events: int

    def summary(self) -> str:
        lines = [
            f"simulated time      {self.sim_time:.2f}s  ({self.events} events)",
            f"fabric traffic      {fmt_size(self.fabric_bytes)}",
            f"node SSDs           wrote {fmt_size(self.ssd.bytes_written)}, "
            f"read {fmt_size(self.ssd.bytes_read)}, busy {self.ssd.busy_time:.1f}s",
            f"PFS RAID targets    wrote {fmt_size(self.pfs_targets.bytes_written)}, "
            f"busy {self.pfs_targets.busy_time:.1f}s over {self.server_rpcs} RPCs",
            f"metadata server     {self.mds_ops} ops",
            f"extent locks        {self.lock_acquires} acquires, "
            f"{self.lock_contended} contended",
            f"peak pinned memory  {fmt_size(self.peak_pinned)} on the busiest node",
            f"scratch in use      {fmt_size(self.scratch_used)}",
        ]
        return "\n".join(lines)


def collect(machine: Machine) -> MachineStats:
    """Snapshot a machine's counters after a run."""
    ssd = TierStats(
        bytes_written=sum(n.ssd.bytes_written for n in machine.nodes),
        bytes_read=sum(n.ssd.bytes_read for n in machine.nodes),
        busy_time=sum(n.ssd.busy_time for n in machine.nodes),
        requests=sum(n.ssd.requests_served for n in machine.nodes),
    )
    targets = TierStats(
        bytes_written=sum(s.target.bytes_written for s in machine.pfs.servers),
        bytes_read=sum(s.target.bytes_read for s in machine.pfs.servers),
        busy_time=sum(s.target.busy_time for s in machine.pfs.servers),
        requests=sum(s.target.requests_served for s in machine.pfs.servers),
    )
    return MachineStats(
        sim_time=machine.now,
        fabric_bytes=int(machine.fabric.bytes_moved),
        messages_sent=0,  # transports are per-world; callers may overwrite
        ssd=ssd,
        pfs_targets=targets,
        server_rpcs=sum(s.rpcs_served for s in machine.pfs.servers),
        mds_ops=machine.pfs.mds.ops,
        lock_acquires=machine.pfs.locks.acquires,
        lock_contended=machine.pfs.locks.contended_acquires,
        peak_pinned=max(n.peak_pinned_bytes for n in machine.nodes),
        scratch_used=sum(fs.used for fs in machine.local_fs),
        events=machine.sim.events_fired,
    )
