"""Fault-matrix experiments: Table-II configurations under injected faults.

Each measurement point runs a small multi-phase workload twice on identical
cluster configs: once fault-free (the *reference*) and once under a
:class:`~repro.faults.FaultSchedule`.  If the faulted job is killed by an
injected aggregator crash, a follow-up *recovery job* re-opens every file on
the same machine — the collective open replays orphaned cache extents — and
the point reports recovery time and bytes replayed.  End-to-end integrity is
asserted by comparing per-file SHA-256 checksums of the persisted global
files against the reference run: the recovered (or degraded) job must be
byte-identical to the fault-free one.

Workloads here are deliberately tiny (tens of KiB per rank, payload-carrying
so checksums are meaningful); the point is correctness under faults, not the
paper's bandwidth figures.  Results flow through the same
:class:`~repro.experiments.parallel.SweepRunner` / result-cache machinery as
the Table-II sweeps, so fault matrices are cached, deduplicated, and
byte-identical between serial and ``--jobs N`` execution.

Paper correspondence: none — an extension hardening the §III cache
against injected faults (see DESIGN.md §9).
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field, replace
from typing import Optional

from repro.analysis.bandwidth import perceived_bandwidth
from repro.config import ClusterConfig, small_testbed
from repro.faults import FaultSchedule, FaultSpec, JobAborted
from repro.machine import Machine
from repro.mpi.process import MPIWorld
from repro.romio.file import MPIIOLayer
from repro.romio.hints import CACHE_KINDS
from repro.sim.core import DeadlockError, Interrupt
from repro.units import KiB
from repro.workloads import collperf_workload, flashio_workload, ior_workload
from repro.workloads.phases import multi_phase_body

FAULT_BENCHMARKS = ("coll_perf", "flash_io", "ior")
FAULT_CACHE_MODES = ("disabled", "enabled", "coherent")

#: The default fault matrix, in presentation order.
SCENARIOS = (
    "baseline",
    "ssd_flaky",
    "server_stall",
    "link_degraded",
    "ssd_loss",
    "gc_pressure",
    "nvmm_torn",
    "agg_crash",
)


@dataclass(frozen=True)
class FaultExperimentSpec:
    """One fault-matrix point: a workload config plus a fault schedule."""

    benchmark: str
    scenario: str = "baseline"
    faults: tuple = ()
    sync_rpc_timeout: float = 0.0
    cache_mode: str = "enabled"
    cache_kind: str = "extent"  # cache backend: extent file or NVMM WAL
    flush_flag: str = "flush_onclose"
    aggregators: int = 4
    cb_buffer: int = 256 * KiB
    sync_chunk: int = 64 * KiB
    num_nodes: int = 4
    procs_per_node: int = 2
    num_files: int = 2
    compute_delay: float = 0.05
    scale: float = 1.0
    seed: int = 2016

    def __post_init__(self):
        if self.benchmark not in FAULT_BENCHMARKS:
            raise ValueError(f"unknown benchmark {self.benchmark!r}")
        if self.cache_mode not in FAULT_CACHE_MODES:
            raise ValueError(f"unknown cache mode {self.cache_mode!r}")
        if self.cache_kind not in CACHE_KINDS:
            raise ValueError(f"unknown cache kind {self.cache_kind!r}")
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))

    @property
    def label(self) -> str:
        return f"{self.scenario}/{self.cache_mode}"

    def scaled(self, **kw) -> "FaultExperimentSpec":
        return replace(self, **kw)


@dataclass
class FaultExperimentResult:
    """Outcome of one fault-matrix point."""

    spec: FaultExperimentSpec
    integrity_ok: bool  # faulted/recovered files byte-identical to reference
    crashed: bool  # the faulted job was killed by an injected crash
    recovered: bool  # a recovery job ran (implies crashed)
    bw_ref: float  # fault-free perceived bandwidth [B/s]
    bw_faulted: float  # perceived bandwidth under faults (0.0 if crashed)
    recovery_time: float  # sim seconds spent replaying orphaned extents
    bytes_replayed: int
    files_recovered: int
    retries: int  # sync-thread transient-fault retries
    requeues: int  # sync requests re-queued after exhausted retries
    sync_failures: int  # sync requests abandoned entirely
    degraded: int  # cache states that fell back to direct writes
    faults_injected: int
    checksums: dict = field(default_factory=dict)  # per-file hex digests
    events: int = 0  # kernel events fired in the faulted run
    invariant_violations: list = field(default_factory=list)  # from the monitor

    @property
    def degraded_bw_ratio(self) -> float:
        """Faulted / reference bandwidth (0.0 when the faulted job died)."""
        return self.bw_faulted / self.bw_ref if self.bw_ref > 0 else 0.0

    def to_dict(self) -> dict:
        d = asdict(self)
        d["spec"] = asdict(self.spec)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "FaultExperimentResult":
        fields_ = dict(d)
        spec = dict(fields_["spec"])
        spec["faults"] = tuple(FaultSpec.from_dict(f) for f in spec.get("faults", ()))
        fields_["spec"] = FaultExperimentSpec(**spec)
        return cls(**fields_)


# -- workload / config -------------------------------------------------------
def build_fault_workload(spec: FaultExperimentSpec, nprocs: int):
    """A tiny payload-carrying workload so checksums verify real bytes."""
    s = max(spec.scale, 0.0)
    if spec.benchmark == "coll_perf":
        block = max(8 * KiB, (int(128 * KiB * s) // (2 * KiB)) * 2 * KiB)
        return collperf_workload(
            nprocs, block_bytes=block, with_data=True, seed=spec.seed
        )
    if spec.benchmark == "flash_io":
        blocks = max(1, int(round(2 * s)))
        return flashio_workload(
            nprocs, blocks_per_proc=blocks, with_data=True, seed=spec.seed
        )
    return ior_workload(
        nprocs,
        block_bytes=64 * KiB,
        segments=max(1, int(round(2 * s))),
        with_data=True,
        seed=spec.seed,
    )


def fault_hints_for(spec: FaultExperimentSpec) -> dict[str, str]:
    hints = {
        "cb_nodes": str(spec.aggregators),
        "cb_buffer_size": str(spec.cb_buffer),
        "romio_cb_write": "enable",
        "striping_unit": str(256 * KiB),
        "striping_factor": "4",
        "ind_wr_buffer_size": str(spec.sync_chunk),
    }
    if spec.cache_mode in ("enabled", "coherent"):
        hints.update(
            e10_cache="enable" if spec.cache_mode == "enabled" else "coherent",
            e10_cache_flush_flag=spec.flush_flag,
            e10_cache_discard_flag="enable",
            e10_cache_kind=spec.cache_kind,
        )
    return hints


def resolve_fault_config(
    spec: FaultExperimentSpec, config: Optional[ClusterConfig] = None
) -> ClusterConfig:
    """The cluster a fault point runs on (explicit config wins unchanged)."""
    if config is not None:
        return config
    return small_testbed(
        num_nodes=spec.num_nodes, procs_per_node=spec.procs_per_node, seed=spec.seed
    )


def _file_prefix(spec: FaultExperimentSpec) -> str:
    return f"/global/fault_{spec.benchmark}_{spec.scenario}_{spec.cache_mode}_"


def _checksums(machine: Machine, paths: list[str]) -> dict[str, str]:
    out = {}
    for path in paths:
        if machine.pfs.exists(path):
            img = machine.pfs.lookup(path).data_image()
            out[path] = hashlib.sha256(img.tobytes()).hexdigest()
    return out


# -- the point runner --------------------------------------------------------
def run_fault_experiment(
    spec: FaultExperimentSpec, config: Optional[ClusterConfig] = None
) -> FaultExperimentResult:
    cfg = resolve_fault_config(spec, config)
    hints = fault_hints_for(spec)
    deferred = spec.cache_mode != "disabled"
    prefix = _file_prefix(spec)
    paths = [f"{prefix}{k}" for k in range(spec.num_files)]

    def _body(layer, workload):
        return multi_phase_body(
            layer,
            workload,
            hints,
            num_files=spec.num_files,
            compute_delay=spec.compute_delay,
            deferred_close=deferred,
            file_prefix=prefix,
        )

    # Reference: the same point, fault-free, on an identical fresh cluster.
    ref_machine = Machine(cfg)
    ref_world = MPIWorld(ref_machine)
    ref_layer = MPIIOLayer(
        ref_machine, ref_world.comm, driver="beegfs", exchange_mode="model"
    )
    workload = build_fault_workload(spec, cfg.num_ranks)
    ref_timings = ref_world.run(_body(ref_layer, workload))
    ref_checks = _checksums(ref_machine, paths)
    bw_ref = perceived_bandwidth(
        ref_timings, workload.file_size, include_last_phase=True
    )

    # Faulted run.  Validate the schedule against the actual cluster shape
    # before any machine is built — a bad target fails fast as ValueError.
    schedule = FaultSchedule(faults=spec.faults, sync_rpc_timeout=spec.sync_rpc_timeout)
    schedule.validate(
        num_nodes=cfg.num_nodes,
        num_servers=cfg.pfs.num_data_servers,
        num_ranks=cfg.num_ranks,
    )
    # Imported here, not at module top: repro.chaos.runner builds on this
    # module's helpers, so a top-level import either way would be circular.
    from repro.chaos.invariants import InvariantMonitor

    machine = Machine(cfg, faults=schedule if schedule else None)
    monitor = InvariantMonitor(machine)
    world = MPIWorld(machine)
    layer = MPIIOLayer(machine, world.comm, driver="beegfs", exchange_mode="model")
    crashed = False
    recovered = False
    bw_faulted = 0.0
    try:
        timings = world.run(_body(layer, workload))
        bw_faulted = perceived_bandwidth(
            timings, workload.file_size, include_last_phase=True
        )
    except Interrupt as exc:
        if not isinstance(exc.cause, JobAborted):
            raise
        crashed = True

    if crashed:
        # Recovery job on the *same machine* (the cluster survives; only the
        # MPI job died): re-open every file collectively — the open path
        # replays orphaned cache extents — then close.
        live = [p for p in paths if machine.pfs.exists(p)]
        rec_world = MPIWorld(machine)
        rec_layer = MPIIOLayer(
            machine, rec_world.comm, driver="beegfs", exchange_mode="model"
        )

        def recovery_body(ctx):
            for path in live:
                fh = yield from rec_layer.open(ctx.rank, path, {})
                yield from fh.close()

        rec_world.run(recovery_body)
        recovered = True

    # Drain background activity to quiescence, then audit the global
    # invariants (byte conservation, journal/lock coherence) — a scheduled
    # fault scenario must uphold them exactly like a chaos schedule.
    try:
        monitor.drain()
    except DeadlockError as exc:
        monitor.record(f"deadlock: {exc}")
    monitor.check_quiescent()

    checks = _checksums(machine, paths)
    integrity_ok = bool(checks) and checks == ref_checks
    rec_stats = machine.recovery.stats()
    cache_stats = machine.cache_stats
    return FaultExperimentResult(
        spec=spec,
        integrity_ok=integrity_ok,
        crashed=crashed,
        recovered=recovered,
        bw_ref=bw_ref,
        bw_faulted=bw_faulted,
        recovery_time=rec_stats["recovery_time"],
        bytes_replayed=rec_stats["bytes_replayed"],
        files_recovered=rec_stats["files_recovered"],
        retries=cache_stats.get("retries", 0),
        requeues=cache_stats.get("requeues", 0),
        sync_failures=cache_stats.get("sync_failures", 0),
        degraded=cache_stats.get("degraded", 0),
        faults_injected=machine.faults.injected if machine.faults else 0,
        checksums=checks,
        events=machine.sim.events_fired,
        invariant_violations=list(monitor.violations),
    )


def _run_fault_point(spec: FaultExperimentSpec, config: Optional[ClusterConfig]):
    """Module-level so the process pool can pickle it by reference."""
    return run_fault_experiment(spec, config)


# -- the matrix --------------------------------------------------------------
def scenario_faults(
    scenario: str, spec: FaultExperimentSpec
) -> tuple[tuple[FaultSpec, ...], float]:
    """The fault list + sync RPC timeout for a named scenario."""
    last = spec.num_files - 1
    if scenario == "baseline":
        return (), 0.0
    if scenario == "ssd_flaky":
        # Node 0's SSD returns transient read errors for the whole run
        # (duration 0 = open-ended); the sync thread's retry loop rerolls
        # until each chunk gets through.
        return (FaultSpec("ssd_io_error", target=0, start=0.0, rate=0.3),), 0.0
    if scenario == "server_stall":
        # Server 0 wedges across the deferred-close flush window; the sync
        # path's client watchdog converts the hang into retryable timeouts.
        return (
            FaultSpec("server_stall", target=0, start=0.04, duration=0.06),
        ), 0.01
    if scenario == "link_degraded":
        return (
            FaultSpec("link_degrade", target=1, start=0.0, duration=0.1, factor=0.25),
        ), 0.0
    if scenario == "ssd_loss":
        # Node 0's scratch device drops to read-only almost immediately:
        # cached extents drain, new writes fall back to the direct path.
        return (FaultSpec("ssd_device_loss", target=0, start=0.002),), 0.0
    if scenario == "gc_pressure":
        # Foreground GC competes with host writes on node 0's flash across
        # the whole run: a pure 3x write slowdown, never an error — the
        # cache keeps working, just slower (bw_ratio is the interesting
        # number here).
        return (
            FaultSpec("ssd_gc_pressure", target=0, start=0.0, duration=0.2, factor=3.0),
        ), 0.0
    if scenario == "nvmm_torn":
        # Torn WAL appends on node 0 while the job writes (cache_kind=nvmm;
        # fault_matrix_specs pins the backend).  The cache retries each torn
        # record; recovery CRC-skips the garbage.
        return (
            FaultSpec("nvmm_torn_write", target=0, start=0.0, duration=0.2, rate=0.3),
        ), 0.0
    if scenario == "agg_crash":
        # Kill the job shortly after the last write completes — mid
        # flush/close, when cached extents are guaranteed to be in flight.
        return (
            FaultSpec("aggregator_crash", on_event=f"write_done:{last}", delay=2e-3),
        ), 0.0
    raise ValueError(f"unknown fault scenario {scenario!r}; have {SCENARIOS}")


def fault_matrix_specs(
    benchmarks: tuple[str, ...] = ("ior",),
    scenarios: tuple[str, ...] = SCENARIOS,
    cache_mode: str = "enabled",
    scale: float = 1.0,
    seed: int = 2016,
) -> list[FaultExperimentSpec]:
    """Build the fault matrix: benchmarks × scenarios at one cache mode."""
    specs = []
    for bench in benchmarks:
        for scenario in scenarios:
            base = FaultExperimentSpec(
                benchmark=bench,
                scenario=scenario,
                cache_mode=cache_mode,
                # The torn-append scenario only means anything on the WAL
                # backend; every other scenario keeps the extent default.
                cache_kind="nvmm" if scenario == "nvmm_torn" else "extent",
                scale=scale,
                seed=seed,
            )
            faults, timeout = scenario_faults(scenario, base)
            specs.append(base.scaled(faults=faults, sync_rpc_timeout=timeout))
    return specs


def render_fault_table(results: list[FaultExperimentResult]) -> str:
    """Fixed-width summary table, one row per point."""
    header = (
        f"{'benchmark':<10} {'scenario':<14} {'ok':<3} {'crash':<6} "
        f"{'bw_ratio':>8} {'replayed':>9} {'t_rec[ms]':>9} "
        f"{'retry':>5} {'requeue':>7} {'degr':>4}"
    )
    lines = [header, "-" * len(header)]
    for r in results:
        lines.append(
            f"{r.spec.benchmark:<10} {r.spec.scenario:<14} "
            f"{'y' if r.integrity_ok else 'N':<3} "
            f"{'y' if r.crashed else '-':<6} "
            f"{r.degraded_bw_ratio:>8.3f} {r.bytes_replayed:>9} "
            f"{r.recovery_time * 1e3:>9.2f} "
            f"{r.retries:>5} {r.requeues:>7} {r.degraded:>4}"
        )
    return "\n".join(lines)
