"""Regeneration of every evaluation figure (paper Figs. 4–10).

Each ``figN_*`` function runs (or reuses) the measurement points it needs
and returns a plain data structure — config label → series → value — that
:mod:`repro.experiments.report` renders as the ASCII equivalent of the
paper's plot and that EXPERIMENTS.md records.

Figure map (paper → here):

* Fig. 4  — coll_perf perceived bandwidth (3 series)     → :func:`fig4_collperf_bandwidth`
* Fig. 5  — coll_perf breakdown, cache enabled           → :func:`fig5_collperf_breakdown_cache`
* Fig. 6  — coll_perf breakdown, cache disabled          → :func:`fig6_collperf_breakdown_nocache`
* Fig. 7  — Flash-IO perceived bandwidth (3 series)      → :func:`fig7_flashio_bandwidth`
* Fig. 8  — Flash-IO breakdown, cache enabled            → :func:`fig8_flashio_breakdown`
* Fig. 9  — IOR perceived bandwidth incl. last sync      → :func:`fig9_ior_bandwidth`
* Fig. 10 — IOR breakdown, cache enabled                 → :func:`fig10_ior_breakdown`
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.runner import (
    PAPER_AGGREGATORS,
    PAPER_CB_SIZES,
    ExperimentSpec,
    default_scale,
    run_experiment_cached,
)
from repro.units import GiB, MiB

# A reduced sweep that keeps the paper's corners and the 8-aggregator story;
# the full 4×5 grid is used when REPRO_FULL_SWEEP=1 (see bench modules).
QUICK_AGGREGATORS = (8, 16, 32, 64)
QUICK_CB_SIZES = (4 * MiB, 16 * MiB, 64 * MiB)

SERIES = ("BW Cache Disable", "BW Cache Enable", "TBW Cache Enable")
_MODE_OF = {
    "BW Cache Disable": "disabled",
    "BW Cache Enable": "enabled",
    "TBW Cache Enable": "theoretical",
}


def sweep_labels(aggregators: Sequence[int], cb_sizes: Sequence[int]) -> list[str]:
    return [f"{a}_{cb // MiB}M" for a in aggregators for cb in cb_sizes]


def _bandwidth_figure(
    benchmark: str,
    include_last: bool,
    aggregators: Sequence[int],
    cb_sizes: Sequence[int],
    scale: Optional[float],
) -> dict[str, dict[str, float]]:
    scale = default_scale() if scale is None else scale
    out: dict[str, dict[str, float]] = {}
    for agg in aggregators:
        for cb in cb_sizes:
            label = f"{agg}_{cb // MiB}M"
            row: dict[str, float] = {}
            for series in SERIES:
                spec = ExperimentSpec(
                    benchmark,
                    aggregators=agg,
                    cb_buffer=cb,
                    cache_mode=_MODE_OF[series],
                    scale=scale,
                )
                result = run_experiment_cached(spec)
                if series == "TBW Cache Enable":
                    value = result.tbw
                else:
                    value = result.bw_incl_last if include_last else result.bw
                row[series] = value / GiB
            out[label] = row
    return out


def _breakdown_figure(
    benchmark: str,
    cache_mode: str,
    aggregators: Sequence[int],
    cb_sizes: Sequence[int],
    scale: Optional[float],
) -> dict[str, dict[str, float]]:
    scale = default_scale() if scale is None else scale
    out: dict[str, dict[str, float]] = {}
    for agg in aggregators:
        for cb in cb_sizes:
            spec = ExperimentSpec(
                benchmark,
                aggregators=agg,
                cb_buffer=cb,
                cache_mode=cache_mode,
                scale=scale,
            )
            result = run_experiment_cached(spec)
            out[spec.label] = dict(result.breakdown)
    return out


# -- the seven figures -----------------------------------------------------------


def fig4_collperf_bandwidth(aggregators=QUICK_AGGREGATORS, cb_sizes=QUICK_CB_SIZES, scale=None):
    """coll_perf perceived bandwidth; the last write phase is excluded
    (paper Section IV-B)."""
    return _bandwidth_figure("coll_perf", False, aggregators, cb_sizes, scale)


def fig5_collperf_breakdown_cache(aggregators=QUICK_AGGREGATORS, cb_sizes=QUICK_CB_SIZES, scale=None):
    return _breakdown_figure("coll_perf", "enabled", aggregators, cb_sizes, scale)


def fig6_collperf_breakdown_nocache(aggregators=QUICK_AGGREGATORS, cb_sizes=QUICK_CB_SIZES, scale=None):
    return _breakdown_figure("coll_perf", "disabled", aggregators, cb_sizes, scale)


def fig7_flashio_bandwidth(aggregators=QUICK_AGGREGATORS, cb_sizes=QUICK_CB_SIZES, scale=None):
    return _bandwidth_figure("flash_io", False, aggregators, cb_sizes, scale)


def fig8_flashio_breakdown(aggregators=QUICK_AGGREGATORS, cb_sizes=QUICK_CB_SIZES, scale=None):
    return _breakdown_figure("flash_io", "enabled", aggregators, cb_sizes, scale)


def fig9_ior_bandwidth(aggregators=QUICK_AGGREGATORS, cb_sizes=QUICK_CB_SIZES, scale=None):
    """IOR perceived bandwidth *including* the last phase's non-hidden sync
    (paper Section IV-D)."""
    return _bandwidth_figure("ior", True, aggregators, cb_sizes, scale)


def fig10_ior_breakdown(aggregators=QUICK_AGGREGATORS, cb_sizes=QUICK_CB_SIZES, scale=None):
    return _breakdown_figure("ior", "enabled", aggregators, cb_sizes, scale)


FULL_SWEEP = (PAPER_AGGREGATORS, PAPER_CB_SIZES)
