"""Regeneration of every evaluation figure (paper Figs. 4–10).

Each ``figN_*`` function runs (or reuses) the measurement points it needs
and returns a plain data structure — config label → series → value — that
:mod:`repro.experiments.report` renders as the ASCII equivalent of the
paper's plot and that EXPERIMENTS.md records.

All figures draw their points through a
:class:`~repro.experiments.parallel.SweepRunner` (pass one, or the module
default is used: ``REPRO_JOBS`` workers over the ``.repro_cache/`` disk
cache), so a figure is one deduplicated sweep — the breakdown figures reuse
the bandwidth figures' simulations across processes, not just within one.

Figure map (paper → here):

* Fig. 4  — coll_perf perceived bandwidth (3 series)     → :func:`fig4_collperf_bandwidth`
* Fig. 5  — coll_perf breakdown, cache enabled           → :func:`fig5_collperf_breakdown_cache`
* Fig. 6  — coll_perf breakdown, cache disabled          → :func:`fig6_collperf_breakdown_nocache`
* Fig. 7  — Flash-IO perceived bandwidth (3 series)      → :func:`fig7_flashio_bandwidth`
* Fig. 8  — Flash-IO breakdown, cache enabled            → :func:`fig8_flashio_breakdown`
* Fig. 9  — IOR perceived bandwidth incl. last sync      → :func:`fig9_ior_bandwidth`
* Fig. 10 — IOR breakdown, cache enabled                 → :func:`fig10_ior_breakdown`

Paper correspondence: §IV — each generator regenerates one evaluation
figure at a configurable scale.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.parallel import SweepRunner, default_jobs
from repro.experiments.runner import (
    PAPER_AGGREGATORS,
    PAPER_CB_SIZES,
    ExperimentResult,
    ExperimentSpec,
    default_scale,
)
from repro.units import GiB, MiB

# A reduced sweep that keeps the paper's corners and the 8-aggregator story;
# the full 4×5 grid is used when REPRO_FULL_SWEEP=1 (see bench modules).
QUICK_AGGREGATORS = (8, 16, 32, 64)
QUICK_CB_SIZES = (4 * MiB, 16 * MiB, 64 * MiB)

SERIES = ("BW Cache Disable", "BW Cache Enable", "TBW Cache Enable")
_MODE_OF = {
    "BW Cache Disable": "disabled",
    "BW Cache Enable": "enabled",
    "TBW Cache Enable": "theoretical",
}

_default_runner: Optional[SweepRunner] = None


def get_default_runner() -> SweepRunner:
    """The shared figure runner: ``REPRO_JOBS`` workers, default disk cache."""
    global _default_runner
    if _default_runner is None:
        _default_runner = SweepRunner(jobs=default_jobs())
    return _default_runner


def set_default_runner(runner: Optional[SweepRunner]) -> None:
    """Install (or with ``None`` reset) the runner figure calls fall back to."""
    global _default_runner
    _default_runner = runner


def sweep_labels(aggregators: Sequence[int], cb_sizes: Sequence[int]) -> list[str]:
    return [f"{a}_{cb // MiB}M" for a in aggregators for cb in cb_sizes]


def _sweep(
    benchmark: str,
    modes: Sequence[str],
    aggregators: Sequence[int],
    cb_sizes: Sequence[int],
    scale: float,
    runner: Optional[SweepRunner],
) -> dict[tuple[str, str], ExperimentResult]:
    """One deduplicated sweep over (label, mode); results keyed the same."""
    runner = get_default_runner() if runner is None else runner
    specs = [
        ExperimentSpec(
            benchmark,
            aggregators=agg,
            cb_buffer=cb,
            cache_mode=mode,
            scale=scale,
        )
        for agg in aggregators
        for cb in cb_sizes
        for mode in modes
    ]
    results = runner.run(specs)
    return {(s.label, s.cache_mode): r for s, r in zip(specs, results)}


def _bandwidth_figure(
    benchmark: str,
    include_last: bool,
    aggregators: Sequence[int],
    cb_sizes: Sequence[int],
    scale: Optional[float],
    runner: Optional[SweepRunner] = None,
) -> dict[str, dict[str, float]]:
    scale = default_scale() if scale is None else scale
    modes = tuple(_MODE_OF[s] for s in SERIES)
    by_point = _sweep(benchmark, modes, aggregators, cb_sizes, scale, runner)
    out: dict[str, dict[str, float]] = {}
    for label in sweep_labels(aggregators, cb_sizes):
        row: dict[str, float] = {}
        for series in SERIES:
            result = by_point[(label, _MODE_OF[series])]
            if series == "TBW Cache Enable":
                value = result.tbw
            else:
                value = result.bw_incl_last if include_last else result.bw
            row[series] = value / GiB
        out[label] = row
    return out


def _breakdown_figure(
    benchmark: str,
    cache_mode: str,
    aggregators: Sequence[int],
    cb_sizes: Sequence[int],
    scale: Optional[float],
    runner: Optional[SweepRunner] = None,
) -> dict[str, dict[str, float]]:
    scale = default_scale() if scale is None else scale
    by_point = _sweep(benchmark, (cache_mode,), aggregators, cb_sizes, scale, runner)
    return {
        label: dict(by_point[(label, cache_mode)].breakdown)
        for label in sweep_labels(aggregators, cb_sizes)
    }


# -- the seven figures -----------------------------------------------------------


def fig4_collperf_bandwidth(
    aggregators=QUICK_AGGREGATORS, cb_sizes=QUICK_CB_SIZES, scale=None, runner=None
):
    """coll_perf perceived bandwidth; the last write phase is excluded
    (paper Section IV-B)."""
    return _bandwidth_figure("coll_perf", False, aggregators, cb_sizes, scale, runner)


def fig5_collperf_breakdown_cache(
    aggregators=QUICK_AGGREGATORS, cb_sizes=QUICK_CB_SIZES, scale=None, runner=None
):
    return _breakdown_figure(
        "coll_perf", "enabled", aggregators, cb_sizes, scale, runner
    )


def fig6_collperf_breakdown_nocache(
    aggregators=QUICK_AGGREGATORS, cb_sizes=QUICK_CB_SIZES, scale=None, runner=None
):
    return _breakdown_figure(
        "coll_perf", "disabled", aggregators, cb_sizes, scale, runner
    )


def fig7_flashio_bandwidth(
    aggregators=QUICK_AGGREGATORS, cb_sizes=QUICK_CB_SIZES, scale=None, runner=None
):
    return _bandwidth_figure("flash_io", False, aggregators, cb_sizes, scale, runner)


def fig8_flashio_breakdown(
    aggregators=QUICK_AGGREGATORS, cb_sizes=QUICK_CB_SIZES, scale=None, runner=None
):
    return _breakdown_figure(
        "flash_io", "enabled", aggregators, cb_sizes, scale, runner
    )


def fig9_ior_bandwidth(
    aggregators=QUICK_AGGREGATORS, cb_sizes=QUICK_CB_SIZES, scale=None, runner=None
):
    """IOR perceived bandwidth *including* the last phase's non-hidden sync
    (paper Section IV-D)."""
    return _bandwidth_figure("ior", True, aggregators, cb_sizes, scale, runner)


def fig10_ior_breakdown(
    aggregators=QUICK_AGGREGATORS, cb_sizes=QUICK_CB_SIZES, scale=None, runner=None
):
    return _breakdown_figure("ior", "enabled", aggregators, cb_sizes, scale, runner)


FULL_SWEEP = (PAPER_AGGREGATORS, PAPER_CB_SIZES)

# name → (function, kind, title); kind selects the renderer ("bandwidth"
# tables carry the three series, "breakdown" tables the per-phase seconds).
FIGURES = {
    "fig4": (fig4_collperf_bandwidth, "bandwidth", "coll_perf perceived bandwidth"),
    "fig5": (
        fig5_collperf_breakdown_cache,
        "breakdown",
        "coll_perf breakdown (cache enabled)",
    ),
    "fig6": (
        fig6_collperf_breakdown_nocache,
        "breakdown",
        "coll_perf breakdown (cache disabled)",
    ),
    "fig7": (fig7_flashio_bandwidth, "bandwidth", "Flash-IO perceived bandwidth"),
    "fig8": (fig8_flashio_breakdown, "breakdown", "Flash-IO breakdown (cache enabled)"),
    "fig9": (
        fig9_ior_bandwidth,
        "bandwidth",
        "IOR perceived bandwidth (incl. last phase)",
    ),
    "fig10": (fig10_ior_breakdown, "breakdown", "IOR breakdown (cache enabled)"),
}
