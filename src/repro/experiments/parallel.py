"""Parallel sweep execution: fan measurement points over a process pool.

Every measurement point is an independent, single-threaded, deterministic
simulation, so the paper's 4×5 aggregator×buffer grid × 3 cache modes × 3
benchmarks (~180 points) is embarrassingly parallel: :class:`SweepRunner`
fans the misses out over a :class:`~concurrent.futures.ProcessPoolExecutor`
and collects results **in input order**, so ``--jobs 8`` output is
byte-identical to a serial run.

Robustness model (CI is the main consumer):

* identical specs in one sweep are simulated once (figure sweeps share
  points between bandwidth and breakdown tables);
* points already in the :class:`~repro.experiments.resultcache.ResultCache`
  are not simulated at all;
* a point whose worker crashes (or whose pool dies — e.g. the OOM killer
  taking out a worker breaks every pending future) is retried once *inline*
  in the parent process, where a plain exception with a traceback beats a
  ``BrokenProcessPool``;
* a per-point ``timeout`` (seconds, pool mode only) turns a hung simulation
  into a retryable failure instead of a wedged pipeline.  The stuck worker
  process is abandoned, not killed — acceptable for CI, where the job has a
  global timeout anyway.

Only if a point fails *again* on the inline retry does the sweep raise
:class:`SweepError`, carrying every failed spec.

Paper correspondence: none (harness infrastructure); it fans the §IV
measurement grid over worker processes.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Callable, Iterable, Optional, Sequence

from repro.config import ClusterConfig
from repro.experiments.resultcache import ResultCache, cache_key, default_cache
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSpec,
    resolve_config,
    run_experiment,
)

# Progress-callback sources, in the order a point can encounter them.
SOURCE_CACHE = "cache"  # served from the on-disk result cache
SOURCE_RUN = "run"  # simulated (pool worker or inline serial path)
SOURCE_RETRY = "retry"  # simulated inline after a crash/timeout
SOURCE_DUP = "dup"  # duplicate of an earlier spec in the same sweep

ProgressFn = Callable[[int, int, ExperimentSpec, str], None]


class SweepError(RuntimeError):
    """One or more measurement points failed even after the inline retry."""

    def __init__(self, failures: Sequence[tuple[ExperimentSpec, BaseException]]):
        self.failures = list(failures)
        detail = "; ".join(
            f"{spec.benchmark}/{spec.label}/{spec.cache_mode}: {err!r}"
            for spec, err in self.failures
        )
        super().__init__(f"{len(self.failures)} sweep point(s) failed: {detail}")


def _run_point(spec: ExperimentSpec, config: Optional[ClusterConfig]):
    """Module-level so the process pool can pickle it by reference."""
    return run_experiment(spec, config)


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` env var, default 1 (serial)."""
    return max(1, int(os.environ.get("REPRO_JOBS", "1")))


class SweepRunner:
    """Run a list of :class:`ExperimentSpec`s, possibly in parallel.

    Parameters
    ----------
    jobs:
        Pool width.  ``1`` (the default) runs everything inline in this
        process — same code path minus the pool, which keeps debugging sane.
    cache:
        A :class:`ResultCache`; ``None`` selects the process default
        (``.repro_cache/``, honouring ``REPRO_CACHE``/``REPRO_CACHE_DIR``).
        Pass ``ResultCache.disabled()`` to force every point to simulate.
    timeout:
        Per-point seconds before a pool worker is declared hung.
    retries:
        Inline re-runs granted to a crashed/hung point (0 or 1 make sense).
    progress:
        ``f(done, total, spec, source)`` called once per point as it
        resolves; ``source`` is one of the ``SOURCE_*`` constants.
    worker:
        The per-point function ``(spec, config) -> ExperimentResult``.
        Overridable for tests; must be picklable when ``jobs > 1``.
    resolver:
        ``(spec, config) -> ClusterConfig``: the config a spec actually runs
        on, used for cache keying.  Defaults to the Table-II sweep's
        :func:`~repro.experiments.runner.resolve_config`; the fault sweep
        passes its own.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        progress: Optional[ProgressFn] = None,
        worker: Callable = _run_point,
        resolver: Callable = resolve_config,
    ):
        self.jobs = max(1, int(jobs))
        self.cache = default_cache() if cache is None else cache
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.progress = progress
        self.worker = worker
        self.resolver = resolver
        self.simulated = 0  # points actually run (pool + inline + retries)

    def _report(self, done: int, total: int, spec: ExperimentSpec, source: str):
        if self.progress is not None:
            self.progress(done, total, spec, source)

    def run(
        self,
        specs: Iterable[ExperimentSpec],
        config: Optional[ClusterConfig] = None,
    ) -> list[ExperimentResult]:
        """Resolve every spec to a result, preserving input order."""
        specs = list(specs)
        total = len(specs)
        results: list[Optional[ExperimentResult]] = [None] * total
        done = 0

        # Classify: cache hit, first occurrence (simulate), or duplicate.
        first_of: dict[str, int] = {}
        dup_of: dict[int, int] = {}
        to_run: list[int] = []
        for i, spec in enumerate(specs):
            key = cache_key(spec, self.resolver(spec, config))
            if key in first_of:
                dup_of[i] = first_of[key]
                continue
            first_of[key] = i
            hit = self.cache.get(spec, self.resolver(spec, config))
            if hit is not None:
                results[i] = hit
                done += 1
                self._report(done, total, spec, SOURCE_CACHE)
            else:
                to_run.append(i)

        failures: list[tuple[int, BaseException]] = []
        if self.jobs == 1 or len(to_run) <= 1:
            for i in to_run:
                try:
                    results[i] = self.worker(specs[i], config)
                    self.simulated += 1
                    done += 1
                    self._report(done, total, specs[i], SOURCE_RUN)
                except Exception as err:
                    failures.append((i, err))
        elif to_run:
            pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(to_run)))
            hung = False
            try:
                futures = {
                    i: pool.submit(self.worker, specs[i], config) for i in to_run
                }
                # Collect in submission order: deterministic, and each
                # future's wait doubles as that point's timeout budget.
                for i in to_run:
                    try:
                        results[i] = futures[i].result(timeout=self.timeout)
                        self.simulated += 1
                        done += 1
                        self._report(done, total, specs[i], SOURCE_RUN)
                    except FuturesTimeoutError as err:
                        futures[i].cancel()
                        hung = True
                        failures.append((i, err))
                    except Exception as err:  # worker raise or BrokenProcessPool
                        failures.append((i, err))
            finally:
                # A clean join on the normal path; only abandon the pool when
                # a worker is known to be hung (waiting would defeat the
                # per-point timeout).
                pool.shutdown(wait=not hung, cancel_futures=True)

        # Inline retry: a fresh, traceable attempt in this process.
        still_failed: list[tuple[ExperimentSpec, BaseException]] = []
        for i, err in failures:
            if self.retries > 0:
                try:
                    results[i] = self.worker(specs[i], config)
                    self.simulated += 1
                    done += 1
                    self._report(done, total, specs[i], SOURCE_RETRY)
                    continue
                except Exception as retry_err:
                    err = retry_err
            still_failed.append((specs[i], err))
        if still_failed:
            raise SweepError(still_failed)

        # Persist fresh results, then satisfy duplicates by reference.
        for i in to_run:
            self.cache.put(specs[i], self.resolver(specs[i], config), results[i])
        for i, j in dup_of.items():
            results[i] = results[j]
            done += 1
            self._report(done, total, specs[i], SOURCE_DUP)
        return results  # type: ignore[return-value]  # every slot is filled
