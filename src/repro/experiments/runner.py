"""Experiment runner: one paper measurement point = one simulated run.

A point is ``(benchmark, aggregators, cb_buffer, cache mode)`` under the
paper's fixed conditions: 512 ranks on 64 nodes, four equal files per run,
30 s compute delay, stripe 4 MB × 4, 512 KiB sync buffer (Section IV).

``scale`` shrinks the data volume (and the compute delay with it) so the
full figure sweeps run in CI time; all bandwidth ratios are preserved
because every relevant cost is bandwidth-dominated.  ``REPRO_SCALE=1``
reproduces the paper's full 32 GB files.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, replace
from typing import Optional

from repro.analysis.bandwidth import perceived_bandwidth
from repro.analysis.breakdown import breakdown_from_profiles, merge_breakdowns
from repro.config import ClusterConfig, deep_er_testbed
from repro.experiments.resultcache import ResultCache, cache_key, default_cache
from repro.machine import Machine
from repro.mpi.process import MPIWorld
from repro.romio.file import MPIIOLayer
from repro.units import KiB, MiB
from repro.workloads import collperf_workload, flashio_workload, ior_workload
from repro.workloads.phases import PhaseTiming, multi_phase_body

BENCHMARKS = ("coll_perf", "flash_io", "ior")
CACHE_MODES = ("disabled", "enabled", "theoretical")

# The paper's sweep (Section IV): aggregators 8..64, buffers 4..64 MB.
PAPER_AGGREGATORS = (8, 16, 32, 64)
PAPER_CB_SIZES = (4 * MiB, 8 * MiB, 16 * MiB, 32 * MiB, 64 * MiB)


def default_scale() -> float:
    """Experiment scale factor; override with REPRO_SCALE (1.0 = paper size)."""
    return float(os.environ.get("REPRO_SCALE", "0.125"))


@dataclass(frozen=True)
class ExperimentSpec:
    benchmark: str
    aggregators: int = 64
    cb_buffer: int = 16 * MiB
    cache_mode: str = "disabled"
    num_files: int = 4
    compute_delay: float = 30.0
    scale: float = 1.0
    flush_batch_chunks: int = 16
    seed: int = 2016

    def __post_init__(self):
        if self.benchmark not in BENCHMARKS:
            raise ValueError(f"unknown benchmark {self.benchmark!r}")
        if self.cache_mode not in CACHE_MODES:
            raise ValueError(f"unknown cache mode {self.cache_mode!r}")

    @property
    def label(self) -> str:
        """The paper's x-axis label: <aggregators>_<coll_bufsize>."""
        return f"{self.aggregators}_{self.cb_buffer // MiB}M"

    def scaled(self, **kw) -> "ExperimentSpec":
        return replace(self, **kw)


@dataclass
class ExperimentResult:
    spec: ExperimentSpec
    file_size: int
    bw: float  # Eq. (2), excluding the last phase's non-hidden sync
    bw_incl_last: float  # including it (the IOR measurement)
    breakdown: dict[str, float]  # per-phase seconds, straggler view, all files
    write_time: float  # Σ max-rank write time over phases
    close_wait: float  # Σ max-rank close wait (non-hidden sync)
    peak_pinned: int  # max collective-buffer memory pinned on any node
    bytes_persisted: int
    events: int

    @property
    def tbw(self) -> float:
        """Bandwidth ignoring all synchronisation waits (cache write rate)."""
        return self.spec.num_files * self.file_size / self.write_time

    def to_dict(self) -> dict:
        """JSON-safe form; floats survive the round trip bit-for-bit
        (json uses repr, Python's shortest exact float representation)."""
        d = asdict(self)
        d["spec"] = asdict(self.spec)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ExperimentResult":
        fields = dict(d)
        fields["spec"] = ExperimentSpec(**fields["spec"])
        return cls(**fields)


def build_workload(spec: ExperimentSpec, nprocs: int, with_data: bool = False):
    """Build the benchmark recipe at the spec's scale.

    Scaling must preserve each pattern's *locality structure* (which ranks
    feed which aggregator nodes), because that is what differentiates the
    three benchmarks' shuffle costs.  coll_perf shrinks the per-rank block
    (the pattern stays globally strided); Flash-IO shrinks blocks-per-proc
    (per-variable rank-contiguous layout unchanged); IOR shrinks the
    *segment count*, keeping the paper's 8 MB transfer size so the
    block→file-domain→node mapping is identical to full scale.
    """
    s = spec.scale
    if spec.benchmark == "coll_perf":
        # Round to a 2 KiB multiple (the z-run granularity) so the block
        # factorises into a whole number of contiguous runs at any scale.
        block = max(64 * KiB, (int(64 * MiB * s) // (2 * KiB)) * 2 * KiB)
        return collperf_workload(nprocs, block_bytes=block, with_data=with_data)
    if spec.benchmark == "flash_io":
        blocks = max(1, int(round(80 * s)))
        return flashio_workload(nprocs, blocks_per_proc=blocks, with_data=with_data)
    return ior_workload(
        nprocs,
        block_bytes=8 * MiB,
        segments=max(1, int(round(8 * s))),
        with_data=with_data,
    )


def hints_for(spec: ExperimentSpec) -> dict[str, str]:
    hints = {
        "cb_nodes": str(spec.aggregators),
        "cb_buffer_size": str(spec.cb_buffer),
        "romio_cb_write": "enable",
        "striping_unit": str(4 * MiB),
        "striping_factor": "4",
        "ind_wr_buffer_size": str(512 * KiB),
    }
    if spec.cache_mode == "enabled":
        hints.update(
            e10_cache="enable",
            e10_cache_flush_flag="flush_immediate",
            e10_cache_discard_flag="enable",
        )
    elif spec.cache_mode == "theoretical":
        hints.update(
            e10_cache="enable",
            e10_cache_flush_flag="flush_none",
            e10_cache_discard_flag="enable",
        )
    return hints


def resolve_config(
    spec: ExperimentSpec, config: Optional[ClusterConfig] = None
) -> ClusterConfig:
    """The cluster a spec actually runs on.

    An explicit config wins unchanged.  Otherwise the testbed is derived from
    the spec exactly as :func:`run_experiment` has always done — shared here
    so cache keys fingerprint the *same* config the simulation uses.
    """
    if config is not None:
        return config
    cfg = deep_er_testbed(flush_batch_chunks=spec.flush_batch_chunks, seed=spec.seed)
    if spec.scale != 1.0:
        # Fixed-size buffers must shrink with the data volume or they
        # absorb a disproportionate share of a scaled-down run.
        cfg = cfg.scaled(
            pfs=replace(
                cfg.pfs,
                server_cache_bytes=max(
                    64 * MiB, int(cfg.pfs.server_cache_bytes * spec.scale)
                ),
            )
        )
    return cfg


def run_experiment(
    spec: ExperimentSpec,
    config: Optional[ClusterConfig] = None,
    profiler=None,
) -> ExperimentResult:
    """Simulate one measurement point.

    ``profiler`` (a :class:`~repro.sim.profile.SimProfiler`) attaches
    engine instrumentation to the run — used by ``tools/profile_sweep.py``;
    it does not change the simulation or its result.
    """
    cfg = resolve_config(spec, config)
    machine = Machine(cfg, profiler=profiler)
    world = MPIWorld(machine)
    layer = MPIIOLayer(machine, world.comm, driver="beegfs", exchange_mode="model")
    workload = build_workload(spec, cfg.num_ranks)
    # The compute delay must shrink by the *achieved* data scale (workload
    # granularity floors — e.g. one IOR segment — can make it coarser than
    # requested), or hiding behaviour would not be scale-invariant.
    full_bytes_per_rank = {"coll_perf": 64 * MiB, "ior": 64 * MiB, "flash_io": 60 * MiB}
    effective_scale = workload.bytes_per_rank / full_bytes_per_rank[spec.benchmark]
    compute = spec.compute_delay * effective_scale
    body = multi_phase_body(
        layer,
        workload,
        hints_for(spec),
        num_files=spec.num_files,
        compute_delay=compute,
        deferred_close=spec.cache_mode != "disabled",
        file_prefix=f"/global/{spec.benchmark}_{spec.label}_{spec.cache_mode}_",
    )
    timings: list[list[PhaseTiming]] = world.run(body)
    bw = perceived_bandwidth(timings, workload.file_size, include_last_phase=False)
    bw_incl = perceived_bandwidth(timings, workload.file_size, include_last_phase=True)
    parts = []
    write_time = 0.0
    close_wait = 0.0
    for k in range(spec.num_files):
        write_time += max(t[k].write_time + t[k].open_time for t in timings)
        close_wait += max(t[k].close_wait for t in timings)
    for slots in layer._open_slots.values():
        for fd in slots:
            parts.append(
                breakdown_from_profiles([p.profile for p in fd.profilers.values()])
            )
    return ExperimentResult(
        spec=spec,
        file_size=workload.file_size,
        bw=bw,
        bw_incl_last=bw_incl,
        breakdown=merge_breakdowns(parts),
        write_time=write_time,
        close_wait=close_wait,
        peak_pinned=max(n.peak_pinned_bytes for n in machine.nodes),
        bytes_persisted=machine.pfs.bytes_persisted,
        events=machine.sim.events_fired,
    )


# In-process memo on top of the disk cache, keyed by the full content
# address (spec + config fingerprint + schema version) so two calls with
# different ClusterConfigs can never alias — the old ExperimentSpec-keyed
# dict returned the first config's result for both.
_MEMO: dict[str, ExperimentResult] = {}


def clear_memo() -> None:
    _MEMO.clear()


def run_experiment_cached(
    spec: ExperimentSpec,
    config: Optional[ClusterConfig] = None,
    cache: Optional[ResultCache] = None,
) -> ExperimentResult:
    """Memoised runner — figure benches share measurement points.

    Within a process, repeated calls return the identical object.  Across
    processes and sessions, results round-trip through the on-disk
    :class:`ResultCache` (pass ``cache`` to control placement, or set
    ``REPRO_CACHE=0`` to keep everything in memory).
    """
    cfg = resolve_config(spec, config)
    key = cache_key(spec, cfg)
    result = _MEMO.get(key)
    if result is not None:
        return result
    if cache is None:
        cache = default_cache()
    result = cache.get(spec, cfg)
    if result is None:
        result = run_experiment(spec, cfg)
        cache.put(spec, cfg, result)
    _MEMO[key] = result
    return result
