"""Sweep CLI — the one code path CI and humans share.

Examples::

    # quick grid, all benchmarks, 8 workers, warm/populate .repro_cache/
    python -m repro.experiments.sweep --jobs 8

    # one benchmark, paper grid, no cache (force fresh simulation)
    python -m repro.experiments.sweep --benchmark ior --full-sweep --no-cache

    # regenerate the bandwidth figure tables the way CI does
    REPRO_SCALE=0.03125 python -m repro.experiments.sweep \\
        --figures fig4 fig7 fig9 --jobs 4 --output-dir sweep-tables

Without ``--figures`` the CLI runs the raw benchmark × grid × cache-mode
sweep and prints one bandwidth table per benchmark.  With ``--figures`` it
regenerates the named paper figures (through the exact same
:class:`~repro.experiments.parallel.SweepRunner`) and writes each rendered
table to ``--output-dir`` as ``<name>.txt``.

``--faults`` switches to the fault matrix
(:mod:`repro.experiments.faultsweep`): every Table-II hint configuration in
the matrix runs under injected faults and the exit status is non-zero unless
every point's recovered/degraded output is byte-identical to its fault-free
reference — and upholds every global invariant::

    python -m repro.experiments.sweep --faults --jobs 2 --no-cache

``--chaos`` runs seeded *randomized* fault schedules instead
(:mod:`repro.chaos`): each seed draws a schedule, runs it on both data
planes under the invariant monitor, and the first failing seed is greedily
shrunk to a minimal replayable JSON artifact before the sweep exits
non-zero::

    python -m repro.experiments.sweep --chaos --seeds 200 --jobs 4

Paper correspondence: drives the §IV sweeps (aggregators × buffer sizes
× cache modes, plus the fault matrix and the chaos harness).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro import chaos
from repro import fleet as fleetmod
from repro.experiments import faultsweep, figures
from repro.experiments.parallel import SweepError, SweepRunner
from repro.experiments.report import (
    render_bandwidth_table,
    render_breakdown_table,
    shape_checks_bandwidth,
)
from repro.experiments.resultcache import ResultCache
from repro.experiments.runner import BENCHMARKS, default_scale
from repro.hw import flash
from repro.romio import hints
from repro.units import MiB


def default_cli_jobs() -> int:
    """CLI worker default: ``REPRO_JOBS`` wins, else all cores but one."""
    env = os.environ.get("REPRO_JOBS")
    if env is not None:
        return max(1, int(env))
    return max(1, (os.cpu_count() or 1) - 1)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.experiments.sweep",
        description="Run paper measurement sweeps in parallel with caching.",
    )
    p.add_argument(
        "--benchmark",
        action="append",
        choices=BENCHMARKS,
        help="benchmark(s) to sweep (repeatable; default: all three)",
    )
    p.add_argument(
        "--figures",
        nargs="+",
        choices=sorted(figures.FIGURES, key=lambda n: int(n[3:])),
        help="regenerate these paper figures instead of a raw sweep",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=default_cli_jobs(),
        help="parallel workers (default: REPRO_JOBS or cpu_count - 1)",
    )
    p.add_argument(
        "--scale",
        type=float,
        default=None,
        help="data-volume scale (default: REPRO_SCALE or 0.125; 1.0 = paper)",
    )
    p.add_argument(
        "--full-sweep",
        action="store_true",
        help="use the paper's full 4x5 aggregator x buffer grid",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the on-disk result cache",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache root (default: REPRO_CACHE_DIR or .repro_cache)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-point timeout in seconds (parallel mode only)",
    )
    p.add_argument(
        "--output-dir",
        default=None,
        help="write rendered figure tables here (with --figures)",
    )
    p.add_argument(
        "--faults",
        action="store_true",
        help="run the fault-injection matrix and assert end-to-end integrity",
    )
    p.add_argument(
        "--fault-scenario",
        action="append",
        choices=faultsweep.SCENARIOS,
        help="restrict --faults to these scenarios (repeatable; default: all)",
    )
    p.add_argument(
        "--fleet",
        action="store_true",
        help="run the multi-job fleet sweep: many jobs share one simulated "
        "cluster; per-job rows stream into the result cache as jobs complete",
    )
    p.add_argument(
        "--fleet-size",
        type=int,
        action="append",
        help="fleet size(s) to run (with --fleet; repeatable; default: 64)",
    )
    p.add_argument(
        "--fleet-chaos",
        action="store_true",
        help="run seeded fault schedules (infra faults + job-addressed "
        "crashes) against a small fleet with the invariant monitor, per-job "
        "byte-conservation audits, and recovery-SLO assertions on",
    )
    p.add_argument(
        "--crash-probability",
        type=float,
        default=0.35,
        help="per-schedule probability of a job-addressed aggregator crash "
        "(with --fleet-chaos; default: 0.35)",
    )
    p.add_argument(
        "--max-restarts",
        type=int,
        default=2,
        help="restart budget for crashed fleet jobs before they are marked "
        "failed (with --fleet-chaos; default: 2)",
    )
    p.add_argument(
        "--chaos",
        action="store_true",
        help="run seeded randomized fault schedules under the invariant "
        "monitor; failing schedules are shrunk to replayable repro artifacts",
    )
    p.add_argument(
        "--seeds",
        type=int,
        default=25,
        help="number of chaos seeds to run (with --chaos; default: 25)",
    )
    p.add_argument(
        "--base-seed",
        type=int,
        default=0,
        help="first chaos seed (with --chaos; default: 0)",
    )
    p.add_argument(
        "--ssd",
        choices=flash.SSD_KINDS,
        default=None,
        help="node-SSD device model (sets REPRO_SSD; default: stream — "
        "ftl is the FTL-aware flash tier, see docs/DEVICES.md)",
    )
    p.add_argument(
        "--cache-kind",
        choices=hints.CACHE_KINDS,
        default=None,
        help="cache backend (sets REPRO_CACHE_KIND; default: extent — "
        "nvmm is the byte-addressable write-ahead log)",
    )
    p.add_argument("--quiet", action="store_true", help="suppress progress lines")
    return p


def make_runner(
    args: argparse.Namespace,
    faults: bool = False,
    chaos_mode: bool = False,
    fleet_mode: bool = False,
) -> SweepRunner:
    if fleet_mode:
        result_cls = fleetmod.FleetResult
    elif chaos_mode:
        result_cls = chaos.ChaosTrialResult
    elif faults:
        result_cls = faultsweep.FaultExperimentResult
    else:
        result_cls = None
    if args.no_cache:
        cache = ResultCache.disabled(result_cls=result_cls)
    elif args.cache_dir:
        cache = ResultCache(root=args.cache_dir, result_cls=result_cls)
    elif result_cls is not None:
        cache = ResultCache(result_cls=result_cls)
    else:
        cache = None
    progress = None
    if not args.quiet:

        def progress(done, total, spec, source):
            line = (
                f"[{done:3d}/{total}] {spec.benchmark:>9s} {spec.label:>6s} "
                f"{spec.cache_mode:<11s} ({source})"
            )
            print(line, file=sys.stderr, flush=True)

    kwargs = {}
    if fleet_mode:
        kwargs.update(
            worker=fleetmod.runner._run_fleet_point,
            resolver=fleetmod.resolve_fleet_config,
        )
    elif chaos_mode:
        kwargs.update(
            worker=chaos.runner._run_chaos_point,
            resolver=chaos.runner.resolve_chaos_config,
        )
    elif faults:
        kwargs.update(
            worker=faultsweep._run_fault_point,
            resolver=faultsweep.resolve_fault_config,
        )
    return SweepRunner(
        jobs=args.jobs, cache=cache, timeout=args.timeout, progress=progress, **kwargs
    )


def grid(args: argparse.Namespace) -> tuple[tuple[int, ...], tuple[int, ...]]:
    if args.full_sweep:
        return figures.FULL_SWEEP
    return figures.QUICK_AGGREGATORS, figures.QUICK_CB_SIZES


def run_figures(args: argparse.Namespace, runner: SweepRunner) -> int:
    aggs, cbs = grid(args)
    out_dir = Path(args.output_dir) if args.output_dir else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    for name in args.figures:
        fn, kind, title = figures.FIGURES[name]
        data = fn(aggs, cbs, args.scale, runner=runner)
        if kind == "bandwidth":
            table = render_bandwidth_table(f"{name}: {title}", data)
            table += f"\nshape checks: {shape_checks_bandwidth(data)}"
        else:
            table = render_breakdown_table(f"{name}: {title}", data)
        if out_dir is not None:
            path = out_dir / f"{name}.txt"
            path.write_text(table + "\n")
            print(f"wrote {path}")
        else:
            print(table)
            print()
    return 0


def run_raw(args: argparse.Namespace, runner: SweepRunner) -> int:
    aggs, cbs = grid(args)
    benchmarks = args.benchmark or list(BENCHMARKS)
    scale = args.scale
    for benchmark in benchmarks:
        include_last = benchmark == "ior"  # the paper's IOR measurement
        data = figures._bandwidth_figure(
            benchmark, include_last, aggs, cbs, scale, runner
        )
        print(render_bandwidth_table(f"{benchmark} perceived bandwidth", data))
        print()
    return 0


def run_faults(args: argparse.Namespace, runner: SweepRunner) -> int:
    benchmarks = tuple(args.benchmark or ("ior",))
    scenarios = tuple(args.fault_scenario or faultsweep.SCENARIOS)
    scale = args.scale if args.scale is not None else default_scale()
    specs = faultsweep.fault_matrix_specs(
        benchmarks=benchmarks, scenarios=scenarios, scale=scale
    )
    results = runner.run(specs)
    print(faultsweep.render_fault_table(results))
    bad = [r for r in results if not r.integrity_ok]
    crashes = [r for r in results if r.crashed]
    unrecovered = [r for r in crashes if not r.recovered]
    violated = [r for r in results if r.invariant_violations]
    if bad or unrecovered or violated:
        for r in bad:
            print(
                f"INTEGRITY FAILURE: {r.spec.benchmark}/{r.spec.scenario}: "
                f"persisted data differs from the fault-free reference",
                file=sys.stderr,
            )
        for r in unrecovered:
            print(
                f"RECOVERY FAILURE: {r.spec.benchmark}/{r.spec.scenario}: "
                f"crashed job was never recovered",
                file=sys.stderr,
            )
        for r in violated:
            for v in r.invariant_violations:
                print(
                    f"INVARIANT FAILURE: {r.spec.benchmark}/{r.spec.scenario}: {v}",
                    file=sys.stderr,
                )
        return 1
    return 0


def run_fleet_sweep(args: argparse.Namespace, runner: SweepRunner) -> int:
    scale = args.scale if args.scale is not None else default_scale()
    sizes = args.fleet_size or [64]
    specs = [fleetmod.FleetSpec(fleet_size=n, scale=scale) for n in sizes]
    results = runner.run(specs)
    table = fleetmod.render_fleet_table(results)
    if args.output_dir:
        out_dir = Path(args.output_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / "fleet.txt"
        path.write_text(table + "\n")
        print(f"wrote {path}")
    else:
        print(table)
    failed = sum(r.summary["failed"] for r in results)
    if failed:
        print(f"FLEET FAILURE: {failed} job(s) did not finish cleanly", file=sys.stderr)
        return 1
    return 0


def run_fleet_chaos_sweep(args: argparse.Namespace) -> int:
    scale = args.scale if args.scale is not None else default_scale()
    status = 0
    if args.no_cache:
        row_cache = ResultCache.disabled(result_cls=fleetmod.FleetJobResult)
    elif args.cache_dir:
        row_cache = ResultCache(root=args.cache_dir, result_cls=fleetmod.FleetJobResult)
    else:
        row_cache = fleetmod.default_row_cache()
    for seed in range(args.base_seed, args.base_seed + args.seeds):
        r = fleetmod.run_fleet_chaos(
            fleet_size=8,
            seed=seed,
            scale=scale,
            crash_probability=args.crash_probability,
            max_restarts=args.max_restarts,
            row_cache=row_cache,
        )
        slo_violations = r.fleet.summary["slo_violations"]
        line = (
            f"fleet-chaos seed {seed}: faults={r.faults_injected} "
            f"jobs={r.statuses} crashed={r.crashed_jobs} "
            f"restarts={r.restarts} slo_violations={slo_violations} "
            f"{'OK' if r.ok else 'FAIL'}"
        )
        print(line, file=sys.stderr, flush=True)
        if not r.ok:
            status = 1
            for v in r.violations[:10]:
                print(f"  {v}", file=sys.stderr)
            # A fleet-chaos schedule is fully determined by (config, seed):
            # the seed + CLI flags are the repro artifact (generate.py
            # guarantees the draw is platform-stable).
            print(
                f"  repro: PYTHONPATH=src python -m repro.experiments.sweep "
                f"--fleet-chaos --base-seed {seed} --seeds 1 "
                f"--scale {scale} "
                f"--crash-probability {args.crash_probability} "
                f"--max-restarts {args.max_restarts}",
                file=sys.stderr,
            )
    return status


def run_chaos(args: argparse.Namespace, runner: SweepRunner) -> int:
    scale = args.scale if args.scale is not None else default_scale()
    benchmarks = tuple(args.benchmark or ("ior",))
    seeds = range(args.base_seed, args.base_seed + args.seeds)
    specs = []
    for benchmark in benchmarks:
        specs.extend(chaos.chaos_trial_specs(seeds, scale=scale, benchmark=benchmark))
    results = runner.run(specs)
    print(chaos.render_chaos_table(results))
    failing = [r for r in results if not r.ok]
    if not failing:
        return 0
    out_dir = Path(args.output_dir) if args.output_dir else Path(".")
    for r in failing:
        print(
            f"CHAOS FAILURE: seed {r.spec.seed} ({r.spec.cache_mode}/"
            f"{r.spec.flush_flag}): outcome={r.outcome} "
            f"planes_match={r.planes_match} violations={len(r.violations)}",
            file=sys.stderr,
        )
        for v in r.violations[:10]:
            print(f"  {v}", file=sys.stderr)
    # Shrink the first failure to a minimal replayable artifact.  The
    # shrinker re-runs trials in-process (seconds at CI scale).
    first = failing[0]
    spec = first.spec
    reason = (
        "; ".join(first.violations[:3])
        or ("plane mismatch: " + ",".join(first.mismatched))
        or first.outcome
    )
    schedule = chaos.runner.schedule_for(spec, chaos.runner.resolve_chaos_config(spec))

    def still_fails(candidate):
        return not chaos.run_chaos_trial(spec.pinned(candidate)).ok

    shrunk = chaos.shrink_schedule(schedule, still_fails)
    artifact = out_dir / f"chaos-repro-seed{spec.seed}.json"
    chaos.write_repro_artifact(
        artifact, spec, shrunk, reason, result=first.to_dict()
    )
    print(
        f"wrote minimized repro ({len(shrunk.faults)} fault(s)): {artifact}\n"
        f"replay with: PYTHONPATH=src python -m repro.chaos.replay {artifact}",
        file=sys.stderr,
    )
    return 1


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    # Device-tier selection travels as environment so pool workers (and the
    # result-cache fingerprint, which resolves both kinds) see one truth.
    if args.ssd is not None:
        os.environ["REPRO_SSD"] = args.ssd
    if args.cache_kind is not None:
        os.environ["REPRO_CACHE_KIND"] = args.cache_kind
    if args.jobs > 1 and (os.cpu_count() or 1) == 1:
        # Measured on a single-CPU host: 410.9s serial vs 485.0s --jobs 4 —
        # pool overhead with no parallelism to pay for it.
        print(
            f"warning: --jobs {args.jobs} on a single-CPU host is usually "
            "slower than --jobs 1 (process-pool overhead, no parallelism)",
            file=sys.stderr,
        )
    runner = make_runner(
        args, faults=args.faults, chaos_mode=args.chaos, fleet_mode=args.fleet
    )
    scale = args.scale if args.scale is not None else default_scale()
    aggs, cbs = grid(args)
    t0 = time.monotonic()
    try:
        if args.fleet_chaos:
            status = run_fleet_chaos_sweep(args)
        elif args.fleet:
            status = run_fleet_sweep(args, runner)
        elif args.chaos:
            status = run_chaos(args, runner)
        elif args.faults:
            status = run_faults(args, runner)
        elif args.figures:
            status = run_figures(args, runner)
        else:
            status = run_raw(args, runner)
    except SweepError as err:
        print(f"sweep failed: {err}", file=sys.stderr)
        return 1
    wall = time.monotonic() - t0
    stats = runner.cache.stats()
    print(
        f"sweep done in {wall:.1f}s: scale={scale:g} grid={list(aggs)}x"
        f"{[c // MiB for c in cbs]}M jobs={runner.jobs} "
        f"simulated={runner.simulated} cache_hits={stats['hits']} "
        f"cache_stores={stats['stores']}",
        file=sys.stderr,
    )
    return status


if __name__ == "__main__":
    sys.exit(main())
