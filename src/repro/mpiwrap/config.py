"""MPIWRAP configuration file parsing.

The format mirrors the paper's description — per-file-group hint sections::

    # hints for checkpoint files
    [/scratch/run/ckpt_*]
    e10_cache = enable
    e10_cache_flush_flag = flush_immediate
    defer_close = true

    [*.plt]
    e10_cache = disable

Sections are matched with ``fnmatch`` against the full path, first match
wins.  ``defer_close`` (an MPIWRAP directive, not an MPI-IO hint) triggers
the workflow modification of Fig. 3 for that group.
"""

from __future__ import annotations

import fnmatch
import re
from dataclasses import dataclass, field
from typing import Optional


class WrapConfigError(ValueError):
    """Malformed MPIWRAP configuration text."""


@dataclass
class WrapSection:
    pattern: str
    hints: dict[str, str] = field(default_factory=dict)
    defer_close: bool = False

    def matches(self, path: str) -> bool:
        return fnmatch.fnmatch(path, self.pattern)


@dataclass
class WrapConfig:
    sections: list[WrapSection] = field(default_factory=list)

    @classmethod
    def parse(cls, text: str) -> "WrapConfig":
        cfg = cls()
        current: Optional[WrapSection] = None
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            m = re.fullmatch(r"\[(.+)\]", line)
            if m:
                current = WrapSection(pattern=m.group(1).strip())
                cfg.sections.append(current)
                continue
            if "=" not in line:
                raise WrapConfigError(f"line {lineno}: expected 'key = value', got {raw!r}")
            if current is None:
                raise WrapConfigError(f"line {lineno}: hint outside of a [pattern] section")
            key, value = (part.strip() for part in line.split("=", 1))
            if key == "defer_close":
                if value.lower() not in ("true", "false", "enable", "disable"):
                    raise WrapConfigError(f"line {lineno}: defer_close must be boolean")
                current.defer_close = value.lower() in ("true", "enable")
            else:
                current.hints[key] = value
        return cfg

    def match(self, path: str) -> Optional[WrapSection]:
        for section in self.sections:
            if section.matches(path):
                return section
        return None


def base_name(path: str) -> str:
    """The paper's file-group key: the name with its trailing index removed.

    ``/run/ckpt_0003`` and ``/run/ckpt_0004`` share the base ``/run/ckpt_``.
    """
    m = re.fullmatch(r"(.*?)(\d+)(\.\w+)?", path)
    if m:
        return m.group(1) + (m.group(3) or "")
    return path
