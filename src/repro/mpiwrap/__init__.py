"""MPIWRAP: the PMPI wrapper library for legacy applications (Section III-C).

The original is a C++ library preloaded with ``LD_PRELOAD`` that overloads
``MPI_File_{open,close}`` via the PMPI profiling interface: hints come from
a configuration file, and for configured file groups ``MPI_File_close``
returns immediately while the real close (and hence the cache
synchronisation wait) is deferred to the next ``MPI_File_open`` of a file
with the same base name.  This module reproduces the same behaviour over
the simulated MPI-IO layer.
"""

from repro.mpiwrap.config import WrapConfig, WrapSection
from repro.mpiwrap.wrapper import MPIWrap, WrapHandle

__all__ = ["MPIWrap", "WrapConfig", "WrapHandle", "WrapSection"]
