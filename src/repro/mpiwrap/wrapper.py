"""The deferred-close wrapper itself.

``MPIWrap.file_open`` applies the configured hints and — for sections with
``defer_close`` — first really-closes any outstanding handle of the same
base name (the simulated ``PMPI_File_close``), which is where a pending
cache synchronisation is waited for.  ``WrapHandle.close`` then returns
success immediately, keeping the handle for future reference, exactly as
the paper describes.  ``finalize`` (the overloaded ``MPI_Finalize``) closes
everything still outstanding.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.mpiwrap.config import WrapConfig, base_name


class WrapHandle:
    """What the application sees instead of the raw MPI file handle."""

    def __init__(self, wrap: "MPIWrap", inner, rank: int, deferred: bool):
        self.wrap = wrap
        self.inner = inner
        self.rank = rank
        self.deferred = deferred
        self.pretend_closed = False

    # pass-through I/O ---------------------------------------------------------
    def write_all(self, access):
        self._check()
        n = yield from self.inner.write_all(access)
        return n

    def write_at(self, offset: int, nbytes: int, data=None):
        self._check()
        n = yield from self.inner.write_at(offset, nbytes, data)
        return n

    def read_at(self, offset: int, nbytes: int):
        self._check()
        data = yield from self.inner.read_at(offset, nbytes)
        return data

    def sync(self):
        self._check()
        yield from self.inner.sync()

    # the interposed close --------------------------------------------------------
    def close(self):
        """Generator: defer or really close, per the matched config section."""
        self._check()
        if self.deferred:
            # 'our MPI_File_close implementation will return success.
            #  Nevertheless, the file will not be really closed.'
            self.pretend_closed = True
            self.wrap._outstanding[(self.rank, base_name(self.inner.fd.path))] = self
            return
        yield from self.inner.close()
        self.pretend_closed = True

    def _check(self) -> None:
        if self.pretend_closed and not self.deferred:
            raise RuntimeError("operation on closed file")


class MPIWrap:
    """The wrapper library instance (one per simulated application)."""

    def __init__(self, layer, config: WrapConfig):
        self.layer = layer
        self.config = config
        self._outstanding: dict[tuple[int, str], WrapHandle] = {}

    def file_open(self, rank: int, path: str, info: Optional[Mapping[str, Any]] = None):
        """Generator: the interposed ``MPI_File_open``."""
        section = self.config.match(path)
        hints: dict[str, Any] = dict(info or {})
        deferred = False
        if section is not None:
            # Config-file hints take precedence over application hints, the
            # point being to tune legacy applications without recompiling.
            hints.update(section.hints)
            deferred = section.defer_close
        if deferred:
            prev = self._outstanding.pop((rank, base_name(path)), None)
            if prev is not None:
                # Real close of the previous file in the group: triggers the
                # cache-synchronisation completion check.
                yield from prev.inner.close()
        fh = yield from self.layer.open(rank, path, hints)
        return WrapHandle(self, fh, rank, deferred)

    def finalize(self, rank: int):
        """Generator: the interposed ``MPI_Finalize`` — close stragglers."""
        mine = [key for key in self._outstanding if key[0] == rank]
        for key in mine:
            handle = self._outstanding.pop(key)
            yield from handle.inner.close()

    def outstanding_count(self, rank: Optional[int] = None) -> int:
        if rank is None:
            return len(self._outstanding)
        return sum(1 for (r, _) in self._outstanding if r == rank)
