"""Phase-contribution breakdowns (the paper's Figs. 5, 6, 8, 10).

Paper correspondence: §IV-B/§IV-D breakdown methodology (straggler view
across ranks, per-phase stacking).
"""

from __future__ import annotations

from repro.romio.profiling import PHASES, PhaseProfile, aggregate_max, aggregate_mean


def breakdown_from_profiles(
    profiles: list[PhaseProfile], how: str = "max"
) -> dict[str, float]:
    """Collapse per-rank profiles into the plotted per-phase seconds.

    ``max`` is the straggler view (what bounds wall clock and what the
    paper's stacked bars approximate); ``mean`` is available for
    diagnostics.
    """
    if how == "max":
        agg = aggregate_max(profiles)
    elif how == "mean":
        agg = aggregate_mean(profiles)
    else:
        raise ValueError(f"unknown aggregation {how!r}")
    return {phase: agg.get(phase) for phase in PHASES if agg.get(phase) > 0}


def merge_breakdowns(parts: list[dict[str, float]]) -> dict[str, float]:
    """Sum per-phase seconds across files/phases of one experiment."""
    out: dict[str, float] = {}
    for part in parts:
        for phase, dt in part.items():
            out[phase] = out.get(phase, 0.0) + dt
    return out
