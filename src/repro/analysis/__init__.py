"""Measurement analysis: the paper's bandwidth model and breakdowns.

Paper correspondence: Eq. (2) perceived bandwidth and the phase
breakdowns of the evaluation section (§IV).
"""

from repro.analysis.bandwidth import (
    BandwidthModel,
    eq1_phase_bandwidth,
    eq2_average_bandwidth,
    perceived_bandwidth,
)
from repro.analysis.breakdown import breakdown_from_profiles

__all__ = [
    "BandwidthModel",
    "breakdown_from_profiles",
    "eq1_phase_bandwidth",
    "eq2_average_bandwidth",
    "perceived_bandwidth",
]
