"""The paper's bandwidth model — Equations (1) and (2) of Section III-D.

    bw(k) = S(k) / (T_c(k) + max(0, T_s(k) - C(k+1)))                 (1)
    BW    = ΣS(k) / Σ(T_c(k) + max(0, T_s(k) - C(k+1)))               (2)

and the measurement-side equivalent computed from the
:class:`~repro.workloads.phases.PhaseTiming` records: in the modified
workflow the deferred close of file *k* pays exactly
``max(0, T_s(k) - C(k+1))``, so the denominator is the measured write time
plus the measured close wait.

:class:`BandwidthModel` also provides closed-form *predictions* of T_c and
T_s from the cluster configuration — used by tests to cross-check the
simulator against the analytic model and by the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.config import ClusterConfig
from repro.workloads.phases import PhaseTiming


def eq1_phase_bandwidth(S: float, Tc: float, Ts: float, C_next: float) -> float:
    """Equation (1): one phase's perceived bandwidth."""
    denom = Tc + max(0.0, Ts - C_next)
    if denom <= 0:
        raise ValueError("non-positive phase time")
    return S / denom


def eq2_average_bandwidth(
    S: Sequence[float], Tc: Sequence[float], Ts: Sequence[float], C_next: Sequence[float]
) -> float:
    """Equation (2): total average bandwidth over all phases."""
    if not (len(S) == len(Tc) == len(Ts) == len(C_next)):
        raise ValueError("phase sequences must have equal length")
    denom = sum(t + max(0.0, s - c) for t, s, c in zip(Tc, Ts, C_next))
    if denom <= 0:
        raise ValueError("non-positive total time")
    return sum(S) / denom


def perceived_bandwidth(
    per_rank_timings: list[list[PhaseTiming]],
    bytes_per_phase: float,
    include_last_phase: bool = True,
) -> float:
    """Measured Eq. (2) over a phased run.

    Each phase's cost is the *slowest rank's* write time plus the slowest
    rank's close wait (the not-hidden synchronisation).  ``coll_perf`` and
    ``Flash-IO`` exclude the last phase's close wait (paper Section IV-B:
    the last write has no following compute phase to hide behind); IOR
    includes it (Section IV-D).
    """
    nphases = len(per_rank_timings[0])
    total_time = 0.0
    total_bytes = 0.0
    for k in range(nphases):
        write = max(t[k].write_time + t[k].open_time for t in per_rank_timings)
        wait = max(t[k].close_wait for t in per_rank_timings)
        last = k == nphases - 1
        if last and not include_last_phase:
            wait = 0.0
        total_time += write + wait
        total_bytes += bytes_per_phase
    return total_bytes / total_time


@dataclass(frozen=True)
class BandwidthModel:
    """Closed-form predictions of the cache/flush costs from a config.

    Deliberately simple — first-order resource arithmetic, no queueing —
    so deviations between prediction and simulation localise modelling
    effects (tests assert agreement within a factor).
    """

    config: ClusterConfig

    def sync_thread_rate(self, chunk: int) -> float:
        """One sync thread's sustained flush rate (bytes/s) with ``chunk``-sized
        synchronous writes: read-back + RTT + transfer + server overhead."""
        cfg = self.config
        per_chunk = (
            cfg.pfs.sync_client_rtt
            + cfg.ssd.latency
            + chunk / cfg.ssd.read_bw
            + chunk / cfg.pfs.per_client_max_bw
            + cfg.pfs.rpc_overhead
        )
        return chunk / per_chunk

    def flush_time(self, total_bytes: float, aggregators: int, chunk: int) -> float:
        """Predicted T_s: per-client limited at few aggregators, server
        (ingest + drain) limited at many."""
        cfg = self.config
        per_client = self.sync_thread_rate(chunk) * aggregators
        ingest = cfg.pfs.server_ingest_bw * cfg.pfs.num_data_servers
        drain = cfg.pfs.hdd.stream_bw * cfg.pfs.num_data_servers
        cache_room = cfg.pfs.server_cache_bytes * cfg.pfs.num_data_servers
        rate_limit = min(per_client, ingest)
        if total_bytes <= cache_room:
            return total_bytes / rate_limit
        # absorb the cache room at the fast rate, drain-limit the remainder
        t_fast = cache_room / rate_limit
        remainder = total_bytes - cache_room
        return t_fast + remainder / min(rate_limit, drain)

    def cache_write_time(self, total_bytes: float, aggregators: int) -> float:
        """Predicted T_c floor: shuffle into aggregator NICs + page-cache copy."""
        cfg = self.config
        per_agg = total_bytes / aggregators
        shuffle = per_agg / cfg.network.nic_bw
        copy = per_agg / cfg.ram.memcpy_bw  # assemble + page-cache write
        return shuffle + 2 * copy

    def pfs_collective_write_time(self, total_bytes: float) -> float:
        """Predicted cache-disabled write floor: the PFS aggregate ceiling."""
        cfg = self.config
        drain = cfg.pfs.hdd.stream_bw * cfg.pfs.num_data_servers
        ingest = cfg.pfs.server_ingest_bw * cfg.pfs.num_data_servers
        cache_room = cfg.pfs.server_cache_bytes * cfg.pfs.num_data_servers
        absorbed = min(total_bytes, cache_room)
        return absorbed / ingest + max(0.0, total_bytes - absorbed) / drain

    def hidden(self, total_bytes: float, aggregators: int, chunk: int, compute: float) -> bool:
        """Will the flush hide inside the compute phase?"""
        return self.flush_time(total_bytes, aggregators, chunk) <= compute
