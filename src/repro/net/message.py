"""Rank-to-rank message transport with MPI-style (source, tag) matching.

Each rank owns a :class:`Mailbox`.  A send charges the sender the
per-message CPU overhead, starts a fabric flow between the two ranks' nodes,
and enqueues the message in the destination mailbox once the flow (plus
latency) completes.  Receives match on ``(source, tag)`` with wildcard
support, in MPI's non-overtaking order (messages between the same pair with
the same tag are matched in send order — guaranteed here because matching is
FIFO over arrival order and flows between a fixed pair complete in start
order under fair sharing of identical link sets).

Paper correspondence: the transport under the §II-A shuffle and the
§III sync traffic; contention is modelled by :mod:`repro.net.fabric`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.net.fabric import Fabric
from repro.sim.core import Event, Simulator

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class Message:
    source: int
    dest: int
    tag: int
    payload: Any
    nbytes: int
    seq: int = 0


@dataclass
class _PendingRecv:
    source: int
    tag: int
    event: Event


class Mailbox:
    """Per-rank unexpected-message queue plus posted-receive list."""

    def __init__(self, sim: Simulator, rank: int):
        self.sim = sim
        self.rank = rank
        self.unexpected: list[Message] = []
        self.posted: list[_PendingRecv] = []

    def deliver(self, msg: Message) -> None:
        for idx, pr in enumerate(self.posted):
            if _matches(pr.source, pr.tag, msg):
                del self.posted[idx]
                pr.event.succeed(msg)
                return
        self.unexpected.append(msg)

    def post_recv(self, source: int, tag: int) -> Event:
        ev = Event(self.sim, name=f"recv:r{self.rank}")
        for idx, msg in enumerate(self.unexpected):
            if _matches(source, tag, msg):
                del self.unexpected[idx]
                ev.succeed(msg)
                return ev
        self.posted.append(_PendingRecv(source, tag, ev))
        return ev


def _matches(want_source: int, want_tag: int, msg: Message) -> bool:
    return (want_source in (ANY_SOURCE, msg.source)) and (want_tag in (ANY_TAG, msg.tag))


def _by_msg_seq(member: tuple[Message, Event]) -> int:
    return member[0].seq


class Transport:
    """Moves messages between ranks over the fabric.

    With ``coalesce`` (bulk data plane) same-instant sends between the same
    node pair with the same byte count join one weighted fabric flow (see
    :meth:`~repro.net.fabric.Fabric.grow_flow`) instead of each starting
    their own.  Identical flows complete at the same timestamp either way.
    Because un-coalesced flows deliver in global send order even when
    several complete at one instant (their completion events fire in flow
    order = send order), bundle arrivals are buffered per instant and
    delivered by one flush event in message-seq order — the exact
    continuation order of the per-send path, so matching and
    non-overtaking semantics are untouched and only the event count drops.
    """

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        rank_to_node: list[int],
        per_message_overhead: float,
        coalesce: bool = False,
    ):
        self.sim = sim
        self.fabric = fabric
        self.rank_to_node = list(rank_to_node)
        self.per_message_overhead = float(per_message_overhead)
        self.coalesce = coalesce
        # Per-job accounting tag (fleet): credited to every fabric flow this
        # transport starts.  None (the single-job default) costs nothing.
        self.tag: str | None = None
        self.mailboxes = [Mailbox(sim, r) for r in range(len(rank_to_node))]
        self._seq = 0
        self.messages_sent = 0
        self.sends_coalesced = 0
        # Open bundles, valid only for the current instant:
        # (src_node, dst_node, nbytes) -> (flow done event, member list).
        self._bundles: dict[tuple[int, int, int], tuple[Event, list]] = {}
        self._bundle_time = -1.0
        # Arrived-but-undelivered members; drained (in seq order) by one
        # zero-delay flush event per completion instant.
        self._arrivals: list[tuple[Message, Event]] = []

    def node_of(self, rank: int) -> int:
        return self.rank_to_node[rank]

    def send(self, source: int, dest: int, tag: int, payload: Any, nbytes: int) -> Event:
        """Start a send; the returned event fires when the transfer completes
        locally (the data has left the sender — eager/rendezvous completion).
        Delivery into the destination mailbox happens at arrival time.
        """
        self._seq += 1
        self.messages_sent += 1
        msg = Message(source, dest, tag, payload, int(nbytes), self._seq)
        send_done = Event(self.sim, name=f"send:r{source}->r{dest}")
        src_node = self.node_of(source)
        dst_node = self.node_of(dest)
        if self.coalesce and nbytes > 0:
            key = (src_node, dst_node, int(nbytes))
            if self._bundle_time != self.sim.now:
                self._bundles.clear()
                self._bundle_time = self.sim.now
            entry = self._bundles.get(key)
            if entry is not None and self.fabric.grow_flow(entry[0], nbytes):
                entry[1].append((msg, send_done))
                self.sends_coalesced += 1
                return send_done
            flow_done = self.fabric.start_flow(src_node, dst_node, nbytes, tag=self.tag)
            members = [(msg, send_done)]
            self._bundles[key] = (flow_done, members)

            def _bundle_arrived(ev: Event) -> None:
                if not self._arrivals:
                    flush = Event(self.sim, name="xport-deliver")
                    flush.callbacks.append(self._deliver_arrivals)
                    flush.succeed()
                self._arrivals.extend(members)

            flow_done.callbacks.append(_bundle_arrived)
            return send_done
        flow_done = self.fabric.start_flow(src_node, dst_node, nbytes, tag=self.tag)

        def _arrived(ev: Event) -> None:
            self.mailboxes[dest].deliver(msg)
            send_done.succeed()

        flow_done.callbacks.append(_arrived)
        return send_done

    def _deliver_arrivals(self, ev: Event) -> None:
        arrivals, self._arrivals = self._arrivals, []
        # Seq order == send order == the order the per-send path's flow
        # completions would have delivered these at this instant.
        arrivals.sort(key=_by_msg_seq)
        for msg, send_done in arrivals:
            self.mailboxes[msg.dest].deliver(msg)
            send_done.succeed()

    def post_recv(self, rank: int, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Event:
        return self.mailboxes[rank].post_recv(source, tag)
