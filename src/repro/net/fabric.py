"""Max-min fair flow-level network model (paper §IV: the DEEP-ER fabric).

The switch core is treated as non-blocking (valid for the DEEP-ER fat tree
at 64 nodes), so the contended resources are each node's NIC injection and
ejection links.  Active transfers are *flows* holding a residual byte count;
whenever the flow set changes, rates are recomputed by progressive filling
(water-filling): repeatedly find the bottleneck link with the smallest fair
share, freeze its flows at that rate, remove the link, and continue.  This
is the standard fluid approximation for TCP/RDMA fair sharing and captures
exactly the effect the paper's shuffle phase depends on — many ranks
funnelling into few aggregator NICs.

Intra-node transfers bypass the NIC links and move at the (higher) memory
copy bandwidth.

Three allocators implement the same model (see docs/PERFORMANCE.md):

* :class:`repro.net.fabric_array.ArrayFabric` (``REPRO_FABRIC=array``, the
  default) runs the incremental dirty-component scheme below but lowers the
  filling loop onto flat arrays, memoizes converged rate vectors by
  component topology signature, and replaces the flush/wake Events with
  pooled callables on the engine's ``call_soon``/``call_later`` fast path.
* :class:`Fabric` (``REPRO_FABRIC=incremental``) recomputes **incrementally**: only the
  connected component of the link–flow graph actually touched by an
  arrival, departure, or capacity change is re-rated; flows whose
  bottleneck structure is disjoint keep their frozen rates.  Same-timestamp
  arrivals (a collective shuffle wave starts dozens of flows at ``sim.now``)
  are coalesced into one recompute via a zero-delay flush event.
* :class:`NaiveFabric` is the original full-recompute reference, selected
  with ``REPRO_FABRIC=naive`` (see :func:`create_fabric`).  The two are
  byte-identical — same rates, same completion timestamps — which
  ``benchmarks/bench_engine.py`` asserts on the full IOR sweep grid and
  ``tests/net/test_fabric_incremental.py`` asserts on randomized churn.

Why the incremental result is *exactly* (bit-for-bit) the full result:
progressive filling only ever moves capacity between a flow and the links
that flow crosses, so two flows in different connected components of the
bipartite link–flow graph never interact — neither through residuals nor
through membership counts.  Within one component the filling order is
fixed by iterating flows in ascending ``fid`` (creation order), which is
precisely the order the full recompute visits them in, so every float
operation — including tie-breaks between equal fair shares — is performed
on the same operands in the same order.
"""

from __future__ import annotations

import itertools
import os
from typing import Iterable, Optional

from repro.sim.core import Event, SimError, Simulator

_EPS = 1e-12
_INF = float("inf")


class Link:
    """A unidirectional capacity (one NIC direction)."""

    __slots__ = ("name", "capacity", "flows")

    def __init__(self, name: str, capacity: float):
        self.name = name
        self.capacity = float(capacity)
        # Ordered set (dict keys).  A real set would iterate in id()-hash
        # order, i.e. allocation-address order, making tie-breaks in the
        # fair-share computation depend on process history — runs would be
        # reproducible within a process but not across fork/exec, which
        # breaks "parallel sweep == serial sweep bit-for-bit".
        self.flows: dict["Flow", None] = {}


class Flow:
    """An active transfer across a set of links.

    ``weight`` bundles ``weight`` *identical* member transfers (same links,
    same per-member ``nbytes``, started at the same instant) into one flow
    object.  ``nbytes``/``remaining``/``rate`` stay **per member**: the
    bundle counts as ``weight`` entries in every fair-share division and
    subtracts its share ``weight`` times from crossed residuals, so the
    allocation is bit-identical to ``weight`` separate flows (identical
    flows always freeze in the same filling round, and equal-share clamped
    subtractions commute).
    """

    __slots__ = (
        "fid",
        "links",
        "remaining",
        "rate",
        "done",
        "nbytes",
        "weight",
        "tag",
        "threshold",
    )

    def __init__(
        self,
        fid: int,
        links: list[Link],
        nbytes: float,
        done: Event,
        weight: int = 1,
        tag: Optional[str] = None,
    ):
        self.fid = fid
        self.links = links
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.done = done
        self.weight = weight
        self.tag = tag
        # Finish threshold (sub-byte residue counts as done), precomputed:
        # every wake arm/scan tests it against every active flow.
        self.threshold = max(1e-6, _EPS * self.nbytes)


class Fabric:
    """The cluster interconnect: per-node NIC in/out links plus loopback.

    This is the **incremental** allocator.  Rates live on the flows and stay
    frozen until a change touches their connected component; the per-change
    work is proportional to the touched component, not to the whole fabric.
    Counters (always on — plain int bumps) feed the benchmark harness:

    * ``recomputes`` / ``recompute_flows`` — filling passes run and flows
      re-rated by them (the naive allocator re-rates every active flow on
      every change).
    * ``recomputes_skipped`` — changes proven unable to alter any share
      (e.g. a capacity change on links with no flows).
    * ``batched_starts`` — flow starts coalesced into an already-pending
      same-timestamp flush instead of triggering their own recompute.
    * ``wake_events`` — wake events actually armed (regression guard for
      the alloc-on-every-change churn this class replaced).
    """

    kind = "incremental"

    def __init__(
        self,
        sim: Simulator,
        num_nodes: int,
        nic_bw: float,
        latency: float,
        loopback_bw: Optional[float] = None,
    ):
        self.sim = sim
        self.num_nodes = num_nodes
        self.nic_bw = float(nic_bw)
        self.latency = float(latency)
        self.loopback_bw = float(loopback_bw if loopback_bw is not None else 4 * nic_bw)
        self._out = [Link(f"node{n}.out", nic_bw) for n in range(num_nodes)]
        self._in = [Link(f"node{n}.in", nic_bw) for n in range(num_nodes)]
        self._loop = [Link(f"node{n}.loop", self.loopback_bw) for n in range(num_nodes)]
        self._flows: dict[Flow, None] = {}  # ordered set, see Link.flows
        self._done_to_flow: dict[Event, Flow] = {}  # active flows by done event
        self._weighted = False  # any bundle live since construction?
        self._fid = itertools.count()
        self._last_update = 0.0
        self._wake: Optional[Event] = None
        # Links touched since the last recompute, in touch order, plus the
        # zero-delay event that will apply them (identity-checked like the
        # wake event so a superseded flush is a no-op).
        self._dirty: dict[Link, None] = {}
        self._flush_event: Optional[Event] = None
        self.bytes_moved = 0.0
        # Per-tag byte accounting (fleet: one tag per job).  Untagged flows
        # — the entire single-job world — never touch this dict.
        self.bytes_moved_by_tag: dict[str, float] = {}
        self.recomputes = 0
        self.recompute_flows = 0
        self.recomputes_skipped = 0
        self.batched_starts = 0
        self.wake_events = 0

    # -- public API -----------------------------------------------------------
    def make_link(self, name: str, capacity: float) -> Link:
        """Create an auxiliary capacity (client channel, server ingest, ...)."""
        return Link(name, capacity)

    def start_flow(
        self,
        src_node: int,
        dst_node: int,
        nbytes: float,
        extra_links: tuple[Link, ...] = (),
        weight: int = 1,
        tag: Optional[str] = None,
    ) -> Event:
        """Begin a transfer; the returned event fires when the last byte lands.

        Zero-byte flows complete after just the propagation latency.
        ``extra_links`` lets callers thread additional shared capacities into
        the fair-sharing computation (e.g. a PFS client's streaming channel
        and the target server's ingest stage).  ``weight > 1`` starts a
        bundle of that many identical member transfers of ``nbytes`` each
        (see :class:`Flow`); the event fires when the bundle's last byte
        lands.
        """
        done = self.sim.event(name=f"flow:{src_node}->{dst_node}")
        if nbytes <= 0:
            done.succeed(delay=self.latency)
            return done
        if src_node == dst_node:
            links = [self._loop[src_node]]
        else:
            links = [self._out[src_node], self._in[dst_node]]
        links.extend(extra_links)
        flow = Flow(next(self._fid), links, nbytes, done, weight=weight, tag=tag)
        if weight != 1:
            self._weighted = True
        self._flows[flow] = None
        self._done_to_flow[done] = flow
        for link in links:
            link.flows[flow] = None
        self.bytes_moved += nbytes * weight
        if tag is not None:
            self.bytes_moved_by_tag[tag] = (
                self.bytes_moved_by_tag.get(tag, 0.0) + nbytes * weight
            )
        self._change(links)
        return done

    def grow_flow(self, flow_done: Event, nbytes: float) -> bool:
        """Add one member of ``nbytes`` to the bundle completing at ``flow_done``.

        Only valid at the instant the bundle was started (the caller
        guarantees this — intra-instant growth is indistinguishable from
        having started the larger bundle, because a zero-length interval
        moves no bytes and a flow can never finish within its start
        instant).  Returns False when the flow cannot be grown (not active,
        or a different per-member size), in which case the caller starts a
        separate flow.
        """
        flow = self._done_to_flow.get(flow_done)
        if flow is None or flow.nbytes != float(nbytes):
            return False
        flow.weight += 1
        self._weighted = True
        self.bytes_moved += nbytes
        if flow.tag is not None:
            self.bytes_moved_by_tag[flow.tag] = (
                self.bytes_moved_by_tag.get(flow.tag, 0.0) + nbytes
            )
        self._change(flow.links)
        return True

    def transfer(self, src_node: int, dst_node: int, nbytes: float):
        """Process-style helper: ``yield from fabric.transfer(...)``."""
        yield self.start_flow(src_node, dst_node, nbytes)

    def set_node_bw_factor(self, node: int, factor: float) -> None:
        """Scale one endpoint's NIC capacity (both directions) by ``factor``.

        Used by fault injection to model transient link degradation; active
        flows are advanced to now and re-shared immediately, so in-flight
        transfers slow down (or recover) mid-stream.
        """
        if factor <= 0:
            raise SimError(f"bw factor must be > 0, got {factor}")
        if not 0 <= node < self.num_nodes:
            raise SimError(f"no such fabric endpoint {node}")
        self._out[node].capacity = self.nic_bw * factor
        self._in[node].capacity = self.nic_bw * factor
        self._change((self._out[node], self._in[node]))

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def flow_rates(self) -> dict[int, float]:
        """Current rate per flow id (after a fresh recompute) — for tests."""
        self._force_flush()
        self._advance()
        self._fill(self._flows)
        return {f.fid: f.rate for f in self._flows}

    # -- change application ------------------------------------------------------
    def _change(self, links: Iterable[Link]) -> None:
        """A topology change touched ``links``: coalesce into one flush.

        All deferral stays within the current timestamp — the flush event
        has zero delay, so it fires before the clock can advance — which is
        why batching cannot alter any simulated timestamp: the rates in
        effect over every interval of positive length are unchanged.
        """
        if self._flush_event is not None:
            self.batched_starts += 1
        for link in links:
            self._dirty[link] = None
        if self._flush_event is None:
            flush = self.sim.event(name="fabric-flush")
            flush.callbacks.append(self._on_flush)
            flush.succeed()
            self._flush_event = flush

    def _on_flush(self, event: Event) -> None:
        if event is not self._flush_event:
            return  # superseded by an eager flush (flow_rates, wake)
        self._flush_event = None
        self._flush()

    def _force_flush(self) -> None:
        """Apply pending changes now; the armed flush event becomes a no-op."""
        self._flush_event = None
        self._flush()

    def _flush(self) -> None:
        if not self._dirty:
            return
        self._advance()
        dirty, self._dirty = self._dirty, {}
        if self._recompute_touched(dirty):
            self._arm_wake()
        # else: no share could have changed, the armed wake (if any) stands.

    # -- internals --------------------------------------------------------------
    def _advance(self) -> None:
        """Progress all flows from the last update instant to now."""
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0:
            for flow in self._flows:
                flow.remaining -= flow.rate * dt
        self._last_update = now

    def _recompute_touched(self, dirty: dict[Link, None]) -> bool:
        """Re-rate the connected component(s) of the touched links.

        Returns False when the change provably cannot alter any share —
        every touched link is flowless — in which case no filling runs and
        the caller keeps the existing wake-up.
        """
        seeds = [link for link in dirty if link.flows]
        if not seeds:
            self.recomputes_skipped += 1
            return False
        touched: dict[Flow, None] = {}
        seen = set(seeds)
        stack = seeds
        while stack:
            link = stack.pop()
            for flow in link.flows:
                if flow not in touched:
                    touched[flow] = None
                    for other in flow.links:
                        if other not in seen:
                            seen.add(other)
                            stack.append(other)
        self.recomputes += 1
        self.recompute_flows += len(touched)
        # Refill in ascending-fid order — identical to the full recompute's
        # visit order restricted to this component, so tie-breaks (and hence
        # every float) match the naive allocator exactly.
        profiler = self.sim.profiler
        if profiler is None:
            self._fill(sorted(touched, key=_by_fid))
        else:
            with profiler.timer("fabric.recompute"):
                self._fill(sorted(touched, key=_by_fid))
            profiler.count("fabric.recompute_flows", len(touched))
        return True

    def _fill(self, flows: Iterable[Flow]) -> None:
        """Max-min fair allocation of ``flows`` by progressive filling.

        All iteration is over insertion-ordered dicts, so bottleneck
        tie-breaks (symmetric NICs produce many equal shares) resolve the
        same way in every process and the allocation is fully deterministic.
        """
        unfrozen: dict[Flow, None] = dict.fromkeys(flows)
        residual = {link: link.capacity for flow in unfrozen for link in flow.links}
        live = {
            link: dict.fromkeys(f for f in link.flows if f in unfrozen)
            for link in residual
        }
        weighted = self._weighted
        while unfrozen:
            best_link = None
            best_share = _INF
            for link, members in live.items():
                if not members:
                    continue
                if weighted:
                    # Bundle members count individually; both divisors are
                    # exact ints, so all-weight-1 fabrics divide by the same
                    # value either way (the flag only skips the summation).
                    share = residual[link] / sum(f.weight for f in members)
                else:
                    share = residual[link] / len(members)
                if share < best_share:
                    best_share = share
                    best_link = link
            if best_link is None:
                break
            # Clamp against accumulated floating-point error: a residual can
            # drift a few ULPs negative, which would hand out negative rates
            # and stall the completion clock.
            best_share = max(best_share, 0.0)
            for flow in list(live[best_link]):
                flow.rate = best_share
                unfrozen.pop(flow, None)
                for link in flow.links:
                    if link is not best_link:
                        if flow.weight == 1:
                            residual[link] = max(0.0, residual[link] - best_share)
                        else:
                            # One clamped subtraction per bundle member —
                            # exactly what `weight` separate flows would do
                            # (equal-share subtractions commute, so member
                            # interleaving cannot matter).
                            r = residual[link]
                            for _ in range(flow.weight):
                                r = max(0.0, r - best_share)
                            residual[link] = r
                        live[link].pop(flow, None)
            live[best_link].clear()

    def _arm_wake(self) -> None:
        """Arm a wake-up at the next flow completion.

        When nothing can complete (``soonest == inf``) no event is armed at
        all: any previously armed wake is invalidated by dropping the
        reference (it fires, fails the identity check in :meth:`_on_wake`,
        and is ignored), instead of allocating a replacement event per
        change as the original implementation did.
        """
        soonest = _INF
        for flow in self._flows:
            if flow.remaining <= flow.threshold:
                soonest = 0.0
                break
            if flow.rate > _EPS:
                t = flow.remaining / flow.rate
                if t < soonest:
                    soonest = t
        if soonest is _INF:
            self._wake = None
            return
        # Invalidate any previously armed wake-up (identity check below).
        wake = self.sim.event(name="fabric-wake")
        wake.callbacks.append(self._on_wake)
        self._wake = wake
        self.wake_events += 1
        # Floor at one nanosecond so a pathological rate can never stall
        # the simulation clock (livelock guard).
        wake.succeed(delay=max(1e-9, soonest) if soonest > 0.0 else 0.0)

    @staticmethod
    def _finish_threshold(flow: Flow) -> float:
        # Sub-byte residue: done for all practical purposes.  Kept for
        # callers/tests; the hot loops read the precomputed ``flow.threshold``.
        return flow.threshold

    def _on_wake(self, event: Event) -> None:
        if event is not self._wake:
            return  # superseded by a newer reschedule
        self._wake = None
        self._wake_body()

    def _wake_body(self) -> None:
        """Deliver completions at the wake instant (validity already checked)."""
        self._advance()
        finished = [f for f in self._flows if f.remaining <= f.threshold]
        for flow in finished:
            self._flows.pop(flow, None)
            self._done_to_flow.pop(flow.done, None)
            for link in flow.links:
                link.flows.pop(flow, None)
        for flow in finished:
            # Completion is delivered after the propagation latency.
            flow.done.succeed(delay=self.latency)
        self._departures(finished)

    def _departures(self, finished: list[Flow]) -> None:
        """Re-rate after completions, folding in any pending batched changes."""
        if not self._flows:
            self._dirty.clear()
            return
        for flow in finished:
            for link in flow.links:
                self._dirty[link] = None
        dirty, self._dirty = self._dirty, {}
        self._recompute_touched(dirty)
        # The wake just fired (or is now stale), so always re-arm — even if
        # the recompute was skipped, surviving flows still need a wake-up.
        self._arm_wake()


class NaiveFabric(Fabric):
    """The original full-recompute allocator, kept as the reference.

    Every arrival, departure, and capacity change advances the clock and
    re-runs progressive filling over **all** active flows — O(links × flows)
    per filling pass.  Selected with ``REPRO_FABRIC=naive``; the benchmark
    harness runs it A/B against :class:`Fabric` to prove the incremental
    allocator changes no simulated timestamp.
    """

    kind = "naive"

    def _change(self, links: Iterable[Link]) -> None:
        self._advance()
        self._recompute()
        self._arm_wake()

    def _force_flush(self) -> None:  # nothing is ever deferred
        pass

    def _recompute(self) -> None:
        self.recomputes += 1
        self.recompute_flows += len(self._flows)
        profiler = self.sim.profiler
        if profiler is None:
            self._fill(self._flows)
        else:
            with profiler.timer("fabric.recompute"):
                self._fill(self._flows)
            profiler.count("fabric.recompute_flows", len(self._flows))

    def _departures(self, finished: list[Flow]) -> None:
        if self._flows:
            self._recompute()
            self._arm_wake()

    def _arm_wake(self) -> None:
        # Faithful to the original: allocate a fresh wake event on *every*
        # change, even when no flow can complete (soonest == inf) and the
        # event will never be scheduled.  The default allocator's
        # :meth:`Fabric._arm_wake` fixes this churn; the reference keeps it
        # so the regression test can count the difference.
        soonest = _INF
        for flow in self._flows:
            if flow.remaining <= self._finish_threshold(flow):
                soonest = 0.0
            elif flow.rate > _EPS:
                t = flow.remaining / flow.rate
                if t < soonest:
                    soonest = t
        wake = self.sim.event(name="fabric-wake")
        self._wake = wake
        self.wake_events += 1
        if soonest is not _INF:
            wake.callbacks.append(self._on_wake)
            wake.succeed(delay=max(1e-9, soonest) if soonest > 0.0 else 0.0)


def _by_fid(flow: Flow) -> int:
    return flow.fid


# ``repro.net.fabric_array`` registers the default "array" kernel here on
# import; ``repro/net/__init__.py`` imports it right after this module, so
# every package-level import route sees all three allocators.  (Registration
# lives there rather than here to keep the import acyclic.)
FABRIC_KINDS = {"incremental": Fabric, "naive": NaiveFabric}


def default_fabric_kind() -> str:
    """Allocator selection: ``REPRO_FABRIC`` env var, default array."""
    return os.environ.get("REPRO_FABRIC", "array")


def create_fabric(
    sim: Simulator,
    num_nodes: int,
    nic_bw: float,
    latency: float,
    loopback_bw: Optional[float] = None,
    kind: Optional[str] = None,
) -> Fabric:
    """Build the allocator named by ``kind`` (default: ``REPRO_FABRIC``)."""
    kind = default_fabric_kind() if kind is None else kind
    try:
        cls = FABRIC_KINDS[kind]
    except KeyError:
        raise SimError(
            f"unknown fabric allocator {kind!r} (expected one of "
            f"{sorted(FABRIC_KINDS)})"
        ) from None
    return cls(sim, num_nodes, nic_bw, latency, loopback_bw)
