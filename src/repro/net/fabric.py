"""Max-min fair flow-level network model.

The switch core is treated as non-blocking (valid for the DEEP-ER fat tree
at 64 nodes), so the contended resources are each node's NIC injection and
ejection links.  Active transfers are *flows* holding a residual byte count;
whenever the flow set changes, rates are recomputed by progressive filling
(water-filling): repeatedly find the bottleneck link with the smallest fair
share, freeze its flows at that rate, remove the link, and continue.  This
is the standard fluid approximation for TCP/RDMA fair sharing and captures
exactly the effect the paper's shuffle phase depends on — many ranks
funnelling into few aggregator NICs.

Intra-node transfers bypass the NIC links and move at the (higher) memory
copy bandwidth.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.sim.core import Event, SimError, Simulator

_EPS = 1e-12


class Link:
    """A unidirectional capacity (one NIC direction)."""

    __slots__ = ("name", "capacity", "flows")

    def __init__(self, name: str, capacity: float):
        self.name = name
        self.capacity = float(capacity)
        # Ordered set (dict keys).  A real set would iterate in id()-hash
        # order, i.e. allocation-address order, making tie-breaks in the
        # fair-share computation depend on process history — runs would be
        # reproducible within a process but not across fork/exec, which
        # breaks "parallel sweep == serial sweep bit-for-bit".
        self.flows: dict["Flow", None] = {}


class Flow:
    """An active transfer across a set of links."""

    __slots__ = ("fid", "links", "remaining", "rate", "done", "nbytes")

    def __init__(self, fid: int, links: list[Link], nbytes: float, done: Event):
        self.fid = fid
        self.links = links
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.done = done


class Fabric:
    """The cluster interconnect: per-node NIC in/out links plus loopback."""

    def __init__(
        self,
        sim: Simulator,
        num_nodes: int,
        nic_bw: float,
        latency: float,
        loopback_bw: Optional[float] = None,
    ):
        self.sim = sim
        self.num_nodes = num_nodes
        self.nic_bw = float(nic_bw)
        self.latency = float(latency)
        self.loopback_bw = float(loopback_bw if loopback_bw is not None else 4 * nic_bw)
        self._out = [Link(f"node{n}.out", nic_bw) for n in range(num_nodes)]
        self._in = [Link(f"node{n}.in", nic_bw) for n in range(num_nodes)]
        self._loop = [Link(f"node{n}.loop", self.loopback_bw) for n in range(num_nodes)]
        self._flows: dict[Flow, None] = {}  # ordered set, see Link.flows
        self._fid = itertools.count()
        self._last_update = 0.0
        self._wake: Optional[Event] = None
        self.bytes_moved = 0.0

    # -- public API -----------------------------------------------------------
    def make_link(self, name: str, capacity: float) -> Link:
        """Create an auxiliary capacity (client channel, server ingest, ...)."""
        return Link(name, capacity)

    def start_flow(
        self,
        src_node: int,
        dst_node: int,
        nbytes: float,
        extra_links: tuple[Link, ...] = (),
    ) -> Event:
        """Begin a transfer; the returned event fires when the last byte lands.

        Zero-byte flows complete after just the propagation latency.
        ``extra_links`` lets callers thread additional shared capacities into
        the fair-sharing computation (e.g. a PFS client's streaming channel
        and the target server's ingest stage).
        """
        done = self.sim.event(name=f"flow:{src_node}->{dst_node}")
        if nbytes <= 0:
            done.succeed(delay=self.latency)
            return done
        if src_node == dst_node:
            links = [self._loop[src_node]]
        else:
            links = [self._out[src_node], self._in[dst_node]]
        links.extend(extra_links)
        self._advance()
        flow = Flow(next(self._fid), links, nbytes, done)
        self._flows[flow] = None
        for link in links:
            link.flows[flow] = None
        self.bytes_moved += nbytes
        self._reschedule()
        return done

    def transfer(self, src_node: int, dst_node: int, nbytes: float):
        """Process-style helper: ``yield from fabric.transfer(...)``."""
        yield self.start_flow(src_node, dst_node, nbytes)

    def set_node_bw_factor(self, node: int, factor: float) -> None:
        """Scale one endpoint's NIC capacity (both directions) by ``factor``.

        Used by fault injection to model transient link degradation; active
        flows are advanced to now and re-shared immediately, so in-flight
        transfers slow down (or recover) mid-stream.
        """
        if factor <= 0:
            raise SimError(f"bw factor must be > 0, got {factor}")
        if not 0 <= node < self.num_nodes:
            raise SimError(f"no such fabric endpoint {node}")
        self._advance()
        self._out[node].capacity = self.nic_bw * factor
        self._in[node].capacity = self.nic_bw * factor
        self._reschedule()

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def flow_rates(self) -> dict[int, float]:
        """Current rate per flow id (after a fresh recompute) — for tests."""
        self._advance()
        self._recompute()
        return {f.fid: f.rate for f in self._flows}

    # -- internals --------------------------------------------------------------
    def _advance(self) -> None:
        """Progress all flows from the last update instant to now."""
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0:
            for flow in self._flows:
                flow.remaining -= flow.rate * dt
        self._last_update = now

    def _recompute(self) -> None:
        """Max-min fair allocation by progressive filling.

        All iteration is over insertion-ordered dicts, so bottleneck
        tie-breaks (symmetric NICs produce many equal shares) resolve the
        same way in every process and the allocation is fully deterministic.
        """
        unfrozen: dict[Flow, None] = dict.fromkeys(self._flows)
        residual = {link: link.capacity for flow in unfrozen for link in flow.links}
        live = {
            link: dict.fromkeys(f for f in link.flows if f in unfrozen)
            for link in residual
        }
        while unfrozen:
            best_link = None
            best_share = float("inf")
            for link, members in live.items():
                if not members:
                    continue
                share = residual[link] / len(members)
                if share < best_share:
                    best_share = share
                    best_link = link
            if best_link is None:
                break
            # Clamp against accumulated floating-point error: a residual can
            # drift a few ULPs negative, which would hand out negative rates
            # and stall the completion clock.
            best_share = max(best_share, 0.0)
            for flow in list(live[best_link]):
                flow.rate = best_share
                unfrozen.pop(flow, None)
                for link in flow.links:
                    if link is not best_link:
                        residual[link] = max(0.0, residual[link] - best_share)
                        live[link].pop(flow, None)
            live[best_link].clear()

    def _reschedule(self) -> None:
        """Recompute rates and arm a wake-up at the next flow completion."""
        self._recompute()
        soonest = float("inf")
        for flow in self._flows:
            if flow.remaining <= self._finish_threshold(flow):
                soonest = 0.0
            elif flow.rate > _EPS:
                t = flow.remaining / flow.rate
                if t < soonest:
                    soonest = t
        # Invalidate any previously armed wake-up (it checks identity below).
        wake = self.sim.event(name="fabric-wake")
        self._wake = wake
        if soonest is not float("inf"):
            wake.callbacks.append(self._on_wake)
            # Floor at one nanosecond so a pathological rate can never stall
            # the simulation clock (livelock guard).
            wake.succeed(delay=max(1e-9, soonest) if soonest > 0.0 else 0.0)

    @staticmethod
    def _finish_threshold(flow: Flow) -> float:
        # Sub-byte residue: done for all practical purposes.
        return max(1e-6, _EPS * flow.nbytes)

    def _on_wake(self, event: Event) -> None:
        if event is not self._wake:
            return  # superseded by a newer reschedule
        self._advance()
        finished = [f for f in self._flows if f.remaining <= self._finish_threshold(f)]
        for flow in finished:
            self._flows.pop(flow, None)
            for link in flow.links:
                link.flows.pop(flow, None)
        for flow in finished:
            # Completion is delivered after the propagation latency.
            flow.done.succeed(delay=self.latency)
        if self._flows:
            self._reschedule()
        else:
            self._wake = None
