"""Array fair-share kernel: flat-array progressive filling + rate memoization.

:class:`ArrayFabric` (``REPRO_FABRIC=array``, the default) is the third
allocator over the same max-min model as :class:`repro.net.fabric.Fabric`.
It produces bit-identical rates, timestamps and event counts — asserted by
``benchmarks/bench_engine.py`` on the IOR sweep grid (plus fault and chaos
schedules) and by ``tests/net/test_fabric_array.py`` on randomized churn —
while cutting the per-recompute cost three ways:

* **Flat arrays instead of dict churn.**  ``_fill`` lowers the touched
  component into parallel lists indexed by local flow/link ids (capacities,
  integer weight sums, membership as ascending-``fi`` int lists) and runs
  progressive filling over those, with lazy freezing (a byte flag per flow,
  a weight-sum decrement per link) instead of per-round dict removals.  The
  scan order, tie-breaks, and every float operation — shares, the
  ``max(best_share, 0.0)`` clamp, the per-bundle-member clamped residual
  subtractions — are performed on the same operands in the same order as
  the dict implementation, which is why the result is bit-identical.

* **Converged-rate memoization.**  The filled rates are a pure function of
  the component's *topology signature*: link capacities in first-touch
  order, per-flow weights, and per-flow tuples of local link ids —
  encoded as one flat tuple (see ``_fill``) so a cache hit costs one list
  build, one tuple and one hash.  They do not depend on
  ``remaining``/``nbytes`` (filling never reads them) or on flow/link
  identity.  The sweep's shuffle waves re-rate the same few shapes
  thousands of times, so a bounded signature→rates cache turns the
  filling loop into a key build + dict hit (``rate_cache_hits`` /
  ``rate_cache_misses`` counters; surfaced via ``SimProfiler`` as
  ``fabric.rate_cache_hits``/``..._misses`` when profiling).
  Single-flow components — a third of all fills on cache-enabled sweep
  points — bypass the signature and cache entirely: their fill is a
  closed-form min over the flow's own links.

* **Pooled flush/wake callables.**  The incremental allocator allocates a
  zero-delay Event per coalesced flush and per wake re-arm, invalidated by
  identity checks.  Here both become pooled callable objects scheduled via
  ``sim.call_soon``/``sim.call_later`` — the slotted engine's ``_Call``
  fast path — invalidated by a generation stamp carried *on the armed
  object* (a stamp on the fabric alone would let a superseded-but-pending
  callable pass the check once re-armed).  Scheduling order, queue
  positions and fired-event counts are identical to the Event variant on
  both engines: ``call_soon`` appends to the same same-instant lane slot
  (or heap position) a ``succeed(delay=0)`` would take, ``call_later`` the
  same timestamp bucket, and dispatching a ``_Call`` bumps the engine's
  fired-event counter exactly like an Event.

See docs/PERFORMANCE.md ("Array fair-share kernel") for the measured table
and the memoization-soundness argument in full.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable, Optional

from repro.net.fabric import FABRIC_KINDS, Fabric, Flow, Link
from repro.sim.core import Simulator

_EPS = 1e-12
_INF = float("inf")

# Bounded memo: signatures are small tuples but unbounded churn (chaos
# schedules mutate capacities) could grow the table; wholesale clear is
# cheap and keeps the common steady-state shapes hot.
_RATE_CACHE_MAX = 4096


class _FlushCall:
    """Pooled zero-delay flush callback, validity-checked by generation.

    The generation stamp lives on this object, not (only) on the fabric:
    each arm pops a *fresh* object from the pool, so a pending-but-stale
    callable can never be confused with the currently armed one.
    """

    __slots__ = ("fabric", "gen")

    def __init__(self, fabric: "ArrayFabric"):
        self.fabric = fabric
        self.gen = -1

    def __call__(self) -> None:
        fabric = self.fabric
        pool = fabric._flush_pool
        if len(pool) < 8:
            # Recycle first: at most one queue entry references this object,
            # and ``self.gen`` is read before any re-arm can repurpose it.
            pool.append(self)
        if self.gen == fabric._flush_gen and fabric._flush_armed:
            fabric._flush_armed = False
            fabric._flush()


class _WakeCall:
    """Pooled wake-up callback; same generation scheme as :class:`_FlushCall`."""

    __slots__ = ("fabric", "gen")

    def __init__(self, fabric: "ArrayFabric"):
        self.fabric = fabric
        self.gen = -1

    def __call__(self) -> None:
        fabric = self.fabric
        pool = fabric._wake_pool
        if len(pool) < 8:
            pool.append(self)
        if self.gen == fabric._wake_gen and fabric._wake_armed:
            fabric._wake_armed = False
            fabric._wake_body()


class ArrayFabric(Fabric):
    """Flat-array max-min allocator with converged-rate memoization."""

    kind = "array"

    def __init__(
        self,
        sim: Simulator,
        num_nodes: int,
        nic_bw: float,
        latency: float,
        loopback_bw: Optional[float] = None,
    ):
        super().__init__(sim, num_nodes, nic_bw, latency, loopback_bw)
        # Flush/wake arming state (replaces the base class's Event identity
        # checks; ``_flush_event``/``_wake`` stay None in this subclass).
        self._flush_armed = False
        self._flush_gen = 0
        self._flush_pool: list[_FlushCall] = []
        self._wake_armed = False
        self._wake_gen = 0
        self._wake_pool: list[_WakeCall] = []
        # Scratch buffers reused across every _fill call (cleared, never
        # reallocated) so the hot loop itself is allocation-free.
        self._scratch_flows: list[Flow] = []
        self._scratch_lids: dict[Link, int] = {}
        self._scratch_key: list = []
        self._scratch_caps: list[float] = []
        self._scratch_weights: list[int] = []
        self._scratch_flinks: list[list[int]] = []
        self._scratch_residual: list[float] = []
        self._scratch_wsums: list[int] = []
        self._scratch_members: list[list[int]] = []
        self._scratch_rates: list[float] = []
        self._rate_cache: dict[tuple, tuple[float, ...]] = {}
        self.rate_cache_hits = 0
        self.rate_cache_misses = 0

    # -- change application (pooled-callable flush) -----------------------------
    def _change(self, links: Iterable[Link]) -> None:
        if self._flush_armed:
            self.batched_starts += 1
        dirty = self._dirty
        for link in links:
            dirty[link] = None
        if not self._flush_armed:
            pool = self._flush_pool
            call = pool.pop() if pool else _FlushCall(self)
            call.gen = self._flush_gen
            self._flush_armed = True
            self.sim.call_soon(call)

    def _force_flush(self) -> None:
        if self._flush_armed:
            # Invalidate the pending callable: bump the generation so it
            # fails its stamp check when it eventually drains.
            self._flush_armed = False
            self._flush_gen += 1
        self._flush()

    # -- wake arming (pooled-callable wake) -------------------------------------
    def _arm_wake(self) -> None:
        # Invalidate any previously armed wake-up unconditionally; the base
        # class achieves the same by replacing the ``_wake`` Event reference.
        self._wake_gen += 1
        soonest = _INF
        for flow in self._flows:
            if flow.remaining <= flow.threshold:
                soonest = 0.0
                break
            rate = flow.rate
            if rate > _EPS:
                t = flow.remaining / rate
                if t < soonest:
                    soonest = t
        if soonest is _INF:
            self._wake_armed = False
            return
        pool = self._wake_pool
        call = pool.pop() if pool else _WakeCall(self)
        call.gen = self._wake_gen
        self._wake_armed = True
        self.wake_events += 1
        # Same 1 ns livelock floor as the base class; delay-0 wakes land in
        # the same same-instant lane slot an Event ``succeed()`` would.
        self.sim.call_later(max(1e-9, soonest) if soonest > 0.0 else 0.0, call)

    # -- the array kernel -------------------------------------------------------
    def _fill(self, flows: Iterable[Flow]) -> None:
        """Progressive filling over flat arrays, memoized by topology signature.

        ``flows`` arrives in ascending-``fid`` order (component refills are
        sorted; ``self._flows`` iterates in creation order), so local flow
        ids ``fi`` enumerate ascending ``fid`` and every per-link member
        list built here matches the insertion order of the dict
        implementation's ``live`` sets exactly.
        """
        flow_list = self._scratch_flows
        flow_list.clear()
        flow_list.extend(flows)
        nflows = len(flow_list)
        if not nflows:
            return
        if nflows == 1:
            # Single-flow component — point-to-point RPC traffic between
            # otherwise idle endpoints, about a third of all fills on
            # cache-enabled sweep points.  Progressive filling reduces to
            # the minimum capacity/weight share over the flow's own links:
            # the same divisions on the same operands in the same scan
            # order (first-touch == flow.links order), the same first-wins
            # tie-break and the same final clamp as the general loop, so
            # the result is bit-identical and the signature build and
            # cache are skipped outright.
            flow = flow_list[0]
            weight = flow.weight
            best_share = _INF
            for link in flow.links:
                share = link.capacity / weight
                if share < best_share:
                    best_share = share
            # A linkless flow is never frozen by the general loop and
            # keeps the 0.0 it was initialized with.
            flow.rate = 0.0 if best_share is _INF else max(best_share, 0.0)
            flow_list.clear()
            return
        lids = self._scratch_lids
        lids.clear()
        caps = self._scratch_caps
        caps.clear()
        weights = self._scratch_weights
        weights.clear()
        # One flat signature tuple instead of nested per-flow tuples: per
        # flow its weight and link count, then per link either the local id
        # of an already-seen link or a -1 marker followed by the capacity
        # of a first-touch link (local ids enumerate first-touch order, so
        # the walk reconstructs the nested form exactly; -1 is never a
        # valid local id, and every position's role is fixed by the prefix,
        # so equal keys imply equal topology signatures).  One list build,
        # one tuple, one hash — the dominant cost of a cache hit.
        key = self._scratch_key
        key.clear()
        for flow in flow_list:
            weight = flow.weight
            links = flow.links
            weights.append(weight)
            key.append(weight)
            key.append(len(links))
            for link in links:
                li = lids.get(link)
                if li is None:
                    lids[link] = len(caps)
                    key.append(-1)
                    key.append(link.capacity)
                    caps.append(link.capacity)
                else:
                    key.append(li)

        sig = tuple(key)
        cached = self._rate_cache.get(sig)
        profiler = self.sim.profiler
        if cached is not None:
            self.rate_cache_hits += 1
            if profiler is not None:
                profiler.count("fabric.rate_cache_hits")
            for fi, flow in enumerate(flow_list):
                flow.rate = cached[fi]
            flow_list.clear()
            lids.clear()
            return
        self.rate_cache_misses += 1
        t_solve = 0.0
        if profiler is not None:
            profiler.count("fabric.rate_cache_misses")
            t_solve = perf_counter()

        # Miss path only: lower the per-flow local link ids into reused
        # lists (the hit path never needs them — the walk above already
        # assigned every local id via ``lids``).
        flinks = self._scratch_flinks
        while len(flinks) < nflows:
            flinks.append([])
        for fi, flow in enumerate(flow_list):
            local = flinks[fi]
            local.clear()
            for link in flow.links:
                local.append(lids[link])

        nlinks = len(caps)
        members = self._scratch_members
        while len(members) < nlinks:
            members.append([])
        for li in range(nlinks):
            members[li].clear()
        for fi in range(nflows):
            for li in flinks[fi]:
                members[li].append(fi)
        residual = self._scratch_residual
        residual.clear()
        residual.extend(caps)
        wsums = self._scratch_wsums
        wsums.clear()
        rates = self._scratch_rates
        rates.clear()
        for li in range(nlinks):
            total = 0
            for fi in members[li]:
                total += weights[fi]
            wsums.append(total)
        frozen = bytearray(nflows)
        rates.extend([0.0] * nflows)
        remaining = nflows
        while remaining:
            best_li = -1
            best_share = _INF
            for li in range(nlinks):
                wsum = wsums[li]
                if not wsum:
                    continue
                # Integer weight sum == len(members) when all weights are 1,
                # so the division matches both base-class divisor branches.
                share = residual[li] / wsum
                if share < best_share:
                    best_share = share
                    best_li = li
            if best_li < 0:
                break
            # Clamp accumulated float drift, verbatim from the base class
            # (max returns its *first* argument on ties, so -0.0 survives
            # exactly as it does there).
            best_share = max(best_share, 0.0)
            for fi in members[best_li]:
                if frozen[fi]:
                    continue
                frozen[fi] = 1
                remaining -= 1
                rates[fi] = best_share
                weight = weights[fi]
                for li in flinks[fi]:
                    if li != best_li:
                        if weight == 1:
                            residual[li] = max(0.0, residual[li] - best_share)
                        else:
                            # One clamped subtraction per bundle member,
                            # exactly as the dict implementation does.
                            r = residual[li]
                            for _ in range(weight):
                                r = max(0.0, r - best_share)
                            residual[li] = r
                        wsums[li] -= weight
            wsums[best_li] = 0

        frozen_rates = tuple(rates)
        cache = self._rate_cache
        if len(cache) >= _RATE_CACHE_MAX:
            cache.clear()
        cache[sig] = frozen_rates
        if profiler is not None:
            # Miss-path solve time: the table tools/profile_sweep.py --top
            # prints shows this against fabric.recompute, making the
            # memoization win (recompute mostly = cache hits) measurable.
            profiler.lap("fabric.fill_solve", t_solve)
        for fi, flow in enumerate(flow_list):
            flow.rate = rates[fi]
        # Drop object references so completed flows/links are collectable.
        flow_list.clear()
        lids.clear()


FABRIC_KINDS["array"] = ArrayFabric
