"""Interconnect model: NIC-contended flows and rank-to-rank messaging (paper §IV testbed)."""

from repro.net.fabric import Fabric, Flow, Link, NaiveFabric, create_fabric
from repro.net.fabric_array import ArrayFabric  # registers FABRIC_KINDS["array"]
from repro.net.message import Mailbox, Message, Transport

__all__ = [
    "ArrayFabric",
    "Fabric",
    "Flow",
    "Link",
    "Mailbox",
    "Message",
    "NaiveFabric",
    "Transport",
    "create_fabric",
]
