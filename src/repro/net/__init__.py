"""Interconnect model: NIC-contended flows and rank-to-rank messaging."""

from repro.net.fabric import Fabric, Flow, Link
from repro.net.message import Mailbox, Message, Transport

__all__ = ["Fabric", "Flow", "Link", "Mailbox", "Message", "Transport"]
