"""Interconnect model: NIC-contended flows and rank-to-rank messaging (paper §IV testbed)."""

from repro.net.fabric import Fabric, Flow, Link, NaiveFabric, create_fabric
from repro.net.message import Mailbox, Message, Transport

__all__ = [
    "Fabric",
    "Flow",
    "Link",
    "Mailbox",
    "Message",
    "NaiveFabric",
    "Transport",
    "create_fabric",
]
