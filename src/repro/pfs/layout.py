"""Striping arithmetic.

A file's byte stream is chopped into ``stripe_size`` units dealt round-robin
over ``stripe_count`` targets (starting at ``first_target``).  These
functions convert between file offsets and (target, target-local offset)
and split arbitrary extents into their per-target pieces — the client's RPC
fan-out and the lock manager's stripe indexing are both built on them.

Paper correspondence: §II-B striping (stripe size 4 MB, count 4 in
§IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class StripeChunk:
    """One stripe-resident piece of a file extent."""

    target: int  # index into the file's target list
    target_offset: int  # byte offset within that target's object
    file_offset: int  # where this piece sits in the file
    length: int
    stripe_index: int  # global stripe number in the file


@dataclass(frozen=True)
class StripeLayout:
    stripe_size: int
    stripe_count: int
    first_target: int = 0

    def __post_init__(self):
        if self.stripe_size <= 0:
            raise ValueError(f"stripe_size must be positive, got {self.stripe_size}")
        if self.stripe_count <= 0:
            raise ValueError(f"stripe_count must be positive, got {self.stripe_count}")

    def stripe_of(self, offset: int) -> int:
        return offset // self.stripe_size

    def target_of(self, offset: int) -> int:
        return (self.stripe_of(offset) + self.first_target) % self.stripe_count

    def target_offset_of(self, offset: int) -> int:
        """Byte position inside the target-local object for a file offset."""
        stripe = self.stripe_of(offset)
        row = stripe // self.stripe_count  # how many full rounds precede it
        return row * self.stripe_size + offset % self.stripe_size

    def chunks(self, offset: int, length: int) -> Iterator[StripeChunk]:
        """Split ``[offset, offset+length)`` into per-stripe pieces."""
        if length < 0:
            raise ValueError("negative extent length")
        pos = offset
        end = offset + length
        while pos < end:
            stripe = self.stripe_of(pos)
            stripe_end = (stripe + 1) * self.stripe_size
            piece = min(end, stripe_end) - pos
            yield StripeChunk(
                target=(stripe + self.first_target) % self.stripe_count,
                target_offset=self.target_offset_of(pos),
                file_offset=pos,
                length=piece,
                stripe_index=stripe,
            )
            pos += piece

    def stripes_covered(self, offset: int, length: int) -> range:
        if length <= 0:
            return range(0, 0)
        return range(self.stripe_of(offset), self.stripe_of(offset + length - 1) + 1)

    def align_down(self, offset: int) -> int:
        return (offset // self.stripe_size) * self.stripe_size

    def align_up(self, offset: int) -> int:
        return -(-offset // self.stripe_size) * self.stripe_size
