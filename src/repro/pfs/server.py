"""Storage data servers.

Each data server owns one RAID6 target and a small worker pool (BeeGFS
worker threads): RPC processing overlaps across workers but the device
serialises.  Service times carry a lognormal jitter factor — this is the
load-imbalance "one server is momentarily slow" effect that makes one
aggregator the straggler and inflates the post-write global synchronisation
(paper Section II-B and the Fig. 8 outlier discussion).

The RAID target uses a *stream table*: firmware and the I/O elevator detect
up to ``max_streams`` interleaved sequential streams, so concurrent
aggregators each writing their own contiguous file domain do not pay a full
seek per request — only genuinely random access does.
"""

from __future__ import annotations

from typing import Optional

from repro.config import PFSConfig
from repro.hw.devices import StorageDevice
from repro.sim.core import Event, Simulator
from repro.sim.resources import Resource
from repro.sim.rng import RngStreams


class RaidTarget(StorageDevice):
    """RAID6 group with multi-stream sequential detection."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cfg: PFSConfig,
        rng: Optional[RngStreams] = None,
        max_streams: Optional[int] = None,
    ):
        super().__init__(sim, name, cfg.hdd.capacity)
        self.stream_bw = cfg.hdd.stream_bw
        self.seek_time = cfg.hdd.seek_time
        self.sequential_seek_factor = cfg.hdd.sequential_seek_factor
        self.max_streams = max_streams if max_streams is not None else cfg.server_max_streams
        self.rng = rng
        self.jitter_sigma = cfg.jitter_sigma
        self._jitter = None  # cached draw callable (lazy: rng may be swapped)
        self._streams: dict[int, int] = {}  # tail offset -> lru tick
        self._tick = 0
        self.seeks = 0

    def service_time(self, offset: int, nbytes: int, is_write: bool) -> float:
        self._tick += 1
        sequential = offset in self._streams
        if sequential:
            del self._streams[offset]
        else:
            self.seeks += 1
            if len(self._streams) >= self.max_streams:
                # Evict the least recently extended stream.
                lru = min(self._streams, key=self._streams.get)
                del self._streams[lru]
        self._streams[offset + nbytes] = self._tick
        seek = self.seek_time * (self.sequential_seek_factor if sequential else 1.0)
        base = seek + nbytes / self.stream_bw
        if self.jitter_sigma > 0.0 and self.rng is not None:
            jitter = self._jitter
            if jitter is None:
                jitter = self._jitter = self.rng.lognormal_fn(
                    f"{self.name}.jitter", self.jitter_sigma
                )
            base *= jitter()
        return base


class WriteBackCache:
    """Server-side dirty buffer: absorbs acked writes, drains to the target.

    A write RPC completes once its bytes fit under the dirty limit; a single
    drain daemon streams dirty data to the RAID target in ``drain_chunk``
    units (the elevator makes the drain effectively sequential).  When the
    cache is full, writers block until the drain frees room — sustained load
    therefore settles to the disk rate while bursts and round-synchronised
    collective patterns are decoupled from disk-arm scheduling.
    """

    def __init__(self, sim: Simulator, target: RaidTarget, limit: int, drain_chunk: int):
        self.sim = sim
        self.target = target
        self.limit = int(limit)
        self.drain_chunk = int(drain_chunk)
        self.dirty = 0
        self._waiters: list[Event] = []
        self._daemon_running = False
        self._drain_pos = 0

    def absorb(self, nbytes: int):
        """Generator: account ``nbytes`` dirty, blocking while over the limit."""
        remaining = int(nbytes)
        while remaining > 0:
            room = self.limit - self.dirty
            if room <= 0:
                ev = Event(self.sim, name="srvcache-throttle")
                self._waiters.append(ev)
                yield ev
                continue
            chunk = min(remaining, room)
            self.dirty += chunk
            remaining -= chunk
            self._ensure_daemon()

    def drain_all(self):
        """Generator: wait until the cache is empty (used by tests/teardown)."""
        while self.dirty > 0:
            ev = Event(self.sim, name="srvcache-drainwait")
            self._waiters.append(ev)
            yield ev

    def _ensure_daemon(self) -> None:
        if not self._daemon_running and self.dirty > 0:
            self._daemon_running = True
            self.sim.process(self._drain(), name="srv-drain")

    def _drain(self):
        while self.dirty > 0:
            chunk = min(self.drain_chunk, self.dirty)
            yield from self.target.write(self._drain_pos, chunk)
            self._drain_pos += chunk
            self.dirty -= chunk
            if self._waiters:
                waiters, self._waiters = self._waiters, []
                for ev in waiters:
                    ev.succeed()
        self._daemon_running = False


class DataServer:
    """One BeeGFS storage server: worker pool, write-back cache, RAID target."""

    def __init__(
        self,
        sim: Simulator,
        server_id: int,
        fabric_node: int,
        cfg: PFSConfig,
        rng: Optional[RngStreams] = None,
        num_workers: int = 4,
    ):
        self.sim = sim
        self.server_id = server_id
        self.fabric_node = fabric_node
        self.cfg = cfg
        self.rng = rng
        self.workers = Resource(sim, capacity=num_workers, name=f"srv{server_id}.workers")
        self.target = RaidTarget(sim, f"srv{server_id}.raid", cfg, rng)
        self.cache = WriteBackCache(
            sim, self.target, cfg.server_cache_bytes, cfg.server_drain_chunk
        )
        self.rpcs_served = 0
        # Per-tag RPC/byte accounting (fleet: one tag per job).  Untagged
        # RPCs — the entire single-job world — never touch these dicts.
        self.rpcs_by_tag: dict[str, int] = {}
        self.bytes_by_tag: dict[str, int] = {}
        self.injector = None  # set by repro.faults when a stall targets us
        self.fast_path = False  # bulk data plane: skip free-worker grant events
        self._rpc_jitter = None  # cached draw callable (lazy: rng may be swapped)

    def _draw_rpc_jitter(self) -> float:
        jitter = self._rpc_jitter
        if jitter is None:
            jitter = self._rpc_jitter = self.rng.lognormal_fn(
                f"srv{self.server_id}.rpc", self.cfg.jitter_sigma
            )
        return jitter()

    def _account(self, tag, nbytes: int, rpc_count: int) -> None:
        if tag is not None:
            self.rpcs_by_tag[tag] = self.rpcs_by_tag.get(tag, 0) + max(1, rpc_count)
            self.bytes_by_tag[tag] = self.bytes_by_tag.get(tag, 0) + int(nbytes)

    def serve_write(
        self, target_offset: int, nbytes: int, rpc_count: int = 1, tag: Optional[str] = None
    ):
        """Generator: process one write RPC — worker, overhead, cache absorb.

        ``rpc_count > 1`` accounts for a batch of logical RPCs coalesced by
        the caller: per-RPC overhead is charged for each.
        """
        if not (self.fast_path and self.injector is None and self.workers.try_acquire()):
            yield self.workers.request()
        try:
            if self.injector is not None:
                # A stalled server parks the RPC while holding the worker:
                # head-of-line blocking, exactly what a wedged daemon does.
                yield from self.injector.server_gate(self.server_id)
            overhead = self.cfg.rpc_overhead * max(1, rpc_count)
            if self.rng is not None and self.cfg.jitter_sigma > 0:
                overhead *= self._draw_rpc_jitter()
            yield self.sim.timeout(overhead)
            yield from self.cache.absorb(nbytes)
            self.rpcs_served += max(1, rpc_count)
            self._account(tag, nbytes, rpc_count)
        finally:
            self.workers.release()

    def serve_write_event(
        self, target_offset: int, nbytes: int, rpc_count: int = 1, tag: Optional[str] = None
    ) -> Event:
        """Flat variant of :meth:`serve_write` for ``sim.flat`` chains.

        Caller gates on ``self.injector is None`` (no stall gate to park
        behind).  Returns an Event fired *inline* in the callback where the
        generator's caller would resume: same worker-grant position, same
        post-grant jitter draw, same absorb/throttle loop, same
        release-before-resume order.  The RPC completes unconditionally —
        callers must not be interruptible mid-chain (the sync flat loop is
        only enabled when no fault schedule exists).
        """
        done = Event(self.sim, name=f"srv{self.server_id}-w")
        if self.fast_path and self.workers.try_acquire():
            self._serve_write_overhead(done, nbytes, rpc_count, tag)
        else:
            req = self.workers.request()
            req.callbacks.append(
                lambda _ev: self._serve_write_overhead(done, nbytes, rpc_count, tag)
            )
        return done

    def _serve_write_overhead(
        self, done: Event, nbytes: int, rpc_count: int, tag: Optional[str] = None
    ) -> None:
        overhead = self.cfg.rpc_overhead * max(1, rpc_count)
        if self.rng is not None and self.cfg.jitter_sigma > 0:
            overhead *= self._draw_rpc_jitter()
        self.sim.call_later(
            overhead, lambda: self._serve_write_absorb(done, nbytes, rpc_count, tag=tag)
        )

    def _serve_write_absorb(
        self,
        done: Event,
        nbytes: int,
        rpc_count: int,
        remaining: Optional[int] = None,
        tag: Optional[str] = None,
    ) -> None:
        # Same loop as WriteBackCache.absorb, continued across throttle waits
        # via callbacks instead of generator resumes.
        cache = self.cache
        remaining = int(nbytes) if remaining is None else remaining
        while remaining > 0:
            room = cache.limit - cache.dirty
            if room <= 0:
                ev = Event(self.sim, name="srvcache-throttle")
                cache._waiters.append(ev)
                ev.callbacks.append(
                    lambda _ev, left=remaining: self._serve_write_absorb(
                        done, nbytes, rpc_count, left, tag=tag
                    )
                )
                return
            chunk = min(remaining, room)
            cache.dirty += chunk
            remaining -= chunk
            cache._ensure_daemon()
        self.rpcs_served += max(1, rpc_count)
        self._account(tag, nbytes, rpc_count)
        self.workers.release()
        done._fire_inline()

    def serve_read(self, target_offset: int, nbytes: int, tag: Optional[str] = None):
        if not (self.fast_path and self.injector is None and self.workers.try_acquire()):
            yield self.workers.request()
        try:
            if self.injector is not None:
                yield from self.injector.server_gate(self.server_id)
            yield self.sim.timeout(self.cfg.rpc_overhead)
            yield from self.target.read(target_offset, nbytes)
            self.rpcs_served += 1
            self._account(tag, nbytes, 1)
        finally:
            self.workers.release()
