"""Stripe-granular distributed extent locks.

Parallel file systems serialise conflicting writers at lock granularity —
for Lustre/BeeGFS that granularity is effectively the stripe.  The lock
manager hands out reader/writer locks per ``(file, stripe_index)``; each
acquire/release costs one lock RPC.  Two effects the paper discusses fall
out of this model:

* *false sharing*: file domains that straddle a stripe boundary make two
  aggregators contend for the same stripe lock even though their byte
  ranges are disjoint (Section I, bottleneck (b)), and
* the ``e10_cache=coherent`` mode, which holds write locks on cached
  extents until the sync thread has persisted them (Section III-B).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.sim.core import Event, SimError, Simulator


@dataclass
class _Waiter:
    exclusive: bool
    event: Event


@dataclass
class _StripeLock:
    readers: int = 0
    writer: bool = False
    queue: deque = field(default_factory=deque)


class LockManager:
    """Per-file, per-stripe reader/writer locks with FIFO fairness."""

    def __init__(self, sim: Simulator, lock_rpc_time: float):
        self.sim = sim
        self.lock_rpc_time = float(lock_rpc_time)
        self._locks: dict[tuple[int, int], _StripeLock] = {}
        self.acquires = 0
        self.contended_acquires = 0

    def _slot(self, file_id: int, stripe: int) -> _StripeLock:
        key = (file_id, stripe)
        lock = self._locks.get(key)
        if lock is None:
            lock = self._locks[key] = _StripeLock()
        return lock

    def acquire(self, file_id: int, stripe: int, exclusive: bool = True):
        """Generator: obtain the lock (one RPC, plus queueing if contended)."""
        yield self.sim.timeout(self.lock_rpc_time)
        lock = self._slot(file_id, stripe)
        self.acquires += 1
        if self._grantable(lock, exclusive) and not lock.queue:
            self._grant(lock, exclusive)
            return
        self.contended_acquires += 1
        ev = Event(self.sim, name=f"lock:{file_id}:{stripe}")
        waiter = _Waiter(exclusive, ev)
        lock.queue.append(waiter)
        # Interrupt hook: if the waiting process is torn down (crash faults),
        # drop the queue entry — or revoke the grant if _wake already handed
        # the lock to the dying waiter.  Without this an aggregator crash
        # while queued leaves the stripe permanently held by a dead event.
        ev.abandon = lambda _ev, lock=lock, waiter=waiter: self._abandon_waiter(lock, waiter)
        yield ev

    def release(self, file_id: int, stripe: int, exclusive: bool = True) -> None:
        lock = self._slot(file_id, stripe)
        if exclusive:
            if not lock.writer:
                raise SimError(f"write-unlock of unheld lock ({file_id},{stripe})")
            lock.writer = False
        else:
            if lock.readers <= 0:
                raise SimError(f"read-unlock of unheld lock ({file_id},{stripe})")
            lock.readers -= 1
        self._wake(lock)

    def try_acquire_now(self, file_id: int, stripe: int, exclusive: bool = True) -> bool:
        """Immediate non-blocking grant (no RPC charged) — used by tests."""
        lock = self._slot(file_id, stripe)
        if self._grantable(lock, exclusive) and not lock.queue:
            self._grant(lock, exclusive)
            return True
        return False

    def snapshot(self) -> list[dict]:
        """Every non-idle stripe lock, for invariant checking.

        Returns dicts with ``file_id``/``stripe``/``writer``/``readers``/
        ``queued`` so a monitor can assert lock-state consistency (e.g. no
        stripe both write- and read-held, no waiters left at quiescence).
        """
        out = []
        for (fid, stripe), lock in self._locks.items():
            if lock.writer or lock.readers or lock.queue:
                out.append(
                    {
                        "file_id": fid,
                        "stripe": stripe,
                        "writer": lock.writer,
                        "readers": lock.readers,
                        "queued": len(lock.queue),
                    }
                )
        return out

    def held(self, file_id: int, stripe: int) -> str:
        lock = self._locks.get((file_id, stripe))
        if lock is None or (not lock.writer and lock.readers == 0):
            return "free"
        return "write" if lock.writer else f"read:{lock.readers}"

    # internals -----------------------------------------------------------------
    @staticmethod
    def _grantable(lock: _StripeLock, exclusive: bool) -> bool:
        if exclusive:
            return not lock.writer and lock.readers == 0
        return not lock.writer

    @staticmethod
    def _grant(lock: _StripeLock, exclusive: bool) -> None:
        if exclusive:
            lock.writer = True
        else:
            lock.readers += 1

    def _abandon_waiter(self, lock: _StripeLock, waiter: _Waiter) -> None:
        if waiter.event._triggered:
            # Granted but never consumed: revoke and pass the lock on.
            if waiter.exclusive:
                lock.writer = False
            else:
                lock.readers -= 1
            self._wake(lock)
        else:
            lock.queue.remove(waiter)

    def _wake(self, lock: _StripeLock) -> None:
        while lock.queue:
            head: _Waiter = lock.queue[0]
            if not self._grantable(lock, head.exclusive):
                break
            lock.queue.popleft()
            self._grant(lock, head.exclusive)
            head.event.succeed()
            if head.exclusive:
                break
