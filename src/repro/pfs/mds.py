"""Metadata server.

A single-queue service point for namespace operations (create, open, close,
stat, unlink).  Collective open in ROMIO has rank 0 create the file and
broadcast the handle, so MDS load stays light; the model still serialises
ops so a metadata storm (e.g. file-per-process workloads, which we support
for comparison experiments) queues realistically.

Paper correspondence: §II-B BeeGFS metadata service (opens, stats,
stripe maps).
"""

from __future__ import annotations

from repro.config import PFSConfig
from repro.sim.core import Simulator
from repro.sim.resources import Resource


class MetadataServer:
    def __init__(self, sim: Simulator, fabric_node: int, cfg: PFSConfig):
        self.sim = sim
        self.fabric_node = fabric_node
        self.cfg = cfg
        self.queue = Resource(sim, capacity=1, name="mds")
        self.ops = 0

    def op(self, kind: str = "generic"):
        """Generator: one metadata operation (create/open/stat/unlink/...)."""
        yield self.queue.request()
        try:
            self.ops += 1
            yield self.sim.timeout(self.cfg.metadata_op_time)
        finally:
            self.queue.release()
