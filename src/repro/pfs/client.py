"""PFS client: the per-rank endpoint issuing striped RPCs.

Two write paths mirror the two ways ROMIO drives the file system:

* :meth:`write` — the pipelined collective path.  The extent is split into
  per-target contiguous runs; all RPCs are issued concurrently and the call
  returns when the slowest completes.  Throughput is bounded by the client
  streaming channel, the NICs, each server's ingest stage and its RAID
  target — all shared max-min fairly.

* :meth:`write_sync` — the synchronous independent path used by the cache
  sync thread (a blocking ``pwrite`` loop in one pthread): one outstanding
  RPC at a time, each paying the full client/kernel round trip
  (``sync_client_rtt``) on top of transfer and server time.  This is what
  limits a single flushing aggregator to ≈105 MB/s with 512 KiB chunks.

Paper correspondence: §II-B client path; the sync thread (§III-A)
flushes through exactly this endpoint.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.faults.errors import PFSTimeoutError
from repro.pfs.filesystem import ParallelFileSystem, PFSFile
from repro.pfs.layout import StripeChunk
from repro.sim.core import Event, SimError


def coalesce_target_runs(chunks: list[StripeChunk]) -> list[list[StripeChunk]]:
    """Group stripe chunks into per-target runs contiguous in target space.

    Round-robin striping makes successive rows land contiguously on each
    target, so a large aligned write becomes one streaming RPC per target.
    """
    by_target: dict[int, list[StripeChunk]] = {}
    for ch in chunks:
        by_target.setdefault(ch.target, []).append(ch)
    runs: list[list[StripeChunk]] = []
    for target in sorted(by_target):
        seq = sorted(by_target[target], key=lambda c: c.target_offset)
        run = [seq[0]]
        for ch in seq[1:]:
            prev = run[-1]
            if ch.target_offset == prev.target_offset + prev.length:
                run.append(ch)
            else:
                runs.append(run)
                run = [ch]
        runs.append(run)
    return runs


class PFSClient:
    """One rank's connection to the global file system."""

    def __init__(self, pfs: ParallelFileSystem, node_id: int, name: str = ""):
        self.pfs = pfs
        self.sim = pfs.sim
        self.node_id = node_id
        self.name = name or f"client.n{node_id}"
        cfg = pfs.cfg
        # The client's streaming channel: kernel + transport window that caps
        # a single client's rate regardless of NIC headroom.
        self.channel = pfs.fabric.make_link(f"{self.name}.chan", cfg.per_client_max_bw)
        self.bytes_written = 0
        self.bytes_read = 0
        self.rpcs = 0
        # Per-job accounting tag (fleet): threaded into every fabric flow and
        # server RPC this client issues.  None for single-job machines.
        self.tag: Optional[str] = None
        # Bulk data plane: same-size runs to the same server start as one
        # weighted flow instead of one flow per run (see _group_runs).
        self._bulk = getattr(pfs, "dataplane_bulk", False)

    # -- metadata ------------------------------------------------------------
    def create(self, path: str, stripe_size=None, stripe_count=None):
        """Generator: create a file (one MDS op) and return the PFSFile."""
        yield from self.pfs.mds.op("create")
        f = self.pfs.create(path, stripe_size, stripe_count)
        return f

    def open(self, path: str):
        yield from self.pfs.mds.op("open")
        f = self.pfs.lookup(path)
        f.open_count += 1
        return f

    def close(self, f: PFSFile):
        yield from self.pfs.mds.op("close")
        f.open_count = max(0, f.open_count - 1)

    # -- data: pipelined (collective) path ----------------------------------------
    def write(
        self,
        f: PFSFile,
        offset: int,
        nbytes: int,
        data: Optional[np.ndarray] = None,
        locking: bool = True,
    ):
        """Generator: striped, pipelined write of one contiguous extent."""
        if nbytes < 0:
            raise SimError("negative write")
        if nbytes == 0:
            return
        chunks = list(f.layout.chunks(offset, nbytes))
        runs = coalesce_target_runs(chunks)
        cfg = self.pfs.cfg
        stripes = f.layout.stripes_covered(offset, nbytes)
        # Acquisition happens INSIDE the try so an interrupt that lands
        # mid-loop (aggregator crash) releases exactly the stripes acquired
        # so far instead of leaking them.
        held: list[int] = []
        try:
            if locking:
                for s in stripes:
                    yield from self.pfs.locks.acquire(f.file_id, s, exclusive=True)
                    held.append(s)
            yield self.sim.timeout(cfg.client_rpc_overhead * len(runs))
            subprocs = []
            if self._bulk and len(runs) > 1:
                for group in self._group_runs(f, runs):
                    subprocs.append(
                        self.sim.process(self._rpc_write_group(f, group), name="rpc")
                    )
            else:
                for run in runs:
                    subprocs.append(self.sim.process(self._rpc_write(f, run), name="rpc"))
            yield self.sim.all_of(subprocs)
        finally:
            for s in held:
                self.pfs.locks.release(f.file_id, s, exclusive=True)
        f.record_write(offset, nbytes, data)
        self.bytes_written += nbytes

    def _group_runs(
        self, f: PFSFile, runs: list[list[StripeChunk]]
    ) -> list[list[list[StripeChunk]]]:
        """Group target runs by (server, byte total), preserving run order.

        Runs in one group are indistinguishable transfers (same endpoints,
        same links, same size), so they may share one weighted flow — the
        fair-share allocation is bit-identical to separate flows (see
        :class:`~repro.net.fabric.Flow`), and the per-server order of the
        serve processes is the run order either way.
        """
        groups: list[list[list[StripeChunk]]] = []
        index: dict[tuple[int, int], int] = {}
        for run in runs:
            server = self.pfs.server_for(f, run[0].target)
            total = sum(ch.length for ch in run)
            key = (server.server_id, total)
            i = index.get(key)
            if i is None:
                index[key] = len(groups)
                groups.append([run])
            else:
                groups[i].append(run)
        return groups

    def _rpc_write_group(self, f: PFSFile, group: list[list[StripeChunk]]):
        """A bundle of identical write RPCs to one server: one weighted flow
        plus one server-side service process per member run."""
        server = self.pfs.server_for(f, group[0][0].target)
        total = sum(ch.length for ch in group[0])
        self.rpcs += len(group)
        fill = min(total, 512 * 1024) / self.pfs.cfg.per_client_max_bw
        yield self.sim.timeout(fill)
        waits = [
            self.pfs.fabric.start_flow(
                self.node_id,
                server.fabric_node,
                total,
                extra_links=(self.channel, self.pfs.ingest_link(server.server_id)),
                weight=len(group),
                tag=self.tag,
            )
        ]
        for run in group:
            waits.append(
                self.sim.process(
                    server.serve_write(run[0].target_offset, total, tag=self.tag), name="srv-w"
                )
            )
        yield self.sim.all_of(waits)

    def _rpc_write(self, f: PFSFile, run: list[StripeChunk]):
        """One streaming write RPC: the network transfer and the server's
        device write proceed concurrently (the server writes out data as it
        arrives), so a large RPC costs ~max(network, device) plus a small
        pipeline-fill latency — not their sum."""
        server = self.pfs.server_for(f, run[0].target)
        total = sum(ch.length for ch in run)
        self.rpcs += 1
        fill = min(total, 512 * 1024) / self.pfs.cfg.per_client_max_bw
        yield self.sim.timeout(fill)
        flow = self.pfs.fabric.start_flow(
            self.node_id,
            server.fabric_node,
            total,
            extra_links=(self.channel, self.pfs.ingest_link(server.server_id)),
            tag=self.tag,
        )
        srv = self.sim.process(
            server.serve_write(run[0].target_offset, total, tag=self.tag), name="srv-w"
        )
        yield self.sim.all_of([flow, srv])

    # -- data: synchronous independent path (the sync thread's loop) ----------------
    def write_sync(
        self,
        f: PFSFile,
        offset: int,
        nbytes: int,
        data: Optional[np.ndarray] = None,
        locking: bool = False,
        rpc_count: Optional[int] = None,
    ):
        """Generator: blocking write — one RPC at a time, full RTT each.

        ``rpc_count`` (default: one per target run) lets a caller that has
        coalesced several logical chunks into this extent charge the
        per-chunk round trips and server overheads for all of them, keeping
        batched simulation cost-faithful.
        """
        if nbytes <= 0:
            return
        chunks = list(f.layout.chunks(offset, nbytes))
        runs = coalesce_target_runs(chunks)
        cfg = self.pfs.cfg
        n_rpcs = max(rpc_count if rpc_count is not None else len(runs), len(runs))
        stripes = f.layout.stripes_covered(offset, nbytes) if locking else ()
        held: list[int] = []
        try:
            for s in stripes:
                yield from self.pfs.locks.acquire(f.file_id, s, exclusive=True)
                held.append(s)
            remaining_rpcs = n_rpcs
            for i, run in enumerate(runs):
                server = self.pfs.server_for(f, run[0].target)
                total = sum(ch.length for ch in run)
                # Spread the chunk count over the runs, proportional to bytes.
                if i == len(runs) - 1:
                    run_rpcs = remaining_rpcs
                else:
                    run_rpcs = max(1, round(n_rpcs * total / nbytes))
                    run_rpcs = min(run_rpcs, remaining_rpcs - (len(runs) - 1 - i))
                remaining_rpcs -= run_rpcs
                self.rpcs += run_rpcs
                yield self.sim.timeout(cfg.sync_client_rtt * run_rpcs)
                watchdog = self._sync_watchdog()
                if watchdog is None:
                    yield from self._sync_rpc(server, run[0].target_offset, total, run_rpcs)
                else:
                    # Race the RPC against the client-side watchdog.  On a
                    # timeout the server op is abandoned, not cancelled —
                    # whatever it persists is rewritten identically by the
                    # caller's retry, so the data image stays consistent.
                    op = self.sim.process(
                        self._sync_rpc(server, run[0].target_offset, total, run_rpcs),
                        name="sync-rpc",
                    )
                    winner = yield self.sim.any_of([op, self.sim.timeout(watchdog)])
                    if winner is not op:
                        raise PFSTimeoutError(
                            f"sync write RPC to server {server.server_id} "
                            f"exceeded the {watchdog:g}s client timeout"
                        )
        finally:
            for s in held:
                self.pfs.locks.release(f.file_id, s, exclusive=True)
        f.record_write(offset, nbytes, data)
        self.bytes_written += nbytes

    def write_sync_flat(
        self,
        f: PFSFile,
        offset: int,
        nbytes: int,
        data: Optional[np.ndarray] = None,
        rpc_count: Optional[int] = None,
    ) -> Event:
        """Flat variant of :meth:`write_sync` for ``sim.flat`` chains.

        No locking, no watchdog: the caller (the sync thread's flat loop)
        only enables this when no fault schedule exists, which also
        guarantees every server's ``injector`` is None for
        ``serve_write_event``.  The returned Event fires inline exactly
        where the generator's caller would resume; every RTT timeout, flow
        start, worker grant and jitter draw lands in the same event
        callback as on the generator path.
        """
        if nbytes <= 0:
            raise SimError("write_sync_flat requires nbytes > 0")
        chunks = list(f.layout.chunks(offset, nbytes))
        runs = coalesce_target_runs(chunks)
        cfg = self.pfs.cfg
        n_rpcs = max(rpc_count if rpc_count is not None else len(runs), len(runs))
        # Precompute the per-run plan with the exact loop write_sync runs.
        plan = []
        remaining_rpcs = n_rpcs
        for i, run in enumerate(runs):
            server = self.pfs.server_for(f, run[0].target)
            total = sum(ch.length for ch in run)
            if i == len(runs) - 1:
                run_rpcs = remaining_rpcs
            else:
                run_rpcs = max(1, round(n_rpcs * total / nbytes))
                run_rpcs = min(run_rpcs, remaining_rpcs - (len(runs) - 1 - i))
            remaining_rpcs -= run_rpcs
            plan.append((server, run[0].target_offset, total, run_rpcs))
        done = Event(self.sim, name="write-sync")
        sim = self.sim
        fabric = self.pfs.fabric

        def _start_run(i: int) -> None:
            _server, _t_off, _total, run_rpcs = plan[i]
            self.rpcs += run_rpcs
            sim.call_later(cfg.sync_client_rtt * run_rpcs, lambda: _flow(i))

        def _flow(i: int) -> None:
            server, _t_off, total, _run_rpcs = plan[i]
            fl = fabric.start_flow(
                self.node_id,
                server.fabric_node,
                total,
                extra_links=(self.channel, self.pfs.ingest_link(server.server_id)),
                tag=self.tag,
            )
            fl.callbacks.append(lambda _ev: _serve(i))

        def _serve(i: int) -> None:
            server, t_off, total, run_rpcs = plan[i]
            ev = server.serve_write_event(t_off, total, rpc_count=run_rpcs, tag=self.tag)
            ev.callbacks.append(lambda _ev: _next(i))

        def _next(i: int) -> None:
            if i + 1 < len(plan):
                _start_run(i + 1)
            else:
                f.record_write(offset, nbytes, data)
                self.bytes_written += nbytes
                done._fire_inline()

        _start_run(0)
        return done

    def _sync_rpc(self, server, target_offset: int, total: int, run_rpcs: int):
        """One blocking sync RPC: the transfer and the server's processing,
        issued back to back (no pipelining on the synchronous path)."""
        yield self.pfs.fabric.start_flow(
            self.node_id,
            server.fabric_node,
            total,
            extra_links=(self.channel, self.pfs.ingest_link(server.server_id)),
            tag=self.tag,
        )
        yield from server.serve_write(target_offset, total, rpc_count=run_rpcs, tag=self.tag)

    def _sync_watchdog(self) -> Optional[float]:
        """Client-side RPC timeout for the sync path, when fault injection
        configured one (``FaultSchedule.sync_rpc_timeout``); else None."""
        inj = getattr(self.pfs, "injector", None)
        if inj is not None and inj.sync_rpc_timeout > 0:
            return inj.sync_rpc_timeout
        return None

    # -- reads -----------------------------------------------------------------
    def read(self, f: PFSFile, offset: int, nbytes: int, locking: bool = False):
        """Generator: striped pipelined read; returns data (or None if virtual)."""
        if nbytes <= 0:
            return None
        chunks = list(f.layout.chunks(offset, nbytes))
        runs = coalesce_target_runs(chunks)
        cfg = self.pfs.cfg
        stripes = f.layout.stripes_covered(offset, nbytes) if locking else ()
        held: list[int] = []
        try:
            for s in stripes:
                yield from self.pfs.locks.acquire(f.file_id, s, exclusive=False)
                held.append(s)
            yield self.sim.timeout(cfg.client_rpc_overhead * len(runs))
            subprocs = []
            if self._bulk and len(runs) > 1:
                for group in self._group_runs(f, runs):
                    subprocs.append(
                        self.sim.process(self._rpc_read_group(f, group), name="rpc-r")
                    )
            else:
                for run in runs:
                    subprocs.append(self.sim.process(self._rpc_read(f, run), name="rpc-r"))
            yield self.sim.all_of(subprocs)
        finally:
            for s in held:
                self.pfs.locks.release(f.file_id, s, exclusive=False)
        self.bytes_read += nbytes
        return f.read_back(offset, nbytes)

    def _rpc_read_group(self, f: PFSFile, group: list[list[StripeChunk]]):
        """Read-side counterpart of :meth:`_rpc_write_group`."""
        server = self.pfs.server_for(f, group[0][0].target)
        total = sum(ch.length for ch in group[0])
        self.rpcs += len(group)
        fill = min(total, 512 * 1024) / self.pfs.cfg.per_client_max_bw
        yield self.sim.timeout(fill)
        waits = [
            self.pfs.fabric.start_flow(
                server.fabric_node,
                self.node_id,
                total,
                extra_links=(self.channel, self.pfs.ingest_link(server.server_id)),
                weight=len(group),
                tag=self.tag,
            )
        ]
        for run in group:
            waits.append(
                self.sim.process(
                    server.serve_read(run[0].target_offset, total, tag=self.tag), name="srv-r"
                )
            )
        yield self.sim.all_of(waits)

    def _rpc_read(self, f: PFSFile, run: list[StripeChunk]):
        server = self.pfs.server_for(f, run[0].target)
        total = sum(ch.length for ch in run)
        self.rpcs += 1
        fill = min(total, 512 * 1024) / self.pfs.cfg.per_client_max_bw
        yield self.sim.timeout(fill)
        flow = self.pfs.fabric.start_flow(
            server.fabric_node,
            self.node_id,
            total,
            extra_links=(self.channel, self.pfs.ingest_link(server.server_id)),
            tag=self.tag,
        )
        srv = self.sim.process(
            server.serve_read(run[0].target_offset, total, tag=self.tag), name="srv-r"
        )
        yield self.sim.all_of([flow, srv])
