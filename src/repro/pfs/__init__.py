"""BeeGFS-like parallel file system model.

Components: striping layout math (:mod:`repro.pfs.layout`), storage servers
with RAID targets and service jitter (:mod:`repro.pfs.server`), a metadata
server (:mod:`repro.pfs.mds`), a stripe-granular extent lock manager
(:mod:`repro.pfs.locks`), the client RPC fan-out (:mod:`repro.pfs.client`)
and the facade tying them together (:mod:`repro.pfs.filesystem`).

Paper correspondence: §II-B — BeeGFS on the DEEP-ER SDV (4 data
servers, stripe 4 MB × 4).
"""

from repro.pfs.filesystem import ParallelFileSystem, PFSFile
from repro.pfs.layout import StripeLayout
from repro.pfs.client import PFSClient

__all__ = ["PFSClient", "ParallelFileSystem", "PFSFile", "StripeLayout"]
