"""The parallel file system facade: namespace, servers, locks, verification.

:class:`ParallelFileSystem` owns the data servers, the metadata server and
the lock manager, and keeps a per-file *verification image* (sparse extents
plus a persisted-byte interval set) so tests can assert both content
correctness and the MPI-IO visibility rules ("these bytes are not globally
visible until the sync completed").

Paper correspondence: §II-B — the global file system whose independent
write inefficiency motivates the cache.
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from repro.config import ClusterConfig
from repro.intervals import IntervalSet
from repro.pfs.layout import StripeLayout
from repro.pfs.locks import LockManager
from repro.pfs.mds import MetadataServer
from repro.pfs.server import DataServer
from repro.sim.core import SimError, Simulator
from repro.sim.rng import RngStreams


class PFSFile:
    """A file in the global namespace."""

    _ids = itertools.count(1)

    def __init__(self, path: str, layout: StripeLayout):
        self.path = path
        self.file_id = next(PFSFile._ids)
        self.layout = layout
        self.size = 0
        # Verification extents in *write order* — overlapping writes must be
        # overlaid temporally (last writer wins), not by offset.
        self.extents: list[tuple[int, np.ndarray]] = []
        self.persisted = IntervalSet()
        self.open_count = 0

    def record_write(self, offset: int, nbytes: int, data: Optional[np.ndarray]) -> None:
        self.size = max(self.size, offset + nbytes)
        self.persisted.add(offset, offset + nbytes)
        if data is not None:
            arr = np.asarray(data, dtype=np.uint8)
            if len(arr) != nbytes:
                raise SimError(f"payload length {len(arr)} != nbytes {nbytes}")
            self.extents.append((offset, arr.copy()))

    def data_image(self) -> np.ndarray:
        img = np.zeros(self.size, dtype=np.uint8)
        for off, arr in self.extents:
            img[off : off + len(arr)] = arr
        return img

    def read_back(self, offset: int, nbytes: int) -> Optional[np.ndarray]:
        if not self.extents:
            return None
        out = np.zeros(nbytes, dtype=np.uint8)
        end = offset + nbytes
        for ext_off, arr in self.extents:
            lo, hi = max(offset, ext_off), min(end, ext_off + len(arr))
            if lo < hi:
                out[lo - offset : hi - offset] = arr[lo - ext_off : hi - ext_off]
        return out


class ParallelFileSystem:
    """BeeGFS-like global file system shared by all nodes."""

    def __init__(
        self,
        sim: Simulator,
        config: ClusterConfig,
        fabric,
        rng: Optional[RngStreams] = None,
    ):
        self.sim = sim
        self.config = config
        self.cfg = config.pfs
        self.fabric = fabric
        self.rng = rng
        # Fabric endpoints: compute nodes occupy [0, num_nodes); data servers
        # and the MDS are appended after them.
        base = config.num_nodes
        self.servers = [
            DataServer(
                sim,
                server_id=i,
                fabric_node=base + i,
                cfg=self.cfg,
                rng=rng,
                num_workers=self.cfg.num_server_workers,
            )
            for i in range(self.cfg.num_data_servers)
        ]
        self.mds = MetadataServer(sim, base + self.cfg.num_data_servers, self.cfg)
        self.locks = LockManager(sim, self.cfg.lock_rpc_time)
        # Bulk data plane (set by Machine, consulted by PFSClient): clients
        # coalesce identical same-server runs into weighted flows.
        self.dataplane_bulk = False
        self._files: dict[str, PFSFile] = {}
        self._ingest_links = [
            fabric.make_link(f"srv{i}.ingest", self.cfg.server_ingest_bw)
            for i in range(self.cfg.num_data_servers)
        ]

    @staticmethod
    def fabric_endpoints(config: ClusterConfig) -> int:
        """How many fabric endpoints a machine with this config needs."""
        return config.num_nodes + config.pfs.num_data_servers + config.pfs.num_metadata_servers

    def ingest_link(self, server_index: int):
        return self._ingest_links[server_index]

    # -- namespace (timed operations go through the MDS) ------------------------
    def create(
        self,
        path: str,
        stripe_size: Optional[int] = None,
        stripe_count: Optional[int] = None,
    ) -> PFSFile:
        """Immediate create (the MDS op is charged by the client)."""
        if path in self._files:
            raise FileExistsError(path)
        count = stripe_count or self.cfg.default_stripe_count
        if count > self.cfg.num_data_servers:
            raise SimError(
                f"stripe_count {count} exceeds {self.cfg.num_data_servers} data servers"
            )
        layout = StripeLayout(
            stripe_size=stripe_size or self.cfg.default_stripe_size,
            stripe_count=count,
        )
        f = PFSFile(path, layout)
        self._files[path] = f
        return f

    def lookup(self, path: str) -> PFSFile:
        f = self._files.get(path)
        if f is None:
            raise FileNotFoundError(path)
        return f

    def exists(self, path: str) -> bool:
        return path in self._files

    def unlink(self, path: str) -> None:
        self.lookup(path)
        del self._files[path]

    def server_for(self, f: PFSFile, target_index: int) -> DataServer:
        # target index within the layout maps round-robin onto data servers.
        return self.servers[target_index % len(self.servers)]

    # -- aggregate statistics ------------------------------------------------------
    @property
    def bytes_persisted(self) -> int:
        return sum(f.persisted.total for f in self._files.values())
