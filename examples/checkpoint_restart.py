#!/usr/bin/env python3
"""Checkpoint/restart with the modified workflow (paper Fig. 3).

A Flash-IO-like application alternates compute phases with checkpoint
writes.  With the cache enabled, the close of checkpoint *k* is deferred to
just before checkpoint *k+1* is opened, so the SSD→BeeGFS synchronisation
overlaps the compute phase — the paper's Equations (1)/(2) in action.

The script sweeps the compute-phase duration and shows the hidden/not-hidden
crossover: once C(k+1) >= T_s(k), the perceived bandwidth jumps to the
cache-write rate.

Run:  python examples/checkpoint_restart.py
"""

from repro import Machine, MPIIOLayer, MPIWorld, deep_er_testbed
from repro.analysis.bandwidth import BandwidthModel, perceived_bandwidth
from repro.units import GiB, KiB, fmt_bw
from repro.workloads import flashio_workload
from repro.workloads.phases import multi_phase_body

HINTS = {
    "cb_nodes": "16",
    "cb_buffer_size": "16m",
    "romio_cb_write": "enable",
    "e10_cache": "enable",
    "e10_cache_flush_flag": "flush_immediate",
    "e10_cache_discard_flag": "enable",
    "ind_wr_buffer_size": "512k",
}


def run(compute_seconds: float, num_checkpoints: int = 3):
    machine = Machine(deep_er_testbed(flush_batch_chunks=16))
    world = MPIWorld(machine)
    romio = MPIIOLayer(machine, world.comm, driver="beegfs")
    # A reduced checkpoint (10 blocks/proc ≈ 3.8 GiB) keeps the demo quick.
    workload = flashio_workload(machine.config.num_ranks, blocks_per_proc=10)
    body = multi_phase_body(
        romio,
        workload,
        HINTS,
        num_files=num_checkpoints,
        compute_delay=compute_seconds,
        deferred_close=True,
        file_prefix="/global/chk_",
    )
    timings = world.run(body)
    bw = perceived_bandwidth(timings, workload.file_size, include_last_phase=False)
    hidden = max(t[0].close_wait for t in timings) < 0.05
    return workload.file_size, bw, hidden


def main() -> None:
    model = BandwidthModel(deep_er_testbed())
    size, _, _ = run(0.5)
    predicted_ts = model.flush_time(size, aggregators=16, chunk=512 * KiB)
    print(
        f"checkpoint size {size / GiB:.1f} GiB, 16 aggregators — the model "
        f"predicts T_s ≈ {predicted_ts:.1f}s\n"
    )
    print(f"{'compute phase':>14s}  {'perceived BW':>14s}  sync hidden?")
    for compute in (0.5, 2.0, 5.0, 10.0):
        _, bw, hidden = run(compute)
        print(f"{compute:13.1f}s  {fmt_bw(bw):>14s}  {'yes' if hidden else 'NO'}")
    print(
        "\nOnce the compute phase exceeds the flush time, the checkpoint cost"
        "\ncollapses to the local SSD write time (Eq. 1 with C >= T_s)."
    )


if __name__ == "__main__":
    main()
