#!/usr/bin/env python3
"""Quickstart: one collective write, with and without the E10 cache.

Builds the paper's DEEP-ER testbed (64 nodes x 8 ranks, BeeGFS with 4 data
servers, one SSD scratch partition per node), runs a 512-rank collective
write of a shared file twice — once straight to the parallel file system,
once through the node-local SSD cache with background synchronisation —
and prints what each rank perceived.

Run:  python examples/quickstart.py
"""


from repro import Machine, MPIIOLayer, MPIWorld, RankAccess, deep_er_testbed
from repro.units import GiB, MiB, fmt_bw


def run(cache: bool) -> tuple[float, float]:
    """Returns (write seconds, close-wait seconds) for one 4 GiB file."""
    machine = Machine(deep_er_testbed(flush_batch_chunks=16))
    world = MPIWorld(machine)
    romio = MPIIOLayer(machine, world.comm, driver="beegfs")

    hints = {
        "cb_nodes": "64",  # one aggregator per node
        "cb_buffer_size": "16m",
        "romio_cb_write": "enable",
        "striping_unit": "4m",
        "striping_factor": "4",
    }
    if cache:
        hints.update(
            e10_cache="enable",
            e10_cache_path="/scratch",
            e10_cache_flush_flag="flush_immediate",
            e10_cache_discard_flag="enable",
            ind_wr_buffer_size="512k",
        )

    block = 8 * MiB  # per-rank contribution -> 4 GiB total

    def app(ctx):
        fh = yield from romio.open(ctx.rank, "/global/quickstart.dat", hints)
        access = RankAccess.contiguous(ctx.rank * block, block)
        t0 = ctx.now
        yield from fh.write_all(access)
        t_write = ctx.now - t0
        # The application computes while the cache syncs in the background.
        yield from ctx.compute(5.0)
        t0 = ctx.now
        yield from fh.close()
        return t_write, ctx.now - t0

    results = world.run(app)
    return max(r[0] for r in results), max(r[1] for r in results)


def main() -> None:
    total = 512 * 8 * MiB
    print(f"collective write of {total / GiB:.0f} GiB from 512 ranks on 64 nodes\n")
    for cache in (False, True):
        label = "e10_cache=enable " if cache else "e10_cache=disable"
        t_write, t_close = run(cache)
        bw = total / (t_write + t_close)
        print(
            f"{label}  write_all: {t_write:6.2f}s   close(+sync wait): "
            f"{t_close:5.2f}s   perceived: {fmt_bw(bw)}"
        )
    print(
        "\nWith the cache, MPI_File_write_all returns as soon as the data is"
        "\non the node-local SSDs; the flush to BeeGFS hides behind compute."
    )


if __name__ == "__main__":
    main()
