#!/usr/bin/env python3
"""Tuning a legacy application with MPIWRAP (paper Section III-C).

The 'application' below is written in the classical style — open, write,
close, compute — and knows nothing about the E10 hints.  MPIWRAP, driven by
a configuration file, injects the cache hints at open and defers the real
close of each checkpoint to the next open of the same file group, giving
the legacy code the modified workflow of Fig. 3 'behind the scenes'.

Run:  python examples/legacy_mpiwrap.py
"""

from repro import Machine, MPIIOLayer, MPIWorld, RankAccess, deep_er_testbed
from repro.mpiwrap import MPIWrap, WrapConfig
from repro.units import GiB, MiB, fmt_bw

CONFIG_TEXT = """
# MPIWRAP configuration: tune every checkpoint file, leave the rest alone.
[/global/ckpt_*]
e10_cache = enable
e10_cache_path = /scratch
e10_cache_flush_flag = flush_immediate
e10_cache_discard_flag = enable
ind_wr_buffer_size = 512k
cb_nodes = 32
cb_buffer_size = 16m
romio_cb_write = enable
defer_close = true
"""

NUM_CHECKPOINTS = 3
BLOCK = 8 * MiB
COMPUTE = 4.0


def legacy_app(ctx, open_fn, close_is_deferred):
    """A classical checkpointing loop: open -> write -> close -> compute."""
    io_time = 0.0
    for k in range(NUM_CHECKPOINTS):
        t0 = ctx.now
        fh = yield from open_fn(ctx.rank, f"/global/ckpt_{k:04d}")
        access = RankAccess.contiguous(ctx.rank * BLOCK, BLOCK)
        yield from fh.write_all(access)
        yield from fh.close()  # the wrapper may defer this
        io_time += ctx.now - t0
        if k < NUM_CHECKPOINTS - 1:
            yield from ctx.compute(COMPUTE)
    return io_time


def run(with_wrapper: bool) -> float:
    machine = Machine(deep_er_testbed(flush_batch_chunks=16))
    world = MPIWorld(machine)
    romio = MPIIOLayer(machine, world.comm, driver="beegfs")
    wrapper = MPIWrap(romio, WrapConfig.parse(CONFIG_TEXT))

    def body(ctx):
        if with_wrapper:
            io_time = yield from legacy_app(ctx, wrapper.file_open, True)
            yield from wrapper.finalize(ctx.rank)  # MPI_Finalize interposition
        else:
            def plain_open(rank, path):
                fh = yield from romio.open(rank, path, {
                    "cb_nodes": "32", "cb_buffer_size": "16m",
                    "romio_cb_write": "enable",
                })
                return fh

            io_time = yield from legacy_app(ctx, plain_open, False)
        return io_time

    results = world.run(body)
    return max(results)


def main() -> None:
    total = NUM_CHECKPOINTS * 512 * BLOCK
    print(f"legacy checkpoint loop: {NUM_CHECKPOINTS} x {512 * BLOCK / GiB:.0f} GiB\n")
    plain = run(with_wrapper=False)
    wrapped = run(with_wrapper=True)
    print(f"unmodified binary, no wrapper : {plain:6.2f}s I/O  ({fmt_bw(total / plain)})")
    print(f"LD_PRELOAD'ed MPIWRAP         : {wrapped:6.2f}s I/O  ({fmt_bw(total / wrapped)})")
    print(
        "\nSame application code — the wrapper injected the e10 hints and"
        "\nmoved each close behind the following compute phase."
    )


if __name__ == "__main__":
    main()
