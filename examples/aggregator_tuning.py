#!/usr/bin/env python3
"""Aggregator-count tuning — the paper's central warning.

'Collective write performance can be greatly improved compared to the case
in which only the global parallel file system is used, but can also
decrease if the ratio between aggregators and compute nodes is too small.'

This example sweeps cb_nodes for an IOR-style workload and prints all three
of the paper's measures per configuration: BW with the cache disabled, BW
with the cache enabled (including non-hidden sync), and the theoretical
bandwidth TBW.  At 8 aggregators the flush from too few SSDs cannot hide
inside the compute phase, and the cached run loses to the plain one.

Run:  python examples/aggregator_tuning.py          (quick, 1/8 scale)
      REPRO_SCALE=1 python examples/aggregator_tuning.py   (paper scale)
"""

from repro.experiments.runner import ExperimentSpec, default_scale, run_experiment
from repro.units import GiB, MiB


def main() -> None:
    scale = default_scale()
    print(f"IOR, 512 ranks, scale={scale:g} (x the paper's 32 GiB files)\n")
    print(f"{'aggregators':>11s}  {'BW disabled':>12s}  {'BW cached':>12s}  "
          f"{'TBW':>8s}  {'non-hidden sync':>15s}")
    for aggregators in (8, 16, 32, 64):
        rows = {}
        for mode in ("disabled", "enabled", "theoretical"):
            spec = ExperimentSpec(
                "ior",
                aggregators=aggregators,
                cb_buffer=16 * MiB,
                cache_mode=mode,
                scale=scale,
                flush_batch_chunks=16,
            )
            rows[mode] = run_experiment(spec)
        flag = " <-- cache LOSES" if rows["enabled"].bw < rows["disabled"].bw else ""
        print(
            f"{aggregators:>11d}  "
            f"{rows['disabled'].bw / GiB:>10.2f}Gi  "
            f"{rows['enabled'].bw / GiB:>10.2f}Gi  "
            f"{rows['theoretical'].tbw / GiB:>6.2f}Gi  "
            f"{rows['enabled'].close_wait:>14.1f}s{flag}"
        )
    print(
        "\nToo few aggregators = too few SSDs and sync threads: the flush"
        "\ntakes longer than the compute phase and leaks into write time."
    )


if __name__ == "__main__":
    main()
