#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: run every figure and record paper-vs-measured.

Usage:  python tools/generate_experiments_md.py [--jobs N] [--no-cache] [output]
        REPRO_SCALE=1 REPRO_FULL_SWEEP=1 python tools/...  (paper-size run)

Figures are produced through the shared SweepRunner, so ``--jobs`` fans the
measurement points over worker processes and a warm ``.repro_cache/`` makes
regeneration nearly free.
"""

import argparse
import os
import sys
import time

from repro import fleet
from repro.experiments import faultsweep, figures
from repro.experiments.runner import ExperimentSpec, run_experiment
from repro.units import GiB
from repro.experiments.parallel import SweepRunner, default_jobs
from repro.experiments.report import (
    render_bandwidth_table,
    render_breakdown_table,
    shape_checks_bandwidth,
)
from repro.experiments.resultcache import ResultCache
from repro.experiments.runner import default_scale
from repro.units import MiB

PAPER_NOTES = {
    "fig4": (
        "Paper: BW Cache Disable ≈ 2 GB/s everywhere; BW Cache Enable peaks "
        "≈ 20 GB/s (10x) at 64 aggregators; at 8 aggregators the flush cannot "
        "hide and perceived BW drops below the theoretical series (and can "
        "fall below the disabled case)."
    ),
    "fig5": (
        "Paper: not_hidden_sync appears only in the 8-aggregator "
        "configurations; global sync terms are small; larger collective "
        "buffers bring little improvement with the cache."
    ),
    "fig6": (
        "Paper: the write term dominates; shuffle_all2all and post_write are "
        "consistently larger than with the cache (Fig. 5)."
    ),
    "fig7": (
        "Paper: Flash-IO peaks ≈ 40 GB/s at 64 aggregators / 4 MB buffer vs "
        "≈ 2 GB/s to the file system; 8 aggregators again mismatch perceived "
        "vs theoretical."
    ),
    "fig8": (
        "Paper: at 8 aggregators cache sync cannot be hidden; one 64_16M "
        "post_write outlier shows jitter sensitivity grows at cache speeds."
    ),
    "fig9": (
        "Paper: IOR charges the last write phase's sync (C(5)=0): peak "
        "≈ 6 GB/s vs 2 GB/s standard — ≈ 3x instead of 10x; TBW stays in "
        "line with the other benchmarks."
    ),
    "fig10": (
        "Paper: the not_hidden_sync term (T_s(4) with C(5)=0) is clearly "
        "visible in every configuration and caps IOR's bandwidth."
    ),
}

SECTION_TITLES = {
    "fig4": "Fig. 4 — coll_perf perceived bandwidth",
    "fig5": "Fig. 5 — coll_perf breakdown (cache enabled)",
    "fig6": "Fig. 6 — coll_perf breakdown (cache disabled)",
    "fig7": "Fig. 7 — Flash-IO perceived bandwidth",
    "fig8": "Fig. 8 — Flash-IO breakdown (cache enabled)",
    "fig9": "Fig. 9 — IOR perceived bandwidth (incl. last phase)",
    "fig10": "Fig. 10 — IOR breakdown (cache enabled)",
}

BANDWIDTH_CAPTIONS = {
    "fig4": "coll_perf, last phase excluded",
    "fig7": "Flash-IO, last phase excluded",
    "fig9": "IOR, last phase included",
}


def parse_args():
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("output", nargs="?", default="EXPERIMENTS.md")
    p.add_argument(
        "--jobs",
        type=int,
        default=default_jobs(),
        help="parallel sweep workers (default: REPRO_JOBS or 1)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the on-disk result cache",
    )
    p.add_argument(
        "--no-faults",
        action="store_true",
        help="skip the fault-injection matrix section",
    )
    p.add_argument(
        "--fleet",
        action="store_true",
        help="include the multi-job fleet interference section",
    )
    p.add_argument(
        "--no-devices",
        action="store_true",
        help="skip the device-tier (stream/FTL/NVMM) section",
    )
    return p.parse_args()


def fault_section(args, scale) -> list[str]:
    """Run the fault matrix (IOR x every scenario) and render its table."""
    cache = (
        ResultCache.disabled(result_cls=faultsweep.FaultExperimentResult)
        if args.no_cache
        else ResultCache(result_cls=faultsweep.FaultExperimentResult)
    )
    runner = SweepRunner(
        jobs=args.jobs,
        cache=cache,
        worker=faultsweep._run_fault_point,
        resolver=faultsweep.resolve_fault_config,
    )
    specs = faultsweep.fault_matrix_specs(benchmarks=("ior",), scale=scale)
    results = runner.run(specs)
    ok = all(r.integrity_ok for r in results)
    recovered = all(r.recovered for r in results if r.crashed)
    out = [
        "## Fault matrix — injected failures vs. fault-free reference\n",
        "**Claim under test.** The E10 cache layer survives SSD I/O errors, "
        "device loss, server stalls, link degradation, and an aggregator "
        "crash mid-flush: every recovered or degraded run must leave the "
        "global file byte-identical (SHA-256) to its fault-free reference "
        "(`DESIGN.md` §9; `python -m repro.experiments.sweep --faults`).\n",
        "**Measured (this reproduction).**\n",
        "```",
        faultsweep.render_fault_table(results),
        "```",
        "Integrity: "
        + ("all points byte-identical to reference" if ok else "FAILURES PRESENT")
        + "; crash recovery: "
        + ("every crashed job recovered" if recovered else "UNRECOVERED CRASHES")
        + ".\n",
        "",
    ]
    return out


def fleet_section(args, scale) -> list[str]:
    """Run small fleets through the scheduler and render interference stats."""
    cache = (
        ResultCache.disabled(result_cls=fleet.FleetResult)
        if args.no_cache
        else ResultCache(result_cls=fleet.FleetResult)
    )
    runner = SweepRunner(
        jobs=args.jobs,
        cache=cache,
        worker=fleet.runner._run_fleet_point,
        resolver=fleet.resolve_fleet_config,
    )
    specs = [fleet.FleetSpec(fleet_size=n, scale=scale) for n in (16, 64)]
    results = runner.run(specs)
    out = [
        "## Fleet interference — multi-job contention on one shared cluster\n",
        "**Claim under test.** The paper measures one job at a time on a "
        "dedicated testbed; real clusters run many.  The fleet layer admits "
        "a seeded Poisson stream of mixed jobs (ior/coll_perf/flash_io x "
        "cache on/off x 1-4 nodes) through a backfill scheduler onto one "
        "shared machine — same PFS servers, fabric and node SSDs — and "
        "scores each job against its solo run on an idle cluster "
        "(`python -m repro.experiments.sweep --fleet`).  Stretch is "
        "(queue wait + wall) / solo wall; bw.degr is contended / solo "
        "bandwidth (mean over clean jobs).\n",
        "**Measured (this reproduction).**\n",
        "```",
        fleet.render_fleet_table(results),
        "```",
        "The fleet timeline is deterministic: the same seed reproduces the "
        "same per-job rows byte-for-byte under both event engines and both "
        "data planes (gated in CI by `benchmarks/bench_fleet.py`).\n",
        "",
    ]
    return out


def device_section(scale) -> list[str]:
    """Run the same IOR point on every device tier and render the comparison.

    Points run through :func:`run_experiment` directly (always live — the
    tier is selected through the same environment knobs users reach for),
    plus the seeded flash-aging microbench for the FTL's exact counters.
    """
    try:
        from benchmarks.bench_devices import flash_aging_microbench
    except ImportError:  # `python tools/...` puts tools/, not the repo root, first
        sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        from benchmarks.bench_devices import flash_aging_microbench

    spec = ExperimentSpec(
        benchmark="ior", aggregators=64, cache_mode="enabled", scale=scale
    )
    disabled = run_experiment(
        ExperimentSpec(
            benchmark="ior", aggregators=64, cache_mode="disabled", scale=scale
        )
    )
    rows = []
    for tier, env in (
        ("stream", {}),
        ("ftl", {"REPRO_SSD": "ftl"}),
        ("nvmm", {"REPRO_CACHE_KIND": "nvmm"}),
    ):
        saved = {k: os.environ.get(k) for k in env}
        os.environ.update(env)
        try:
            rows.append((tier, run_experiment(spec)))
        finally:
            for k, v in saved.items():
                os.environ.pop(k, None) if v is None else os.environ.__setitem__(k, v)

    aging = flash_aging_microbench(writes=4096)
    table = [
        f"{'tier':<8} {'BW enable':>10} {'TBW':>8} {'close_wait':>11}",
        "-" * 41,
    ]
    for tier, r in rows:
        table.append(
            f"{tier:<8} {r.bw / GiB:>8.2f}Gi {r.tbw / GiB:>6.2f}Gi {r.close_wait:>10.2f}s"
        )
    table.append(
        f"{'(off)':<8} {disabled.bw / GiB:>8.2f}Gi {disabled.tbw / GiB:>6.2f}Gi "
        f"{disabled.close_wait:>10.2f}s"
    )
    return [
        "## Device tier — stream SSD vs FTL-aware flash vs NVMM cache\n",
        "**Claim under test.** The realistic device tier (docs/DEVICES.md) "
        "changes *timings only* — the same IOR point (64 aggregators, cache "
        "enabled) produces the same file bytes on every tier.  On a fresh "
        "full-size scratch partition the FTL row must *match* the stream "
        "row (the calibrated fresh-drive parity: sequential fills cost the "
        "same ≈0.45 GiB/s per SSD on both models); garbage collection and "
        "write amplification appear only once the partition cycles, which "
        "the aging microbench below pins exactly.  The NVMM row runs the "
        "cache as a write-ahead log on persistent memory instead of extent "
        "files on the SSD (`REPRO_SSD=ftl`, `REPRO_CACHE_KIND=nvmm`).\n",
        "**Measured (this reproduction).**\n",
        "```",
        "\n".join(table),
        "```",
        f"Flash aging microbench (seeded random overwrite, {aging['writes']} "
        f"writes on a shrunken geometry): write amplification "
        f"{aging['write_amplification']:.2f}, {aging['gc_runs']} GC runs, "
        f"{aging['gc_stall_time_s'] * 1e3:.1f} ms stalled; a fresh sequential "
        f"fill stays at WA = {aging['fresh_fill_wa']:.1f}.  Exact counters "
        "are CI-gated (`benchmarks/check_bench.py --devices`).\n",
        "",
    ]


def main() -> None:
    args = parse_args()
    if os.environ.get("REPRO_FULL_SWEEP", "0") == "1":
        aggs, cbs = figures.FULL_SWEEP
    else:
        aggs, cbs = figures.QUICK_AGGREGATORS, figures.QUICK_CB_SIZES
    scale = default_scale()
    cache = ResultCache.disabled() if args.no_cache else None
    runner = SweepRunner(jobs=args.jobs, cache=cache)
    t_start = time.time()
    sections = []

    for fig_key in sorted(figures.FIGURES, key=lambda n: int(n[3:])):
        print(f"{fig_key} ...", flush=True)
        fn, kind, _ = figures.FIGURES[fig_key]
        data = fn(aggs, cbs, scale, runner=runner)
        if kind == "bandwidth":
            table = render_bandwidth_table(BANDWIDTH_CAPTIONS[fig_key], data)
            extra = f"Shape checks: `{shape_checks_bandwidth(data)}`\n"
        else:
            table = render_breakdown_table("per-phase seconds", data)
            extra = ""
        sections.append(f"## {SECTION_TITLES[fig_key]}\n")
        sections.append(f"**Paper result.** {PAPER_NOTES[fig_key]}\n")
        sections.append("**Measured (this reproduction).**\n")
        sections.append("```")
        sections.append(table)
        sections.append("```")
        if extra:
            sections.append(extra)
        sections.append("")

    if not args.no_faults:
        print("fault matrix ...", flush=True)
        sections.extend(fault_section(args, scale))

    if args.fleet:
        print("fleet interference ...", flush=True)
        sections.extend(fleet_section(args, scale))

    if not args.no_devices:
        print("device tier ...", flush=True)
        sections.extend(device_section(scale))

    header = f"""# EXPERIMENTS — paper vs. measured

Generated by `tools/generate_experiments_md.py` in {time.time() - t_start:.0f}s.

Conditions: 512 simulated ranks on 64 nodes (the DEEP-ER testbed of
`repro.config.deep_er_testbed`), four files per run, stripe 4 MB x 4,
512 KiB sync buffer, `scale={scale:g}` of the paper's 32 GB files (the
compute delay scales identically, so hiding behaviour is scale-invariant),
aggregator sweep {list(aggs)}, collective buffers {[c // MiB for c in cbs]} MiB.
Values in GiB/s; the paper reports GB/s (a ~7% unit difference).

Reading guide: `BW Cache Disable` / `BW Cache Enable` / `TBW Cache Enable`
are the paper's three series (direct to BeeGFS; through the SSD cache with
background sync; through the cache with synchronisation ignored).
Breakdown columns are the per-phase seconds of the collective write path
(straggler view, summed over the run's four files).

## Summary of reproduced shapes

1. Cache disabled plateaus near 2 GiB/s for every benchmark (paper: 2 GB/s);
   at 4 MiB collective buffers the simulated plateau dips to ≈1 GiB/s — the
   round-robin stripe phase-locking of aligned file domains is harsher in
   simulation than on real BeeGFS (documented deviation).
2. With 16+ aggregators the cache hides synchronisation completely and wins
   by 5-25x depending on the benchmark (paper: ~10x for coll_perf, ~20x for
   Flash-IO at peak).  Peak simulated numbers run higher than the paper's at
   small scale because fixed software overheads amortise differently; at
   `REPRO_SCALE=1` coll_perf peaks ≈ 25-35 GiB/s (paper ≈ 20 GB/s) and
   Flash-IO ≈ 45-55 GiB/s (paper ≈ 40 GB/s).
3. At 8 aggregators the flush (≈ 95 MB/s per sync thread) exceeds the
   compute window: not_hidden_sync appears and the cached run falls *below*
   the uncached one — the paper's central caveat.
4. The TBW series scales with the aggregator count (more SSDs engaged).
5. IOR, which charges the final phase's sync, caps at ≈ 3x the disabled
   bandwidth (paper: 6 vs 2 GB/s).
6. With the cache, larger collective buffers buy little: small buffers
   suffice, reducing memory pressure (peak pinned bytes scale with
   cb_buffer_size; see `tests/integration/test_shapes.py`).

---
"""
    with open(args.output, "w") as fh:
        fh.write(header + "\n".join(sections))
    stats = runner.cache.stats()
    print(
        f"wrote {args.output} in {time.time() - t_start:.0f}s "
        f"(jobs={runner.jobs} simulated={runner.simulated} "
        f"cache_hits={stats['hits']})",
        file=sys.stderr,
    )


if __name__ == "__main__":
    main()
