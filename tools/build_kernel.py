"""Best-effort mypyc build of the array fair-share kernel.

The hot :mod:`repro.net.fabric_array` module is plain Python with
``__slots__`` classes and flat-list loops — exactly the shape mypyc
compiles well.  This script compiles it in place when a compiler is
available and **skips gracefully** when one is not: the pure-Python module
is always a complete, tested implementation, and nothing in the test suite
or the benchmarks requires the compiled extension.

Usage::

    PYTHONPATH=src python tools/build_kernel.py          # build if possible
    PYTHONPATH=src python tools/build_kernel.py --check  # report, never build
    PYTHONPATH=src python tools/build_kernel.py --clean  # remove built artifacts

Exit status is 0 both on a successful build and on a graceful skip
(missing mypyc/mypy, missing C toolchain, or a compile error — the
pure-Python fallback keeps working either way); ``--check`` prints which
of those cases applies.  CI runs ``--check`` as a smoke step so the script
itself cannot rot, without making the build a hard dependency.
"""

from __future__ import annotations

import argparse
import glob
import importlib.util
import os
import shutil
import subprocess
import sys

KERNEL_MODULE = "repro.net.fabric_array"
SRC_ROOT = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
KERNEL_PATH = os.path.join(SRC_ROOT, *KERNEL_MODULE.split(".")) + ".py"
# Compiled artifacts land next to the source module (in-place build).
ARTIFACT_GLOB = os.path.join(SRC_ROOT, *KERNEL_MODULE.split(".")) + ".*.so"


def mypyc_available() -> bool:
    """Is the mypyc compiler importable at all?"""
    return importlib.util.find_spec("mypyc") is not None


def compiler_available() -> bool:
    """Is there a C compiler for the generated code?"""
    return any(shutil.which(cc) for cc in ("cc", "gcc", "clang"))


def built_artifacts() -> list[str]:
    return sorted(glob.glob(ARTIFACT_GLOB))


def clean() -> int:
    removed = built_artifacts()
    for path in removed:
        os.unlink(path)
    build_dir = os.path.join(os.getcwd(), "build")
    print(f"removed {len(removed)} artifact(s)")
    if os.path.isdir(build_dir):
        print(f"note: mypyc scratch dir {build_dir!r} left in place")
    return 0


def check() -> int:
    """Report build feasibility and current state; never builds."""
    print(f"kernel module : {KERNEL_MODULE}")
    print(f"source        : {KERNEL_PATH}")
    print(f"mypyc present : {mypyc_available()}")
    print(f"C compiler    : {compiler_available()}")
    arts = built_artifacts()
    print(f"built         : {arts if arts else 'no (pure-Python fallback active)'}")
    if not mypyc_available():
        print("check: SKIP — mypyc is not installed; pure-Python kernel is used")
    elif not compiler_available():
        print("check: SKIP — no C compiler; pure-Python kernel is used")
    else:
        print("check: a build should succeed (run without --check)")
    return 0


def build() -> int:
    if not os.path.exists(KERNEL_PATH):
        print(f"error: kernel source missing at {KERNEL_PATH}", file=sys.stderr)
        return 1
    if not mypyc_available():
        print("skip: mypyc is not installed — the pure-Python kernel stays active")
        return 0
    if not compiler_available():
        print("skip: no C compiler found — the pure-Python kernel stays active")
        return 0
    # Run mypyc out of process: it exits non-zero on type errors or compile
    # failures, and either way must not take this script (or CI) down with it.
    cmd = [sys.executable, "-m", "mypyc", "--ignore-missing-imports", KERNEL_PATH]
    print("+", " ".join(cmd))
    proc = subprocess.run(cmd, cwd=SRC_ROOT)
    if proc.returncode != 0:
        print(
            "skip: mypyc build failed — the pure-Python kernel stays active "
            "(the compiled extension is an optional accelerator, never required)"
        )
        return 0
    arts = built_artifacts()
    print(f"built: {arts}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/build_kernel.py", description=__doc__.splitlines()[0]
    )
    action = parser.add_mutually_exclusive_group()
    action.add_argument(
        "--check", action="store_true", help="report feasibility/state, never build"
    )
    action.add_argument(
        "--clean", action="store_true", help="remove built kernel artifacts"
    )
    args = parser.parse_args(argv)
    if args.check:
        return check()
    if args.clean:
        return clean()
    return build()


if __name__ == "__main__":
    sys.exit(main())
