"""Profile a sweep point: where does the simulator spend its wall-clock?

Runs one measurement point (default: the most fabric-heavy IOR point,
``64_4M`` with the NVM cache enabled) with a
:class:`~repro.sim.profile.SimProfiler` attached and prints the engine's
own accounting — event counts, fabric recompute totals, per-component
wall-clock timers, peak event-heap depth.  Optionally layers Python-level
``cProfile`` on top and exports a Chrome-trace JSON (profiler counters
merged into the :class:`~repro.sim.trace.Tracer` timeline) for
``chrome://tracing`` / https://ui.perfetto.dev.

Usage::

    PYTHONPATH=src python tools/profile_sweep.py
    PYTHONPATH=src python tools/profile_sweep.py --benchmark ior \\
        --aggregators 8 --cb-mib 4 --cache-mode disabled --scale 0.01
    PYTHONPATH=src python tools/profile_sweep.py --cprofile 25
    PYTHONPATH=src python tools/profile_sweep.py --top 10
    PYTHONPATH=src python tools/profile_sweep.py --trace point.trace.json
    PYTHONPATH=src python tools/profile_sweep.py --fabric naive --json prof.json

Compare ``--fabric naive`` against the default incremental allocator to see
the recompute work the fast path removes, and ``--dataplane chunked``
against the default bulk data plane to see the per-chunk event traffic the
bulk-transfer fast path removes (docs/PERFORMANCE.md walks through both).
The profiler never changes simulation results — only observes.

``--chaos-seed N`` profiles a :mod:`repro.chaos` trial instead: the traced
timeline then carries the injected fault and recovery/replay instant
events (color-coded in the Chrome trace — faults red, recovery green)::

    PYTHONPATH=src python tools/profile_sweep.py --chaos-seed 4 \\
        --cache-mode coherent --trace chaos4.trace.json
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import pstats
import sys
import time

from repro.chaos.runner import CHAOS_CACHE_MODES
from repro.dataplane import DATAPLANE_KINDS
from repro.experiments.runner import BENCHMARKS, CACHE_MODES, ExperimentSpec
from repro.net.fabric import FABRIC_KINDS
from repro.sim.profile import SimProfiler
from repro.units import MiB


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python tools/profile_sweep.py",
        description="Profile one sweep measurement point.",
    )
    p.add_argument("--benchmark", default="ior", choices=BENCHMARKS)
    p.add_argument("--aggregators", type=int, default=64)
    p.add_argument("--cb-mib", type=int, default=4, help="collective buffer (MiB)")
    p.add_argument(
        "--cache-mode",
        default="enabled",
        choices=sorted(set(CACHE_MODES) | set(CHAOS_CACHE_MODES)),
        help="sweep points accept %s; chaos trials accept %s"
        % ("/".join(CACHE_MODES), "/".join(CHAOS_CACHE_MODES)),
    )
    p.add_argument("--scale", type=float, default=0.03125)
    p.add_argument(
        "--fabric",
        default="incremental",
        choices=sorted(FABRIC_KINDS),
        help="allocator under profile (sets REPRO_FABRIC for the run)",
    )
    p.add_argument(
        "--dataplane",
        default="bulk",
        choices=sorted(DATAPLANE_KINDS),
        help="data plane under profile (sets REPRO_DATAPLANE for the run)",
    )
    p.add_argument(
        "--cprofile",
        type=int,
        default=0,
        metavar="N",
        help="also run under cProfile and print the top N rows by tottime",
    )
    p.add_argument(
        "--top",
        type=int,
        default=0,
        metavar="N",
        help="print the N hottest profiler timers (cumulative wall seconds, "
        "calls, avg) and the N largest counters — the engine's own Amdahl "
        "table, no cProfile overhead",
    )
    p.add_argument("--trace", default=None, metavar="PATH", help="write a Chrome trace")
    p.add_argument(
        "--json", default=None, metavar="PATH", help="write the summary JSON"
    )
    p.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="N",
        help="profile a chaos trial for this seed instead of a sweep point "
        "(fault/recovery events land in the --trace timeline)",
    )
    return p


def print_top(snapshot: dict, n: int) -> None:
    """The ``--top N`` table: hottest profiler timers, then largest counters.

    Timers are cumulative wall-clock seconds inside instrumented components
    (``fabric.recompute``, ``fabric.fill_solve``, ...) collected by the run's
    own :class:`~repro.sim.profile.SimProfiler` — unlike ``--cprofile`` this
    costs two clock reads per instrumented span, so the run it describes is
    the run you measured.
    """
    timings = snapshot.get("timings_s", {})
    calls = snapshot.get("timer_calls", {})
    rows = sorted(timings.items(), key=lambda kv: kv[1], reverse=True)[:n]
    print(f"top {min(n, len(rows)) or n} timers by cumulative wall seconds:")
    if not rows:
        print("  (no instrumented timers fired in this run)")
    else:
        print(f"  {'timer':<32} {'wall_s':>10} {'calls':>10} {'avg_us':>10}")
        for key, secs in rows:
            c = calls.get(key, 0)
            avg = secs / c * 1e6 if c else 0.0
            print(f"  {key:<32} {secs:>10.4f} {c:>10d} {avg:>10.1f}")
    counters = snapshot.get("counters", {})
    crows = sorted(counters.items(), key=lambda kv: kv[1], reverse=True)[:n]
    print(f"top {min(n, len(crows)) or n} counters:")
    if not crows:
        print("  (no counters bumped in this run)")
    for key, value in crows:
        print(f"  {key:<32} {value:>14,d}")


def run_chaos_point(args: argparse.Namespace) -> int:
    """Profile one chaos trial; the traced timeline carries fault events."""
    from repro.chaos import ChaosTrialSpec, run_chaos_trial

    if args.cache_mode not in CHAOS_CACHE_MODES:
        raise SystemExit(
            f"--chaos-seed supports --cache-mode {'/'.join(CHAOS_CACHE_MODES)}, "
            f"not {args.cache_mode!r}"
        )

    profiler = SimProfiler()
    spec = ChaosTrialSpec(
        seed=args.chaos_seed,
        benchmark=args.benchmark,
        cache_mode=args.cache_mode,
        scale=args.scale,
    )
    os.environ["REPRO_FABRIC"] = args.fabric
    try:
        prof = cProfile.Profile() if args.cprofile else None
        t0 = time.perf_counter()
        if prof is not None:
            prof.enable()
        result = run_chaos_trial(spec, trace=True, profiler=profiler)
        if prof is not None:
            prof.disable()
        wall = time.perf_counter() - t0
    finally:
        os.environ.pop("REPRO_FABRIC", None)

    tracer = result.tracers["bulk"]
    fault_events = sum(1 for _ in tracer.filter(component="faults"))
    recovery_events = sum(1 for _ in tracer.filter(component="recovery"))
    summary = {
        "spec": {
            "benchmark": spec.benchmark,
            "chaos_seed": spec.seed,
            "cache_mode": spec.cache_mode,
            "scale": spec.scale,
            "fabric": args.fabric,
        },
        "wall_s": wall,
        "outcome": result.outcome,
        "ok": result.ok,
        "violations": result.violations,
        "events_bulk": result.events_bulk,
        "events_chunked": result.events_chunked,
        "trace_fault_events": fault_events,
        "trace_recovery_events": recovery_events,
        "profiler": profiler.snapshot(),
    }
    print(json.dumps(summary, indent=2, sort_keys=True))
    if args.top:
        print_top(summary["profiler"], args.top)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}", file=sys.stderr)
    if args.trace:
        tracer.write_chrome_trace(args.trace, profiler=profiler)
        print(f"wrote {args.trace}", file=sys.stderr)
    if prof is not None:
        stats = pstats.Stats(prof, stream=sys.stderr).sort_stats("tottime")
        stats.print_stats(args.cprofile)
    return 0 if result.ok else 1


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.chaos_seed is not None:
        return run_chaos_point(args)
    if args.cache_mode not in CACHE_MODES:
        raise SystemExit(
            f"sweep points support --cache-mode {'/'.join(CACHE_MODES)}, "
            f"not {args.cache_mode!r} (chaos-only; pass --chaos-seed)"
        )
    spec = ExperimentSpec(
        benchmark=args.benchmark,
        aggregators=args.aggregators,
        cb_buffer=args.cb_mib * MiB,
        cache_mode=args.cache_mode,
        scale=args.scale,
    )
    profiler = SimProfiler()
    os.environ["REPRO_FABRIC"] = args.fabric
    os.environ["REPRO_DATAPLANE"] = args.dataplane
    try:
        # Import after REPRO_FABRIC is set, mirroring how sweep workers
        # inherit the environment; the kind is read per-Machine anyway.
        from repro.experiments.runner import run_experiment

        prof = cProfile.Profile() if args.cprofile else None
        t0 = time.perf_counter()
        if prof is not None:
            prof.enable()
        result = run_experiment(spec, profiler=profiler)
        if prof is not None:
            prof.disable()
        wall = time.perf_counter() - t0
    finally:
        os.environ.pop("REPRO_FABRIC", None)
        os.environ.pop("REPRO_DATAPLANE", None)

    summary = {
        "spec": {
            "benchmark": spec.benchmark,
            "label": spec.label,
            "cache_mode": spec.cache_mode,
            "scale": spec.scale,
            "fabric": args.fabric,
            "dataplane": args.dataplane,
        },
        "wall_s": wall,
        "events_fired": result.events,
        "events_per_sec": result.events / wall if wall else 0.0,
        "bw_gib_s": result.bw / (1 << 30),
        "profiler": profiler.snapshot(),
    }
    print(json.dumps(summary, indent=2, sort_keys=True))
    if args.top:
        print_top(summary["profiler"], args.top)

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}", file=sys.stderr)
    if args.trace:
        # The run's Tracer was off (benchmarks pay nothing for tracing), so
        # the export carries the profiler counters; pass --trace together
        # with a traced Machine run to overlay a full timeline.
        from repro.sim.trace import Tracer

        Tracer(enabled=False).write_chrome_trace(args.trace, profiler=profiler)
        print(f"wrote {args.trace}", file=sys.stderr)
    if prof is not None:
        stats = pstats.Stats(prof, stream=sys.stderr).sort_stats("tottime")
        stats.print_stats(args.cprofile)
    return 0


if __name__ == "__main__":
    sys.exit(main())
