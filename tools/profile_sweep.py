"""Profile a sweep point: where does the simulator spend its wall-clock?

Runs one measurement point (default: the most fabric-heavy IOR point,
``64_4M`` with the NVM cache enabled) with a
:class:`~repro.sim.profile.SimProfiler` attached and prints the engine's
own accounting — event counts, fabric recompute totals, per-component
wall-clock timers, peak event-heap depth.  Optionally layers Python-level
``cProfile`` on top and exports a Chrome-trace JSON (profiler counters
merged into the :class:`~repro.sim.trace.Tracer` timeline) for
``chrome://tracing`` / https://ui.perfetto.dev.

Usage::

    PYTHONPATH=src python tools/profile_sweep.py
    PYTHONPATH=src python tools/profile_sweep.py --benchmark ior \\
        --aggregators 8 --cb-mib 4 --cache-mode disabled --scale 0.01
    PYTHONPATH=src python tools/profile_sweep.py --cprofile 25
    PYTHONPATH=src python tools/profile_sweep.py --trace point.trace.json
    PYTHONPATH=src python tools/profile_sweep.py --fabric naive --json prof.json

Compare ``--fabric naive`` against the default incremental allocator to see
the recompute work the fast path removes, and ``--dataplane chunked``
against the default bulk data plane to see the per-chunk event traffic the
bulk-transfer fast path removes (docs/PERFORMANCE.md walks through both).
The profiler never changes simulation results — only observes.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import pstats
import sys
import time

from repro.dataplane import DATAPLANE_KINDS
from repro.experiments.runner import BENCHMARKS, CACHE_MODES, ExperimentSpec
from repro.net.fabric import FABRIC_KINDS
from repro.sim.profile import SimProfiler
from repro.units import MiB


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python tools/profile_sweep.py",
        description="Profile one sweep measurement point.",
    )
    p.add_argument("--benchmark", default="ior", choices=BENCHMARKS)
    p.add_argument("--aggregators", type=int, default=64)
    p.add_argument("--cb-mib", type=int, default=4, help="collective buffer (MiB)")
    p.add_argument("--cache-mode", default="enabled", choices=CACHE_MODES)
    p.add_argument("--scale", type=float, default=0.03125)
    p.add_argument(
        "--fabric",
        default="incremental",
        choices=sorted(FABRIC_KINDS),
        help="allocator under profile (sets REPRO_FABRIC for the run)",
    )
    p.add_argument(
        "--dataplane",
        default="bulk",
        choices=sorted(DATAPLANE_KINDS),
        help="data plane under profile (sets REPRO_DATAPLANE for the run)",
    )
    p.add_argument(
        "--cprofile",
        type=int,
        default=0,
        metavar="N",
        help="also run under cProfile and print the top N rows by tottime",
    )
    p.add_argument("--trace", default=None, metavar="PATH", help="write a Chrome trace")
    p.add_argument(
        "--json", default=None, metavar="PATH", help="write the summary JSON"
    )
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    spec = ExperimentSpec(
        benchmark=args.benchmark,
        aggregators=args.aggregators,
        cb_buffer=args.cb_mib * MiB,
        cache_mode=args.cache_mode,
        scale=args.scale,
    )
    profiler = SimProfiler()
    os.environ["REPRO_FABRIC"] = args.fabric
    os.environ["REPRO_DATAPLANE"] = args.dataplane
    try:
        # Import after REPRO_FABRIC is set, mirroring how sweep workers
        # inherit the environment; the kind is read per-Machine anyway.
        from repro.experiments.runner import run_experiment

        prof = cProfile.Profile() if args.cprofile else None
        t0 = time.perf_counter()
        if prof is not None:
            prof.enable()
        result = run_experiment(spec, profiler=profiler)
        if prof is not None:
            prof.disable()
        wall = time.perf_counter() - t0
    finally:
        os.environ.pop("REPRO_FABRIC", None)
        os.environ.pop("REPRO_DATAPLANE", None)

    summary = {
        "spec": {
            "benchmark": spec.benchmark,
            "label": spec.label,
            "cache_mode": spec.cache_mode,
            "scale": spec.scale,
            "fabric": args.fabric,
            "dataplane": args.dataplane,
        },
        "wall_s": wall,
        "events_fired": result.events,
        "events_per_sec": result.events / wall if wall else 0.0,
        "bw_gib_s": result.bw / (1 << 30),
        "profiler": profiler.snapshot(),
    }
    print(json.dumps(summary, indent=2, sort_keys=True))

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}", file=sys.stderr)
    if args.trace:
        # The run's Tracer was off (benchmarks pay nothing for tracing), so
        # the export carries the profiler counters; pass --trace together
        # with a traced Machine run to overlay a full timeline.
        from repro.sim.trace import Tracer

        Tracer(enabled=False).write_chrome_trace(args.trace, profiler=profiler)
        print(f"wrote {args.trace}", file=sys.stderr)
    if prof is not None:
        stats = pstats.Stats(prof, stream=sys.stderr).sort_stats("tottime")
        stats.print_stats(args.cprofile)
    return 0


if __name__ == "__main__":
    sys.exit(main())
