"""Ablations over the design choices DESIGN.md calls out.

Each test flips one mechanism and prints the effect, asserting its
direction.  Runs are small (one configuration each), so these are cheap
compared to the figure sweeps.
"""

from dataclasses import replace

from benchmarks.conftest import run_once
from repro.config import deep_er_testbed
from repro.experiments.runner import ExperimentSpec, run_experiment
from repro.units import GiB, KiB, MiB

BASE = dict(scale=0.125, flush_batch_chunks=16)


def run_with(benchmark, spec, config=None):
    return run_once(benchmark, lambda: run_experiment(spec, config=config))


class TestFlushBufferSize:
    """ind_wr_buffer_size sweep: bigger sync chunks amortise the synchronous
    round trip, shortening the flush (paper Section III, Table II)."""

    def test_bigger_chunks_flush_faster(self, benchmark):
        import repro.experiments.runner as runner_mod

        def run(chunk):
            spec = ExperimentSpec("ior", aggregators=8, cache_mode="enabled", **BASE)
            original = runner_mod.hints_for

            def patched(s):
                h = original(s)
                h["ind_wr_buffer_size"] = str(chunk)
                return h

            runner_mod.hints_for = patched
            try:
                return runner_mod.run_experiment(spec)
            finally:
                runner_mod.hints_for = original

        small = run(128 * KiB)
        big = run_once(benchmark, lambda: run(2 * MiB))
        print(f"\nflush leak: 128KiB chunks {small.close_wait:.1f}s vs "
              f"2MiB chunks {big.close_wait:.1f}s")
        assert big.close_wait < small.close_wait


class TestJitter:
    """Server-side jitter drives the slowest-writer global sync cost."""

    def test_jitter_increases_global_sync(self, benchmark):
        spec = ExperimentSpec("coll_perf", aggregators=64, cache_mode="disabled", **BASE)
        cfg = deep_er_testbed(flush_batch_chunks=16)
        # Scale the server write cache with the data volume (as the default
        # runner path does): a full-size cache absorbs the whole scaled file
        # and masks service-time variance entirely.
        cache = int(cfg.pfs.server_cache_bytes * spec.scale)
        cfg = cfg.scaled(pfs=replace(cfg.pfs, server_cache_bytes=cache))
        calm_cfg = cfg.scaled(pfs=replace(cfg.pfs, jitter_sigma=0.0))
        noisy = run_with(benchmark, spec, cfg)
        calm = run_experiment(spec, config=calm_cfg)

        def sync_cost(r):
            return r.breakdown.get("shuffle_all2all", 0) + r.breakdown.get("post_write", 0)

        print(f"\nglobal sync: jitter {sync_cost(noisy):.2f}s vs calm {sync_cost(calm):.2f}s")
        assert sync_cost(noisy) > sync_cost(calm)


class TestComputeDelay:
    """The hidden/not-hidden crossover moves with the compute delay (Eq. 1)."""

    def test_crossover(self, benchmark):
        short = ExperimentSpec(
            "ior", aggregators=16, cache_mode="enabled", compute_delay=5.0, **BASE
        )
        long = ExperimentSpec(
            "ior", aggregators=16, cache_mode="enabled", compute_delay=60.0, **BASE
        )
        r_short = run_with(benchmark, short)
        r_long = run_experiment(long)
        print(f"\nperceived BW: 5s compute {r_short.bw / GiB:.2f} vs "
              f"60s compute {r_long.bw / GiB:.2f} GiB/s")
        assert r_long.bw > r_short.bw * 1.5


class TestAggregatorPlacement:
    """Spread vs packed aggregator nodes: packing concentrates NIC load."""

    def test_spread_at_least_as_fast(self, benchmark):
        import repro.experiments.runner as runner_mod

        def run(spread):
            spec = ExperimentSpec("coll_perf", aggregators=8, cache_mode="theoretical", **BASE)
            original = runner_mod.hints_for

            def patched(s):
                h = original(s)
                h["cb_config_spread"] = "enable" if spread else "disable"
                return h

            runner_mod.hints_for = patched
            try:
                return runner_mod.run_experiment(spec)
            finally:
                runner_mod.hints_for = original

        spread = run_once(benchmark, lambda: run(True))
        packed = run(False)
        print(f"\nTBW: spread {spread.tbw / GiB:.2f} vs packed {packed.tbw / GiB:.2f} GiB/s")
        assert spread.tbw >= packed.tbw * 0.95


class TestFlushPolicy:
    """flush_immediate overlaps compute; flush_onclose pays everything at close."""

    def test_immediate_beats_onclose(self, benchmark):
        import repro.experiments.runner as runner_mod

        def run(flag):
            spec = ExperimentSpec("ior", aggregators=32, cache_mode="enabled", **BASE)
            original = runner_mod.hints_for

            def patched(s):
                h = original(s)
                h["e10_cache_flush_flag"] = flag
                return h

            runner_mod.hints_for = patched
            try:
                return runner_mod.run_experiment(spec)
            finally:
                runner_mod.hints_for = original

        immediate = run_once(benchmark, lambda: run("flush_immediate"))
        onclose = run("flush_onclose")
        print(f"\nperceived BW: immediate {immediate.bw / GiB:.2f} vs "
              f"onclose {onclose.bw / GiB:.2f} GiB/s")
        assert immediate.bw > onclose.bw


class TestDeviceTier:
    """FTL vs stream SSD, NVMM vs extent cache (docs/DEVICES.md)."""

    def test_ftl_aging_slows_the_flush(self, benchmark):
        """On a scratch partition small enough that the sync load cycles it,
        GC stalls and relocation traffic lengthen the flush; the stream
        model charges nothing for overwrite, so its timing is unchanged."""
        from repro.config import SSDConfig

        spec = ExperimentSpec("ior", aggregators=8, cache_mode="enabled", **BASE)
        small_scratch = SSDConfig(capacity=1 * GiB)

        def run(kind):
            cfg = deep_er_testbed(
                flush_batch_chunks=16, ssd_kind=kind, ssd=small_scratch
            )
            return run_experiment(spec, config=cfg)

        stream = run_once(benchmark, lambda: run("stream"))
        ftl = run("ftl")
        print(f"\nclose wait: stream {stream.close_wait:.2f}s vs ftl "
              f"{ftl.close_wait:.2f}s (1 GiB scratch, cycled by the sync load)")
        assert ftl.close_wait > stream.close_wait

    def test_nvmm_cache_absorbs_writes_faster(self, benchmark):
        """The WAL on byte-addressable NVMM takes cache writes at memory
        bandwidth (one barrier per record) instead of SSD + filesystem
        speed, so perceived write bandwidth rises."""
        import repro.experiments.runner as runner_mod

        def run(kind):
            spec = ExperimentSpec("ior", aggregators=8, cache_mode="enabled", **BASE)
            original = runner_mod.hints_for

            def patched(s):
                h = original(s)
                h["e10_cache_kind"] = kind
                return h

            runner_mod.hints_for = patched
            try:
                return runner_mod.run_experiment(spec)
            finally:
                runner_mod.hints_for = original

        extent = run_once(benchmark, lambda: run("extent"))
        nvmm = run("nvmm")
        print(f"\nperceived BW: extent {extent.bw / GiB:.2f} vs "
              f"nvmm {nvmm.bw / GiB:.2f} GiB/s")
        assert nvmm.bw > extent.bw


class TestStripeAlignment:
    """Even (UFS) vs stripe-aligned (BeeGFS) file domains: alignment avoids
    extent-lock false sharing on POSIX-locking file systems (footnote 1)."""

    def test_alignment_avoids_lock_contention(self, benchmark):
        from repro.machine import Machine
        from repro.mpi.process import MPIWorld
        from repro.romio.file import MPIIOLayer
        from repro.workloads import ior_workload
        from repro.config import small_testbed

        def run(driver):
            machine = Machine(small_testbed(8, 2))
            world = MPIWorld(machine)
            layer = MPIIOLayer(machine, world.comm, driver=driver, exchange_mode="flow")
            wl = ior_workload(16, block_bytes=256 * KiB, segments=2)
            hints = {
                "cb_nodes": "4",
                "cb_buffer_size": "256k",
                "striping_unit": "256k",
                "romio_cb_write": "enable",
            }

            def body(ctx):
                fh = yield from layer.open(ctx.rank, "/g/t", hints)
                for step in wl.steps:
                    yield from fh.write_all(step.access_fn(ctx.rank))
                yield from fh.close()

            world.run(body)
            return machine.pfs.locks.contended_acquires

        # the UFS driver locks writes (POSIX-ish) with even domains
        ufs_contention = run_once(benchmark, lambda: run("ufs"))
        beegfs_contention = run("beegfs")
        print(f"\ncontended lock acquires: ufs(even) {ufs_contention} vs "
              f"beegfs(aligned) {beegfs_contention}")
        assert beegfs_contention <= ufs_contention
