"""Fleet benchmark: events/s and jobs/s for multi-job fleets on one machine.

Two concerns, one report (``BENCH_fleet.json``):

* **Determinism gate** — the 16-job fleet runs under every engine ×
  dataplane combination (slotted/heapq × bulk/chunked) and the four
  :meth:`~repro.fleet.runner.FleetResult.identity` dicts must be
  byte-identical: same per-job rows, same queue waits, same makespan,
  same aggregate summary.  The fleet timeline is part of the repo's
  differential-testing contract, so any divergence fails the benchmark
  (non-zero exit) before check_bench even looks at the numbers.
* **Throughput scaling** — fleets of {16, 64, 256, 1024} jobs (quick mode
  stops at 16) on the slotted engine + bulk dataplane, recording wall
  time, events fired, events/s and jobs/s.  The per-combo events-fired
  counts are bit-reproducible and gated exactly by ``check_bench.py
  --fleet``; the 1024-job point additionally gates under a generous wall
  ceiling (the thousands-of-jobs evidence the array fair-share kernel
  exists to unblock).
* **Crash-recovery trial** — a seeded 8-job fleet chaos run with
  ``crash_probability=1.0`` under every engine × dataplane combination:
  the crashed job must restart, replay its journals, and finish with zero
  lost bytes; the four timelines must be byte-identical; and the
  recovery-SLO aggregates (time-to-restart, replay duration, degraded
  window) are recorded for ``check_bench.py --slo`` to gate against the
  budgets in ``benchmarks/baseline_quick.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py --quick
    PYTHONPATH=src python benchmarks/bench_fleet.py --full --out BENCH_fleet.json

Exit status is non-zero if any engine/dataplane combination diverges or a
fleet reports failed jobs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.fleet import FleetSpec, run_fleet
from repro.fleet.chaos import run_fleet_chaos

# Reference numbers from the box that recorded benchmarks/baseline_quick.json
# (events are exact and engine/dataplane-dependent; throughputs are context).
RECORDED_BASELINES = {
    "fleet16_slotted_bulk_events": 15442,
    "fleet16_slotted_chunked_events": 26224,
    "fleet256_slotted_bulk_wall_s": 7.5,
}

BENCH_SCALE = 0.03125  # same quick scale as bench_engine / the CI grids

AB_FLEET_SIZE = 16
QUICK_SIZES = (16,)
# 1024 jobs is the thousands-of-jobs scale point the array fair-share
# kernel unblocks (ROADMAP open item 2): the point streams into
# BENCH_fleet.json like the others and check_bench --fleet gates it under
# a generous wall ceiling (benchmarks/baseline_quick.json).
FULL_SIZES = (16, 64, 256, 1024)
ENGINES = ("slotted", "heapq")
DATAPLANES = ("bulk", "chunked")


def bench_point(fleet_size: int, engine: str, dataplane: str):
    """One fleet run under an explicit engine/dataplane; returns
    ``(identity_dict, metrics_dict)``."""
    spec = FleetSpec(fleet_size=fleet_size, scale=BENCH_SCALE)
    os.environ["REPRO_ENGINE"] = engine
    try:
        t0 = time.perf_counter()
        result = run_fleet(spec, dataplane=dataplane)
        wall = time.perf_counter() - t0
    finally:
        os.environ.pop("REPRO_ENGINE", None)
    metrics = {
        "fleet_size": fleet_size,
        "engine": engine,
        "dataplane": result.dataplane,
        "wall_s": wall,
        "events_fired": result.events,
        "events_per_sec": result.events / wall if wall else 0.0,
        "jobs_per_sec": fleet_size / wall if wall else 0.0,
        "makespan": result.makespan,
        "backfilled": result.backfilled,
        "jobs_failed": result.summary.get("failed", 0),
    }
    return result.identity(), metrics


def fleet_grid_ab(failures: list[str]) -> dict:
    """The determinism gate: every engine × dataplane combo at one size."""
    section: dict = {}
    identities: dict[str, dict] = {}
    for engine in ENGINES:
        for dataplane in DATAPLANES:
            kind = f"{engine}_{dataplane}"
            identity, metrics = bench_point(AB_FLEET_SIZE, engine, dataplane)
            identities[kind] = identity
            section[kind] = metrics
            print(
                f"  fleet_grid_ab {kind:16s} events={metrics['events_fired']:>7d} "
                f"wall={metrics['wall_s']:.2f}s "
                f"ev/s={metrics['events_per_sec']:,.0f} "
                f"jobs/s={metrics['jobs_per_sec']:.1f}"
            )
    reference = json.dumps(identities["slotted_bulk"], sort_keys=True)
    mismatches = [
        kind
        for kind, identity in identities.items()
        if json.dumps(identity, sort_keys=True) != reference
    ]
    for kind in mismatches:
        failures.append(f"fleet_grid_ab.{kind}: identity diverges from slotted_bulk")
    failed = section["slotted_bulk"]["jobs_failed"]
    if failed:
        failures.append(f"fleet_grid_ab: {failed} jobs failed in a fault-free fleet")
    section["byte_identical"] = not mismatches
    section["mismatches"] = mismatches
    return section


CRASH_FLEET_SIZE = 8
CRASH_SEED = 1  # draws one aggregator_crash addressing job j0 (restartable)


def fleet_crash(failures: list[str]) -> dict:
    """The crash-recovery trial: seeded crash + restart under every combo.

    The section carries the recovery-SLO aggregates ``check_bench --slo``
    gates: a run where the restart never happens, the replay grinds, or a
    cached byte is lost fails here (or at the gate) rather than silently
    shipping a broken recovery path.
    """
    section: dict = {}
    identities: dict[str, dict] = {}
    for engine in ENGINES:
        for dataplane in DATAPLANES:
            kind = f"{engine}_{dataplane}"
            os.environ["REPRO_ENGINE"] = engine
            try:
                t0 = time.perf_counter()
                trial = run_fleet_chaos(
                    fleet_size=CRASH_FLEET_SIZE,
                    seed=CRASH_SEED,
                    scale=BENCH_SCALE,
                    crash_probability=1.0,
                    dataplane=dataplane,
                )
                wall = time.perf_counter() - t0
            finally:
                os.environ.pop("REPRO_ENGINE", None)
            identities[kind] = trial.fleet.identity()
            summary = trial.fleet.summary
            section[kind] = {
                "wall_s": wall,
                "events_fired": trial.fleet.events,
                "crashed_jobs": trial.crashed_jobs,
                "restarts": trial.restarts,
                "violations": list(trial.violations),
                "statuses": trial.statuses,
                "time_to_restart_max": summary["time_to_restart_max"],
                "replay_duration_total": summary["replay_duration_total"],
                "degraded_window_max": max(
                    (j.degraded_window for j in trial.fleet.jobs), default=0.0
                ),
                "bytes_replayed": sum(j.bytes_replayed for j in trial.fleet.jobs),
                "bytes_lost_cached": sum(
                    j.bytes_lost
                    for j in trial.fleet.jobs
                    if j.status == "ok" and j.cache_mode == "enabled"
                ),
                "slo_violations": summary["slo_violations"],
            }
            print(
                f"  fleet_crash   {kind:16s} events={trial.fleet.events:>7d} "
                f"crashed={trial.crashed_jobs} restarts={trial.restarts} "
                f"replayed={section[kind]['bytes_replayed']} "
                f"wall={wall:.2f}s"
            )
            for violation in trial.violations:
                failures.append(f"fleet_crash.{kind}: {violation}")
            if not trial.crashed_jobs:
                failures.append(
                    f"fleet_crash.{kind}: the seeded schedule injected no crash"
                )
            if not trial.restarts:
                failures.append(
                    f"fleet_crash.{kind}: the crashed job never restarted"
                )
    reference = json.dumps(identities["slotted_bulk"], sort_keys=True)
    mismatches = [
        kind
        for kind, identity in identities.items()
        if json.dumps(identity, sort_keys=True) != reference
    ]
    for kind in mismatches:
        failures.append(f"fleet_crash.{kind}: identity diverges from slotted_bulk")
    section["byte_identical"] = not mismatches
    section["mismatches"] = mismatches
    return section


def fleet_scaling(sizes, grid_ab: dict, failures: list[str]) -> dict:
    """Throughput vs fleet size on the default (slotted + bulk) combo."""
    section: dict = {}
    for size in sizes:
        if size == AB_FLEET_SIZE and "slotted_bulk" in grid_ab:
            metrics = grid_ab["slotted_bulk"]  # already measured in the A/B
        else:
            _, metrics = bench_point(size, "slotted", "bulk")
        section[str(size)] = metrics
        if metrics["jobs_failed"]:
            failures.append(
                f"fleet_scaling.{size}: {metrics['jobs_failed']} jobs failed "
                f"in a fault-free fleet"
            )
        print(
            f"  fleet_scaling  n={size:<4d} events={metrics['events_fired']:>8d} "
            f"wall={metrics['wall_s']:.2f}s "
            f"ev/s={metrics['events_per_sec']:,.0f} "
            f"jobs/s={metrics['jobs_per_sec']:.1f}"
        )
    return section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_fleet.py",
        description=__doc__.splitlines()[0],
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick", action="store_true", help="A/B grid + 16-job scaling (CI)"
    )
    mode.add_argument(
        "--full", action="store_true", help="A/B grid + {16,64,256,1024} scaling"
    )
    parser.add_argument("--out", default="BENCH_fleet.json")
    args = parser.parse_args(argv)
    full = bool(args.full)

    failures: list[str] = []
    print(f"bench_fleet: scale={BENCH_SCALE} mode={'full' if full else 'quick'}")
    report = {
        "scale": BENCH_SCALE,
        "mode": "full" if full else "quick",
        "recorded_baselines": RECORDED_BASELINES,
    }
    report["fleet_grid_ab"] = fleet_grid_ab(failures)
    report["fleet_crash"] = fleet_crash(failures)
    report["fleet_scaling"] = fleet_scaling(
        FULL_SIZES if full else QUICK_SIZES, report["fleet_grid_ab"], failures
    )
    report["ok"] = not failures
    report["failures"] = failures

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"bench_fleet: wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
