"""Benchmark harness configuration.

Each ``bench_figNN_*`` module regenerates one figure of the paper's
evaluation section and prints the measured table next to the paper's
expectations.  Measurement points are memoised across modules (one pytest
session), so the breakdown figures reuse the bandwidth figures' runs.

Environment knobs:

* ``REPRO_SCALE``       — data-volume scale (default 0.125; 1.0 = the paper's
  32 GB files; compute delay scales with it).
* ``REPRO_FULL_SWEEP=1`` — run the paper's full 4×5 aggregator×buffer grid
  instead of the 4×3 quick grid.
"""

import os

import pytest

from repro.experiments.figures import FULL_SWEEP, QUICK_AGGREGATORS, QUICK_CB_SIZES


def sweep():
    if os.environ.get("REPRO_FULL_SWEEP", "0") == "1":
        return FULL_SWEEP
    return QUICK_AGGREGATORS, QUICK_CB_SIZES


@pytest.fixture(scope="session")
def figure_sweep():
    return sweep()


def run_once(benchmark, fn):
    """Run a figure generator exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
