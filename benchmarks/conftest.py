"""Benchmark harness configuration.

Each ``bench_figNN_*`` module regenerates one figure of the paper's
evaluation section and prints the measured table next to the paper's
expectations.  Figures draw their measurement points through a shared
:class:`~repro.experiments.parallel.SweepRunner`, so points are memoised
across modules (one pytest session) *and* persisted in ``.repro_cache/``
across sessions — a re-run of the figure benches on a warm cache performs
zero simulations.

Environment knobs:

* ``REPRO_SCALE``       — data-volume scale (default 0.125; 1.0 = the paper's
  32 GB files; compute delay scales with it).
* ``REPRO_FULL_SWEEP=1`` — run the paper's full 4×5 aggregator×buffer grid
  instead of the 4×3 quick grid.
* ``REPRO_JOBS``        — parallel sweep workers (default 1).
* ``REPRO_CACHE=0``     — disable the on-disk result cache (force fresh
  simulation); ``REPRO_CACHE_DIR`` relocates it.
"""

import os

import pytest

from repro.experiments.figures import (
    FULL_SWEEP,
    QUICK_AGGREGATORS,
    QUICK_CB_SIZES,
    get_default_runner,
)


def sweep():
    if os.environ.get("REPRO_FULL_SWEEP", "0") == "1":
        return FULL_SWEEP
    return QUICK_AGGREGATORS, QUICK_CB_SIZES


@pytest.fixture(scope="session")
def figure_sweep():
    return sweep()


@pytest.fixture(scope="session")
def sweep_runner():
    """The SweepRunner every figure call in this session goes through."""
    return get_default_runner()


def run_once(benchmark, fn):
    """Run a figure generator exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
