"""Device-tier benchmark: flash aging microbench + tier A/B, with receipts.

Writes a machine-readable report to ``BENCH_devices.json``:

1. **Flash aging microbench** — a seeded random-overwrite load (the sync
   thread's worst-case access pattern) against a shrunken
   :class:`~repro.hw.flash.FlashSSDDevice`.  The FTL is deterministic, so
   page/GC counts are exact, CI-comparable quantities; the report enforces
   that steady overwrite produces write amplification > 1 with nonzero GC
   stalls, while a fresh sequential fill stays at exactly WA = 1.0.

2. **Stream identity** — the quick IOR grid with ``REPRO_SSD`` unset vs
   ``=stream``: every field *including* the diagnostic event count must be
   byte-identical.  The FTL tier is strictly opt-in; this is the gate that
   keeps the default results comparable with every pre-FTL baseline.

3. **FTL dataplane A/B** — the grid under ``REPRO_SSD=ftl`` for
   ``REPRO_DATAPLANE=bulk`` vs ``chunked``: byte-identical excluding event
   counts.  The FTL runs synchronously inside ``service_time``, so the
   bulk fast path must see the same GC stalls the chunked reference does.

4. **NVMM dataplane A/B** — the cache-enabled grid under
   ``REPRO_CACHE_KIND=nvmm`` for both dataplanes, same contract, plus the
   extent-vs-NVMM bandwidth comparison for the report.

Exit status is non-zero on any A/B divergence or missed aging target;
``benchmarks/check_bench.py --devices`` compares the written report
against the ``device_tier`` section of ``baseline_quick.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_devices.py --quick
    PYTHONPATH=src python benchmarks/bench_devices.py --full --out BENCH_devices.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

from repro.config import FlashConfig
from repro.experiments.runner import ExperimentSpec, run_experiment
from repro.hw.flash import FlashSSDDevice
from repro.sim.core import Simulator
from repro.units import GiB

BENCH_SCALE = 0.03125

#: Shrunken-but-structurally-real geometry for the aging microbench: 4 KiB
#: pages, 64-page blocks, 4 LUNs.  Small enough that a few thousand writes
#: cycle the partition; the timing constants stay at their calibrated values.
AGING_FLASH = FlashConfig(page_size=4096, pages_per_block=64, num_luns=4)
AGING_CAPACITY = 1024 * 4096  # 1024 logical pages


def flash_aging_microbench(writes: int, seed: int = 2016) -> dict:
    """Seeded random overwrites; returns exact FTL counters + wall time."""
    dev = FlashSSDDevice(
        Simulator(), "bench", flash=AGING_FLASH, capacity_bytes=AGING_CAPACITY
    )
    # Fresh sequential fill first: must not amplify.
    for page in range(dev.logical_pages):
        dev.service_time(page * dev.page_size, dev.page_size, True)
    fresh_wa = dev.write_amplification
    rng = random.Random(seed)
    t0 = time.perf_counter()
    busy = 0.0
    for _ in range(writes):
        lpn = rng.randrange(dev.logical_pages)
        busy += dev.service_time(lpn * dev.page_size, dev.page_size, True)
    wall = time.perf_counter() - t0
    return {
        "writes": writes,
        "seed": seed,
        "fresh_fill_wa": fresh_wa,
        "write_amplification": dev.write_amplification,
        "host_pages_programmed": dev.host_pages_programmed,
        "gc_pages_programmed": dev.gc_pages_programmed,
        "gc_runs": dev.gc_runs,
        "blocks_erased": dev.blocks_erased,
        "gc_stall_time_s": dev.gc_stall_time,
        "device_busy_s": busy,
        "wall_s": wall,
        "writes_per_sec": writes / wall if wall else 0.0,
    }


def grid_specs(quick: bool) -> list[ExperimentSpec]:
    aggs = (16,) if quick else (16, 64)
    return [
        ExperimentSpec(
            benchmark="ior", aggregators=a, cache_mode=m, scale=BENCH_SCALE
        )
        for a in aggs
        for m in ("enabled", "disabled")
    ]


def run_grid(specs, env: dict[str, str]) -> list[dict]:
    saved = {k: os.environ.get(k) for k in env}
    os.environ.update(env)
    try:
        return [run_experiment(spec).to_dict() for spec in specs]
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def without_events(rows: list[dict]) -> list[dict]:
    return [{k: v for k, v in r.items() if k != "events"} for r in rows]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_devices.py",
        description=__doc__.splitlines()[0],
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--quick", action="store_true", help="CI-sized run")
    mode.add_argument("--full", action="store_true", help="larger grid + aging run")
    parser.add_argument(
        "--out", default="BENCH_devices.json", help="report path (default: %(default)s)"
    )
    args = parser.parse_args(argv)
    quick = args.quick or not args.full
    failures: list[str] = []

    # Results must come from live simulation, not the memo.
    os.environ["REPRO_CACHE"] = "0"

    # -- 1. flash aging ----------------------------------------------------------
    aging = flash_aging_microbench(writes=4096 if quick else 65536)
    if aging["fresh_fill_wa"] != 1.0:
        failures.append(f"fresh fill amplified: WA {aging['fresh_fill_wa']:.3f} != 1.0")
    if aging["write_amplification"] <= 1.05:
        failures.append(
            f"aged WA {aging['write_amplification']:.3f} <= 1.05: GC never engaged"
        )
    if aging["gc_runs"] == 0 or aging["gc_stall_time_s"] <= 0.0:
        failures.append("aging run produced no GC activity")
    print(
        f"flash aging: WA {aging['write_amplification']:.2f}, "
        f"{aging['gc_runs']} GC runs, {aging['gc_stall_time_s'] * 1e3:.1f} ms stalled "
        f"({aging['writes']} writes)"
    )

    # -- 2. stream identity ------------------------------------------------------
    specs = grid_specs(quick)
    implicit = run_grid(specs, {})
    explicit = run_grid(specs, {"REPRO_SSD": "stream"})
    stream_ok = implicit == explicit
    if not stream_ok:
        failures.append("REPRO_SSD=stream diverged from the unset default")
    print(f"stream identity: {'ok' if stream_ok else 'DIVERGED'}")

    # -- 3/4. tier dataplane A/B -------------------------------------------------
    tiers = {}
    for name, env in (
        ("ftl", {"REPRO_SSD": "ftl"}),
        ("nvmm", {"REPRO_CACHE_KIND": "nvmm"}),
    ):
        bulk = run_grid(specs, {**env, "REPRO_DATAPLANE": "bulk"})
        chunked = run_grid(specs, {**env, "REPRO_DATAPLANE": "chunked"})
        identical = without_events(bulk) == without_events(chunked)
        if not identical:
            failures.append(f"{name}: bulk vs chunked diverged beyond event counts")
        events_bulk = sum(r["events"] for r in bulk)
        events_chunked = sum(r["events"] for r in chunked)
        tiers[name] = {
            "byte_identical_excluding_events": identical,
            "events_bulk": events_bulk,
            "events_chunked": events_chunked,
        }
        print(
            f"{name} dataplane A/B: {'ok' if identical else 'DIVERGED'} "
            f"(events {events_bulk} bulk / {events_chunked} chunked)"
        )

    # Extent-vs-NVMM perceived bandwidth on the cache-enabled points, for
    # the report (no direction asserted: with an async sync thread the WAL
    # mostly moves *flush* time, not perceived write time).
    enabled = [i for i, s in enumerate(specs) if s.cache_mode == "enabled"]
    nvmm_rows = run_grid(specs, {"REPRO_CACHE_KIND": "nvmm"})
    tier_bw = {
        "extent_bw_gib": [implicit[i]["bw"] / GiB for i in enabled],
        "nvmm_bw_gib": [nvmm_rows[i]["bw"] / GiB for i in enabled],
    }

    report = {
        "mode": "quick" if quick else "full",
        "flash_aging": aging,
        "stream_identity": {"ok": stream_ok, "points": len(specs)},
        "tier_dataplane_ab": tiers,
        "tier_bandwidth": tier_bw,
        "failures": failures,
        "ok": not failures,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"report written to {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
