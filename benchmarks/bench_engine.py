"""Engine A/B benchmark: scheduler, allocator and dataplane, with receipts.

Writes a machine-readable report to ``BENCH_engine.json`` (and the
dataplane leg to ``BENCH_dataplane.json``):

1. **Scheduler microbenchmark** — grant/hop dispatch churn (a timer grant
   followed by a burst of same-instant hops, the bulk-dataplane shape) run
   on both event engines: ``REPRO_ENGINE=heapq`` dispatches through depth-5
   generator stacks (the legacy process model), the slotted engine through
   flat state-machine callbacks on ``call_soon``/``call_later``.  Both
   sides execute the *same simulated schedule*; the report records
   events/s for each and enforces the >=5x dispatch-throughput target
   under ``--full`` (>=2.5x under ``--quick``, generous for shared
   runners) and that the simulated end times agree to the last bit.

2. **Engine grid A/B** — the IOR grid run under ``REPRO_ENGINE=heapq``
   and the slotted default.  Every :class:`ExperimentResult` field except
   the diagnostic ``events`` count must be **byte-identical**: the slotted
   engine (calendar queue, pooled events, flattened hot coroutines) must
   be a pure performance transform of the heapq reference.

3. **Engine fault + chaos A/B** — the same byte-identity contract under
   injected fault schedules (:mod:`repro.experiments.faultsweep`
   scenarios) and under a window of randomized chaos seeds
   (:mod:`repro.chaos`), where recovery, retry and invariant machinery
   exercise interrupt/abandon paths the clean grid never hits.

4. **Fabric microbenchmark + grid A/B** — the funnel pattern and the IOR
   grid under all three fair-share allocators (``REPRO_FABRIC=naive`` vs
   ``incremental`` vs the default ``array`` kernel), plus fault-schedule
   and chaos-seed A/B legs across the allocators: the flat-array kernel
   with converged-rate memoization must be byte-identical everywhere the
   incremental allocator is.

5. **Dataplane A/B** — the grid under ``REPRO_DATAPLANE=bulk`` vs
   ``chunked``, written to ``BENCH_dataplane.json``.  Byte-identity and
   the >=2x events reduction are enforced in every mode; a >=1.1x wall
   speedup only under ``--full`` (the slotted scheduler sped the
   event-dense chunked reference most, shrinking bulk's wall edge);
   ``--quick`` additionally enforces an absolute event-count ceiling on
   the bulk grid.

The exit status is non-zero on any A/B divergence or missed target, so
CI's ``bench-smoke`` job (``--quick``) doubles as a determinism gate;
``benchmarks/check_bench.py`` then compares the written reports against
committed baselines.  See docs/PERFORMANCE.md for how to read the output.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py --quick
    PYTHONPATH=src python benchmarks/bench_engine.py --full --out BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.chaos import ChaosTrialSpec, run_chaos_trial
from repro.experiments.faultsweep import fault_matrix_specs, run_fault_experiment
from repro.experiments.figures import QUICK_AGGREGATORS, QUICK_CB_SIZES
from repro.experiments.runner import CACHE_MODES, ExperimentSpec, run_experiment
from repro.net.fabric import FABRIC_KINDS
from repro.sim.core import Simulator, create_simulator
from repro.sim.profile import SimProfiler
from repro.units import MiB

# What this grid cost before the engine work, same container class, serial,
# REPRO_SCALE=0.03125, --no-cache.  Kept as recorded provenance so the JSON
# tells the whole trajectory, not just the in-repo A/B of the day.
RECORDED_BASELINES = {
    "pr1_recorded_s": 410.9,  # PR 1's CHANGES.md entry (pre fault-injection)
    "pristine_head_measured_s": 63.7,  # commit eb60b5d re-timed on this machine
    # Full-grid throughput under the heapq engine at the dataplane PR, from
    # the committed BENCH_engine.json of that revision — the ~39k events/s
    # figure that motivated the slotted scheduler.
    "pr5_full_grid_events_per_sec": 39_431.0,
    # Full-grid slotted throughput at the NVM-device-tier PR (PR 8), from
    # that revision's committed BENCH_engine.json.  This is the baseline the
    # array fair-share kernel's >=2.5x events/s target is measured against
    # (the pr5 figure above predates the slotted engine and is kept only as
    # provenance).
    "pr8_full_grid_events_per_sec": 44_800.8,
}

# Full-mode gate: slotted full-grid events/s must reach this multiple of the
# pr8 recorded baseline (the array-kernel PR's headline target).
FULL_GRID_SPEEDUP_TARGET = 2.5

BENCH_SCALE = 0.03125

# Quick-grid bulk-dataplane event budget: 295,020 measured at the PR that
# introduced the fast path, plus ~15% headroom.  CI's bench-smoke fails when
# the bulk path starts firing more events than this — the regression the
# fast path exists to prevent.  (The chunked reference fires ~2.18M on the
# same grid.)
QUICK_BULK_EVENTS_CEILING = 340_000


SCHED_HOPS = 4  # same-instant hops per grant — the bulk-dataplane shape


class _FlatChain:
    """Slotted side of the scheduler microbench: one grant/hop chain as an
    explicit state machine — ``__slots__``, pre-bound callbacks, internal
    steps on ``call_soon``/``call_later`` — the exact idiom of the
    flattened fast paths (device I/O, PFS serve, sync flush)."""

    __slots__ = ("sim", "c", "r", "rounds", "h", "_post")

    def __init__(self, sim, c: int, rounds: int):
        self.sim, self.c, self.rounds = sim, c, rounds
        self.r = 0
        self.h = 0
        self._post = sim.call_soon
        self._arm()

    def _arm(self) -> None:
        self.sim.call_later(1e-6 * ((self.c + self.r) % 7 + 1), self._granted)

    def _granted(self) -> None:
        self.h = 0
        self._hop()

    def _hop(self) -> None:
        if self.h == SCHED_HOPS:
            self.r += 1
            if self.r < self.rounds:
                self._arm()
            return
        self.h += 1
        self._post(self._hop)


def scheduler_microbench(kind: str, chains=64, rounds=2500):
    """Pure dispatch churn: per round one timer grant then ``SCHED_HOPS``
    same-instant hops, ``chains`` concurrent chains.

    Both engines execute the same simulated schedule (same grant instants,
    same hops), so the events/s ratio *is* the per-dispatch cost ratio.
    The heapq side runs the legacy process model — each round resumed
    through a depth-5 ``yield from`` stack, matching the rank→layer→
    client→server→device nesting of the real hot paths.  The heapq side
    fires ``2 * chains`` extra events (one boot kick and one process
    completion per chain) — a fixed additive term, not per-round churn.
    """
    sim = create_simulator(kind)
    if sim.flat:
        t0 = time.perf_counter()
        for c in range(chains):
            _FlatChain(sim, c, rounds)
        sim.run()
        wall = time.perf_counter() - t0
    else:

        def l5(c, r):
            yield sim.timeout(1e-6 * ((c + r) % 7 + 1))
            for _ in range(SCHED_HOPS):
                ev = sim.event()
                ev.succeed()
                yield ev

        def l4(c, r):
            yield from l5(c, r)

        def l3(c, r):
            yield from l4(c, r)

        def l2(c, r):
            yield from l3(c, r)

        def chain(c):
            for r in range(rounds):
                yield from l2(c, r)

        t0 = time.perf_counter()
        for c in range(chains):
            sim.process(chain(c))
        sim.run()
        wall = time.perf_counter() - t0
    events = sim.events_fired
    return {
        "kind": kind,
        "chains": chains,
        "rounds": rounds,
        "wall_s": wall,
        "sim_end": sim.now,
        "events_fired": events,
        "events_per_sec": events / wall if wall else 0.0,
    }


def fault_result_dict(result) -> dict:
    """A fault/chaos result as compared A/B: drop diagnostic event counts."""
    d = result.to_dict()
    d.pop("events", None)
    d.pop("events_bulk", None)
    d.pop("events_chunked", None)
    return d


def fault_ab(scenarios, scale: float, env_var: str, kinds: tuple[str, ...]):
    """Fault-schedule A/B: each scenario under every ``kind`` of ``env_var``
    (engines or fabric allocators), full results (bandwidths, recovery
    accounting, checksums, invariant reports) compared byte-for-byte
    excluding the event counts."""
    specs = [s for s in fault_matrix_specs(scale=scale) if s.scenario in scenarios]
    mismatches = []
    for spec in specs:
        per_kind = {}
        for kind in kinds:
            os.environ[env_var] = kind
            try:
                per_kind[kind] = fault_result_dict(run_fault_experiment(spec))
            finally:
                os.environ.pop(env_var, None)
        if any(per_kind[k] != per_kind[kinds[0]] for k in kinds[1:]):
            mismatches.append(spec.scenario)
    return {
        "scenarios": list(scenarios),
        "kinds": list(kinds),
        "scale": scale,
        "byte_identical_excluding_events": not mismatches,
        "mismatches": mismatches,
    }


def chaos_ab(seeds, scale: float, env_var: str, kinds: tuple[str, ...]):
    """Chaos-seed-window A/B: randomized fault schedules (each trial runs
    its reference plus both dataplanes with the invariant monitor attached)
    under every ``kind`` of ``env_var``; outcomes must agree byte-for-byte
    excluding the per-plane event counts."""
    mismatches = []
    for seed in seeds:
        spec = ChaosTrialSpec(seed=seed, scale=scale)
        per_kind = {}
        for kind in kinds:
            os.environ[env_var] = kind
            try:
                per_kind[kind] = fault_result_dict(run_chaos_trial(spec))
            finally:
                os.environ.pop(env_var, None)
        if any(per_kind[k] != per_kind[kinds[0]] for k in kinds[1:]):
            mismatches.append(seed)
    return {
        "seeds": list(seeds),
        "kinds": list(kinds),
        "scale": scale,
        "byte_identical_excluding_events": not mismatches,
        "mismatches": mismatches,
    }


def fabric_microbench(kind: str, nodes=64, aggs=8, waves=30, ranks=512):
    """Shuffle waves into few aggregators — the fabric-bound hot path."""
    sim = Simulator()
    fabric = FABRIC_KINDS[kind](sim, num_nodes=nodes, nic_bw=1e9, latency=1e-6)
    t0 = time.perf_counter()
    for _ in range(waves):
        for r in range(ranks):
            fabric.start_flow(r % nodes, (r % aggs) * (nodes // aggs), 1e6 + r)
        sim.run()  # drain the wave
    wall = time.perf_counter() - t0
    return {
        "kind": kind,
        "wall_s": wall,
        "sim_end": sim.now,
        "events_fired": sim.events_fired,
        "recomputes": fabric.recomputes,
        "flows_rerated": fabric.recompute_flows,
        "wake_events": fabric.wake_events,
    }


def grid_specs(quick: bool) -> list[ExperimentSpec]:
    """IOR points from the PR-1 sweep grid (the ISSUE's reference workload)."""
    aggs = (QUICK_AGGREGATORS[0], QUICK_AGGREGATORS[-1]) if quick else QUICK_AGGREGATORS
    cbs = (4 * MiB,) if quick else QUICK_CB_SIZES
    return [
        ExperimentSpec(
            benchmark="ior", aggregators=a, cb_buffer=c, cache_mode=m, scale=BENCH_SCALE
        )
        for a in aggs
        for c in cbs
        for m in CACHE_MODES
    ]


def comparable_dict(result) -> dict:
    """A result as compared A/B: everything but the diagnostic event count."""
    d = result.to_dict()
    d.pop("events")
    return d


def run_point(spec, env_var: str, kind: str):
    """One timed point under one ``env_var`` setting.  No profiler: timing
    must not skew."""
    os.environ[env_var] = kind
    try:
        t0 = time.perf_counter()
        result = run_experiment(spec)
        return result, time.perf_counter() - t0
    finally:
        os.environ.pop(env_var, None)


def run_grid_interleaved(specs, env_var: str, kinds: tuple[str, ...], passes: int = 1):
    """Time every ``kind`` point by point, rotating which goes first.

    The timings of a point land adjacent in wall-clock time (and the
    first-runner advantage, if any, rotates), so machine noise — which
    on a shared CI runner easily exceeds the end-to-end delta — hits all
    variants equally instead of whichever grid happened to run second.

    ``passes > 1`` repeats the whole interleaved grid and keeps each kind's
    best (minimum) total wall — the same best-of-reps discipline as the
    scheduler microbench, so a noise spike during one pass cannot sink the
    recorded throughput.  Results and event counts are taken from the last
    pass (the simulation is deterministic, so every pass agrees).
    """
    n = len(kinds)
    results: dict[str, list] = {}
    walls = dict.fromkeys(kinds, float("inf"))
    for _ in range(passes):
        results = {k: [] for k in kinds}
        pass_walls = dict.fromkeys(kinds, 0.0)
        for i, spec in enumerate(specs):
            order = kinds[i % n :] + kinds[: i % n]
            for kind in order:
                result, wall = run_point(spec, env_var, kind)
                results[kind].append(result)
                pass_walls[kind] += wall
        for kind in kinds:
            walls[kind] = min(walls[kind], pass_walls[kind])
    stats = {}
    for kind in kinds:
        events = sum(r.events for r in results[kind])
        stats[kind] = {
            "kind": kind,
            "points": len(results[kind]),
            "passes": passes,
            "wall_s": walls[kind],
            "events_fired": events,
            "events_per_sec": events / walls[kind] if walls[kind] else 0.0,
        }
    return results, stats


def profile_point(kind: str, spec):
    """One untimed instrumented run — recompute totals for the report."""
    os.environ["REPRO_FABRIC"] = kind
    try:
        profiler = SimProfiler()
        run_experiment(spec, profiler=profiler)
    finally:
        os.environ.pop("REPRO_FABRIC", None)
    return profiler.snapshot()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_engine.py", description=__doc__.splitlines()[0]
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run: trimmed microbench + 6-point grid A/B",
    )
    mode.add_argument(
        "--full",
        action="store_true",
        help="full 36-point grid A/B; also enforces the >=3x microbench target",
    )
    parser.add_argument(
        "--out", default="BENCH_engine.json", help="report path (default: %(default)s)"
    )
    parser.add_argument(
        "--out-dataplane",
        default="BENCH_dataplane.json",
        help="dataplane A/B report path (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    quick = args.quick or not args.full

    report = {
        "scale": BENCH_SCALE,
        "mode": "quick" if quick else "full",
        "recorded_baselines": RECORDED_BASELINES,
    }
    failures = []

    # -- scheduler dispatch throughput (the slotted-engine headline) ----------
    rounds, reps = (600, 2) if quick else (2500, 5)
    # The full-mode ratio bar was 5.0x until the array-kernel PR: inlining
    # coroutine _resume into the dispatch loop sped the generator-heavy
    # heapq *reference* ~15-25% while leaving slotted's flat callbacks
    # mostly unchanged, compressing the ratio to ~4.9x on a quiet box.
    # Absolute slotted throughput is now gated separately (the >=2.5x
    # full-grid events/s bar below), so the ratio bar only needs to catch
    # dispatch regressions, not re-prove the original headline.
    sched_target = 2.5 if quick else 4.5
    print(
        f"scheduler microbench: 64 chains x {rounds} grant/hop rounds, "
        f"best of {reps} ...",
        flush=True,
    )
    sched: dict[str, dict] = {}
    for _ in range(reps):
        for kind in ("heapq", "slotted"):
            r = scheduler_microbench(kind, rounds=rounds)
            if kind not in sched or r["wall_s"] < sched[kind]["wall_s"]:
                sched[kind] = r
    sched_ratio = sched["slotted"]["events_per_sec"] / sched["heapq"]["events_per_sec"]
    sched_ends_match = sched["heapq"]["sim_end"] == sched["slotted"]["sim_end"]
    report["scheduler_microbench"] = {
        **sched,
        "events_per_sec_ratio": sched_ratio,
        "sim_end_identical": sched_ends_match,
        "target": sched_target,
    }
    if not sched_ends_match:
        failures.append("scheduler microbench simulated end times diverged")
    if sched_ratio < sched_target:
        failures.append(
            f"scheduler dispatch ratio {sched_ratio:.2f}x < "
            f"{sched_target}x target"
        )
    print(
        f"  heapq {sched['heapq']['events_per_sec'] / 1e3:.0f}k ev/s vs slotted "
        f"{sched['slotted']['events_per_sec'] / 1e3:.0f}k ev/s -> "
        f"{sched_ratio:.2f}x",
        flush=True,
    )

    waves = 6 if quick else 30
    print(f"fabric microbench: {waves} shuffle waves, 512 flows/wave ...", flush=True)
    micro = {k: fabric_microbench(k, waves=waves) for k in ("naive", "incremental", "array")}
    micro_speedup = micro["naive"]["wall_s"] / micro["incremental"]["wall_s"]
    micro_array_speedup = micro["incremental"]["wall_s"] / micro["array"]["wall_s"]
    ends_match = (
        micro["naive"]["sim_end"]
        == micro["incremental"]["sim_end"]
        == micro["array"]["sim_end"]
    )
    report["fabric_microbench"] = {
        **micro,
        "speedup": micro_speedup,
        "array_speedup_vs_incremental": micro_array_speedup,
        "sim_end_identical": ends_match,
    }
    if not report["fabric_microbench"]["sim_end_identical"]:
        failures.append("microbench simulated end times diverged")
    if not quick and micro_speedup < 3.0:
        failures.append(f"microbench speedup {micro_speedup:.2f}x < 3x target")
    print(
        f"  naive {micro['naive']['wall_s']:.2f}s vs incremental "
        f"{micro['incremental']['wall_s']:.2f}s vs array "
        f"{micro['array']['wall_s']:.2f}s -> {micro_speedup:.2f}x incremental, "
        f"{micro_array_speedup:.2f}x array-vs-incremental",
        flush=True,
    )

    specs = grid_specs(quick)
    fabric_kinds = ("naive", "incremental", "array")
    print(f"grid A/B: {len(specs)} IOR points x {len(fabric_kinds)} allocators ...", flush=True)
    grid_results, grid_stats = run_grid_interleaved(specs, "REPRO_FABRIC", fabric_kinds)
    naive_results, naive_stats = grid_results["naive"], grid_stats["naive"]
    inc_results, inc_stats = grid_results["incremental"], grid_stats["incremental"]
    array_results, array_stats = grid_results["array"], grid_stats["array"]
    mismatches = [
        spec.label + "/" + spec.cache_mode
        for spec, a, b, c in zip(specs, naive_results, inc_results, array_results)
        if not (comparable_dict(a) == comparable_dict(b) == comparable_dict(c))
    ]
    if mismatches:
        failures.append(f"grid A/B diverged at: {', '.join(mismatches)}")
    grid_speedup = naive_stats["wall_s"] / inc_stats["wall_s"]
    report["grid_ab"] = {
        "naive": naive_stats,
        "incremental": inc_stats,
        "array": array_stats,
        "speedup_vs_naive": grid_speedup,
        "array_speedup_vs_incremental": inc_stats["wall_s"] / array_stats["wall_s"],
        "byte_identical_excluding_events": not mismatches,
        "compared_fields": sorted(comparable_dict(inc_results[0])),
    }
    # Recompute accounting from the most fabric-heavy point, measured in a
    # separate instrumented pass so the timing above stays unperturbed.
    heavy = max(specs, key=lambda s: (s.cache_mode == "enabled", s.aggregators))
    report["profiled_point"] = {
        "label": f"{heavy.label}/{heavy.cache_mode}",
        "naive": profile_point("naive", heavy),
        "incremental": profile_point("incremental", heavy),
        "array": profile_point("array", heavy),
    }
    if not quick:
        report["grid_ab"]["speedup_vs_pr1_recorded"] = (
            RECORDED_BASELINES["pr1_recorded_s"] / array_stats["wall_s"]
        )
        report["grid_ab"]["speedup_vs_pristine_head"] = (
            RECORDED_BASELINES["pristine_head_measured_s"] / array_stats["wall_s"]
        )
    print(
        f"  naive {naive_stats['wall_s']:.1f}s vs incremental "
        f"{inc_stats['wall_s']:.1f}s vs array {array_stats['wall_s']:.1f}s, "
        f"identical={not mismatches}",
        flush=True,
    )

    # -- engine grid A/B: heapq reference vs slotted default ------------------
    # Full mode times three interleaved passes and keeps the best: the
    # slotted events/s here is the gated headline number, and best-of-3
    # keeps a runner noise phase (single-core boxes drift +-10% for minutes
    # at a time) from sinking it (identity is checked on every pass).
    eng_passes = 1 if quick else 3
    print(
        f"engine grid A/B: {len(specs)} IOR points x 2 engines"
        f"{f' x {eng_passes} passes' if eng_passes > 1 else ''} ...",
        flush=True,
    )
    eng_results, eng_stats = run_grid_interleaved(
        specs, "REPRO_ENGINE", ("heapq", "slotted"), passes=eng_passes
    )
    eng_mismatches = [
        spec.label + "/" + spec.cache_mode
        for spec, a, b in zip(specs, eng_results["heapq"], eng_results["slotted"])
        if comparable_dict(a) != comparable_dict(b)
    ]
    if eng_mismatches:
        failures.append(f"engine grid A/B diverged at: {', '.join(eng_mismatches)}")
    eng_speedup = eng_stats["heapq"]["wall_s"] / eng_stats["slotted"]["wall_s"]
    report["engine_grid_ab"] = {
        "heapq": eng_stats["heapq"],
        "slotted": eng_stats["slotted"],
        "speedup_vs_heapq": eng_speedup,
        # Observed, not contractual: the flattened paths fire one dispatch
        # where the generator paths fire one event, so the counts happen to
        # match exactly today.
        "events_identical": (
            eng_stats["heapq"]["events_fired"] == eng_stats["slotted"]["events_fired"]
        ),
        "byte_identical_excluding_events": not eng_mismatches,
        "compared_fields": sorted(comparable_dict(eng_results["slotted"][0])),
    }
    if not quick:
        # The gated ratio: full-grid slotted events/s against the PR-8
        # recorded baseline (the revision that preceded the array kernel).
        vs_pr8 = (
            eng_stats["slotted"]["events_per_sec"]
            / RECORDED_BASELINES["pr8_full_grid_events_per_sec"]
        )
        report["engine_grid_ab"]["events_per_sec_vs_pr8_recorded"] = vs_pr8
        report["engine_grid_ab"]["full_grid_speedup_target"] = FULL_GRID_SPEEDUP_TARGET
        if vs_pr8 < FULL_GRID_SPEEDUP_TARGET:
            failures.append(
                f"full-grid slotted events/s only {vs_pr8:.2f}x the pr8 "
                f"recorded baseline (< {FULL_GRID_SPEEDUP_TARGET}x target)"
            )
    print(
        f"  heapq {eng_stats['heapq']['wall_s']:.1f}s vs slotted "
        f"{eng_stats['slotted']['wall_s']:.1f}s -> {eng_speedup:.2f}x, "
        f"identical={not eng_mismatches}",
        flush=True,
    )

    # -- engine A/B under fault schedules and a chaos-seed window -------------
    if quick:
        scenarios = ("baseline", "ssd_flaky")
    else:
        scenarios = (
            "baseline",
            "ssd_flaky",
            "server_stall",
            "link_degraded",
            "ssd_loss",
            "agg_crash",
        )
    print(f"engine fault A/B: {len(scenarios)} scenarios x 2 engines ...", flush=True)
    report["engine_fault_ab"] = fault_ab(
        scenarios, 0.125, "REPRO_ENGINE", ("heapq", "slotted")
    )
    if not report["engine_fault_ab"]["byte_identical_excluding_events"]:
        failures.append(
            "engine fault A/B diverged at: "
            + ", ".join(report["engine_fault_ab"]["mismatches"])
        )
    chaos_seeds = range(2) if quick else range(8)
    print(f"engine chaos A/B: {len(chaos_seeds)} seeds x 2 engines ...", flush=True)
    report["engine_chaos_ab"] = chaos_ab(
        chaos_seeds, 0.125, "REPRO_ENGINE", ("heapq", "slotted")
    )
    if not report["engine_chaos_ab"]["byte_identical_excluding_events"]:
        failures.append(
            "engine chaos A/B diverged at seeds: "
            + ", ".join(str(s) for s in report["engine_chaos_ab"]["mismatches"])
        )
    print(
        f"  fault identical={report['engine_fault_ab']['byte_identical_excluding_events']}, "
        f"chaos identical={report['engine_chaos_ab']['byte_identical_excluding_events']}",
        flush=True,
    )

    # -- fabric A/B under the same fault schedules and chaos seeds ------------
    # The array kernel must match the incremental (and naive) allocators on
    # the recovery/retry/interrupt paths the clean grid never exercises.
    print(
        f"fabric fault A/B: {len(scenarios)} scenarios x 3 allocators ...", flush=True
    )
    report["fabric_fault_ab"] = fault_ab(
        scenarios, 0.125, "REPRO_FABRIC", fabric_kinds
    )
    if not report["fabric_fault_ab"]["byte_identical_excluding_events"]:
        failures.append(
            "fabric fault A/B diverged at: "
            + ", ".join(report["fabric_fault_ab"]["mismatches"])
        )
    print(f"fabric chaos A/B: {len(chaos_seeds)} seeds x 3 allocators ...", flush=True)
    report["fabric_chaos_ab"] = chaos_ab(
        chaos_seeds, 0.125, "REPRO_FABRIC", fabric_kinds
    )
    if not report["fabric_chaos_ab"]["byte_identical_excluding_events"]:
        failures.append(
            "fabric chaos A/B diverged at seeds: "
            + ", ".join(str(s) for s in report["fabric_chaos_ab"]["mismatches"])
        )
    print(
        f"  fault identical={report['fabric_fault_ab']['byte_identical_excluding_events']}, "
        f"chaos identical={report['fabric_chaos_ab']['byte_identical_excluding_events']}",
        flush=True,
    )

    # Dataplane A/B: the bulk-transfer fast path against the per-chunk
    # reference (REPRO_DATAPLANE), same grid, default allocator.  Same
    # contract as the fabric A/B — every simulated quantity byte-identical,
    # only the diagnostic event count may (must, here) drop.
    print(f"dataplane A/B: {len(specs)} IOR points x 2 dataplanes ...", flush=True)
    dp_failures = []
    dp_results, dp_stats = run_grid_interleaved(
        specs, "REPRO_DATAPLANE", ("chunked", "bulk")
    )
    chunked_stats, bulk_stats = dp_stats["chunked"], dp_stats["bulk"]
    dp_mismatches = [
        spec.label + "/" + spec.cache_mode
        for spec, a, b in zip(specs, dp_results["chunked"], dp_results["bulk"])
        if comparable_dict(a) != comparable_dict(b)
    ]
    if dp_mismatches:
        dp_failures.append(f"dataplane A/B diverged at: {', '.join(dp_mismatches)}")
    dp_speedup = chunked_stats["wall_s"] / bulk_stats["wall_s"]
    events_reduction = (
        chunked_stats["events_fired"] / bulk_stats["events_fired"]
        if bulk_stats["events_fired"]
        else 0.0
    )
    if events_reduction < 2.0:
        dp_failures.append(
            f"dataplane events reduction {events_reduction:.2f}x < 2x target"
        )
    # The 1.5x wall target from the dataplane PR predates the slotted
    # scheduler, which collapsed per-event dispatch cost and sped the
    # event-dense chunked reference far more than bulk (full grid 45.7s
    # -> ~31s chunked vs 28.8s -> ~27s bulk).  Bulk's contract is the
    # >=2x events reduction above; the wall edge is now a modest bonus.
    if not quick and dp_speedup < 1.1:
        dp_failures.append(f"dataplane wall speedup {dp_speedup:.2f}x < 1.1x target")
    if quick and bulk_stats["events_fired"] > QUICK_BULK_EVENTS_CEILING:
        dp_failures.append(
            f"quick-grid bulk events {bulk_stats['events_fired']} > "
            f"ceiling {QUICK_BULK_EVENTS_CEILING}"
        )
    dataplane_report = {
        "scale": BENCH_SCALE,
        "mode": "quick" if quick else "full",
        "grid_ab": {
            "chunked": chunked_stats,
            "bulk": bulk_stats,
            "speedup_vs_chunked": dp_speedup,
            "events_reduction_vs_chunked": events_reduction,
            "byte_identical_excluding_events": not dp_mismatches,
            "compared_fields": sorted(comparable_dict(dp_results["bulk"][0])),
        },
        "quick_bulk_events_ceiling": QUICK_BULK_EVENTS_CEILING,
        "ok": not dp_failures,
        "failures": dp_failures,
    }
    with open(args.out_dataplane, "w") as fh:
        json.dump(dataplane_report, fh, indent=2, sort_keys=True)
    print(f"wrote {args.out_dataplane}")
    print(
        f"  chunked {chunked_stats['wall_s']:.1f}s vs bulk "
        f"{bulk_stats['wall_s']:.1f}s -> {dp_speedup:.2f}x wall, "
        f"{events_reduction:.2f}x fewer events, identical={not dp_mismatches}",
        flush=True,
    )
    failures.extend(dp_failures)

    report["ok"] = not failures
    report["failures"] = failures
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"wrote {args.out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
