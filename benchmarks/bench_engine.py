"""Engine A/B benchmark: incremental vs naive fair sharing, with receipts.

Runs two workloads against both fabric allocators
(:class:`~repro.net.fabric.Fabric` and the ``REPRO_FABRIC=naive``
reference) and writes a machine-readable report to ``BENCH_engine.json``:

1. **Fabric microbenchmark** — the paper's funnel pattern (512 ranks
   draining into a handful of aggregator NICs, wave after wave), which is
   exactly the path the incremental allocator fast-paths.  The report
   records the naive/incremental wall-clock ratio and *asserts the two
   allocators agree on the simulated end time to the last bit*.

2. **Grid A/B** — real measurement points from the PR-1 IOR sweep
   (``aggregators × buffer × cache-mode`` at ``REPRO_SCALE=0.03125``), run
   uncached under both allocators.  Every :class:`ExperimentResult` field
   except ``events`` must be **byte-identical** (``events`` counts
   engine-internal bookkeeping events — wakes, flushes — which the two
   allocators legitimately schedule in different numbers; every *simulated*
   quantity — timestamps, bandwidths, breakdowns, bytes — must match).

3. **Dataplane A/B** — the same grid run under ``REPRO_DATAPLANE=bulk``
   (the batched device I/O + coalesced flow fast path) and
   ``REPRO_DATAPLANE=chunked`` (the per-chunk reference), written to a
   separate ``BENCH_dataplane.json``.  Byte-identity (excluding ``events``)
   and the >=2x events reduction are enforced in every mode; the >=1.5x
   wall speedup only under ``--full``; ``--quick`` additionally enforces an
   absolute event-count ceiling on the bulk grid so CI catches event-count
   regressions.

The exit status is non-zero on any A/B divergence, so CI's ``bench-smoke``
job (``--quick``) doubles as a determinism gate.  ``--full`` runs the whole
36-point grid and additionally enforces the >=3x microbenchmark speedup
target.  See docs/PERFORMANCE.md for how to read the output.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py --quick
    PYTHONPATH=src python benchmarks/bench_engine.py --full --out BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.experiments.figures import QUICK_AGGREGATORS, QUICK_CB_SIZES
from repro.experiments.runner import CACHE_MODES, ExperimentSpec, run_experiment
from repro.net.fabric import FABRIC_KINDS
from repro.sim.core import Simulator
from repro.sim.profile import SimProfiler
from repro.units import MiB

# What this grid cost before the engine work, same container class, serial,
# REPRO_SCALE=0.03125, --no-cache.  Kept as recorded provenance so the JSON
# tells the whole trajectory, not just the in-repo A/B of the day.
RECORDED_BASELINES = {
    "pr1_recorded_s": 410.9,  # PR 1's CHANGES.md entry (pre fault-injection)
    "pristine_head_measured_s": 63.7,  # commit eb60b5d re-timed on this machine
}

BENCH_SCALE = 0.03125

# Quick-grid bulk-dataplane event budget: 295,020 measured at the PR that
# introduced the fast path, plus ~15% headroom.  CI's bench-smoke fails when
# the bulk path starts firing more events than this — the regression the
# fast path exists to prevent.  (The chunked reference fires ~2.18M on the
# same grid.)
QUICK_BULK_EVENTS_CEILING = 340_000


def fabric_microbench(kind: str, nodes=64, aggs=8, waves=30, ranks=512):
    """Shuffle waves into few aggregators — the fabric-bound hot path."""
    sim = Simulator()
    fabric = FABRIC_KINDS[kind](sim, num_nodes=nodes, nic_bw=1e9, latency=1e-6)
    t0 = time.perf_counter()
    for _ in range(waves):
        for r in range(ranks):
            fabric.start_flow(r % nodes, (r % aggs) * (nodes // aggs), 1e6 + r)
        sim.run()  # drain the wave
    wall = time.perf_counter() - t0
    return {
        "kind": kind,
        "wall_s": wall,
        "sim_end": sim.now,
        "events_fired": sim.events_fired,
        "recomputes": fabric.recomputes,
        "flows_rerated": fabric.recompute_flows,
        "wake_events": fabric.wake_events,
    }


def grid_specs(quick: bool) -> list[ExperimentSpec]:
    """IOR points from the PR-1 sweep grid (the ISSUE's reference workload)."""
    aggs = (QUICK_AGGREGATORS[0], QUICK_AGGREGATORS[-1]) if quick else QUICK_AGGREGATORS
    cbs = (4 * MiB,) if quick else QUICK_CB_SIZES
    return [
        ExperimentSpec(
            benchmark="ior", aggregators=a, cb_buffer=c, cache_mode=m, scale=BENCH_SCALE
        )
        for a in aggs
        for c in cbs
        for m in CACHE_MODES
    ]


def comparable_dict(result) -> dict:
    """A result as compared A/B: everything but the diagnostic event count."""
    d = result.to_dict()
    d.pop("events")
    return d


def run_point(spec, env_var: str, kind: str):
    """One timed point under one ``env_var`` setting.  No profiler: timing
    must not skew."""
    os.environ[env_var] = kind
    try:
        t0 = time.perf_counter()
        result = run_experiment(spec)
        return result, time.perf_counter() - t0
    finally:
        os.environ.pop(env_var, None)


def run_grid_interleaved(specs, env_var: str, kinds: tuple[str, str]):
    """Time both ``kinds`` point by point, alternating which goes first.

    The two timings of a point land adjacent in wall-clock time (and the
    first-runner advantage, if any, alternates), so machine noise — which
    on a shared CI runner easily exceeds the end-to-end delta — hits both
    variants equally instead of whichever grid happened to run second.
    """
    results = {k: [] for k in kinds}
    walls = dict.fromkeys(kinds, 0.0)
    for i, spec in enumerate(specs):
        order = kinds if i % 2 == 0 else kinds[::-1]
        for kind in order:
            result, wall = run_point(spec, env_var, kind)
            results[kind].append(result)
            walls[kind] += wall
    stats = {}
    for kind in kinds:
        events = sum(r.events for r in results[kind])
        stats[kind] = {
            "kind": kind,
            "points": len(results[kind]),
            "wall_s": walls[kind],
            "events_fired": events,
            "events_per_sec": events / walls[kind] if walls[kind] else 0.0,
        }
    return results, stats


def profile_point(kind: str, spec):
    """One untimed instrumented run — recompute totals for the report."""
    os.environ["REPRO_FABRIC"] = kind
    try:
        profiler = SimProfiler()
        run_experiment(spec, profiler=profiler)
    finally:
        os.environ.pop("REPRO_FABRIC", None)
    return profiler.snapshot()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_engine.py", description=__doc__.splitlines()[0]
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run: trimmed microbench + 6-point grid A/B",
    )
    mode.add_argument(
        "--full",
        action="store_true",
        help="full 36-point grid A/B; also enforces the >=3x microbench target",
    )
    parser.add_argument(
        "--out", default="BENCH_engine.json", help="report path (default: %(default)s)"
    )
    parser.add_argument(
        "--out-dataplane",
        default="BENCH_dataplane.json",
        help="dataplane A/B report path (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    quick = args.quick or not args.full

    report = {
        "scale": BENCH_SCALE,
        "mode": "quick" if quick else "full",
        "recorded_baselines": RECORDED_BASELINES,
    }
    failures = []

    waves = 6 if quick else 30
    print(f"fabric microbench: {waves} shuffle waves, 512 flows/wave ...", flush=True)
    micro = {k: fabric_microbench(k, waves=waves) for k in ("naive", "incremental")}
    micro_speedup = micro["naive"]["wall_s"] / micro["incremental"]["wall_s"]
    ends_match = micro["naive"]["sim_end"] == micro["incremental"]["sim_end"]
    report["fabric_microbench"] = {
        **micro,
        "speedup": micro_speedup,
        "sim_end_identical": ends_match,
    }
    if not report["fabric_microbench"]["sim_end_identical"]:
        failures.append("microbench simulated end times diverged")
    if not quick and micro_speedup < 3.0:
        failures.append(f"microbench speedup {micro_speedup:.2f}x < 3x target")
    print(
        f"  naive {micro['naive']['wall_s']:.2f}s vs incremental "
        f"{micro['incremental']['wall_s']:.2f}s -> {micro_speedup:.2f}x",
        flush=True,
    )

    specs = grid_specs(quick)
    print(f"grid A/B: {len(specs)} IOR points x 2 allocators ...", flush=True)
    grid_results, grid_stats = run_grid_interleaved(
        specs, "REPRO_FABRIC", ("naive", "incremental")
    )
    naive_results, naive_stats = grid_results["naive"], grid_stats["naive"]
    inc_results, inc_stats = grid_results["incremental"], grid_stats["incremental"]
    mismatches = [
        spec.label + "/" + spec.cache_mode
        for spec, a, b in zip(specs, naive_results, inc_results)
        if comparable_dict(a) != comparable_dict(b)
    ]
    if mismatches:
        failures.append(f"grid A/B diverged at: {', '.join(mismatches)}")
    grid_speedup = naive_stats["wall_s"] / inc_stats["wall_s"]
    report["grid_ab"] = {
        "naive": naive_stats,
        "incremental": inc_stats,
        "speedup_vs_naive": grid_speedup,
        "byte_identical_excluding_events": not mismatches,
        "compared_fields": sorted(comparable_dict(inc_results[0])),
    }
    # Recompute accounting from the most fabric-heavy point, measured in a
    # separate instrumented pass so the timing above stays unperturbed.
    heavy = max(specs, key=lambda s: (s.cache_mode == "enabled", s.aggregators))
    report["profiled_point"] = {
        "label": f"{heavy.label}/{heavy.cache_mode}",
        "naive": profile_point("naive", heavy),
        "incremental": profile_point("incremental", heavy),
    }
    if not quick:
        report["grid_ab"]["speedup_vs_pr1_recorded"] = (
            RECORDED_BASELINES["pr1_recorded_s"] / inc_stats["wall_s"]
        )
        report["grid_ab"]["speedup_vs_pristine_head"] = (
            RECORDED_BASELINES["pristine_head_measured_s"] / inc_stats["wall_s"]
        )
    print(
        f"  naive {naive_stats['wall_s']:.1f}s vs incremental "
        f"{inc_stats['wall_s']:.1f}s -> {grid_speedup:.2f}x, "
        f"identical={not mismatches}",
        flush=True,
    )

    # Dataplane A/B: the bulk-transfer fast path against the per-chunk
    # reference (REPRO_DATAPLANE), same grid, default allocator.  Same
    # contract as the fabric A/B — every simulated quantity byte-identical,
    # only the diagnostic event count may (must, here) drop.
    print(f"dataplane A/B: {len(specs)} IOR points x 2 dataplanes ...", flush=True)
    dp_failures = []
    dp_results, dp_stats = run_grid_interleaved(
        specs, "REPRO_DATAPLANE", ("chunked", "bulk")
    )
    chunked_stats, bulk_stats = dp_stats["chunked"], dp_stats["bulk"]
    dp_mismatches = [
        spec.label + "/" + spec.cache_mode
        for spec, a, b in zip(specs, dp_results["chunked"], dp_results["bulk"])
        if comparable_dict(a) != comparable_dict(b)
    ]
    if dp_mismatches:
        dp_failures.append(f"dataplane A/B diverged at: {', '.join(dp_mismatches)}")
    dp_speedup = chunked_stats["wall_s"] / bulk_stats["wall_s"]
    events_reduction = (
        chunked_stats["events_fired"] / bulk_stats["events_fired"]
        if bulk_stats["events_fired"]
        else 0.0
    )
    if events_reduction < 2.0:
        dp_failures.append(
            f"dataplane events reduction {events_reduction:.2f}x < 2x target"
        )
    if not quick and dp_speedup < 1.5:
        dp_failures.append(f"dataplane wall speedup {dp_speedup:.2f}x < 1.5x target")
    if quick and bulk_stats["events_fired"] > QUICK_BULK_EVENTS_CEILING:
        dp_failures.append(
            f"quick-grid bulk events {bulk_stats['events_fired']} > "
            f"ceiling {QUICK_BULK_EVENTS_CEILING}"
        )
    dataplane_report = {
        "scale": BENCH_SCALE,
        "mode": "quick" if quick else "full",
        "grid_ab": {
            "chunked": chunked_stats,
            "bulk": bulk_stats,
            "speedup_vs_chunked": dp_speedup,
            "events_reduction_vs_chunked": events_reduction,
            "byte_identical_excluding_events": not dp_mismatches,
            "compared_fields": sorted(comparable_dict(dp_results["bulk"][0])),
        },
        "quick_bulk_events_ceiling": QUICK_BULK_EVENTS_CEILING,
        "ok": not dp_failures,
        "failures": dp_failures,
    }
    with open(args.out_dataplane, "w") as fh:
        json.dump(dataplane_report, fh, indent=2, sort_keys=True)
    print(f"wrote {args.out_dataplane}")
    print(
        f"  chunked {chunked_stats['wall_s']:.1f}s vs bulk "
        f"{bulk_stats['wall_s']:.1f}s -> {dp_speedup:.2f}x wall, "
        f"{events_reduction:.2f}x fewer events, identical={not dp_mismatches}",
        flush=True,
    )
    failures.extend(dp_failures)

    report["ok"] = not failures
    report["failures"] = failures
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"wrote {args.out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
