"""Equations (1)/(2) — the analytic bandwidth model versus the simulator.

The closed-form predictor (flush time, PFS ceiling) must agree with the
measured simulation within a small factor; Eq. (2) recomputed from the
measured T_c/T_s components must match the harness's perceived bandwidth.
"""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.bandwidth import BandwidthModel
from repro.config import deep_er_testbed
from repro.experiments.runner import ExperimentSpec, run_experiment_cached
from repro.units import GiB, KiB, MiB


def test_eq2_consistency_with_harness(benchmark):
    spec = ExperimentSpec(
        "ior", aggregators=8, cache_mode="enabled", scale=0.125, flush_batch_chunks=16
    )
    r = run_once(benchmark, lambda: run_experiment_cached(spec))
    # Recompute Eq. 2 from the harness's own components.
    S = [r.file_size] * spec.num_files
    # write_time and close_wait are already summed; Eq. 2 over the sums:
    bw_eq2 = sum(S) / (r.write_time + r.close_wait)
    assert bw_eq2 == pytest.approx(r.bw_incl_last, rel=0.02)


def test_flush_model_matches_simulated_close_wait(benchmark):
    cfg = deep_er_testbed()
    model = BandwidthModel(cfg)
    spec = ExperimentSpec(
        "ior", aggregators=8, cache_mode="enabled", scale=0.125, flush_batch_chunks=16
    )
    r = run_once(benchmark, lambda: run_experiment_cached(spec))
    file_size = r.file_size
    compute = 30.0 * (file_size / (512 * 64 * MiB))
    predicted_ts = model.flush_time(file_size, 8, 512 * KiB)
    predicted_leak = max(0.0, predicted_ts - compute)
    # close_wait sums 3 hidden-phase leaks plus the full last-phase T_s.
    predicted_total = 3 * predicted_leak + predicted_ts
    assert r.close_wait == pytest.approx(predicted_total, rel=0.5)
    print(f"\npredicted T_s={predicted_ts:.2f}s leak/phase={predicted_leak:.2f}s; "
          f"simulated total close wait={r.close_wait:.2f}s")


def test_pfs_ceiling_model(benchmark):
    cfg = deep_er_testbed()
    model = BandwidthModel(cfg)
    spec = ExperimentSpec(
        "ior", aggregators=64, cb_buffer=64 * MiB, cache_mode="disabled",
        scale=0.125, flush_batch_chunks=16,
    )
    r = run_once(benchmark, lambda: run_experiment_cached(spec))
    predicted = spec.num_files * r.file_size / (
        spec.num_files * model.pfs_collective_write_time(r.file_size)
    )
    assert r.bw == pytest.approx(predicted, rel=0.6)
    print(f"\nmodel {predicted / GiB:.2f} GiB/s vs simulated {r.bw / GiB:.2f} GiB/s")
