"""Fig. 9 — IOR perceived write bandwidth, INCLUDING the last write phase.

Paper: unlike coll_perf and Flash-IO, IOR's figure charges the non-hidden
synchronisation of the fourth (final) write phase — C(5)=0 — capping the
peak at ≈6 GB/s versus ≈2 GB/s standard (a ≈3× win instead of 10×); the
theoretical series stays aligned with the other two benchmarks.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import fig9_ior_bandwidth
from repro.experiments.report import render_bandwidth_table


def test_fig9_ior_bandwidth(benchmark, figure_sweep):
    aggs, cbs = figure_sweep
    data = run_once(benchmark, lambda: fig9_ior_bandwidth(aggs, cbs))
    print()
    print(render_bandwidth_table("Fig. 9: IOR perceived bandwidth (incl. last phase)", data))
    for label, row in data.items():
        agg = int(label.split("_")[0])
        # the last phase caps IOR well below the theoretical series
        assert row["BW Cache Enable"] < 0.75 * row["TBW Cache Enable"], label
        if agg >= 16:
            # but the cache still wins over the PFS-only path
            assert row["BW Cache Enable"] > 1.5 * row["BW Cache Disable"], label
