"""Fig. 7 — Flash-IO perceived write bandwidth.

Paper: peak ≈40 GB/s at 64 aggregators / 4 MB buffers versus ≈2 GB/s
direct to the parallel file system; 8 aggregators again mismatch perceived
vs theoretical bandwidth.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import fig7_flashio_bandwidth
from repro.experiments.report import render_bandwidth_table, shape_checks_bandwidth


def test_fig7_flashio_bandwidth(benchmark, figure_sweep):
    aggs, cbs = figure_sweep
    data = run_once(benchmark, lambda: fig7_flashio_bandwidth(aggs, cbs))
    print()
    print(render_bandwidth_table("Fig. 7: Flash-IO perceived bandwidth", data))
    checks = shape_checks_bandwidth(data)
    print("shape checks:", checks)
    assert all(checks.values()), checks
