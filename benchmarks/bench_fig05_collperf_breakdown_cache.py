"""Fig. 5 — coll_perf collective-I/O contribution breakdown, cache enabled.

Paper: the not_hidden_sync term appears only at 8 aggregators; global
synchronisation terms (shuffle_all2all, post_write) are small compared to
the cache-disabled breakdown of Fig. 6.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import fig5_collperf_breakdown_cache
from repro.experiments.report import render_breakdown_table


def test_fig5_collperf_breakdown_cache(benchmark, figure_sweep):
    aggs, cbs = figure_sweep
    data = run_once(benchmark, lambda: fig5_collperf_breakdown_cache(aggs, cbs))
    print()
    print(render_breakdown_table("Fig. 5: coll_perf breakdown (cache enabled)", data))
    # not_hidden_sync must be present at 8 aggregators and absent at 64.
    eight = {k: v for k, v in data.items() if k.startswith("8_")}
    sixty4 = {k: v for k, v in data.items() if k.startswith("64_")}
    assert any(row.get("not_hidden_sync", 0) > 0.05 for row in eight.values())
    worst64 = max(row.get("not_hidden_sync", 0) for row in sixty4.values())
    worst8 = max(row.get("not_hidden_sync", 0) for row in eight.values())
    assert worst8 > worst64
