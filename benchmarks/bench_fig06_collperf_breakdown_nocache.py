"""Fig. 6 — coll_perf contribution breakdown, cache disabled.

Paper: the write term dominates, and the global synchronisation costs
(shuffle_all2all, post_write) are consistently larger than in the cached
case of Fig. 5.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import (
    fig5_collperf_breakdown_cache,
    fig6_collperf_breakdown_nocache,
)
from repro.experiments.report import render_breakdown_table


def test_fig6_collperf_breakdown_nocache(benchmark, figure_sweep):
    aggs, cbs = figure_sweep
    data = run_once(benchmark, lambda: fig6_collperf_breakdown_nocache(aggs, cbs))
    print()
    print(render_breakdown_table("Fig. 6: coll_perf breakdown (cache disabled)", data))
    cached = fig5_collperf_breakdown_cache(aggs, cbs)  # memoised
    # Global sync terms shrink with the cache, configuration by configuration.
    reduced = 0
    for label, row in data.items():
        sync_off = row.get("shuffle_all2all", 0) + row.get("post_write", 0)
        sync_on = cached[label].get("shuffle_all2all", 0) + cached[label].get(
            "post_write", 0
        )
        if sync_on < sync_off:
            reduced += 1
    assert reduced >= 0.7 * len(data)
    # The storage-bound terms dominate the disabled breakdown: the write
    # itself plus the round synchronisation waiting on the slowest writer
    # (shuffle_all2all/post_write) account for most of the time; pure
    # communication and assembly stay minor.
    for label, row in data.items():
        storage_bound = (
            row.get("write", 0)
            + row.get("shuffle_all2all", 0)
            + row.get("post_write", 0)
        )
        total = sum(row.values())
        assert storage_bound > 0.7 * total, label
        assert row["write"] > row.get("comm", 0), label
        assert row["write"] > row.get("memcpy", 0), label
