"""Fig. 8 — Flash-IO contribution breakdown, cache enabled.

Paper: at 8 aggregators cache synchronisation cannot be hidden (the Fig. 7
bandwidth mismatch); global synchronisation contributions are reduced
versus the uncached run, with an occasional post_write outlier showing
that jitter sensitivity *increases* at cache speeds.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import fig8_flashio_breakdown
from repro.experiments.report import render_breakdown_table


def test_fig8_flashio_breakdown(benchmark, figure_sweep):
    aggs, cbs = figure_sweep
    data = run_once(benchmark, lambda: fig8_flashio_breakdown(aggs, cbs))
    print()
    print(render_breakdown_table("Fig. 8: Flash-IO breakdown (cache enabled)", data))
    eight = {k: v for k, v in data.items() if k.startswith("8_")}
    assert any(row.get("not_hidden_sync", 0) > 0.05 for row in eight.values())
