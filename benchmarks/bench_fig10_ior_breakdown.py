"""Fig. 10 — IOR contribution breakdown, cache enabled.

Paper: the not_hidden_sync term — T_s(4) with C(5)=0 — is clearly visible
and prevents IOR from reaching the higher bandwidths of Figs. 4/7.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import fig10_ior_breakdown
from repro.experiments.report import render_breakdown_table


def test_fig10_ior_breakdown(benchmark, figure_sweep):
    aggs, cbs = figure_sweep
    data = run_once(benchmark, lambda: fig10_ior_breakdown(aggs, cbs))
    print()
    print(render_breakdown_table("Fig. 10: IOR breakdown (cache enabled)", data))
    # every configuration carries the unhidden last-phase sync
    assert all(row.get("not_hidden_sync", 0) > 0.05 for row in data.values())
