"""Fig. 4 — coll_perf perceived write bandwidth.

Paper: BW Cache Disable plateaus at ≈2 GB/s; BW Cache Enable reaches
≈20 GB/s (10×) at 64 aggregators; at 8 aggregators the flush cannot hide
and the perceived bandwidth falls below the theoretical series (and can
drop below the disabled case).  The last write phase is excluded.
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import fig4_collperf_bandwidth
from repro.experiments.report import render_bandwidth_table, shape_checks_bandwidth


def test_fig4_collperf_bandwidth(benchmark, figure_sweep):
    aggs, cbs = figure_sweep
    data = run_once(benchmark, lambda: fig4_collperf_bandwidth(aggs, cbs))
    print()
    print(render_bandwidth_table("Fig. 4: coll_perf perceived bandwidth", data))
    checks = shape_checks_bandwidth(data)
    print("shape checks:", checks)
    assert all(checks.values()), checks
