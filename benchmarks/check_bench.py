"""Compare bench_engine reports against committed baselines — the CI gate.

``bench-smoke`` runs ``benchmarks/bench_engine.py --quick`` (which already
exits non-zero on any A/B divergence) and then this script, which turns the
written reports into a *regression* gate against numbers committed in
``benchmarks/baseline_quick.json``:

* **events-fired counts, exactly** — the simulation is deterministic, so
  the quick grid fires a bit-reproducible number of events per engine,
  allocator and dataplane.  Any drift means the simulated schedule changed
  and the baseline must be re-recorded deliberately in the same PR.
* **events/s, with generous floors** — shared CI runners are slow and
  noisy, so throughput floors sit ~5x below the reference box; they catch
  an order-of-magnitude dispatch regression (e.g. losing the slotted fast
  lane) without flaking on runner weather.
* **report ``ok`` flags** — belt and braces; bench_engine already failed
  the build if these are false.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py --quick
    python benchmarks/check_bench.py           # reads the default filenames

    python benchmarks/check_bench.py --engine BENCH_engine.json \\
        --dataplane BENCH_dataplane.json --baseline benchmarks/baseline_quick.json

Exit status is non-zero on any mismatch, with one ``FAIL:`` line per
finding on stderr.
"""

from __future__ import annotations

import argparse
import json
import sys


def check_events_exact(baseline: dict, reports: dict, failures: list[str]) -> None:
    """Exact events-fired comparison for every section/kind in the baseline."""
    sections = {
        "scheduler_microbench": ("engine", "scheduler_microbench"),
        "engine_grid_ab": ("engine", "engine_grid_ab"),
        "grid_ab": ("engine", "grid_ab"),
        "dataplane_grid_ab": ("dataplane", "grid_ab"),
        "fleet_grid_ab": ("fleet", "fleet_grid_ab"),
    }
    for name, expected_kinds in baseline["events_fired"].items():
        which, key = sections[name]
        if which not in reports:
            continue  # this invocation only checks a subset of the reports
        section = reports[which].get(key)
        if section is None:
            failures.append(f"{name}: section {key!r} missing from report")
            continue
        for kind, expected in expected_kinds.items():
            got = section.get(kind, {}).get("events_fired")
            if got != expected:
                failures.append(
                    f"{name}.{kind}: events_fired {got} != baseline {expected}"
                )


def check_throughput_floors(
    baseline: dict, reports: dict, failures: list[str]
) -> None:
    floors = baseline["events_per_sec_floors"]
    if "engine" in reports:
        sched = reports["engine"].get("scheduler_microbench", {})
        for kind, floor in floors.get("scheduler_microbench", {}).items():
            got = sched.get(kind, {}).get("events_per_sec", 0.0)
            if got < floor:
                failures.append(
                    f"scheduler_microbench.{kind}: {got:.0f} ev/s < floor {floor}"
                )
        ratio_min = floors.get("scheduler_ratio_min")
        if ratio_min is not None:
            ratio = sched.get("events_per_sec_ratio", 0.0)
            if ratio < ratio_min:
                failures.append(
                    f"scheduler_microbench ratio {ratio:.2f}x < floor {ratio_min}x"
                )
        eng = reports["engine"].get("engine_grid_ab", {})
        for kind, floor in floors.get("engine_grid_ab", {}).items():
            got = eng.get(kind, {}).get("events_per_sec", 0.0)
            if got < floor:
                failures.append(
                    f"engine_grid_ab.{kind}: {got:.0f} ev/s < floor {floor}"
                )
        grid = reports["engine"].get("grid_ab", {})
        for kind, floor in floors.get("grid_ab", {}).items():
            got = grid.get(kind, {}).get("events_per_sec", 0.0)
            if got < floor:
                failures.append(f"grid_ab.{kind}: {got:.0f} ev/s < floor {floor}")
    if "fleet" in reports:
        grid = reports["fleet"].get("fleet_grid_ab", {})
        for kind, floor in floors.get("fleet_grid_ab", {}).items():
            got = grid.get(kind, {}).get("events_per_sec", 0.0)
            if got < floor:
                failures.append(
                    f"fleet_grid_ab.{kind}: {got:.0f} ev/s < floor {floor}"
                )
        if not grid.get("byte_identical", False):
            failures.append(
                "fleet_grid_ab: engine x dataplane identities diverge "
                f"({', '.join(grid.get('mismatches', ['?']))})"
            )


def check_fleet_scaling(baseline: dict, reports: dict, failures: list[str]) -> None:
    """Gate fleet scaling points against generous wall ceilings.

    The ceilings prove the array kernel sustains thousands-of-jobs fleets
    (the 1024-job point) without flaking on runner weather: they sit far
    above the reference box's wall time, catching only an order-of-magnitude
    solver regression.  Sizes absent from the report (quick mode stops at
    16 jobs) are skipped."""
    ceilings = baseline.get("fleet_scaling_wall_ceilings")
    report = reports.get("fleet")
    if ceilings is None or report is None:
        return
    scaling = report.get("fleet_scaling", {})
    for size, ceiling in ceilings.items():
        point = scaling.get(size)
        if point is None:
            continue
        wall = point.get("wall_s")
        if wall is None or wall > ceiling:
            failures.append(
                f"fleet_scaling.{size}: wall {wall}s > generous ceiling {ceiling}s"
            )
        if point.get("jobs_failed"):
            failures.append(
                f"fleet_scaling.{size}: {point['jobs_failed']} jobs failed"
            )


def check_device_tier(baseline: dict, reports: dict, failures: list[str]) -> None:
    """Gate the bench_devices report: exact FTL counters + tier event counts
    against the ``device_tier`` baseline section."""
    section = baseline.get("device_tier")
    report = reports.get("devices")
    if section is None or report is None:
        return
    aging = report.get("flash_aging", {})
    for counter, expected in section["flash_aging"].items():
        got = aging.get(counter)
        if got != expected:
            failures.append(
                f"flash_aging.{counter}: {got} != baseline {expected}"
            )
    wa_min = section.get("write_amplification_min")
    if wa_min is not None and aging.get("write_amplification", 0.0) < wa_min:
        failures.append(
            f"flash_aging: WA {aging.get('write_amplification')} < floor {wa_min}"
        )
    tiers = report.get("tier_dataplane_ab", {})
    for key, expected in section["events_fired"].items():
        tier, _, plane = key.rpartition("_")
        got = tiers.get(tier, {}).get(f"events_{plane}")
        if got != expected:
            failures.append(
                f"device_tier.{key}: events_fired {got} != baseline {expected}"
            )
    for tier, stats in tiers.items():
        if not stats.get("byte_identical_excluding_events", False):
            failures.append(f"device_tier.{tier}: dataplane A/B diverged")
    if not report.get("stream_identity", {}).get("ok", False):
        failures.append("device_tier: REPRO_SSD=stream identity broken")


def check_recovery_slos(baseline: dict, reports: dict, failures: list[str]) -> None:
    """Gate the bench_fleet crash trial against committed recovery budgets.

    The ``recovery_slos`` baseline section pins measured budgets for the
    seeded crash trial: a crashed job must restart and replay within them,
    and cached writes that finished cleanly must lose nothing.  Unlike the
    throughput floors these are *simulated* quantities — deterministic, so
    the budgets are tight and any breach is a semantic regression in the
    crash-routing/restart/replay path, not runner weather.
    """
    budgets = baseline.get("recovery_slos")
    report = reports.get("fleet")
    if budgets is None or report is None:
        return
    crash = report.get("fleet_crash")
    if crash is None:
        failures.append(
            "recovery_slos: fleet_crash section missing from the fleet report "
            "(bench_fleet.py predates the crash trial?)"
        )
        return
    if not crash.get("byte_identical", False):
        failures.append(
            "fleet_crash: engine x dataplane identities diverge "
            f"({', '.join(crash.get('mismatches', ['?']))})"
        )
    for kind, point in sorted(crash.items()):
        if not isinstance(point, dict):
            continue
        where = f"fleet_crash.{kind}"
        for violation in point.get("violations", []):
            failures.append(f"{where}: {violation}")
        if not point.get("crashed_jobs"):
            failures.append(f"{where}: the seeded schedule injected no crash")
        if not point.get("restarts"):
            failures.append(f"{where}: the crashed job never restarted")
        if point.get("bytes_replayed", 0) <= 0:
            failures.append(f"{where}: restart replayed no journal bytes")
        if point.get("slo_violations"):
            failures.append(
                f"{where}: {point['slo_violations']} per-job SLO violation(s) "
                f"under the default budgets"
            )
        lost = point.get("bytes_lost_cached", 0)
        lost_max = budgets.get("bytes_lost_cached_max", 0)
        if lost > lost_max:
            failures.append(
                f"{where}: bytes_lost_cached {lost} > budget {lost_max}"
            )
        for metric, budget_key in (
            ("time_to_restart_max", "time_to_restart_max"),
            ("replay_duration_total", "replay_duration_max"),
            ("degraded_window_max", "degraded_window_max"),
        ):
            budget = budgets.get(budget_key)
            if budget is None:
                continue
            got = point.get(metric)
            if got is None or got > budget:
                failures.append(
                    f"{where}: {metric} {got} > budget {budget} ({budget_key})"
                )


def check_ok_flags(reports: dict, failures: list[str]) -> None:
    for which, report in reports.items():
        if not report.get("ok", False):
            failures.append(
                f"{which} report not ok: {', '.join(report.get('failures', ['?']))}"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/check_bench.py",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--engine", default="BENCH_engine.json")
    parser.add_argument("--dataplane", default="BENCH_dataplane.json")
    parser.add_argument(
        "--fleet",
        default=None,
        help="also gate a bench_fleet report (e.g. BENCH_fleet.json)",
    )
    parser.add_argument(
        "--fleet-only",
        action="store_true",
        help="check only the fleet report (skip engine/dataplane reports)",
    )
    parser.add_argument(
        "--slo",
        action="store_true",
        help="gate only the fleet report's crash-trial recovery SLOs "
        "against the baseline's recovery_slos budgets",
    )
    parser.add_argument(
        "--devices",
        default=None,
        help="also gate a bench_devices report (e.g. BENCH_devices.json)",
    )
    parser.add_argument(
        "--devices-only",
        action="store_true",
        help="check only the devices report (skip engine/dataplane reports)",
    )
    parser.add_argument("--baseline", default="benchmarks/baseline_quick.json")
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    reports = {}
    if not (args.fleet_only or args.devices_only or args.slo):
        with open(args.engine) as fh:
            reports["engine"] = json.load(fh)
        with open(args.dataplane) as fh:
            reports["dataplane"] = json.load(fh)
    if args.fleet or args.fleet_only or args.slo:
        with open(args.fleet or "BENCH_fleet.json") as fh:
            reports["fleet"] = json.load(fh)
    if args.devices or args.devices_only:
        with open(args.devices or "BENCH_devices.json") as fh:
            reports["devices"] = json.load(fh)

    for which, report in reports.items():
        if report.get("mode") != baseline["mode"]:
            print(
                f"note: {which} report mode {report.get('mode')!r} != baseline "
                f"{baseline['mode']!r}; exact-count checks assume the "
                f"{baseline['mode']} grid",
                file=sys.stderr,
            )

    failures: list[str] = []
    if args.slo:
        # The dedicated SLO gate: only the crash-trial budgets.  The full
        # pass below also runs check_recovery_slos whenever a fleet report
        # and the recovery_slos baseline section are both present.
        check_recovery_slos(baseline, reports, failures)
    else:
        check_ok_flags(reports, failures)
        check_events_exact(baseline, reports, failures)
        check_throughput_floors(baseline, reports, failures)
        check_fleet_scaling(baseline, reports, failures)
        check_device_tier(baseline, reports, failures)
        check_recovery_slos(baseline, reports, failures)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("check_bench: all baseline checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
