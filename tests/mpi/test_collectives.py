import pytest

from repro.config import small_testbed
from repro.machine import Machine
from repro.mpi.collectives import op_max, op_min
from repro.mpi.process import MPIWorld
from repro.sim.core import SimError


def run_both_modes(body_factory, num_nodes=4, procs_per_node=2):
    """Run the same SPMD body under both collective engines."""
    out = {}
    for mode in ("model", "algorithmic"):
        machine = Machine(small_testbed(num_nodes, procs_per_node))
        world = MPIWorld(machine, collective_mode=mode)
        out[mode] = world.run(body_factory())
    return out["model"], out["algorithmic"]


class TestEquivalence:
    """The model engine must return exactly what the real algorithms return."""

    def test_allreduce_sum(self):
        def factory():
            def body(ctx):
                total = yield from ctx.comm.allreduce(ctx.rank, ctx.rank + 1)
                return total

            return body

        model, algo = run_both_modes(factory)
        assert model == algo == [36] * 8

    def test_allreduce_max_min(self):
        def factory():
            def body(ctx):
                hi = yield from ctx.comm.allreduce(ctx.rank, ctx.rank, op_max)
                lo = yield from ctx.comm.allreduce(ctx.rank, ctx.rank, op_min)
                return (hi, lo)

            return body

        model, algo = run_both_modes(factory)
        assert model == algo == [(7, 0)] * 8

    def test_alltoall(self):
        def factory():
            def body(ctx):
                vals = yield from ctx.comm.alltoall(
                    ctx.rank, [ctx.rank * 100 + d for d in range(ctx.nprocs)]
                )
                return vals

            return body

        model, algo = run_both_modes(factory)
        assert model == algo
        for r, row in enumerate(model):
            assert row == [s * 100 + r for s in range(8)]

    def test_bcast_nonzero_root(self):
        def factory():
            def body(ctx):
                v = yield from ctx.comm.bcast(
                    ctx.rank, f"from{ctx.rank}" if ctx.rank == 5 else None, root=5
                )
                return v

            return body

        model, algo = run_both_modes(factory)
        assert model == algo == ["from5"] * 8

    def test_allgather(self):
        def factory():
            def body(ctx):
                vals = yield from ctx.comm.allgather(ctx.rank, ctx.rank**2)
                return vals

            return body

        model, algo = run_both_modes(factory)
        assert model == algo == [[r**2 for r in range(8)]] * 8

    def test_non_power_of_two_allreduce(self):
        def factory():
            def body(ctx):
                total = yield from ctx.comm.allreduce(ctx.rank, ctx.rank)
                return total

            return body

        out = {}
        for mode in ("model", "algorithmic"):
            machine = Machine(small_testbed(3, 2))  # 6 ranks
            world = MPIWorld(machine, collective_mode=mode)
            out[mode] = world.run(factory())
        assert out["model"] == out["algorithmic"] == [15] * 6


class TestSynchronisation:
    def test_barrier_waits_for_slowest(self):
        machine = Machine(small_testbed())
        world = MPIWorld(machine)

        def body(ctx):
            yield from ctx.compute(ctx.rank * 0.1)
            yield from ctx.comm.barrier(ctx.rank)
            return ctx.now

        times = world.run(body)
        slowest_arrival = 0.7
        assert all(t >= slowest_arrival for t in times)
        assert max(times) - min(times) < 1e-9  # all released together

    def test_timed_collective_duration(self):
        machine = Machine(small_testbed())
        world = MPIWorld(machine)

        def body(ctx):
            t0 = ctx.now
            yield from ctx.comm.timed(ctx.rank, 0.25, "phase")
            return ctx.now - t0

        durations = world.run(body)
        assert max(durations) == pytest.approx(0.25, abs=1e-6)

    def test_collective_mismatch_detected(self):
        machine = Machine(small_testbed(2, 1))
        world = MPIWorld(machine)

        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.barrier(ctx.rank)
            else:
                yield from ctx.comm.allreduce(ctx.rank, 1)

        with pytest.raises(SimError, match="collective mismatch"):
            world.run(body)

    def test_shuffle_returns_inbound_totals(self):
        machine = Machine(small_testbed(2, 2))
        world = MPIWorld(machine)

        def body(ctx):
            out = {0: 100.0} if ctx.rank != 0 else {}
            inbound = yield from ctx.comm.shuffle(ctx.rank, out, msg_count=1)
            return inbound

        res = world.run(body)
        assert res[0] == pytest.approx(300.0)
        assert res[1] == 0.0

    def test_successive_collectives_keep_order(self):
        machine = Machine(small_testbed())
        world = MPIWorld(machine)

        def body(ctx):
            a = yield from ctx.comm.allreduce(ctx.rank, 1)
            b = yield from ctx.comm.allreduce(ctx.rank, 2)
            c = yield from ctx.comm.allreduce(ctx.rank, 3)
            return (a, b, c)

        res = world.run(body)
        assert res == [(8, 16, 24)] * 8


class TestCostModel:
    def test_alltoall_cost_grows_with_size(self):
        machine = Machine(small_testbed())
        world = MPIWorld(machine)
        costs = world.comm.costs
        assert costs.alltoall(8, 1024) > costs.alltoall(8, 16)

    def test_small_collective_log_scaling(self):
        machine = Machine(small_testbed())
        costs = MPIWorld(machine).comm.costs
        assert costs.small_collective(512) > costs.small_collective(8)

    def test_shuffle_bounded_by_hot_nic(self):
        machine = Machine(small_testbed())
        costs = MPIWorld(machine).comm.costs
        d1 = costs.shuffle({0: 1e9}, {1: 1e9}, 1)
        d2 = costs.shuffle({0: 0.5e9, 1: 0.5e9}, {2: 0.5e9, 3: 0.5e9}, 1)
        assert d1 > d2  # spreading traffic over NICs halves the hot spot
