import pytest

from repro.config import small_testbed
from repro.machine import Machine
from repro.mpi.process import MPIWorld
from repro.sim.core import SimError


@pytest.fixture
def world():
    return MPIWorld(Machine(small_testbed()))


class TestSendRecv:
    def test_blocking_pair(self, world):
        def body(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(0, 1, 7, {"k": 1}, 128)
                return None
            if ctx.rank == 1:
                msg = yield from ctx.comm.recv(1, source=0, tag=7)
                return msg.payload
            return None

        res = world.run(body)
        assert res[1] == {"k": 1}

    def test_isend_irecv_waitall(self, world):
        def body(ctx):
            P = ctx.nprocs
            reqs = [
                ctx.comm.isend(ctx.rank, (ctx.rank + 1) % P, 3, ctx.rank, 64)
            ]
            recv = ctx.comm.irecv(ctx.rank, source=(ctx.rank - 1) % P, tag=3)
            yield from ctx.comm.waitall(reqs + [recv])
            return recv.result().payload

        res = world.run(body)
        assert res == [(r - 1) % 8 for r in range(8)]

    def test_waitall_empty(self, world):
        def body(ctx):
            out = yield from ctx.comm.waitall([])
            return out

        assert world.run(body) == [[]] * 8

    def test_isend_invalid_rank(self, world):
        def body(ctx):
            if ctx.rank == 0:
                with pytest.raises(SimError):
                    ctx.comm.isend(0, 99, 0, None, 1)
            yield ctx.sim.timeout(0)

        world.run(body)

    def test_bigger_messages_take_longer(self, world):
        def body(ctx):
            if ctx.rank == 0:
                t0 = ctx.now
                yield from ctx.comm.send(0, 2, 1, None, 1024)
                small = ctx.now - t0
                t0 = ctx.now
                yield from ctx.comm.send(0, 2, 2, None, 1024 * 1024)
                big = ctx.now - t0
                return (small, big)
            if ctx.rank == 2:
                yield from ctx.comm.recv(2, tag=1)
                yield from ctx.comm.recv(2, tag=2)
            else:
                yield ctx.sim.timeout(0)
            return None

        res = world.run(body)
        small, big = res[0]
        assert big > small


class TestGeneralizedRequests:
    def test_external_completion(self, world):
        def body(ctx):
            if ctx.rank != 0:
                yield ctx.sim.timeout(0)
                return None
            greq = ctx.comm.grequest_start(meta={"what": "sync"})

            def completer():
                yield ctx.sim.timeout(2.0)
                greq.complete("persisted")

            ctx.sim.process(completer())
            value = yield from greq.wait()
            return (value, ctx.now)

        res = world.run(body)
        assert res[0] == ("persisted", 2.0)

    def test_wait_after_complete_returns_immediately(self, world):
        def body(ctx):
            yield ctx.sim.timeout(0)
            greq = ctx.comm.grequest_start()
            greq.complete(41)
            v = yield from greq.wait()
            return v

        assert world.run(body) == [41] * 8

    def test_failed_grequest_raises(self, world):
        def body(ctx):
            yield ctx.sim.timeout(0)
            if ctx.rank != 0:
                return "ok"
            greq = ctx.comm.grequest_start()
            greq.fail(OSError("flush failed"))
            with pytest.raises(OSError):
                yield from greq.wait()
            return "caught"

        assert world.run(body)[0] == "caught"

    def test_complete_now_flag(self, world):
        def body(ctx):
            yield ctx.sim.timeout(0)
            greq = ctx.comm.grequest_start()
            before = greq.complete_now
            greq.complete()
            yield ctx.sim.timeout(0)
            return (before, greq.complete_now)

        assert world.run(body)[0] == (False, True)
