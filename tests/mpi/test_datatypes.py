import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.datatypes import Datatype, DatatypeError


DOUBLE = Datatype.contiguous_bytes(8)


class TestElementary:
    def test_basic(self):
        assert DOUBLE.size == 8
        assert DOUBLE.extent == 8
        assert DOUBLE.contiguous

    def test_invalid(self):
        with pytest.raises(DatatypeError):
            Datatype.contiguous_bytes(0)


class TestContiguous:
    def test_count(self):
        t = Datatype.contiguous(DOUBLE, 10)
        assert t.size == 80
        assert t.extent == 80
        assert t.contiguous  # adjacent runs coalesce into one

    def test_nested(self):
        inner = Datatype.contiguous(DOUBLE, 4)
        outer = Datatype.contiguous(inner, 3)
        assert outer.size == 96
        assert outer.contiguous


class TestVector:
    def test_strided_runs(self):
        # 3 blocks of 2 doubles, stride 5 doubles
        t = Datatype.vector(DOUBLE, count=3, blocklength=2, stride=5)
        assert list(t.segments()) == [(0, 16), (40, 16), (80, 16)]
        assert t.size == 48
        assert t.extent == (2 * 5 + 2) * 8

    def test_stride_equals_blocklength_coalesces(self):
        t = Datatype.vector(DOUBLE, count=4, blocklength=2, stride=2)
        assert t.contiguous
        assert t.size == 64

    def test_overlapping_stride_rejected(self):
        with pytest.raises(DatatypeError):
            Datatype.vector(DOUBLE, count=2, blocklength=3, stride=2)

    def test_vector_of_vectors(self):
        row = Datatype.vector(DOUBLE, count=2, blocklength=1, stride=2)  # x.x.
        grid = Datatype.vector(row, count=2, blocklength=1, stride=2)
        assert grid.size == 4 * 8
        assert grid.num_runs == 4


class TestIndexed:
    def test_blocks(self):
        t = Datatype.indexed(DOUBLE, blocklengths=[2, 1], displacements=[0, 5])
        assert list(t.segments()) == [(0, 16), (40, 8)]
        assert t.extent == 48

    def test_mismatch(self):
        with pytest.raises(DatatypeError):
            Datatype.indexed(DOUBLE, [1, 2], [0])


class TestSubarray:
    def test_2d_block(self):
        # 4x6 array, 2x3 block at (1, 2)
        t = Datatype.subarray(DOUBLE, sizes=(4, 6), subsizes=(2, 3), starts=(1, 2))
        assert t.size == 6 * 8
        assert list(t.segments()) == [((6 + 2) * 8, 24), ((12 + 2) * 8, 24)]
        assert t.extent == 24 * 8

    def test_3d_matches_collperf_pattern(self):
        from repro.workloads.collperf import collperf_workload

        wl = collperf_workload(8, block_bytes=64 * 1024)
        bx, by, bz = wl.detail["block"]
        NX, NY, NZ = wl.detail["array"]
        # rank 0's block as a subarray datatype
        t = Datatype.subarray(DOUBLE, sizes=(NX, NY, NZ), subsizes=(bx, by, bz), starts=(0, 0, 0))
        acc_dt = t.to_access()
        acc_wl = wl.steps[0].access_fn(0)
        assert np.array_equal(acc_dt.offsets, acc_wl.offsets)
        assert np.array_equal(acc_dt.lengths, acc_wl.lengths)

    def test_full_subarray_contiguous(self):
        t = Datatype.subarray(DOUBLE, sizes=(4, 4), subsizes=(4, 4), starts=(0, 0))
        assert t.contiguous

    def test_out_of_bounds(self):
        with pytest.raises(DatatypeError):
            Datatype.subarray(DOUBLE, (4, 4), (2, 2), (3, 0))


class TestToAccess:
    def test_tiling_with_displacement(self):
        t = Datatype.vector(DOUBLE, count=2, blocklength=1, stride=2)
        acc = t.to_access(disp=100, count=3)
        # extent = 3 doubles = 24 bytes per tile
        assert list(acc.offsets) == [100, 116, 124, 140, 148, 164]
        assert acc.total_bytes == 6 * 8

    def test_zero_count(self):
        assert Datatype.contiguous(DOUBLE, 2).to_access(count=0).empty

    def test_with_payload(self):
        t = Datatype.contiguous(DOUBLE, 2)
        data = np.arange(32, dtype=np.uint8)
        acc = t.to_access(disp=0, count=2, data=data)
        assert acc.total_bytes == 32

    def test_roundtrip_through_write_all(self):
        """A file view built from datatypes writes correctly end to end."""
        from tests.conftest import make_cluster

        machine, world, layer = make_cluster()
        # each rank: vector of 4 one-double runs strided by nprocs doubles,
        # displaced by its rank — the canonical interleaved view
        filetype = Datatype.vector(DOUBLE, count=4, blocklength=1, stride=8)

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/t", {"romio_cb_write": "enable", "cb_nodes": "2"})
            data = np.full(32, ctx.rank + 1, dtype=np.uint8)
            acc = filetype.to_access(disp=ctx.rank * 8, data=data)
            yield from fh.write_all(acc)
            yield from fh.close()

        world.run(body)
        img = machine.pfs.lookup("/g/t").data_image()
        for k in range(4):
            for r in range(8):
                piece = img[(k * 8 + r) * 8 : (k * 8 + r + 1) * 8]
                assert np.all(piece == r + 1)


runs = st.integers(1, 6)


@settings(max_examples=100, deadline=None)
@given(runs, st.integers(1, 4), st.integers(4, 10))
def test_vector_size_extent_invariants(count, blocklength, stride):
    if stride < blocklength:
        stride = blocklength
    t = Datatype.vector(DOUBLE, count, blocklength, stride)
    assert t.size == count * blocklength * 8
    assert t.extent == ((count - 1) * stride + blocklength) * 8
    # runs sorted, disjoint
    segs = list(t.segments())
    for (o1, l1), (o2, _) in zip(segs, segs[1:]):
        assert o1 + l1 <= o2


@settings(max_examples=80, deadline=None)
@given(
    st.tuples(st.integers(2, 6), st.integers(2, 6)),
    st.integers(0, 3),
    st.integers(0, 3),
)
def test_subarray_covers_expected_cells(sizes, sx, sy):
    nx, ny = sizes
    subx = max(1, nx - sx - 1)
    suby = max(1, ny - sy - 1)
    if sx + subx > nx or sy + suby > ny:
        return
    t = Datatype.subarray(DOUBLE, (nx, ny), (subx, suby), (sx, sy))
    cells = set()
    for off, length in t.segments():
        for b in range(0, length, 8):
            cells.add((off + b) // 8)
    expected = {
        x * ny + y
        for x in range(sx, sx + subx)
        for y in range(sy, sy + suby)
    }
    assert cells == expected
