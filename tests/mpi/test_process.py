import pytest

from repro.config import small_testbed
from repro.machine import Machine
from repro.mpi.process import MPIWorld


class TestMPIWorld:
    def test_rank_node_layout(self):
        world = MPIWorld(Machine(small_testbed(4, 2)))
        assert [world.comm.node_of(r) for r in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_contexts(self):
        machine = Machine(small_testbed(4, 2))
        world = MPIWorld(machine)
        ctxs = world.contexts()
        assert [c.rank for c in ctxs] == list(range(8))
        assert ctxs[5].node is machine.nodes[2]
        assert ctxs[0].nprocs == 8

    def test_aggregator_candidate(self):
        world = MPIWorld(Machine(small_testbed(4, 2)))
        flags = [c.is_aggregator_candidate() for c in world.contexts()]
        assert flags == [True, False] * 4

    def test_run_returns_in_rank_order(self):
        world = MPIWorld(Machine(small_testbed(2, 2)))

        def body(ctx):
            # later ranks finish earlier — results must still be rank-ordered
            yield from ctx.compute(1.0 / (ctx.rank + 1))
            return ctx.rank * 10

        assert world.run(body) == [0, 10, 20, 30]

    def test_compute_advances_clock(self):
        machine = Machine(small_testbed(2, 1))
        world = MPIWorld(machine)

        def body(ctx):
            yield from ctx.compute(2.0)
            return ctx.now

        assert world.run(body) == [2.0, 2.0]

    def test_crash_in_one_rank_propagates(self):
        world = MPIWorld(Machine(small_testbed(2, 1)))

        def body(ctx):
            yield ctx.sim.timeout(0.1)
            if ctx.rank == 1:
                raise RuntimeError("rank 1 died")
            yield ctx.sim.timeout(10.0)

        with pytest.raises(RuntimeError, match="rank 1 died"):
            world.run(body)
