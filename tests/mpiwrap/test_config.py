import pytest

from repro.mpiwrap.config import WrapConfig, WrapConfigError, base_name


SAMPLE = """
# hints for checkpoint files
[/run/ckpt_*]
e10_cache = enable
e10_cache_flush_flag = flush_immediate
defer_close = true

[*.plt]
e10_cache = disable
"""


class TestParsing:
    def test_sections(self):
        cfg = WrapConfig.parse(SAMPLE)
        assert len(cfg.sections) == 2
        assert cfg.sections[0].pattern == "/run/ckpt_*"
        assert cfg.sections[0].hints["e10_cache"] == "enable"
        assert cfg.sections[0].defer_close is True
        assert cfg.sections[1].defer_close is False

    def test_comments_and_blanks_ignored(self):
        cfg = WrapConfig.parse("# nothing\n\n[x]\nk = v  # trailing\n")
        assert cfg.sections[0].hints == {"k": "v"}

    def test_first_match_wins(self):
        cfg = WrapConfig.parse("[/a/*]\nk = 1\n[/a/b*]\nk = 2\n")
        assert cfg.match("/a/bfile").hints["k"] == "1"

    def test_no_match(self):
        cfg = WrapConfig.parse(SAMPLE)
        assert cfg.match("/other/file") is None

    def test_hint_outside_section_rejected(self):
        with pytest.raises(WrapConfigError):
            WrapConfig.parse("k = v\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(WrapConfigError):
            WrapConfig.parse("[x]\nnot a kv line\n")

    def test_bad_defer_close(self):
        with pytest.raises(WrapConfigError):
            WrapConfig.parse("[x]\ndefer_close = maybe\n")

    def test_defer_close_enable_style(self):
        cfg = WrapConfig.parse("[x]\ndefer_close = enable\n")
        assert cfg.sections[0].defer_close


class TestBaseName:
    @pytest.mark.parametrize(
        "path,base",
        [
            ("/run/ckpt_0003", "/run/ckpt_"),
            ("/run/ckpt_0004", "/run/ckpt_"),
            ("/run/plot_12.h5", "/run/plot_.h5"),
            ("/run/noindex", "/run/noindex"),
            ("file9", "file"),
        ],
    )
    def test_strip_trailing_index(self, path, base):
        assert base_name(path) == base

    def test_same_group_shares_base(self):
        assert base_name("/a/out_1") == base_name("/a/out_2")
        assert base_name("/a/out_1") != base_name("/b/out_1")
