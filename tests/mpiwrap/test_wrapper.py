import numpy as np

from repro.access import RankAccess
from repro.mpiwrap.config import WrapConfig
from repro.mpiwrap.wrapper import MPIWrap
from repro.units import KiB
from tests.conftest import make_cluster

CONFIG = WrapConfig.parse(
    """
[/g/ckpt_*]
e10_cache = enable
e10_cache_flush_flag = flush_immediate
cb_nodes = 2
romio_cb_write = enable
defer_close = true
"""
)


def pattern(rank, tag=0):
    data = np.full(4 * KiB, (rank + 1 + tag) % 251, dtype=np.uint8)
    return RankAccess.contiguous(rank * 4 * KiB, 4 * KiB, data)


class TestDeferredClose:
    def test_close_returns_immediately_real_close_at_next_open(self):
        machine, world, layer = make_cluster()
        wrap = MPIWrap(layer, CONFIG)
        close_durations = []

        def body(ctx):
            fh0 = yield from wrap.file_open(ctx.rank, "/g/ckpt_0")
            yield from fh0.write_all(pattern(ctx.rank))
            t0 = ctx.now
            yield from fh0.close()  # deferred: instant
            close_durations.append(ctx.now - t0)
            yield from ctx.compute(2.0)
            fh1 = yield from wrap.file_open(ctx.rank, "/g/ckpt_1")  # closes ckpt_0
            yield from fh1.write_all(pattern(ctx.rank, tag=10))
            yield from fh1.close()
            yield from wrap.finalize(ctx.rank)

        world.run(body)
        assert all(d == 0.0 for d in close_durations)
        assert wrap.outstanding_count() == 0
        for k, tag in ((0, 0), (1, 10)):
            f = machine.pfs.lookup(f"/g/ckpt_{k}")
            img = f.data_image()
            for r in range(8):
                assert np.all(img[r * 4 * KiB : (r + 1) * 4 * KiB] == (r + 1 + tag) % 251)

    def test_hints_injected_from_config(self):
        machine, world, layer = make_cluster()
        wrap = MPIWrap(layer, CONFIG)

        def body(ctx):
            fh = yield from wrap.file_open(ctx.rank, "/g/ckpt_0")
            info = fh.inner.get_info()
            yield from fh.close()
            yield from wrap.finalize(ctx.rank)
            return info

        infos = world.run(body)
        assert infos[0]["e10_cache"] == "enable"
        assert infos[0]["cb_nodes"] == "2"

    def test_unmatched_files_close_normally(self):
        machine, world, layer = make_cluster()
        wrap = MPIWrap(layer, CONFIG)

        def body(ctx):
            fh = yield from wrap.file_open(ctx.rank, "/g/other")
            yield from fh.write_all(pattern(ctx.rank))
            yield from fh.close()
            return wrap.outstanding_count(ctx.rank)

        counts = world.run(body)
        assert counts == [0] * 8

    def test_finalize_closes_stragglers(self):
        machine, world, layer = make_cluster()
        wrap = MPIWrap(layer, CONFIG)

        def body(ctx):
            fh = yield from wrap.file_open(ctx.rank, "/g/ckpt_0")
            yield from fh.write_all(pattern(ctx.rank))
            yield from fh.close()  # deferred
            yield from wrap.finalize(ctx.rank)

        world.run(body)
        f = machine.pfs.lookup("/g/ckpt_0")
        assert f.persisted.total == 8 * 4 * KiB

    def test_deferred_handle_remains_writable_semantics(self):
        # The paper: close 'returns success. Nevertheless, the file will not
        # be really closed' — its handle is kept internally.
        machine, world, layer = make_cluster()
        wrap = MPIWrap(layer, CONFIG)

        def body(ctx):
            fh = yield from wrap.file_open(ctx.rank, "/g/ckpt_0")
            yield from fh.write_all(pattern(ctx.rank))
            yield from fh.close()
            assert fh.pretend_closed
            yield from wrap.finalize(ctx.rank)
            return True

        assert all(world.run(body))

    def test_application_hints_overridden_by_config(self):
        machine, world, layer = make_cluster()
        wrap = MPIWrap(layer, CONFIG)

        def body(ctx):
            fh = yield from wrap.file_open(
                ctx.rank, "/g/ckpt_0", {"e10_cache": "disable"}
            )
            info = fh.inner.get_info()
            yield from fh.close()
            yield from wrap.finalize(ctx.rank)
            return info["e10_cache"]

        assert world.run(body) == ["enable"] * 8
