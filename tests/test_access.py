import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access import RankAccess, coverage_in_window, merge_extent_arrays


def access_of(*pairs, data=None):
    offs = np.array([p[0] for p in pairs], dtype=np.int64)
    lens = np.array([p[1] for p in pairs], dtype=np.int64)
    return RankAccess(offs, lens, data)


class TestConstruction:
    def test_empty(self):
        a = RankAccess.empty_access()
        assert a.empty
        assert a.start_offset == 0
        assert a.end_offset == -1
        assert a.total_bytes == 0

    def test_sorted_on_build(self):
        a = access_of((100, 10), (0, 10))
        assert list(a.offsets) == [0, 100]

    def test_zero_length_dropped(self):
        a = access_of((0, 10), (50, 0))
        assert len(a) == 1

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            access_of((0, 10), (5, 10))

    def test_adjacent_allowed(self):
        a = access_of((0, 10), (10, 10))
        assert a.total_bytes == 20

    def test_payload_length_checked(self):
        with pytest.raises(ValueError):
            access_of((0, 10), data=np.zeros(5, dtype=np.uint8))

    def test_contiguous_helper(self):
        a = RankAccess.contiguous(100, 50)
        assert a.start_offset == 100
        assert a.end_offset == 149

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            RankAccess(np.array([0]), np.array([-1]))


class TestWindows:
    def test_bytes_in_window_full(self):
        a = access_of((0, 10), (20, 10))
        assert a.bytes_in_window(0, 30) == 20

    def test_bytes_in_window_partial(self):
        a = access_of((0, 10), (20, 10))
        assert a.bytes_in_window(5, 25) == 10  # 5 from first, 5 from second

    def test_bytes_in_window_hole(self):
        a = access_of((0, 10), (20, 10))
        assert a.bytes_in_window(10, 20) == 0

    def test_slice_window_trims(self):
        a = access_of((0, 10), (20, 10))
        ws = a.slice_window(5, 25)
        assert list(ws.offsets) == [5, 20]
        assert list(ws.lengths) == [5, 5]
        assert ws.nbytes == 10
        assert list(ws.buffer_starts) == [5, 10]

    def test_slice_empty_window(self):
        a = access_of((0, 10))
        ws = a.slice_window(100, 200)
        assert ws.nbytes == 0 and ws.count == 0

    def test_payload_for(self):
        data = np.arange(20, dtype=np.uint8)
        a = access_of((0, 10), (20, 10), data=data)
        ws = a.slice_window(5, 25)
        assert list(a.payload_for(ws)) == [5, 6, 7, 8, 9, 10, 11, 12, 13, 14]

    def test_cum_bytes_matches_windows(self):
        a = access_of((3, 7), (15, 5), (30, 10))
        positions = np.arange(0, 45)
        cum = a.cum_bytes(positions)
        for lo in range(0, 44):
            for hi in range(lo, 45):
                assert cum[hi] - cum[lo] == a.bytes_in_window(lo, hi)

    def test_cum_counts_monotone(self):
        a = access_of((0, 4), (10, 4), (20, 4))
        counts = a.cum_counts(np.array([0, 1, 10, 11, 25]))
        assert list(counts) == [0, 1, 1, 2, 3]


extent_lists = st.lists(
    st.tuples(st.integers(0, 500), st.integers(1, 30)), min_size=0, max_size=15
)


def dedupe(pairs):
    """Drop overlapping extents (RankAccess requires disjoint)."""
    out = []
    covered = set()
    for off, length in sorted(pairs):
        cells = set(range(off, off + length))
        if not cells & covered:
            out.append((off, length))
            covered |= cells
    return out


@settings(max_examples=150, deadline=None)
@given(extent_lists, st.integers(0, 550), st.integers(0, 60))
def test_bytes_in_window_matches_bruteforce(pairs, lo, width):
    pairs = dedupe(pairs)
    if not pairs:
        return
    a = access_of(*pairs)
    hi = lo + width
    expected = sum(
        max(0, min(hi, off + length) - max(lo, off)) for off, length in pairs
    )
    assert a.bytes_in_window(lo, hi) == expected
    ws = a.slice_window(lo, hi)
    assert ws.nbytes == expected
    assert int(ws.lengths.sum()) if ws.count else 0 == expected


@settings(max_examples=100, deadline=None)
@given(st.lists(extent_lists, min_size=1, max_size=5))
def test_merge_extent_arrays_matches_pointset(rank_lists):
    offsets, lengths, pts = [], [], set()
    for pairs in rank_lists:
        offsets.append(np.array([p[0] for p in pairs], dtype=np.int64))
        lengths.append(np.array([p[1] for p in pairs], dtype=np.int64))
        for off, length in pairs:
            pts.update(range(off, off + length))
    starts, ends = merge_extent_arrays(offsets, lengths)
    merged_pts = set()
    for s, e in zip(starts, ends):
        merged_pts.update(range(int(s), int(e)))
    assert merged_pts == pts
    # runs strictly increasing and disjoint
    for i in range(1, len(starts)):
        assert starts[i] > ends[i - 1]


def test_coverage_in_window_clips():
    starts = np.array([0, 20, 40], dtype=np.int64)
    ends = np.array([10, 30, 50], dtype=np.int64)
    assert coverage_in_window(starts, ends, 5, 45) == [(5, 10), (20, 30), (40, 45)]
    assert coverage_in_window(starts, ends, 10, 20) == []
    assert coverage_in_window(starts, ends, 100, 200) == []
