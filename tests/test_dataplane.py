"""Bulk-transfer fast path: kind selection, scoped fault fallback, equivalence.

The bulk data plane must be invisible in every simulated quantity — only
the diagnostic event count may change.  Under a fault schedule the
fallback to the per-chunk reference path is *scoped*: only the components
an injector is attached to (whose retry/requeue scaffolding faults
actually exercise) take the chunked path; everything else keeps the fast
path.
"""

import pytest

from repro.cache.cachefile import CacheState
from repro.cache.policy import CachePolicy
from repro.config import small_testbed
from repro.dataplane import DATAPLANE_KINDS, default_dataplane_kind
from repro.experiments.runner import ExperimentSpec, run_experiment
from repro.faults import FaultSchedule, FaultSpec
from repro.faults.errors import SyncFailedError
from repro.machine import Machine
from repro.mpi.process import MPIWorld
from repro.units import KiB

TINY = dict(scale=0.02, num_files=2, flush_batch_chunks=16)


class TestKindSelection:
    def test_kinds(self):
        assert DATAPLANE_KINDS == ("bulk", "chunked")

    def test_default_is_bulk(self, monkeypatch):
        monkeypatch.delenv("REPRO_DATAPLANE", raising=False)
        assert default_dataplane_kind() == "bulk"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_DATAPLANE", "chunked")
        assert default_dataplane_kind() == "chunked"

    def test_unknown_kind_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_DATAPLANE", "turbo")
        with pytest.raises(ValueError):
            default_dataplane_kind()

    def test_machine_wires_fast_path_flags(self, monkeypatch):
        monkeypatch.delenv("REPRO_DATAPLANE", raising=False)
        m = Machine(small_testbed())
        assert m.dataplane == "bulk"
        assert all(node.ssd.fast_path for node in m.nodes)
        assert all(s.fast_path and s.target.fast_path for s in m.pfs.servers)
        assert m.pfs.dataplane_bulk

    def test_faults_scope_chunked_to_targets(self, monkeypatch):
        """A fault schedule demotes only the targeted components to chunked."""
        monkeypatch.setenv("REPRO_DATAPLANE", "bulk")
        sched = FaultSchedule.of(
            FaultSpec("ssd_io_error", target=0, start=5.0, duration=0.1, rate=1.0),
            FaultSpec("server_stall", target=1, start=5.0, duration=0.01),
        )
        m = Machine(small_testbed(), faults=sched)
        assert m.dataplane == "bulk"
        # Targeted components: injector attached, fast path off.
        assert m.nodes[0].ssd.injector is m.faults
        assert not m.nodes[0].ssd.fast_path
        assert m.pfs.servers[1].injector is m.faults
        assert not m.pfs.servers[1].fast_path
        assert not m.pfs.servers[1].target.fast_path
        # Everything else keeps the fused/coalesced plan.
        assert all(node.ssd.fast_path for node in m.nodes[1:])
        assert all(
            s.fast_path and s.target.fast_path
            for s in m.pfs.servers
            if s.server_id != 1
        )
        assert m.pfs.dataplane_bulk

    def test_explicit_dataplane_argument(self, monkeypatch):
        monkeypatch.setenv("REPRO_DATAPLANE", "bulk")
        m = Machine(small_testbed(), dataplane="chunked")
        assert m.dataplane == "chunked"
        assert not any(node.ssd.fast_path for node in m.nodes)
        with pytest.raises(ValueError):
            Machine(small_testbed(), dataplane="turbo")


class TestEquivalence:
    @pytest.mark.parametrize("mode", ["enabled", "disabled"])
    def test_bulk_matches_chunked_excluding_events(self, mode, monkeypatch):
        spec = ExperimentSpec("ior", cache_mode=mode, **TINY)
        monkeypatch.setenv("REPRO_DATAPLANE", "chunked")
        slow = run_experiment(spec)
        monkeypatch.setenv("REPRO_DATAPLANE", "bulk")
        fast = run_experiment(spec)
        a, b = slow.to_dict(), fast.to_dict()
        slow_events, fast_events = a.pop("events"), b.pop("events")
        assert a == b
        assert fast_events < slow_events


def _run_faulted_sync(kind, monkeypatch):
    """One faulted flush under the requested dataplane; full state snapshot."""
    monkeypatch.setenv("REPRO_DATAPLANE", kind)
    # rate=1.0 inside [0, 10ms): the sync thread's first SSD read-back
    # faults, retries with backoff, and succeeds once the window closes.
    sched = FaultSchedule.of(
        FaultSpec("ssd_io_error", target=0, start=0.0, duration=0.01, rate=1.0)
    )
    machine = Machine(small_testbed(), faults=sched)
    world = MPIWorld(machine)
    policy = CachePolicy(
        enabled=True,
        coherent=False,
        flush_mode="flush_immediate",
        discard_on_close=True,
        cache_path="/scratch",
        sync_chunk=32 * KiB,
    )
    pfs_file = machine.pfs.create("/g/target")
    state = CacheState(machine, 0, pfs_file, policy, world.comm)

    def proc():
        greq = yield from state.write_through_cache(0, 256 * KiB, None)
        try:
            yield from greq.wait()
        except SyncFailedError:
            return "failed"
        return "ok"

    outcome = machine.sim.run(until=machine.sim.process(proc()))
    thread = state.sync_thread
    return {
        "outcome": outcome,
        "now": machine.sim.now,
        "events": machine.sim.events_fired,
        "retries": thread.retries,
        "requeues": thread.requeues,
        "failures": thread.failures,
        "bytes_synced": thread.bytes_synced,
        "requests_done": thread.requests_done,
        "busy_time": thread.busy_time,
        "journal_synced": list(state.journal.synced),
        "persisted": list(pfs_file.persisted),
        "cache_stats": dict(machine.cache_stats),
    }


class TestFaultedSyncIdentical:
    def test_bulk_request_under_faults_matches_chunked(self, monkeypatch):
        """With an injector on this node, the sync thread falls back to the
        chunked service loop: retry counts, requeue counts, journal marks
        and every simulated quantity come out identical to an explicit
        chunked run.  Untargeted components keep the fast path, so only
        the diagnostic event count may (and does) drop.
        """
        asked_bulk = _run_faulted_sync("bulk", monkeypatch)
        chunked = _run_faulted_sync("chunked", monkeypatch)
        bulk_events = asked_bulk.pop("events")
        chunked_events = chunked.pop("events")
        assert asked_bulk == chunked
        assert bulk_events < chunked_events
        # The fault really did land mid-window (otherwise this test is vacuous).
        assert chunked["retries"] > 0
        assert chunked["outcome"] == "ok"
        assert chunked["journal_synced"] == [(0, 256 * KiB)]
