import numpy as np
import pytest

from repro.units import KiB
from repro.workloads import ior_workload
from repro.workloads.phases import multi_phase_body
from tests.conftest import make_cluster


def run_phased(hints, deferred, num_files=3, compute=0.5, nprocs=(4, 2)):
    machine, world, layer = make_cluster(*nprocs)
    wl = ior_workload(8, block_bytes=4 * KiB, segments=2, with_data=True)
    body = multi_phase_body(
        layer, wl, hints, num_files=num_files, compute_delay=compute,
        deferred_close=deferred, file_prefix="/g/out_",
    )
    timings = world.run(body)
    return machine, wl, timings


class TestStandardWorkflow:
    def test_all_files_written_and_verified(self):
        hints = {"cb_nodes": "2", "romio_cb_write": "enable"}
        machine, wl, _ = run_phased(hints, deferred=False)
        for k in range(3):
            f = machine.pfs.lookup(f"/g/out_{k}")
            assert f.persisted.total == wl.file_size
            img = f.data_image()
            exp = np.zeros(wl.file_size, dtype=np.uint8)
            for step in wl.steps:
                for r in range(8):
                    a = step.access_fn(r)
                    exp[a.start_offset : a.end_offset + 1] = a.data
            assert np.array_equal(img, exp)

    def test_per_phase_timings_recorded(self):
        hints = {"cb_nodes": "2", "romio_cb_write": "enable"}
        _, _, timings = run_phased(hints, deferred=False)
        assert all(len(t) == 3 for t in timings)
        for per_rank in timings:
            for k, phase in enumerate(per_rank):
                assert phase.write_time > 0
                assert phase.open_time > 0
                if k < 2:
                    assert phase.compute_time == pytest.approx(0.5, abs=1e-6)
                else:
                    assert phase.compute_time == 0.0  # none after the last write


class TestModifiedWorkflow:
    CACHE = {
        "cb_nodes": "2",
        "romio_cb_write": "enable",
        "e10_cache": "enable",
        "e10_cache_flush_flag": "flush_immediate",
        "ind_wr_buffer_size": "16k",
    }

    def test_close_deferred_to_next_open(self):
        machine, wl, timings = run_phased(self.CACHE, deferred=True)
        # all data still lands correctly
        for k in range(3):
            f = machine.pfs.lookup(f"/g/out_{k}")
            assert f.persisted.total == wl.file_size

    def test_sync_hidden_with_long_compute(self):
        _, _, timings = run_phased(self.CACHE, deferred=True, compute=2.0)
        for per_rank in timings:
            for k in range(2):  # all but the last phase
                assert per_rank[k].close_wait < 0.05

    def test_last_phase_sync_not_hidden(self):
        _, _, timings = run_phased(self.CACHE, deferred=True, compute=2.0)
        last_waits = [t[-1].close_wait for t in timings]
        assert max(last_waits) > 0  # nothing to hide behind

    def test_sync_not_hidden_with_tiny_compute(self):
        _, _, timings = run_phased(self.CACHE, deferred=True, compute=1e-4)
        waits = [t[0].close_wait for t in timings]
        assert max(waits) > 0
