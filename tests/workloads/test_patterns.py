"""Workload pattern invariants: exact tiling, no overlap, paper geometry."""

import numpy as np
import pytest

from repro.access import merge_extent_arrays
from repro.units import KiB, MiB
from repro.workloads import collperf_workload, flashio_workload, ior_workload


def assert_tiles_exactly(workload, nprocs):
    """All collective steps together cover their regions exactly once."""
    for step in workload.steps:
        if step.kind != "collective":
            continue
        accesses = [step.access_fn(r) for r in range(nprocs)]
        offs = [a.offsets for a in accesses]
        lens = [a.lengths for a in accesses]
        starts, ends = merge_extent_arrays(offs, lens)
        covered = int((ends - starts).sum())
        total = sum(a.total_bytes for a in accesses)
        assert covered == total, "overlapping extents between ranks"


class TestCollPerf:
    def test_paper_geometry(self):
        wl = collperf_workload(512, block_bytes=64 * MiB)
        assert wl.detail["grid"] == (8, 8, 8)
        bx, by, bz = wl.detail["block"]
        assert bz == 256  # 2 KiB contiguous z-runs, as in the paper
        assert bx * by * bz * 8 == 64 * MiB
        assert wl.file_size == 512 * 64 * MiB  # 32 GiB
        acc = wl.steps[0].access_fn(0)
        assert len(acc) == 128 * 256  # extents per rank
        assert int(acc.lengths[0]) == 256 * 8  # 2 KiB contiguous runs

    def test_tiles_exactly_small(self):
        wl = collperf_workload(8, block_bytes=64 * KiB)
        assert_tiles_exactly(wl, 8)

    @pytest.mark.parametrize("nprocs", [2, 6, 8, 12])
    def test_grid_factorisation(self, nprocs):
        wl = collperf_workload(nprocs, block_bytes=64 * KiB)
        px, py, pz = wl.detail["grid"]
        assert px * py * pz == nprocs

    def test_strided_interleaved(self):
        from repro.romio.ext2ph import is_interleaved

        wl = collperf_workload(8, block_bytes=64 * KiB)
        accs = [wl.steps[0].access_fn(r) for r in range(8)]
        pairs = [(a.start_offset, a.end_offset) for a in accs]
        assert is_interleaved(pairs)

    def test_with_data_deterministic(self):
        wl1 = collperf_workload(4, block_bytes=16 * KiB, with_data=True, seed=3)
        wl2 = collperf_workload(4, block_bytes=16 * KiB, with_data=True, seed=3)
        assert np.array_equal(wl1.steps[0].access_fn(1).data, wl2.steps[0].access_fn(1).data)

    def test_invalid_block(self):
        with pytest.raises(ValueError):
            collperf_workload(8, block_bytes=100, elem_size=8)


class TestIOR:
    def test_paper_geometry(self):
        wl = ior_workload(512, block_bytes=8 * MiB, segments=8)
        assert wl.file_size == 32 * 1024 * MiB  # 32 GiB
        assert len(wl.steps) == 8  # one collective write per segment
        acc = wl.steps[3].access_fn(7)
        assert acc.start_offset == 3 * 512 * 8 * MiB + 7 * 8 * MiB
        assert acc.total_bytes == 8 * MiB

    def test_tiles_exactly(self):
        wl = ior_workload(8, block_bytes=4 * KiB, segments=3)
        assert_tiles_exactly(wl, 8)

    def test_segments_disjoint(self):
        wl = ior_workload(4, block_bytes=KiB, segments=2)
        a0 = wl.steps[0].access_fn(3)
        a1 = wl.steps[1].access_fn(0)
        assert a0.end_offset < a1.start_offset

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ior_workload(4, block_bytes=0)
        with pytest.raises(ValueError):
            ior_workload(4, segments=0)


class TestFlashIO:
    def test_paper_geometry(self):
        wl = flashio_workload(512)
        # 24 unknowns, 80 blocks/proc, 16^3 zones, 8 B
        per_proc_per_var = 80 * 16**3 * 8
        assert per_proc_per_var == 80 * 32 * KiB  # 2.5 MiB
        assert wl.bytes_per_rank == per_proc_per_var * 24  # 60 MiB/proc
        total_data = wl.bytes_per_rank * 512
        assert total_data == 30 * 1024 * MiB  # 30 GiB of unknowns
        assert wl.file_size > total_data  # plus headers
        # steps: header + collective per variable
        assert len(wl.steps) == 48
        assert [s.kind for s in wl.steps[:2]] == ["rank0", "collective"]

    def test_768kib_per_proc_per_block(self):
        # paper: '24 variables encoded with 8 bytes (768 KB/proc/block)'
        per_block_all_vars = 16**3 * 24 * 8
        assert per_block_all_vars == 768 * KiB

    def test_rank_contiguous_within_variable(self):
        wl = flashio_workload(4, blocks_per_proc=2, zones_per_dim=4)
        step = next(s for s in wl.steps if s.kind == "collective")
        accs = [step.access_fn(r) for r in range(4)]
        for a, b in zip(accs, accs[1:]):
            assert b.start_offset == a.end_offset + 1

    def test_tiles_exactly(self):
        wl = flashio_workload(4, blocks_per_proc=2, zones_per_dim=4)
        assert_tiles_exactly(wl, 4)

    def test_plotfiles_smaller_than_checkpoint(self):
        ckpt = flashio_workload(8, blocks_per_proc=4)
        plot = flashio_workload(8, blocks_per_proc=4, kind="plot")
        corners = flashio_workload(8, blocks_per_proc=4, kind="plot_corners")
        assert plot.file_size < ckpt.file_size
        assert corners.file_size > plot.file_size  # zones+1 per direction

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            flashio_workload(4, kind="restart")
