import pytest

from repro.analysis.bandwidth import (
    BandwidthModel,
    eq1_phase_bandwidth,
    eq2_average_bandwidth,
    perceived_bandwidth,
)
from repro.config import deep_er_testbed
from repro.units import GiB, KiB
from repro.workloads.phases import PhaseTiming


class TestEquations:
    def test_eq1_sync_fully_hidden(self):
        # C(k+1) >= T_s(k): denominator is just T_c
        assert eq1_phase_bandwidth(S=100.0, Tc=2.0, Ts=10.0, C_next=30.0) == 50.0

    def test_eq1_sync_partially_hidden(self):
        # 10 s sync, 4 s compute: 6 s leak into the denominator
        assert eq1_phase_bandwidth(100.0, 2.0, 10.0, 4.0) == pytest.approx(12.5)

    def test_eq1_no_compute(self):
        # the IOR last phase: C = 0, full T_s paid
        assert eq1_phase_bandwidth(100.0, 2.0, 10.0, 0.0) == pytest.approx(100 / 12)

    def test_eq1_invalid(self):
        with pytest.raises(ValueError):
            eq1_phase_bandwidth(100.0, 0.0, 0.0, 0.0)

    def test_eq2_matches_sum_of_phases(self):
        S = [100.0] * 4
        Tc = [2.0] * 4
        Ts = [10.0] * 4
        C = [30.0, 30.0, 30.0, 0.0]  # last phase unhidden
        bw = eq2_average_bandwidth(S, Tc, Ts, C)
        assert bw == pytest.approx(400.0 / (4 * 2.0 + 10.0))

    def test_eq2_length_mismatch(self):
        with pytest.raises(ValueError):
            eq2_average_bandwidth([1], [1, 2], [0], [0])


class TestPerceivedBandwidth:
    def _timings(self, write, wait_last):
        t = [PhaseTiming(open_time=0.0, write_time=write) for _ in range(3)]
        t[-1].close_wait = wait_last
        return [t]

    def test_exclude_last_phase_wait(self):
        timings = self._timings(2.0, 10.0)
        bw_excl = perceived_bandwidth(timings, 100.0, include_last_phase=False)
        bw_incl = perceived_bandwidth(timings, 100.0, include_last_phase=True)
        assert bw_excl == pytest.approx(300.0 / 6.0)
        assert bw_incl == pytest.approx(300.0 / 16.0)

    def test_slowest_rank_bounds(self):
        fast = [PhaseTiming(write_time=1.0)]
        slow = [PhaseTiming(write_time=4.0)]
        bw = perceived_bandwidth([fast, slow], 100.0)
        assert bw == pytest.approx(25.0)


class TestClosedFormModel:
    @pytest.fixture
    def model(self):
        return BandwidthModel(deep_er_testbed())

    def test_sync_thread_rate_near_calibration(self, model):
        rate = model.sync_thread_rate(512 * KiB)
        # calibrated to ≈95 MB/s per thread
        assert 60e6 < rate < 140e6

    def test_eight_aggregators_cannot_hide_thirty_seconds(self, model):
        assert not model.hidden(32 * GiB, aggregators=8, chunk=512 * KiB, compute=30.0)

    def test_sixteen_aggregators_hide(self, model):
        assert model.hidden(32 * GiB, aggregators=16, chunk=512 * KiB, compute=30.0)

    def test_sixtyfour_aggregators_hide(self, model):
        assert model.hidden(32 * GiB, aggregators=64, chunk=512 * KiB, compute=30.0)

    def test_flush_time_monotone_in_aggregators(self, model):
        times = [model.flush_time(32 * GiB, a, 512 * KiB) for a in (8, 16, 32, 64)]
        assert times == sorted(times, reverse=True)

    def test_bigger_chunks_flush_faster(self, model):
        slow = model.flush_time(32 * GiB, 8, 128 * KiB)
        fast = model.flush_time(32 * GiB, 8, 4 * 1024 * KiB)
        assert fast < slow

    def test_pfs_collective_floor_near_two_gib(self, model):
        t = model.pfs_collective_write_time(32 * GiB)
        bw = 32 * GiB / t
        assert 1.5 * GiB < bw < 3.5 * GiB  # the paper's ≈2 GB/s plateau

    def test_cache_write_floor_scales_with_aggregators(self, model):
        t8 = model.cache_write_time(32 * GiB, 8)
        t64 = model.cache_write_time(32 * GiB, 64)
        assert t64 < t8 / 4
