"""Aggregator-crash recovery: journals, replay, and byte-level integrity."""

import numpy as np
import pytest

from repro.config import small_testbed
from repro.faults import CacheJournal, FaultSchedule, FaultSpec, JobAborted
from repro.machine import Machine
from repro.mpi.process import MPIWorld
from repro.romio.file import MPIIOLayer
from repro.sim.core import Interrupt
from repro.units import KiB
from repro.workloads import ior_workload
from repro.workloads.phases import multi_phase_body
from tests.integration.test_end_to_end import expected_image

HINTS = {
    "e10_cache": "enable",
    "e10_cache_flush_flag": "flush_onclose",
    "e10_cache_discard_flag": "enable",
    "romio_cb_write": "enable",
    "cb_nodes": "4",
    "cb_buffer_size": "32k",
    "ind_wr_buffer_size": "8k",
}
NUM_FILES = 2
PREFIX = "/g/rec_"


def crash_schedule():
    return FaultSchedule.of(
        FaultSpec(
            "aggregator_crash", on_event=f"write_done:{NUM_FILES - 1}", delay=2e-3
        )
    )


def build(faults=None):
    machine = Machine(small_testbed(), faults=faults)
    world = MPIWorld(machine)
    layer = MPIIOLayer(machine, world.comm, driver="beegfs", exchange_mode="flow")
    return machine, world, layer


def phased_body(layer, wl):
    return multi_phase_body(
        layer,
        wl,
        HINTS,
        num_files=NUM_FILES,
        compute_delay=0.05,
        deferred_close=True,
        file_prefix=PREFIX,
    )


def make_wl():
    return ior_workload(8, block_bytes=8 * KiB, segments=2, with_data=True, seed=21)


def run_recovery(machine):
    """Second MPI job on the surviving machine: open + close every file."""
    world = MPIWorld(machine)
    layer = MPIIOLayer(machine, world.comm, driver="beegfs", exchange_mode="flow")
    paths = [
        f"{PREFIX}{k}" for k in range(NUM_FILES) if machine.pfs.exists(f"{PREFIX}{k}")
    ]

    def body(ctx):
        for path in paths:
            fh = yield from layer.open(ctx.rank, path, {})
            yield from fh.close()

    world.run(body)
    return paths


class TestCrash:
    def test_crash_surfaces_as_job_aborted(self):
        machine, world, layer = build(crash_schedule())
        with pytest.raises(Interrupt) as exc_info:
            world.run(phased_body(layer, make_wl()))
        assert isinstance(exc_info.value.cause, JobAborted)
        assert exc_info.value.cause.spec.kind == "aggregator_crash"
        assert machine.faults.crash_time is not None

    def test_crash_leaves_orphan_journals(self):
        machine, world, layer = build(crash_schedule())
        with pytest.raises(Interrupt):
            world.run(phased_body(layer, make_wl()))
        # The crash hit mid flush/close: at least one journal still holds
        # persisted-but-unflushed extents.
        assert machine.recovery.entries()
        assert any(
            machine.recovery.has_orphans(f"{PREFIX}{k}") for k in range(NUM_FILES)
        )

    def test_replay_restores_byte_identical_files(self):
        wl = make_wl()
        # Fault-free reference on an identical fresh cluster.
        ref_machine, ref_world, ref_layer = build()
        ref_world.run(phased_body(ref_layer, wl))
        ref_imgs = {
            k: ref_machine.pfs.lookup(f"{PREFIX}{k}").data_image()
            for k in range(NUM_FILES)
        }

        machine, world, layer = build(crash_schedule())
        with pytest.raises(Interrupt):
            world.run(phased_body(layer, wl))
        run_recovery(machine)

        stats = machine.recovery.stats()
        assert stats["bytes_replayed"] > 0
        assert stats["files_recovered"] >= 1
        assert stats["recovery_time"] > 0.0
        for k in range(NUM_FILES):
            img = machine.pfs.lookup(f"{PREFIX}{k}").data_image()
            assert np.array_equal(img, ref_imgs[k]), f"file {k} differs after replay"
        # Every journal was consumed; a further open has nothing to replay.
        assert not machine.recovery.entries()

    def test_recovered_file_matches_access_pattern(self):
        wl = make_wl()
        machine, world, layer = build(crash_schedule())
        with pytest.raises(Interrupt):
            world.run(phased_body(layer, wl))
        run_recovery(machine)
        exp = expected_image(wl, 8)
        for k in range(NUM_FILES):
            img = machine.pfs.lookup(f"{PREFIX}{k}").data_image()
            assert np.array_equal(img, exp)


class TestCleanShutdown:
    def test_clean_close_unregisters_journals(self):
        machine, world, layer = build()
        world.run(phased_body(layer, make_wl()))
        assert machine.recovery.entries() == []
        for k in range(NUM_FILES):
            assert not machine.recovery.has_orphans(f"{PREFIX}{k}")
        assert machine.recovery.stats()["files_recovered"] == 0


class TestCacheJournal:
    def _journal(self, **kw):
        defaults = dict(
            path="/g/x",
            rank=0,
            node_id=0,
            local_path="/scratch/x",
            local_file=None,
            file_id=1,
            sync_chunk=8,
            discard_on_close=True,
        )
        defaults.update(kw)
        return CacheJournal(**defaults)

    def test_unflushed_is_cached_minus_synced(self):
        j = self._journal()
        j.cached.add(0, 100)
        j.cached.add(200, 300)
        j.synced.add(0, 50)
        assert j.unflushed() == [(50, 100), (200, 300)]
        assert j.unflushed_bytes == 150

    def test_fully_synced_journal_has_nothing_to_replay(self):
        j = self._journal()
        j.cached.add(0, 64)
        j.synced.add(0, 64)
        assert j.unflushed() == []
        assert j.unflushed_bytes == 0
