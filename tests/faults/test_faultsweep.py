"""Fault-matrix experiments: integrity, recovery metrics, caching, CLI."""

import pytest

from repro.experiments import faultsweep, sweep
from repro.experiments.faultsweep import (
    FaultExperimentResult,
    FaultExperimentSpec,
    fault_matrix_specs,
    render_fault_table,
    run_fault_experiment,
    scenario_faults,
)
from repro.experiments.parallel import SweepRunner
from repro.experiments.resultcache import ResultCache


def _spec(scenario, **kw):
    base = FaultExperimentSpec(benchmark="ior", scenario=scenario, **kw)
    faults, timeout = scenario_faults(scenario, base)
    return base.scaled(faults=faults, sync_rpc_timeout=timeout)


class TestSpecMatrix:
    def test_matrix_covers_all_scenarios(self):
        specs = fault_matrix_specs()
        assert [s.scenario for s in specs] == list(faultsweep.SCENARIOS)
        assert all(s.benchmark == "ior" for s in specs)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown fault scenario"):
            scenario_faults("meteor_strike", _spec("baseline"))

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            FaultExperimentSpec(benchmark="nope")

    def test_faults_coerced_to_tuple(self):
        spec = FaultExperimentSpec(
            benchmark="ior", faults=list(_spec("ssd_flaky").faults)
        )
        assert isinstance(spec.faults, tuple)


class TestSinglePoints:
    def test_baseline_matches_reference(self):
        r = run_fault_experiment(_spec("baseline"))
        assert r.integrity_ok
        assert not r.crashed
        assert r.faults_injected == 0
        assert r.bw_ref > 0
        assert r.degraded_bw_ratio == pytest.approx(1.0, rel=0.05)

    def test_ssd_flaky_retries_and_survives(self):
        r = run_fault_experiment(_spec("ssd_flaky"))
        assert r.integrity_ok
        assert not r.crashed
        assert r.retries > 0
        assert r.faults_injected > 0
        assert r.sync_failures == 0

    def test_ssd_loss_degrades_and_survives(self):
        r = run_fault_experiment(_spec("ssd_loss"))
        assert r.integrity_ok
        assert not r.crashed
        assert r.degraded >= 1

    def test_agg_crash_recovers_byte_identical(self):
        r = run_fault_experiment(_spec("agg_crash"))
        assert r.crashed
        assert r.recovered
        assert r.integrity_ok
        assert r.bytes_replayed > 0
        assert r.files_recovered >= 1
        assert r.recovery_time > 0.0
        assert r.bw_faulted == 0.0  # the faulted job never finished

    def test_point_is_deterministic(self):
        a = run_fault_experiment(_spec("agg_crash"))
        b = run_fault_experiment(_spec("agg_crash"))
        assert a.to_dict() == b.to_dict()


class TestResultRoundTrip:
    def test_to_from_dict(self):
        r = run_fault_experiment(_spec("ssd_loss"))
        again = FaultExperimentResult.from_dict(r.to_dict())
        assert again == r
        assert again.spec.faults == r.spec.faults
        assert isinstance(again.spec.faults[0], type(r.spec.faults[0]))


class TestRunnerIntegration:
    def test_serial_equals_parallel(self):
        specs = [_spec("baseline"), _spec("ssd_loss")]
        serial = SweepRunner(
            jobs=1,
            cache=ResultCache.disabled(result_cls=FaultExperimentResult),
            worker=faultsweep._run_fault_point,
            resolver=faultsweep.resolve_fault_config,
        ).run(specs)
        para = SweepRunner(
            jobs=2,
            cache=ResultCache.disabled(result_cls=FaultExperimentResult),
            worker=faultsweep._run_fault_point,
            resolver=faultsweep.resolve_fault_config,
        ).run(specs)
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in para]

    def test_result_cache_round_trip(self, tmp_path):
        spec = _spec("baseline")

        def runner():
            return SweepRunner(
                jobs=1,
                cache=ResultCache(root=tmp_path, result_cls=FaultExperimentResult),
                worker=faultsweep._run_fault_point,
                resolver=faultsweep.resolve_fault_config,
            )

        cold = runner()
        first = cold.run([spec])
        assert cold.simulated == 1
        warm = runner()
        second = warm.run([spec])
        assert warm.simulated == 0  # served entirely from the on-disk cache
        assert second[0].to_dict() == first[0].to_dict()
        assert isinstance(second[0], FaultExperimentResult)


class TestRendering:
    def test_table_has_one_row_per_point(self):
        results = [run_fault_experiment(_spec("baseline"))]
        table = render_fault_table(results)
        assert "baseline" in table
        assert len(table.splitlines()) == 3  # header, rule, one row


class TestCLI:
    def test_faults_flag_runs_matrix(self, capsys):
        status = sweep.main(
            [
                "--faults",
                "--no-cache",
                "--quiet",
                "--fault-scenario",
                "baseline",
                "--fault-scenario",
                "agg_crash",
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "agg_crash" in out
