"""Fault injector behaviour: windows, retries, degradation, determinism."""

import numpy as np
import pytest

from repro.config import small_testbed
from repro.faults import FaultSchedule, FaultSpec, TransientIOError
from repro.machine import Machine
from repro.mpi.process import MPIWorld
from repro.romio.file import MPIIOLayer
from repro.sim.core import SimError
from repro.units import KiB
from repro.workloads import ior_workload
from tests.integration.test_end_to_end import expected_image

CACHE_HINTS = {
    "e10_cache": "enable",
    "e10_cache_flush_flag": "flush_onclose",
    "romio_cb_write": "enable",
    "cb_nodes": "4",
    "cb_buffer_size": "32k",
    "ind_wr_buffer_size": "8k",
}
NOCACHE_HINTS = {k: v for k, v in CACHE_HINTS.items() if not k.startswith("e10")}


def run_ior(schedule, hints=CACHE_HINTS, seed=11):
    """One collective IOR file under a fault schedule; returns (machine, wl)."""
    machine = Machine(small_testbed(), faults=schedule)
    world = MPIWorld(machine)
    layer = MPIIOLayer(machine, world.comm, driver="beegfs", exchange_mode="flow")
    wl = ior_workload(8, block_bytes=8 * KiB, segments=2, with_data=True, seed=seed)

    def body(ctx):
        fh = yield from layer.open(ctx.rank, "/g/t", hints)
        for step in wl.steps:
            if step.kind == "collective":
                yield from fh.write_all(step.access_fn(ctx.rank))
            elif ctx.rank == 0:
                yield from fh.write_at(step.offset, step.nbytes)
        yield from fh.close()

    world.run(body)
    return machine, wl


class TestSSDIOErrors:
    def test_read_in_window_raises(self):
        sched = FaultSchedule.of(
            FaultSpec("ssd_io_error", target=0, start=0.0, duration=0.01, rate=1.0)
        )
        m = Machine(small_testbed(), faults=sched)
        ssd = m.nodes[0].ssd

        def body():
            try:
                yield from ssd.read(0, 1024)
            except TransientIOError:
                return "raised"
            return "ok"

        proc = m.sim.process(body())
        assert m.sim.run(until=proc) == "raised"
        assert ssd.io_errors_injected == 1

    def test_read_after_window_succeeds(self):
        sched = FaultSchedule.of(
            FaultSpec("ssd_io_error", target=0, start=0.0, duration=0.01, rate=1.0)
        )
        m = Machine(small_testbed(), faults=sched)
        ssd = m.nodes[0].ssd

        def body():
            yield m.sim.timeout(0.02)  # past the window
            yield from ssd.read(0, 1024)
            return "ok"

        proc = m.sim.process(body())
        assert m.sim.run(until=proc) == "ok"
        assert ssd.io_errors_injected == 0

    def test_untargeted_node_unaffected(self):
        sched = FaultSchedule.of(FaultSpec("ssd_io_error", target=0, rate=1.0))
        m = Machine(small_testbed(), faults=sched)
        ssd1 = m.nodes[1].ssd

        def body():
            yield from ssd1.read(0, 1024)
            return "ok"

        proc = m.sim.process(body())
        assert m.sim.run(until=proc) == "ok"

    def test_flaky_reads_retried_to_completion(self):
        # Open-ended window, 30% error rate: the sync thread's retry loop
        # rerolls each chunk until it gets through; the file must still be
        # byte-identical to the access pattern.
        sched = FaultSchedule.of(FaultSpec("ssd_io_error", target=0, rate=0.3))
        machine, wl = run_ior(sched)
        img = machine.pfs.lookup("/g/t").data_image()
        assert np.array_equal(img, expected_image(wl, 8))

    def test_deterministic_across_machines(self):
        sched = FaultSchedule.of(FaultSpec("ssd_io_error", target=0, rate=0.3))
        m1, _ = run_ior(sched)
        m2, _ = run_ior(sched)
        assert m1.sim.now == m2.sim.now
        assert m1.cache_stats == m2.cache_stats
        assert m1.faults.injected == m2.faults.injected
        assert np.array_equal(
            m1.pfs.lookup("/g/t").data_image(), m2.pfs.lookup("/g/t").data_image()
        )


class TestDeviceLoss:
    def test_loss_mid_run_degrades_but_completes(self):
        sched = FaultSchedule.of(FaultSpec("ssd_device_loss", target=0, start=5e-4))
        machine, wl = run_ior(sched)
        img = machine.pfs.lookup("/g/t").data_image()
        assert np.array_equal(img, expected_image(wl, 8))
        assert machine.cache_stats["degraded"] >= 1
        assert machine.nodes[0].ssd.read_only

    def test_loss_before_any_write_falls_back_entirely(self):
        sched = FaultSchedule.of(FaultSpec("ssd_device_loss", target=0, start=0.0))
        machine, wl = run_ior(sched)
        img = machine.pfs.lookup("/g/t").data_image()
        assert np.array_equal(img, expected_image(wl, 8))


class TestServerStall:
    def test_stall_delays_direct_writes(self):
        baseline, _ = run_ior(None, hints=NOCACHE_HINTS)
        sched = FaultSchedule.of(
            FaultSpec("server_stall", target=0, start=0.0, duration=0.02)
        )
        stalled, wl = run_ior(sched, hints=NOCACHE_HINTS)
        assert stalled.sim.now > baseline.sim.now
        assert stalled.faults.injected > 0
        img = stalled.pfs.lookup("/g/t").data_image()
        assert np.array_equal(img, expected_image(wl, 8))

    def test_watchdog_converts_stall_to_retries(self):
        sched = FaultSchedule.of(
            FaultSpec("server_stall", target=0, start=0.0, duration=0.05),
            sync_rpc_timeout=0.005,
        )
        machine, wl = run_ior(sched)
        img = machine.pfs.lookup("/g/t").data_image()
        assert np.array_equal(img, expected_image(wl, 8))
        assert machine.cache_stats["retries"] > 0
        assert machine.cache_stats["sync_failures"] == 0


class TestLinkDegrade:
    def test_degraded_link_slows_run(self):
        baseline, _ = run_ior(None, hints=NOCACHE_HINTS)
        sched = FaultSchedule.of(
            FaultSpec("link_degrade", target=0, start=0.0, factor=0.05)
        )
        slow, wl = run_ior(sched, hints=NOCACHE_HINTS)
        assert slow.sim.now > baseline.sim.now
        img = slow.pfs.lookup("/g/t").data_image()
        assert np.array_equal(img, expected_image(wl, 8))

    def test_window_restores_capacity(self):
        sched = FaultSchedule.of(
            FaultSpec("link_degrade", target=0, start=0.0, duration=1e-3, factor=0.05)
        )
        machine, wl = run_ior(sched, hints=NOCACHE_HINTS)
        # After the window the fabric is back at full NIC rate.
        assert machine.fabric._out[0].capacity == machine.fabric.nic_bw
        img = machine.pfs.lookup("/g/t").data_image()
        assert np.array_equal(img, expected_image(wl, 8))


class TestValidation:
    def test_bad_node_target_rejected(self):
        with pytest.raises(SimError, match="4 nodes"):
            Machine(
                small_testbed(),
                faults=FaultSchedule.of(FaultSpec("ssd_io_error", target=99)),
            )

    def test_bad_server_target_rejected(self):
        with pytest.raises(SimError, match="data servers"):
            Machine(
                small_testbed(),
                faults=FaultSchedule.of(FaultSpec("server_stall", target=99)),
            )


class TestJobScopedRegistration:
    """The crash registry refuses to silently drop live ranks' coverage."""

    @staticmethod
    def _machine():
        sched = FaultSchedule.of(
            FaultSpec("aggregator_crash", on_event="write_done:1", delay=1e-3)
        )
        return Machine(small_testbed(), faults=sched)

    @staticmethod
    def _idle_procs(machine, n=2):
        def idle():
            yield machine.sim.timeout(0.01)

        return [machine.sim.process(idle()) for _ in range(n)]

    @pytest.mark.parametrize("job_tag", [None, "j0"])
    def test_double_registration_of_live_ranks_rejected(self, job_tag):
        m = self._machine()
        procs = self._idle_procs(m)
        m.faults.register_ranks(procs, job_tag=job_tag)
        with pytest.raises(SimError, match="live registered rank"):
            m.faults.register_ranks(self._idle_procs(m), job_tag=job_tag)

    def test_reregistration_after_ranks_finish_is_allowed(self):
        m = self._machine()
        procs = self._idle_procs(m)
        m.faults.register_ranks(procs, job_tag="j0")
        m.sim.run(until=m.sim.all_of(procs))
        m.faults.register_ranks(self._idle_procs(m), job_tag="j0")  # fine

    def test_distinct_job_tags_register_independently(self):
        m = self._machine()
        m.faults.register_ranks(self._idle_procs(m), job_tag="j0")
        m.faults.register_ranks(self._idle_procs(m), job_tag="j1")  # fine

    def test_deregistered_job_frees_the_tag_but_keeps_arrival_index(self):
        m = self._machine()
        m.faults.register_ranks(self._idle_procs(m), job_tag="j0")
        m.faults.register_ranks(self._idle_procs(m), job_tag="j1")
        m.faults.deregister_job("j0")
        m.faults.register_ranks(self._idle_procs(m), job_tag="j0")  # fine
        # job_index addressing stays stable across deregistration: j0 is
        # still the 0th arrival, j1 the 1st.
        assert m.faults._arrival_order == {"j0": 0, "j1": 1}
