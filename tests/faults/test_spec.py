"""FaultSpec / FaultSchedule construction, validation and round-tripping."""

import pytest

from repro.faults import FaultSchedule, FaultSpec, schedule_from_dicts


class TestFaultSpec:
    def test_defaults(self):
        spec = FaultSpec("ssd_io_error")
        assert spec.target == 0
        assert spec.start == 0.0
        assert spec.rate == 1.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("cosmic_ray")

    @pytest.mark.parametrize(
        "kw",
        [
            {"target": -1},
            {"start": -0.5},
            {"delay": -1e-9},
            {"rate": -0.1},
            {"rate": 1.5},
        ],
    )
    def test_bad_values_rejected(self, kw):
        with pytest.raises(ValueError):
            FaultSpec("ssd_io_error", **kw)

    def test_link_degrade_needs_positive_factor(self):
        with pytest.raises(ValueError):
            FaultSpec("link_degrade", factor=0.0)
        FaultSpec("link_degrade", factor=0.25)  # fine

    def test_round_trip(self):
        spec = FaultSpec(
            "server_stall", target=2, start=1.5, duration=0.25, on_event="write_done:1"
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultSchedule:
    def test_empty_is_falsy(self):
        assert not FaultSchedule()
        assert FaultSchedule(sync_rpc_timeout=0.01)
        assert FaultSchedule.of(FaultSpec("ssd_device_loss"))

    def test_list_coerced_to_tuple(self):
        sched = FaultSchedule(faults=[FaultSpec("ssd_io_error")])
        assert isinstance(sched.faults, tuple)

    def test_of_kind(self):
        sched = FaultSchedule.of(
            FaultSpec("ssd_io_error", target=0),
            FaultSpec("ssd_io_error", target=1),
            FaultSpec("server_stall"),
        )
        assert len(sched.of_kind("ssd_io_error")) == 2
        assert len(sched.of_kind("aggregator_crash")) == 0

    def test_round_trip(self):
        sched = FaultSchedule.of(
            FaultSpec("aggregator_crash", on_event="write_done:3", delay=0.001),
            FaultSpec("link_degrade", target=1, duration=0.5, factor=0.1),
            sync_rpc_timeout=0.02,
        )
        again = FaultSchedule.from_dict(sched.to_dict())
        assert again == sched

    def test_schedule_from_dicts(self):
        sched = schedule_from_dicts(
            [{"kind": "ssd_io_error", "target": 1, "rate": 0.5}],
            sync_rpc_timeout=0.1,
        )
        assert sched.faults[0].kind == "ssd_io_error"
        assert sched.faults[0].rate == 0.5
        assert sched.sync_rpc_timeout == 0.1
