"""FaultSpec / FaultSchedule construction, validation and round-tripping."""

import warnings

import pytest

from repro.faults import FaultSchedule, FaultSpec, schedule_from_dicts


class TestFaultSpec:
    def test_defaults(self):
        spec = FaultSpec("ssd_io_error")
        assert spec.target == 0
        assert spec.start == 0.0
        assert spec.rate == 1.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("cosmic_ray")

    @pytest.mark.parametrize(
        "kw",
        [
            {"target": -1},
            {"start": -0.5},
            {"delay": -1e-9},
            {"rate": -0.1},
            {"rate": 1.5},
        ],
    )
    def test_bad_values_rejected(self, kw):
        with pytest.raises(ValueError):
            FaultSpec("ssd_io_error", **kw)

    def test_link_degrade_needs_positive_factor(self):
        with pytest.raises(ValueError):
            FaultSpec("link_degrade", factor=0.0)
        FaultSpec("link_degrade", factor=0.25)  # fine

    @pytest.mark.parametrize("kw", [{"job_index": 0}, {"job": "j3"}])
    def test_job_addressing_restricted_to_crashes(self, kw):
        with pytest.raises(ValueError, match="only applies to aggregator_crash"):
            FaultSpec("ssd_io_error", **kw)
        FaultSpec("aggregator_crash", on_event="write_done:0", **kw)  # fine

    def test_job_addressed_round_trip(self):
        spec = FaultSpec(
            "aggregator_crash", on_event="write_done:1", delay=1e-3, job_index=5
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip(self):
        spec = FaultSpec(
            "server_stall", target=2, start=1.5, duration=0.25, on_event="write_done:1"
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultSchedule:
    def test_empty_is_falsy(self):
        assert not FaultSchedule()
        assert FaultSchedule(sync_rpc_timeout=0.01)
        assert FaultSchedule.of(FaultSpec("ssd_device_loss"))

    def test_list_coerced_to_tuple(self):
        sched = FaultSchedule(faults=[FaultSpec("ssd_io_error")])
        assert isinstance(sched.faults, tuple)

    def test_of_kind(self):
        sched = FaultSchedule.of(
            FaultSpec("ssd_io_error", target=0),
            FaultSpec("ssd_io_error", target=1),
            FaultSpec("server_stall"),
        )
        assert len(sched.of_kind("ssd_io_error")) == 2
        assert len(sched.of_kind("aggregator_crash")) == 0

    def test_round_trip(self):
        sched = FaultSchedule.of(
            FaultSpec("aggregator_crash", on_event="write_done:3", delay=0.001),
            FaultSpec("link_degrade", target=1, duration=0.5, factor=0.1),
            sync_rpc_timeout=0.02,
        )
        again = FaultSchedule.from_dict(sched.to_dict())
        assert again == sched

    def test_schedule_from_dicts(self):
        sched = schedule_from_dicts(
            [{"kind": "ssd_io_error", "target": 1, "rate": 0.5}],
            sync_rpc_timeout=0.1,
        )
        assert sched.faults[0].kind == "ssd_io_error"
        assert sched.faults[0].rate == 0.5
        assert sched.sync_rpc_timeout == 0.1


class TestValidate:
    def test_node_target_out_of_bounds_names_kind_and_value(self):
        sched = FaultSchedule.of(FaultSpec("ssd_io_error", target=9))
        with pytest.raises(
            ValueError, match=r"faults\[0\] \(ssd_io_error\): targets node 9"
        ):
            sched.validate(num_nodes=4)

    def test_server_target_checked_against_server_count(self):
        sched = FaultSchedule.of(FaultSpec("server_stall", target=5))
        with pytest.raises(ValueError, match="targets server 5.*2 data servers"):
            sched.validate(num_servers=2)

    def test_crash_rank_checked_against_job_size(self):
        sched = FaultSchedule.of(
            FaultSpec("aggregator_crash", target=8, on_event="write_done:8")
        )
        with pytest.raises(ValueError, match="names rank 8.*has 4 ranks"):
            sched.validate(num_ranks=4)

    def test_duplicate_device_loss_rejected(self):
        sched = FaultSchedule.of(
            FaultSpec("ssd_device_loss", target=1),
            FaultSpec("ssd_device_loss", target=1),
        )
        with pytest.raises(ValueError, match="duplicate device loss on node 1"):
            sched.validate(num_nodes=4)

    def test_job_label_prefixes_fleet_errors(self):
        sched = FaultSchedule.of(FaultSpec("ssd_io_error", target=9))
        with pytest.raises(ValueError, match=r"job j3: faults\[0\]"):
            sched.validate(num_nodes=4, job="j3")

    def test_unchecked_dimensions_pass(self):
        sched = FaultSchedule.of(FaultSpec("ssd_io_error", target=9))
        assert sched.validate() is sched

    def test_valid_schedule_chains(self):
        sched = FaultSchedule.of(FaultSpec("server_stall", target=0))
        assert sched.validate(num_nodes=4, num_servers=2, num_ranks=8) is sched

    def test_write_anchor_beyond_the_workload_rejected(self):
        sched = FaultSchedule.of(
            FaultSpec("aggregator_crash", on_event="write_done:5", delay=1e-3)
        )
        with pytest.raises(ValueError, match="silently never fire"):
            sched.validate(num_files=2)
        sched.validate(num_files=6)  # fine
        sched.validate()  # unchecked dimension

    def test_malformed_write_anchor_rejected(self):
        sched = FaultSchedule.of(
            FaultSpec("aggregator_crash", on_event="write_done:last", delay=1e-3)
        )
        with pytest.raises(ValueError, match="malformed write milestone"):
            sched.validate(num_files=2)

    def test_unknown_event_anchor_warns(self):
        sched = FaultSchedule.of(
            FaultSpec("aggregator_crash", on_event="flush_done", delay=1e-3)
        )
        with pytest.warns(UserWarning, match="may be unreachable"):
            sched.validate(num_files=2)

    def test_recovery_replay_anchor_accepted_silently(self):
        sched = FaultSchedule.of(
            FaultSpec("aggregator_crash", on_event="recovery_replay", delay=1e-3)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sched.validate(num_files=2)

    def test_job_index_beyond_the_fleet_rejected(self):
        sched = FaultSchedule.of(
            FaultSpec(
                "aggregator_crash", on_event="write_done:0", delay=1e-3, job_index=8
            )
        )
        with pytest.raises(ValueError, match="addresses job_index 8.*admits 8 jobs"):
            sched.validate(num_jobs=8)
        sched.validate(num_jobs=9)  # fine
        sched.validate()  # single-job callers don't bound the fleet

    def test_delay_without_an_anchor_rejected(self):
        sched = FaultSchedule.of(FaultSpec("aggregator_crash", delay=1e-3))
        with pytest.raises(ValueError, match="no on_event to anchor"):
            sched.validate()
