"""Crash recovery on the NVMM WAL backend: journal replay reads durable
records from the log, torn records never reach the recovered file, and a
tear + retry + crash sequence replays idempotently (the overlay is applied
in append order, so the durable retry wins)."""

import numpy as np
import pytest

from repro.config import small_testbed
from repro.faults import FaultSchedule, FaultSpec
from repro.machine import Machine
from repro.mpi.process import MPIWorld
from repro.romio.file import MPIIOLayer
from repro.sim.core import Interrupt
from repro.units import KiB
from repro.workloads import ior_workload
from repro.workloads.phases import multi_phase_body
from tests.integration.test_end_to_end import expected_image

HINTS = {
    "e10_cache": "enable",
    "e10_cache_kind": "nvmm",
    "e10_cache_flush_flag": "flush_onclose",
    "e10_cache_discard_flag": "enable",
    "romio_cb_write": "enable",
    "cb_nodes": "4",
    "cb_buffer_size": "32k",
    "ind_wr_buffer_size": "8k",
}
NUM_FILES = 2
PREFIX = "/g/nvrec_"


def crash_schedule(extra=()):
    return FaultSchedule.of(
        *extra,
        FaultSpec(
            "aggregator_crash", on_event=f"write_done:{NUM_FILES - 1}", delay=2e-3
        ),
    )


def build(faults=None):
    machine = Machine(small_testbed(), faults=faults)
    world = MPIWorld(machine)
    layer = MPIIOLayer(machine, world.comm, driver="beegfs", exchange_mode="flow")
    return machine, world, layer


def phased_body(layer, wl):
    return multi_phase_body(
        layer,
        wl,
        HINTS,
        num_files=NUM_FILES,
        compute_delay=0.05,
        deferred_close=True,
        file_prefix=PREFIX,
    )


def make_wl():
    return ior_workload(8, block_bytes=8 * KiB, segments=2, with_data=True, seed=41)


def run_recovery(machine):
    world = MPIWorld(machine)
    layer = MPIIOLayer(machine, world.comm, driver="beegfs", exchange_mode="flow")
    paths = [
        f"{PREFIX}{k}" for k in range(NUM_FILES) if machine.pfs.exists(f"{PREFIX}{k}")
    ]

    def body(ctx):
        for path in paths:
            fh = yield from layer.open(ctx.rank, path, {})
            yield from fh.close()

    world.run(body)
    return paths


class TestNvmmCrashRecovery:
    def test_crashed_journals_carry_wals_not_descriptors(self):
        machine, world, layer = build(crash_schedule())
        with pytest.raises(Interrupt):
            world.run(phased_body(layer, make_wl()))
        journals = machine.recovery.entries()
        assert journals
        assert all(j.wal is not None for j in journals)
        assert all(j.local_file is None for j in journals)
        assert any(j.wal.durable_records > 0 for j in journals)

    def test_replay_from_wal_restores_files(self):
        wl = make_wl()
        machine, world, layer = build(crash_schedule())
        with pytest.raises(Interrupt):
            world.run(phased_body(layer, wl))
        run_recovery(machine)
        assert machine.recovery.stats()["bytes_replayed"] > 0
        exp = expected_image(wl, 8)
        for k in range(NUM_FILES):
            img = machine.pfs.lookup(f"{PREFIX}{k}").data_image()
            assert np.array_equal(img, exp), f"file {k} differs after WAL replay"
        assert not machine.recovery.entries()
        # discard-on-close recovery released every log region
        assert all(n.nvmm.log_used == 0 for n in machine.nodes)

    def test_torn_then_crash_replays_idempotently(self):
        """A tear window forces retried appends: the log holds torn records
        *and* their durable retries for the same extents.  Replay after a
        crash must land exactly the retried bytes."""
        wl = make_wl()
        tear = FaultSpec(
            "nvmm_torn_write", target=0, start=0.0, duration=5.0, rate=0.5
        )
        machine, world, layer = build(crash_schedule(extra=(tear,)))
        with pytest.raises(Interrupt):
            world.run(phased_body(layer, wl))
        journals = machine.recovery.entries()
        assert journals
        torn = sum(j.wal.torn_records for j in journals)
        run_recovery(machine)
        exp = expected_image(wl, 8)
        for k in range(NUM_FILES):
            img = machine.pfs.lookup(f"{PREFIX}{k}").data_image()
            assert np.array_equal(img, exp), f"file {k} differs after torn replay"
        assert torn > 0, "the tear window never fired — schedule too narrow"

    def test_clean_nvmm_run_leaves_no_state(self):
        machine, world, layer = build()
        world.run(phased_body(layer, make_wl()))
        assert machine.recovery.entries() == []
        assert all(n.nvmm.log_used == 0 for n in machine.nodes)
        assert all(n.ssd.bytes_written == 0 for n in machine.nodes)
