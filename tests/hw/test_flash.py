"""FTL flash model: kind selection, GC thresholds, write amplification,
and the erase-before-program invariant.

The FTL runs entirely inside ``service_time`` — these tests drive it
synchronously (no simulator events needed) with a shrunken geometry so a
few hundred page writes cycle the whole logical space.
"""

import pytest

from repro.config import FlashConfig, SSDConfig, small_testbed
from repro.hw.devices import SSDDevice
from repro.hw.flash import FlashSSDDevice, SSD_KINDS, create_node_ssd, default_ssd_kind
from repro.sim.core import Simulator

#: 512 B pages, 8-page blocks, 2 LUNs, generous OP: tiny but structurally
#: identical to the real geometry.
TINY = FlashConfig(
    page_size=512,
    pages_per_block=8,
    num_luns=2,
    over_provisioning=0.25,
    gc_free_fraction=0.25,
)
CAPACITY = 64 * 512  # 64 logical pages -> 8 logical blocks


def make(flash=TINY, capacity=CAPACITY):
    return FlashSSDDevice(Simulator(), "f", flash=flash, capacity_bytes=capacity)


def check_ftl_consistency(dev):
    """Structural FTL invariants that must hold after any operation mix."""
    # L2P and P2L are inverse bijections.
    assert len(dev._l2p) == len(dev._p2l)
    for lpn, ppn in dev._l2p.items():
        assert dev._p2l[ppn] == lpn
        # LUN striping: lpn n lives on LUN n % num_luns.
        assert (ppn // dev.pages_per_block) % dev.num_luns == lpn % dev.num_luns
    # Valid counts match the mapping, and no block programs past its end
    # (erase-before-program: a slot is written at most once per cycle).
    for block in range(dev.num_blocks):
        base = block * dev.pages_per_block
        mapped = sum(1 for p in range(base, base + dev.pages_per_block) if p in dev._p2l)
        assert dev._valid[block] == mapped
        assert 0 <= dev._next_slot[block] <= dev.pages_per_block
        assert dev._valid[block] <= dev._next_slot[block]


class TestKindSelection:
    def test_kinds(self):
        assert SSD_KINDS == ("stream", "ftl")

    def test_default_is_stream(self, monkeypatch):
        monkeypatch.delenv("REPRO_SSD", raising=False)
        assert default_ssd_kind() == "stream"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SSD", "ftl")
        assert default_ssd_kind() == "ftl"

    def test_unknown_kind_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SSD", "optane")
        with pytest.raises(ValueError):
            default_ssd_kind()

    def test_create_node_ssd_dispatch(self, monkeypatch):
        monkeypatch.delenv("REPRO_SSD", raising=False)
        sim = Simulator()
        cfg = small_testbed()
        assert isinstance(create_node_ssd(sim, 0, cfg), SSDDevice)
        monkeypatch.setenv("REPRO_SSD", "ftl")
        assert isinstance(create_node_ssd(sim, 0, cfg), FlashSSDDevice)
        # An explicit config value wins over the environment.
        monkeypatch.setenv("REPRO_SSD", "stream")
        ftl = create_node_ssd(sim, 1, cfg.scaled(ssd_kind="ftl"))
        assert isinstance(ftl, FlashSSDDevice)

    def test_explicit_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            create_node_ssd(Simulator(), 0, small_testbed(ssd_kind="slc"))


class TestFreshDevice:
    def test_sequential_fill_has_no_amplification(self):
        dev = make()
        for page in range(dev.logical_pages):
            dev.service_time(page * 512, 512, is_write=True)
        assert dev.host_pages_programmed == dev.logical_pages
        assert dev.gc_pages_programmed == 0
        assert dev.write_amplification == 1.0
        assert dev.gc_stall_time == 0.0
        check_ftl_consistency(dev)

    def test_luns_program_in_parallel(self):
        dev = make()
        one = dev.service_time(0, 512, True)
        # Two pages land on two different LUNs: same program latency.
        two = dev.service_time(512, 2 * 512, True)
        assert two == pytest.approx(one)

    def test_read_faster_than_write_and_pure(self):
        dev = make()
        write_time = dev.service_time(0, 4096, True)
        before = dict(dev._l2p)
        assert dev.service_time(0, 4096, False) < write_time
        assert dev._l2p == before  # reads never touch the mapping
        assert dev.pages_read > 0

    def test_gc_reserve_floor(self):
        # At least 2 blocks so relocation always has somewhere to write.
        dev = make(FlashConfig(page_size=512, pages_per_block=8, num_luns=2,
                               gc_free_fraction=0.0))
        assert dev.gc_reserve_blocks >= 2


class TestGarbageCollection:
    def overwrite(self, dev, passes, seed=7):
        """Steady random overwrite — the sync thread's aging pattern."""
        import random

        rng = random.Random(seed)
        pages = dev.logical_pages
        for _ in range(passes * pages):
            dev.service_time(rng.randrange(pages) * 512, 512, True)

    def test_overwrite_triggers_gc_and_amplification(self):
        dev = make()
        self.overwrite(dev, passes=6)
        assert dev.gc_runs > 0
        assert dev.blocks_erased > 0
        assert dev.gc_stall_time > 0.0
        assert dev.write_amplification > 1.0
        check_ftl_consistency(dev)

    def test_overwrite_in_place_is_cheap(self):
        # Rewriting one page over and over invalidates immediately: the
        # victim block is always fully invalid, so GC erases without
        # relocating and WA stays at 1.
        dev = make()
        for _ in range(12 * dev.pages_per_block):
            dev.service_time(0, 512, True)
        assert dev.gc_runs > 0
        assert dev.gc_pages_programmed == 0
        assert dev.write_amplification == 1.0
        check_ftl_consistency(dev)

    def test_deterministic(self):
        a, b = make(), make()
        self.overwrite(a, passes=4)
        self.overwrite(b, passes=4)
        assert a.stats() == b.stats()

    def test_stats_keys(self):
        dev = make()
        self.overwrite(dev, passes=4)
        s = dev.stats()
        assert s["host_pages_programmed"] > 0
        assert s["write_amplification"] == dev.write_amplification
        assert s["gc_stall_time"] == dev.gc_stall_time

    def test_gc_stall_charged_to_triggering_request(self):
        """The host request that trips GC pays erase + relocation time."""
        dev = make()
        baseline = dev.service_time(0, 512, True)
        self.overwrite(dev, passes=3)
        stalled = 0.0
        import random

        rng = random.Random(11)
        before = dev.gc_stall_time
        for _ in range(6 * dev.logical_pages):
            t = dev.service_time(rng.randrange(dev.logical_pages) * 512, True and 512, True)
            stalled = max(stalled, t)
        assert dev.gc_stall_time > before
        assert stalled > baseline  # some request visibly paid a GC stall


class TestThroughMachine:
    def test_ftl_machine_accounts_amplification(self):
        """An ftl machine's node SSDs age under a direct overwrite load."""
        from repro.machine import Machine

        cfg = small_testbed(
            ssd_kind="ftl",
            ssd=SSDConfig(capacity=CAPACITY),
            flash=TINY,
        )
        m = Machine(cfg)
        dev = m.nodes[0].ssd
        assert isinstance(dev, FlashSSDDevice)

        def proc():
            import random

            rng = random.Random(3)
            for _ in range(5 * dev.logical_pages):
                yield from dev.write(rng.randrange(dev.logical_pages) * 512, 512)

        m.sim.run(until=m.sim.process(proc()))
        assert dev.write_amplification > 1.0
        assert dev.gc_stall_time > 0.0
        assert dev.bytes_written == 5 * dev.logical_pages * 512
        check_ftl_consistency(dev)
