import pytest

from repro.config import PFSConfig
from repro.hw.devices import SSDDevice
from repro.pfs.server import RaidTarget
from repro.sim.core import Simulator
from repro.sim.rng import RngStreams


@pytest.fixture
def sim():
    return Simulator()


def no_jitter_cfg():
    return PFSConfig(jitter_sigma=0.0)


class TestSSD:
    def test_write_time(self, sim):
        ssd = SSDDevice(sim, "s", write_bw=100.0, read_bw=200.0, latency=0.01, capacity_bytes=10**6)

        def proc():
            yield from ssd.write(0, 500)

        sim.run(until=sim.process(proc()))
        assert sim.now == pytest.approx(0.01 + 5.0)

    def test_read_faster_than_write(self, sim):
        ssd = SSDDevice(sim, "s", write_bw=100.0, read_bw=200.0, latency=0.0, capacity_bytes=10**6)
        assert ssd.service_time(0, 1000, is_write=False) < ssd.service_time(0, 1000, is_write=True)

    def test_queue_serialises(self, sim):
        ssd = SSDDevice(sim, "s", write_bw=100.0, read_bw=100.0, latency=0.0, capacity_bytes=10**6)
        ends = []

        def proc():
            yield from ssd.write(0, 100)
            ends.append(sim.now)

        sim.process(proc())
        sim.process(proc())
        sim.run()
        assert ends == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_stats(self, sim):
        ssd = SSDDevice(sim, "s", write_bw=100.0, read_bw=100.0, latency=0.0, capacity_bytes=10**6)

        def proc():
            yield from ssd.write(0, 100)
            yield from ssd.read(0, 50)

        sim.run(until=sim.process(proc()))
        assert ssd.bytes_written == 100
        assert ssd.bytes_read == 50
        assert ssd.requests_served == 2
        assert ssd.busy_time == pytest.approx(1.5)


class TestRaidTarget:
    def test_sequential_cheaper_than_random(self, sim):
        t = RaidTarget(sim, "r", no_jitter_cfg())
        first = t.service_time(0, 4096, True)  # cold: full seek
        seq = t.service_time(4096, 4096, True)  # extends the stream
        rand = t.service_time(10**9, 4096, True)  # far away: full seek
        assert seq < first
        assert rand > seq

    def test_stream_table_tracks_interleaved_writers(self, sim):
        t = RaidTarget(sim, "r", no_jitter_cfg(), max_streams=4)
        # Two interleaved sequential streams at distant offsets.
        t.service_time(0, 100, True)
        t.service_time(10**6, 100, True)
        assert t.seeks == 2
        t.service_time(100, 100, True)  # extends stream A
        t.service_time(10**6 + 100, 100, True)  # extends stream B
        assert t.seeks == 2  # no new seeks

    def test_stream_eviction(self, sim):
        t = RaidTarget(sim, "r", no_jitter_cfg(), max_streams=2)
        t.service_time(0, 10, True)
        t.service_time(1000, 10, True)
        t.service_time(2000, 10, True)  # evicts LRU (stream at 10)
        seeks_before = t.seeks
        t.service_time(10, 10, True)  # the evicted stream: full seek again
        assert t.seeks == seeks_before + 1

    def test_jitter_deterministic_per_seed(self):
        def one(seed):
            sim = Simulator()
            rng = RngStreams(seed)
            t = RaidTarget(sim, "r", PFSConfig(jitter_sigma=0.35), rng)
            return [t.service_time(i * 10**6, 4096, True) for i in range(10)]

        assert one(1) == one(1)
        assert one(1) != one(2)
