import pytest

from repro.config import small_testbed
from repro.hw.node import ComputeNode
from repro.sim.core import Simulator
from repro.units import MiB


def make_node(**overrides):
    sim = Simulator()
    cfg = small_testbed(**overrides)
    return sim, ComputeNode(sim, 0, cfg)


class TestPageCache:
    def test_small_write_at_memory_speed(self):
        sim, node = make_node()
        pc = node.page_cache

        def proc():
            yield from pc.buffered_write(1, 4 * MiB)

        sim.run(until=sim.process(proc()))
        expected = 4 * MiB / node.config.ram.memcpy_bw
        # writeback continues afterwards but the write itself was fast
        assert sim.now <= expected * 1.01 + 1e-9 or pc.dirty >= 0

    def test_dirty_tracked_per_file(self):
        sim, node = make_node()
        pc = node.page_cache

        def proc():
            yield from pc.buffered_write(1, MiB)
            yield from pc.buffered_write(2, 2 * MiB)

        sim.process(proc())
        sim.run(until=1e-4)  # before much writeback happens
        assert pc.dirty_of(1) + pc.dirty_of(2) == pc.dirty

    def test_writeback_drains(self):
        sim, node = make_node()
        pc = node.page_cache

        def proc():
            yield from pc.buffered_write(1, 8 * MiB)

        sim.process(proc())
        sim.run()
        assert pc.dirty == 0
        assert node.ssd.bytes_written == 8 * MiB

    def test_fsync_waits_for_file(self):
        sim, node = make_node()
        pc = node.page_cache

        def proc():
            yield from pc.buffered_write(7, 16 * MiB)
            t0 = sim.now
            yield from pc.fsync(7)
            return sim.now - t0

        p = sim.process(proc())
        sim.run()
        assert p.value > 0  # had to wait for the device
        assert pc.dirty_of(7) == 0

    def test_fsync_clean_file_is_instant(self):
        sim, node = make_node()
        pc = node.page_cache

        def proc():
            yield from pc.fsync(99)
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == 0.0

    def test_throttling_over_dirty_limit(self):
        # Tiny RAM: dirty limit = 0.2 * 64 MiB ≈ 12.8 MiB.
        from dataclasses import replace

        sim = Simulator()
        cfg = small_testbed()
        cfg = cfg.scaled(ram=replace(cfg.ram, capacity=64 * MiB))
        node = ComputeNode(sim, 0, cfg)
        pc = node.page_cache

        def proc():
            yield from pc.buffered_write(1, 64 * MiB)  # 5x the dirty limit
            return sim.now

        p = sim.process(proc())
        sim.run()
        device_time = 64 * MiB / cfg.ssd.write_bw
        # Most of the write had to proceed at device speed.
        assert p.value > device_time * 0.5


class TestMemoryAccounting:
    def test_pin_unpin_peak(self):
        _, node = make_node()
        node.pin_memory(100)
        node.pin_memory(50)
        node.unpin_memory(100)
        node.pin_memory(10)
        assert node.pinned_bytes == 60
        assert node.peak_pinned_bytes == 150

    def test_unpin_clamps_at_zero(self):
        _, node = make_node()
        node.pin_memory(10)
        node.unpin_memory(100)
        assert node.pinned_bytes == 0

    def test_memcpy_duration(self):
        sim, node = make_node()

        def proc():
            yield from node.memcpy(node.config.ram.memcpy_bw)  # exactly 1 second

        sim.run(until=sim.process(proc()))
        assert sim.now == pytest.approx(1.0)
