"""Paper-shape assertions at reduced scale (the acceptance criteria of
DESIGN.md §4).  These run full 512-rank model-fidelity experiments and take
a few seconds each; they are the repository's reproduction gate."""

import pytest

from repro.experiments.runner import ExperimentSpec, run_experiment_cached
from repro.units import GiB, MiB

SCALE = 0.05  # ~1.6 GiB files: fast, all mechanisms engaged
COMMON = dict(scale=SCALE, num_files=4, flush_batch_chunks=16)


def point(bench, agg, mode, cb=16 * MiB):
    return run_experiment_cached(
        ExperimentSpec(bench, aggregators=agg, cb_buffer=cb, cache_mode=mode, **COMMON)
    )


@pytest.mark.slow
class TestPaperShapes:
    def test_disabled_plateau_flat_across_aggregators(self):
        bws = [point("ior", a, "disabled").bw for a in (8, 16, 32, 64)]
        assert max(bws) / min(bws) < 2.0  # the ≈2 GB/s plateau

    def test_cache_speedup_at_64_aggregators(self):
        """Fig. 4/7/9: with enough aggregators, the cache wins by a lot."""
        for bench in ("coll_perf", "flash_io", "ior"):
            fast = point(bench, 64, "enabled").bw
            slow = point(bench, 64, "disabled").bw
            assert fast > 3 * slow, (bench, fast / GiB, slow / GiB)

    def test_eight_aggregators_cannot_hide_sync(self):
        """Fig. 4/5: at 8 aggregators the flush leaks into the perceived BW;
        it can even drop below the cache-disabled case."""
        r = point("ior", 8, "enabled")
        tbw = point("ior", 8, "theoretical").bw
        assert r.close_wait > 0.1  # not_hidden_sync present
        assert r.bw < 0.9 * tbw

    def test_sixteen_plus_aggregators_hide_sync(self):
        for agg in (16, 32, 64):
            r = point("ior", agg, "enabled")
            # only the *last* phase's sync is unhidden for IOR
            assert r.bw == pytest.approx(point("ior", agg, "theoretical").bw, rel=0.1)

    def test_tbw_scales_with_aggregator_count(self):
        """Fig. 4: the theoretical series grows with aggregators (more SSDs)."""
        tbws = [point("coll_perf", a, "theoretical").tbw for a in (8, 16, 32, 64)]
        assert tbws[-1] > 2 * tbws[0]

    def test_ior_capped_by_last_phase(self):
        """Fig. 9: IOR's bandwidth including the last phase is far below the
        theoretical series, but still above cache-disabled."""
        r = point("ior", 64, "enabled")
        disabled = point("ior", 64, "disabled")
        assert r.bw_incl_last < 0.5 * r.tbw
        assert r.bw_incl_last > 1.5 * disabled.bw_incl_last

    def test_flashio_fastest_collperf_middle(self):
        """Figs. 4 vs 7: Flash-IO's rank-contiguous pattern peaks above
        coll_perf's fine-grained strided pattern.  Needs enough volume per
        variable for per-call overheads to amortise, hence a larger scale."""
        spec = dict(num_files=4, flush_batch_chunks=16, scale=0.2)
        flash = run_experiment_cached(
            ExperimentSpec("flash_io", aggregators=64, cache_mode="theoretical", **spec)
        ).tbw
        collp = run_experiment_cached(
            ExperimentSpec("coll_perf", aggregators=64, cache_mode="theoretical", **spec)
        ).tbw
        assert flash > collp

    def test_small_buffers_fine_with_cache(self):
        """Fig. 5 discussion: with the cache, larger collective buffers give
        little benefit — small buffers suffice (reduced memory pressure)."""
        small = point("coll_perf", 64, "enabled", cb=4 * MiB)
        large = point("coll_perf", 64, "enabled", cb=64 * MiB)
        assert small.bw > 0.4 * large.bw
        assert small.peak_pinned < large.peak_pinned / 8

    def test_global_sync_reduced_with_cache(self):
        """Figs. 5 vs 6: shuffle_all2all + post_write shrink when the write
        target is the fast local cache."""
        enabled = point("coll_perf", 64, "enabled").breakdown
        disabled = point("coll_perf", 64, "disabled").breakdown
        sync_on = enabled.get("shuffle_all2all", 0) + enabled.get("post_write", 0)
        sync_off = disabled.get("shuffle_all2all", 0) + disabled.get("post_write", 0)
        assert sync_on < sync_off

    def test_not_hidden_sync_only_at_8_aggregators(self):
        """Fig. 5: the not_hidden_sync bar appears at 8 aggregators and
        vanishes at 64."""
        bd8 = point("coll_perf", 8, "enabled")
        bd64 = point("coll_perf", 64, "enabled")
        # exclude the final phase (never hidden): close_wait counts all
        # phases, so compare per-phase breakdowns instead
        waits8 = bd8.close_wait
        waits64 = bd64.close_wait
        assert waits8 > waits64
