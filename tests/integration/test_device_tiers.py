"""Device-tier contracts across the whole stack.

Three properties anchor the tier design:

1. **Stream identity** — ``REPRO_SSD`` unset, ``=stream``, and an explicit
   ``ssd_kind="stream"`` all produce byte-identical results: the FTL tier
   is strictly opt-in.
2. **Engine/dataplane invariance under ftl** — the byte-identity contract
   (only diagnostic event counts may differ) extends to the new device
   models: the FTL runs synchronously inside ``service_time`` and the WAL
   uses the same generator/flat dual paths as the extent backend.
3. **NVMM transparency** — a workload written through the WAL cache is
   byte-identical on the PFS to the extent-cache and no-cache runs.
"""

import numpy as np
import pytest

from repro.experiments.runner import ExperimentSpec, run_experiment
from repro.hw.flash import FlashSSDDevice
from repro.units import KiB
from repro.workloads import ior_workload
from tests.conftest import make_cluster
from tests.integration.test_end_to_end import CACHE, expected_image, run_workload

TINY = dict(scale=0.02, num_files=2, flush_batch_chunks=16)


def result_dict(monkeypatch, ssd=None, cache_kind=None, engine=None, dataplane=None):
    for var, value in (
        ("REPRO_SSD", ssd),
        ("REPRO_CACHE_KIND", cache_kind),
        ("REPRO_ENGINE", engine),
        ("REPRO_DATAPLANE", dataplane),
    ):
        if value is None:
            monkeypatch.delenv(var, raising=False)
        else:
            monkeypatch.setenv(var, value)
    monkeypatch.setenv("REPRO_CACHE", "0")  # measure, never memoise
    return run_experiment(ExperimentSpec("ior", cache_mode="enabled", **TINY)).to_dict()


class TestStreamIdentity:
    def test_default_equals_explicit_stream(self, monkeypatch):
        default = result_dict(monkeypatch)
        explicit = result_dict(monkeypatch, ssd="stream")
        assert default == explicit  # including the diagnostic event count

    def test_stream_equals_default_under_nvmm_absence(self, monkeypatch):
        default = result_dict(monkeypatch)
        extent = result_dict(monkeypatch, cache_kind="extent")
        assert default == extent


class TestFtlInvariance:
    def test_engines_and_dataplanes_agree_under_ftl(self, monkeypatch):
        runs = {
            (engine, plane): result_dict(
                monkeypatch, ssd="ftl", engine=engine, dataplane=plane
            )
            for engine in ("slotted", "heapq")
            for plane in ("bulk", "chunked")
        }
        events = {k: r.pop("events") for k, r in runs.items()}
        baseline = runs["slotted", "bulk"]
        for key, r in runs.items():
            assert r == baseline, f"{key} diverged from (slotted, bulk)"
        # bulk strictly reduces the event count on both engines
        assert events["slotted", "bulk"] < events["slotted", "chunked"]
        assert events["heapq", "bulk"] < events["heapq", "chunked"]

    def test_nvmm_cache_agrees_across_dataplanes(self, monkeypatch):
        bulk = result_dict(monkeypatch, cache_kind="nvmm", dataplane="bulk")
        chunked = result_dict(monkeypatch, cache_kind="nvmm", dataplane="chunked")
        bulk.pop("events"), chunked.pop("events")
        assert bulk == chunked


class TestNvmmTransparency:
    def test_nvmm_cache_file_identical_to_extent(self):
        wl = ior_workload(8, block_bytes=8 * KiB, segments=3, with_data=True, seed=31)
        extent = run_workload(wl, CACHE).data_image()
        nvmm = run_workload(wl, dict(CACHE, e10_cache_kind="nvmm")).data_image()
        assert np.array_equal(nvmm, extent)
        assert np.array_equal(nvmm, expected_image(wl, 8))

    def test_nvmm_cache_skips_the_scratch_ssd(self):
        wl = ior_workload(8, block_bytes=8 * KiB, segments=2, with_data=True, seed=32)
        machine, world, layer = make_cluster()

        def body(ctx):
            fh = yield from layer.open(
                ctx.rank, "/g/nv", dict(CACHE, e10_cache_kind="nvmm")
            )
            for step in wl.steps:
                if step.kind == "collective":
                    yield from fh.write_all(step.access_fn(ctx.rank))
            yield from fh.close()

        world.run(body)
        assert all(n.ssd.bytes_written == 0 for n in machine.nodes)
        assert any(n.nvmm.bytes_written > 0 for n in machine.nodes)
        # the log region is released once flush+close discard the WALs
        assert all(n.nvmm.log_used == 0 for n in machine.nodes)

    def test_ftl_machine_runs_cached_workload(self, monkeypatch):
        monkeypatch.setenv("REPRO_SSD", "ftl")
        wl = ior_workload(8, block_bytes=8 * KiB, segments=2, with_data=True, seed=33)
        machine, world, layer = make_cluster()
        assert isinstance(machine.nodes[0].ssd, FlashSSDDevice)

        def body(ctx):
            fh = yield from layer.open(ctx.rank, "/g/ftl", CACHE)
            for step in wl.steps:
                if step.kind == "collective":
                    yield from fh.write_all(step.access_fn(ctx.rank))
            yield from fh.close()

        world.run(body)
        img = machine.pfs.lookup("/g/ftl").data_image()
        assert np.array_equal(img, expected_image(wl, 8))
        aged = [n.ssd for n in machine.nodes if n.ssd.host_pages_programmed]
        assert aged  # the cache writes really went through the FTL
        assert all(d.write_amplification >= 1.0 for d in aged)
