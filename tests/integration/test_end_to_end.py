"""Cross-module integration: the same workload written with and without the
cache must produce byte-identical global files, through every layer (MPI,
two-phase, cache, sync thread, PFS)."""

import numpy as np

from repro.mpiwrap.config import WrapConfig
from repro.mpiwrap.wrapper import MPIWrap
from repro.units import KiB
from repro.workloads import collperf_workload, flashio_workload, ior_workload
from repro.workloads.phases import multi_phase_body
from tests.conftest import make_cluster


def expected_image(workload, nprocs):
    img = np.zeros(workload.file_size, dtype=np.uint8)
    for step in workload.steps:
        if step.kind != "collective":
            continue
        for r in range(nprocs):
            a = step.access_fn(r)
            pos = 0
            for off, length in zip(a.offsets, a.lengths):
                img[off : off + length] = a.data[pos : pos + length]
                pos += length
    return img


def run_workload(workload, hints, nprocs=8):
    machine, world, layer = make_cluster()

    def body(ctx):
        fh = yield from layer.open(ctx.rank, "/g/t", hints)
        for step in workload.steps:
            if step.kind == "collective":
                yield from fh.write_all(step.access_fn(ctx.rank))
            elif ctx.rank == 0:
                yield from fh.write_at(step.offset, step.nbytes)
        yield from fh.close()

    world.run(body)
    return machine.pfs.lookup("/g/t")


CACHE = {
    "e10_cache": "enable",
    "e10_cache_flush_flag": "flush_immediate",
    "romio_cb_write": "enable",
    "cb_nodes": "4",
    "cb_buffer_size": "32k",
    "ind_wr_buffer_size": "8k",
}
NOCACHE = {k: v for k, v in CACHE.items() if not k.startswith("e10")}


class TestCacheTransparency:
    """The cache layer must be completely invisible in the final file."""

    def test_collperf(self):
        wl = collperf_workload(8, block_bytes=32 * KiB, with_data=True, seed=1)
        with_cache = run_workload(wl, CACHE).data_image()
        without = run_workload(wl, NOCACHE).data_image()
        assert np.array_equal(with_cache, without)
        assert np.array_equal(with_cache, expected_image(wl, 8))

    def test_ior(self):
        wl = ior_workload(8, block_bytes=8 * KiB, segments=3, with_data=True, seed=2)
        with_cache = run_workload(wl, CACHE).data_image()
        assert np.array_equal(with_cache, expected_image(wl, 8))

    def test_flashio(self):
        wl = flashio_workload(
            8, blocks_per_proc=2, zones_per_dim=4, with_data=True, seed=3
        )
        f = run_workload(wl, CACHE)
        img = f.data_image()
        exp = expected_image(wl, 8)
        # headers are virtual (no payload) — compare the dataset regions
        assert np.array_equal(img[: len(exp)], exp)

    def test_flush_onclose_same_content(self):
        wl = ior_workload(8, block_bytes=8 * KiB, segments=2, with_data=True, seed=4)
        hints = dict(CACHE, e10_cache_flush_flag="flush_onclose")
        img = run_workload(wl, hints).data_image()
        assert np.array_equal(img, expected_image(wl, 8))

    def test_coherent_same_content(self):
        wl = ior_workload(8, block_bytes=8 * KiB, segments=2, with_data=True, seed=5)
        hints = dict(CACHE, e10_cache="coherent")
        img = run_workload(wl, hints).data_image()
        assert np.array_equal(img, expected_image(wl, 8))


class TestPhasedWithWrapper:
    def test_legacy_app_through_mpiwrap(self):
        machine, world, layer = make_cluster()
        wl = ior_workload(8, block_bytes=4 * KiB, segments=2, with_data=True, seed=6)
        config = WrapConfig.parse(
            """
[/g/out_*]
e10_cache = enable
e10_cache_flush_flag = flush_immediate
romio_cb_write = enable
cb_nodes = 2
ind_wr_buffer_size = 8k
defer_close = true
"""
        )
        wrap = MPIWrap(layer, config)
        body = multi_phase_body(
            layer, wl, {}, num_files=3, compute_delay=0.5,
            file_prefix="/g/out_", wrapper=wrap,
        )
        timings = world.run(body)
        exp = expected_image(wl, 8)
        for k in range(3):
            f = machine.pfs.lookup(f"/g/out_{k}")
            assert np.array_equal(f.data_image(), exp)
        # the wrapper made intermediate closes free
        for per_rank in timings:
            assert per_rank[0].close_wait == 0.0 or per_rank[0].close_wait < 0.6

    def test_wrapper_vs_builtin_deferral_equivalent_content(self):
        wl = ior_workload(8, block_bytes=4 * KiB, segments=2, with_data=True, seed=7)

        def run(with_wrapper):
            machine, world, layer = make_cluster()
            if with_wrapper:
                config = WrapConfig.parse(
                    "[/g/o_*]\ne10_cache = enable\nromio_cb_write = enable\n"
                    "e10_cache_flush_flag = flush_immediate\ndefer_close = true\n"
                )
                wrapper = MPIWrap(layer, config)
                body = multi_phase_body(
                    layer, wl, {}, num_files=2, compute_delay=0.2,
                    file_prefix="/g/o_", wrapper=wrapper,
                )
            else:
                hints = {
                    "e10_cache": "enable",
                    "romio_cb_write": "enable",
                    "e10_cache_flush_flag": "flush_immediate",
                }
                body = multi_phase_body(
                    layer, wl, hints, num_files=2, compute_delay=0.2,
                    deferred_close=True, file_prefix="/g/o_",
                )
            world.run(body)
            return [machine.pfs.lookup(f"/g/o_{k}").data_image() for k in range(2)]

        for a, b in zip(run(True), run(False)):
            assert np.array_equal(a, b)
