import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.intervals import IntervalSet


def iv(*pairs):
    return IntervalSet(pairs)


class TestAdd:
    def test_empty(self):
        s = IntervalSet()
        assert not s
        assert s.total == 0

    def test_single(self):
        s = iv((0, 10))
        assert list(s) == [(0, 10)]
        assert s.total == 10

    def test_zero_length_ignored(self):
        s = iv((5, 5))
        assert not s

    def test_merge_overlap(self):
        s = iv((0, 10), (5, 20))
        assert list(s) == [(0, 20)]

    def test_merge_adjacent(self):
        s = iv((0, 10), (10, 20))
        assert list(s) == [(0, 20)]

    def test_disjoint_sorted(self):
        s = iv((20, 30), (0, 10))
        assert list(s) == [(0, 10), (20, 30)]

    def test_bridge_many(self):
        s = iv((0, 5), (10, 15), (20, 25), (4, 21))
        assert list(s) == [(0, 25)]

    def test_contained(self):
        s = iv((0, 100), (10, 20))
        assert list(s) == [(0, 100)]

    def test_invalid(self):
        with pytest.raises(ValueError):
            iv((10, 5))


class TestRemove:
    def test_exact(self):
        s = iv((0, 10))
        s.remove(0, 10)
        assert not s

    def test_split(self):
        s = iv((0, 30))
        s.remove(10, 20)
        assert list(s) == [(0, 10), (20, 30)]

    def test_head(self):
        s = iv((0, 30))
        s.remove(0, 10)
        assert list(s) == [(10, 30)]

    def test_tail(self):
        s = iv((0, 30))
        s.remove(20, 30)
        assert list(s) == [(0, 20)]

    def test_across_runs(self):
        s = iv((0, 10), (20, 30), (40, 50))
        s.remove(5, 45)
        assert list(s) == [(0, 5), (45, 50)]

    def test_miss(self):
        s = iv((0, 10))
        s.remove(20, 30)
        assert list(s) == [(0, 10)]


class TestQueries:
    def test_covers(self):
        s = iv((0, 10), (20, 30))
        assert s.covers(0, 10)
        assert s.covers(2, 8)
        assert not s.covers(5, 15)
        assert not s.covers(10, 20)
        assert s.covers(7, 7)  # empty range always covered

    def test_overlaps(self):
        s = iv((10, 20))
        assert s.overlaps(15, 25)
        assert s.overlaps(0, 11)
        assert not s.overlaps(0, 10)  # half-open: touching is not overlap
        assert not s.overlaps(20, 30)

    def test_intersect(self):
        s = iv((0, 10), (20, 30))
        assert list(s.intersect(5, 25)) == [(5, 10), (20, 25)]

    def test_gaps(self):
        s = iv((10, 20), (30, 40))
        assert list(s.gaps(0, 50)) == [(0, 10), (20, 30), (40, 50)]
        assert list(s.gaps(10, 40)) == [(20, 30)]
        assert not s.gaps(12, 18)

    def test_eq_and_copy(self):
        s = iv((0, 10))
        t = s.copy()
        assert s == t
        t.add(20, 30)
        assert s != t


# -- property-based --------------------------------------------------------------

ranges = st.tuples(st.integers(0, 200), st.integers(0, 200)).map(
    lambda t: (min(t), max(t))
)


def reference(pairs_add, pairs_remove=()):
    """Set-of-points reference model."""
    pts = set()
    for a, b in pairs_add:
        pts.update(range(a, b))
    for a, b in pairs_remove:
        pts.difference_update(range(a, b))
    return pts


def points_of(s: IntervalSet):
    pts = set()
    for a, b in s:
        pts.update(range(a, b))
    return pts


@settings(max_examples=200, deadline=None)
@given(st.lists(ranges, max_size=12))
def test_add_matches_point_set(pairs):
    s = IntervalSet(pairs)
    assert points_of(s) == reference(pairs)
    # invariants: sorted, coalesced, non-empty runs
    runs = list(s)
    for (a1, b1), (a2, b2) in zip(runs, runs[1:]):
        assert b1 < a2  # strictly separated (adjacent would have merged)
    assert all(a < b for a, b in runs)


@settings(max_examples=200, deadline=None)
@given(st.lists(ranges, min_size=1, max_size=10), st.lists(ranges, max_size=6))
def test_remove_matches_point_set(adds, removes):
    s = IntervalSet(adds)
    for a, b in removes:
        s.remove(a, b)
    assert points_of(s) == reference(adds, removes)


@settings(max_examples=150, deadline=None)
@given(st.lists(ranges, max_size=8), ranges)
def test_gaps_complement(pairs, window):
    lo, hi = window
    s = IntervalSet(pairs)
    inside = points_of(s) & set(range(lo, hi))
    gap_points = points_of(s.gaps(lo, hi))
    assert gap_points == set(range(lo, hi)) - inside


@settings(max_examples=150, deadline=None)
@given(st.lists(ranges, max_size=8), ranges)
def test_intersect_consistent_with_covers(pairs, window):
    lo, hi = window
    s = IntervalSet(pairs)
    inter = s.intersect(lo, hi)
    assert points_of(inter) == points_of(s) & set(range(lo, hi))
    assert inter.total == len(points_of(inter))


# -- differential: interleaved schedules vs a byte-bitmap oracle -----------------
#
# The running `total` counter is maintained incrementally by add/remove/clear;
# a drift bug would only surface after a *sequence* of mutations.  Drive the
# set and a brute-force bitmap through the same seeded random schedule and
# compare everything after every single step.

SPAN = 256

ops = st.one_of(
    st.tuples(st.just("add"), ranges),
    st.tuples(st.just("remove"), ranges),
    st.tuples(st.just("clear"), st.none()),
)


def bitmap_runs(bits):
    runs, start = [], None
    for i, bit in enumerate(bits):
        if bit and start is None:
            start = i
        elif not bit and start is not None:
            runs.append((start, i))
            start = None
    if start is not None:
        runs.append((start, len(bits)))
    return runs


@settings(max_examples=200, deadline=None)
@given(st.lists(ops, max_size=30))
def test_schedule_matches_bitmap_oracle(schedule):
    s = IntervalSet()
    bits = bytearray(SPAN)
    for op, rng in schedule:
        if op == "add":
            s.add(*rng)
            bits[rng[0] : rng[1]] = b"\x01" * (rng[1] - rng[0])
        elif op == "remove":
            s.remove(*rng)
            bits[rng[0] : rng[1]] = b"\x00" * (rng[1] - rng[0])
        else:
            s.clear()
            bits = bytearray(SPAN)
        # every step: runs, running total, and the derived queries agree
        assert list(s) == bitmap_runs(bits)
        assert s.total == sum(bits)
        assert list(s.gaps(0, SPAN)) == bitmap_runs(bytes(1 - b for b in bits))
        mid = SPAN // 2
        assert list(s.intersect(0, mid)) == bitmap_runs(bits[:mid])
        assert s.copy().total == s.total
