"""Shared fixtures: small simulated clusters and SPMD helpers."""

from __future__ import annotations

import pytest

from repro.config import small_testbed
from repro.machine import Machine
from repro.mpi.process import MPIWorld
from repro.romio.file import MPIIOLayer


@pytest.fixture
def machine():
    """A 4-node × 2-rank cluster with exact (unbatched) flush simulation."""
    return Machine(small_testbed())


@pytest.fixture
def world(machine):
    return MPIWorld(machine)


@pytest.fixture
def romio(machine, world):
    """Flow-fidelity ROMIO over the small machine (data verification works)."""
    return MPIIOLayer(machine, world.comm, driver="beegfs", exchange_mode="flow")


@pytest.fixture
def spmd(machine, world):
    """Run a rank body across all ranks and return per-rank results."""

    def run(body):
        return world.run(body)

    return run


def make_cluster(num_nodes=4, procs_per_node=2, driver="beegfs", exchange="flow", **overrides):
    """Non-fixture helper for tests needing custom cluster shapes."""
    machine = Machine(small_testbed(num_nodes, procs_per_node, **overrides))
    world = MPIWorld(machine)
    layer = MPIIOLayer(machine, world.comm, driver=driver, exchange_mode=exchange)
    return machine, world, layer
