import numpy as np

from repro.cache.cachefile import CacheState
from repro.cache.policy import CachePolicy
from repro.romio.hints import Hints
from repro.units import KiB, MiB
from tests.conftest import make_cluster


def make_state(machine, world, flush_mode="flush_immediate", coherent=False, rank=0):
    policy = CachePolicy(
        enabled=True,
        coherent=coherent,
        flush_mode=flush_mode,
        discard_on_close=True,
        cache_path="/scratch",
        sync_chunk=32 * KiB,
    )
    pfs_file = machine.pfs.create("/g/target")
    return CacheState(machine, rank, pfs_file, policy, world.comm), pfs_file


def drive(machine, gen):
    return machine.sim.run(until=machine.sim.process(gen))


class TestPolicyFromHints:
    def test_mapping(self):
        h = Hints.from_info(
            {
                "e10_cache": "coherent",
                "e10_cache_flush_flag": "flush_onclose",
                "e10_cache_discard_flag": "disable",
                "e10_cache_path": "/nvme",
                "ind_wr_buffer_size": "64k",
            }
        )
        p = CachePolicy.from_hints(h)
        assert p.enabled and p.coherent
        assert not p.flush_immediate and not p.flush_never
        assert not p.discard_on_close
        assert p.cache_path == "/nvme"
        assert p.sync_chunk == 64 * KiB


class TestWriteThroughCache:
    def test_immediate_submits_to_thread(self):
        machine, world, layer = make_cluster()
        state, pfs_file = make_state(machine, world)

        def proc():
            greq = yield from state.write_through_cache(0, 64 * KiB, None)
            yield from greq.wait()

        drive(machine, proc())
        assert pfs_file.persisted.covers(0, 64 * KiB)
        assert state.sync_thread.bytes_synced == 64 * KiB

    def test_onclose_defers(self):
        machine, world, layer = make_cluster()
        state, pfs_file = make_state(machine, world, flush_mode="flush_onclose")

        def proc():
            yield from state.write_through_cache(0, 64 * KiB, None)
            yield machine.sim.timeout(10.0)
            before = pfs_file.persisted.total
            yield from state.flush()
            return before

        before = drive(machine, proc())
        assert before == 0
        assert pfs_file.persisted.total == 64 * KiB

    def test_data_reaches_global_file_intact(self):
        machine, world, layer = make_cluster()
        state, pfs_file = make_state(machine, world)
        data = np.arange(8 * KiB, dtype=np.uint64).astype(np.uint8)

        def proc():
            greq = yield from state.write_through_cache(4 * KiB, 8 * KiB, data)
            yield from greq.wait()

        drive(machine, proc())
        got = pfs_file.read_back(4 * KiB, 8 * KiB)
        assert np.array_equal(got, data)

    def test_cached_interval_tracking(self):
        machine, world, layer = make_cluster()
        state, _ = make_state(machine, world, flush_mode="flush_onclose")

        def proc():
            yield from state.write_through_cache(0, KiB, None)
            yield from state.write_through_cache(4 * KiB, KiB, None)

        drive(machine, proc())
        assert state.cached.total == 2 * KiB
        assert state.bytes_cached == 2 * KiB

    def test_sync_complete_flag(self):
        machine, world, layer = make_cluster()
        state, _ = make_state(machine, world, flush_mode="flush_onclose")

        def proc():
            yield from state.write_through_cache(0, KiB, None)
            pending = state.sync_complete
            yield from state.flush()
            return pending

        pending = drive(machine, proc())
        assert pending is False
        assert state.sync_complete


class TestClose:
    def test_close_flushes_and_discards(self):
        machine, world, layer = make_cluster()
        state, pfs_file = make_state(machine, world, flush_mode="flush_onclose")

        def proc():
            yield from state.write_through_cache(0, 64 * KiB, None)
            yield from state.close()

        drive(machine, proc())
        assert state.closed
        assert pfs_file.persisted.total == 64 * KiB
        assert machine.local_fs[0].used == 0  # discarded
        assert not state.sync_thread.alive  # thread shut down

    def test_allocate_uses_fallocate(self):
        machine, world, layer = make_cluster()
        state, _ = make_state(machine, world)

        def proc():
            yield from state.allocate(0, MiB)

        drive(machine, proc())
        assert state.local_file.allocated == MiB
        assert machine.sim.now < 1e-3  # fallocate, not zero-writing
