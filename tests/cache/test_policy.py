"""CachePolicy.from_hints over the full Table-II flag matrix."""

import pytest

from repro.cache.policy import CachePolicy
from repro.romio.hints import HintError, Hints

CACHE_MODES = ("enable", "disable", "coherent")
FLUSH_FLAGS = ("flush_immediate", "flush_onclose", "flush_none")
DISCARD_FLAGS = ("enable", "disable")


class TestFlagMatrix:
    @pytest.mark.parametrize("cache", CACHE_MODES)
    @pytest.mark.parametrize("flush", FLUSH_FLAGS)
    @pytest.mark.parametrize("discard", DISCARD_FLAGS)
    def test_every_combination(self, cache, flush, discard):
        hints = Hints.from_info(
            {
                "e10_cache": cache,
                "e10_cache_flush_flag": flush,
                "e10_cache_discard_flag": discard,
            }
        )
        policy = CachePolicy.from_hints(hints)
        assert policy.enabled == (cache in ("enable", "coherent"))
        assert policy.coherent == (cache == "coherent")
        assert policy.flush_mode == flush
        assert policy.flush_immediate == (flush == "flush_immediate")
        assert policy.flush_never == (flush == "flush_none")
        assert policy.discard_on_close == (discard == "enable")

    def test_paths_and_chunks_carried_over(self):
        hints = Hints.from_info(
            {
                "e10_cache": "enable",
                "e10_cache_path": "/nvme0",
                "ind_wr_buffer_size": "128k",
            }
        )
        policy = CachePolicy.from_hints(hints)
        assert policy.cache_path == "/nvme0"
        assert policy.sync_chunk == 128 * 1024

    def test_retry_knobs_have_sane_defaults(self):
        policy = CachePolicy.from_hints(Hints())
        assert policy.sync_retry_limit >= 1
        assert policy.sync_backoff_base > 0
        assert policy.sync_backoff_factor > 1
        assert policy.sync_requeue_limit >= 0

    def test_from_hints_validates(self):
        with pytest.raises(HintError):
            CachePolicy.from_hints(Hints(ind_wr_buffer_size=0))
        with pytest.raises(HintError):
            CachePolicy.from_hints(Hints(e10_cache="enable", e10_cache_path=""))
