import pytest

from repro.cache.cachefile import CacheState
from repro.cache.policy import CachePolicy
from repro.units import KiB, MiB
from tests.conftest import make_cluster


def setup(machine, world, sync_chunk=32 * KiB):
    policy = CachePolicy(
        enabled=True,
        coherent=False,
        flush_mode="flush_immediate",
        discard_on_close=True,
        cache_path="/scratch",
        sync_chunk=sync_chunk,
    )
    pfs_file = machine.pfs.create("/g/target")
    state = CacheState(machine, 0, pfs_file, policy, world.comm)
    return state, pfs_file


def drive(machine, gen):
    return machine.sim.run(until=machine.sim.process(gen))


class TestChunking:
    def test_chunk_count_matches_ind_wr_buffer_size(self):
        machine, world, _ = make_cluster()
        state, pfs_file = setup(machine, world, sync_chunk=32 * KiB)
        client = state.sync_thread.client

        def proc():
            greq = yield from state.write_through_cache(0, 256 * KiB, None)
            yield from greq.wait()

        drive(machine, proc())
        # 256 KiB in 32 KiB chunks = 8 synchronous RPC charges
        assert client.rpcs == 8

    def test_batched_flush_same_rpc_charges(self):
        # flush_batch_chunks is a fidelity knob: the number of charged RPCs
        # must not change.
        machine1, world1, _ = make_cluster()
        s1, _ = setup(machine1, world1)
        machine2, world2, _ = make_cluster(flush_batch_chunks=4)
        s2, _ = setup(machine2, world2)

        def proc(state, machine):
            greq = yield from state.write_through_cache(0, 256 * KiB, None)
            yield from greq.wait()
            return machine.sim.now

        t1 = drive(machine1, proc(s1, machine1))
        t2 = drive(machine2, proc(s2, machine2))
        assert s1.sync_thread.client.rpcs == s2.sync_thread.client.rpcs
        # batched run is a close approximation in time as well
        assert t2 == pytest.approx(t1, rel=0.35)

    def test_fifo_order_of_requests(self):
        machine, world, _ = make_cluster()
        state, pfs_file = setup(machine, world)
        order = []

        def proc():
            g1 = yield from state.write_through_cache(0, 32 * KiB, None)
            g2 = yield from state.write_through_cache(MiB, 32 * KiB, None)
            g1.event.callbacks.append(lambda e: order.append("first"))
            g2.event.callbacks.append(lambda e: order.append("second"))
            yield from g2.wait()

        drive(machine, proc())
        assert order == ["first", "second"]

    def test_busy_time_accounted(self):
        machine, world, _ = make_cluster()
        state, _ = setup(machine, world)

        def proc():
            greq = yield from state.write_through_cache(0, 128 * KiB, None)
            yield from greq.wait()

        drive(machine, proc())
        assert state.sync_thread.busy_time > 0
        assert state.sync_thread.requests_done == 1

    def test_shutdown_terminates_thread(self):
        machine, world, _ = make_cluster()
        state, _ = setup(machine, world)

        def proc():
            state.sync_thread.shutdown()
            yield machine.sim.timeout(0.001)

        drive(machine, proc())
        assert not state.sync_thread.alive


class TestOverlap:
    def test_flush_overlaps_foreground_compute(self):
        """The whole point of the paper: sync proceeds while the app computes."""
        machine, world, _ = make_cluster()
        state, pfs_file = setup(machine, world)

        def proc():
            yield from state.write_through_cache(0, MiB, None)
            t_write_done = machine.sim.now
            yield machine.sim.timeout(5.0)  # 'compute'
            persisted_during_compute = pfs_file.persisted.total
            yield from state.flush()
            t_flush_done = machine.sim.now
            return t_write_done, persisted_during_compute, t_flush_done

        t_write, persisted, t_flush = drive(machine, proc())
        assert t_write < 0.1  # local write was fast
        assert persisted == MiB  # sync finished inside the compute window
        assert t_flush == pytest.approx(5.0 + t_write, abs=0.05)

    def test_reads_charge_ssd_or_pagecache(self):
        machine, world, _ = make_cluster()
        state, _ = setup(machine, world)

        def proc():
            greq = yield from state.write_through_cache(0, MiB, None)
            yield from greq.wait()

        drive(machine, proc())
        node = machine.nodes[0]
        # the sync thread read the cached MiB back (page cache or SSD)
        assert node.ssd.bytes_read >= 0
        assert state.sync_thread.bytes_synced == MiB
