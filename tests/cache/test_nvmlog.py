"""NVMM write-ahead log: append/barrier semantics, torn records, capacity
accounting, and read-back overlay order."""

import numpy as np
import pytest

from repro.config import small_testbed
from repro.faults.errors import DeviceLostError, TornWriteError
from repro.localfs.ext4 import ENOSPC
from repro.machine import Machine
from repro.cache.nvmlog import NVMMWriteLog


@pytest.fixture
def machine():
    return Machine(small_testbed())


@pytest.fixture
def wal(machine):
    return NVMMWriteLog(machine, node_id=0, name="t")


def run(machine, gen):
    return machine.sim.run(until=machine.sim.process(gen))


def payload(n, fill):
    return np.full(n, fill, dtype=np.uint8)


class AlwaysTear:
    """Injector stand-in whose every WAL append tears."""

    def wal_tear_decision(self, node_id, offset, nbytes):
        return True

    def torn_write_error(self, node_id, offset, nbytes):
        return TornWriteError(f"torn [{offset}, {offset + nbytes})")


class TestAppend:
    def test_durable_append_charges_log_and_barrier(self, machine, wal):
        def proc():
            yield from wal.append(0, 1024, payload(1024, 7))

        run(machine, proc())
        dev = wal.device
        assert wal.durable_records == 1
        assert wal.bytes_appended == 1024
        assert dev.log_used == wal.header + 1024
        assert wal.records[0].durable and not wal.records[0].torn
        # device time (latency + bytes/bw) plus the persistence barrier
        expected = dev.latency + (wal.header + 1024) / dev.write_bw + dev.persist_barrier
        assert machine.sim.now == pytest.approx(expected)

    def test_payload_copied_not_aliased(self, machine, wal):
        buf = payload(64, 1)

        def proc():
            yield from wal.append(0, 64, buf)

        run(machine, proc())
        buf[:] = 9  # caller reuses its buffer
        assert wal.gather(0, 64).max() == 1

    def test_gather_overlays_in_append_order(self, machine, wal):
        def proc():
            yield from wal.append(0, 100, payload(100, 1))
            yield from wal.append(50, 100, payload(100, 2))

        run(machine, proc())
        out = wal.gather(0, 150)
        assert out[:50].tolist() == [1] * 50
        assert out[50:].tolist() == [2] * 100  # the later record wins

    def test_gather_none_without_payloads(self, machine, wal):
        def proc():
            yield from wal.append(0, 128, None)  # virtual run: no data kept

        run(machine, proc())
        assert wal.durable_records == 1
        assert wal.gather(0, 128) is None

    def test_read_charges_device_time(self, machine, wal):
        def proc():
            yield from wal.append(0, 4096, payload(4096, 3))
            t0 = machine.sim.now
            data = yield from wal.read(0, 4096)
            return data, machine.sim.now - t0

        data, took = run(machine, proc())
        assert data.tolist() == [3] * 4096
        assert took == pytest.approx(wal.device.latency + 4096 / wal.device.read_bw)


class TestTornAppend:
    def test_torn_append_raises_and_is_skipped(self, machine, wal):
        wal._injector = AlwaysTear()

        def proc():
            with pytest.raises(TornWriteError):
                yield from wal.append(0, 1000, payload(1000, 5))

        run(machine, proc())
        rec = wal.records[0]
        assert rec.torn and not rec.durable and rec.data is None
        assert wal.torn_records == 1
        assert wal.torn_bytes == 1000
        assert wal.durable_records == 0
        assert wal.gather(0, 1000) is None  # CRC-skipped on read-back

    def test_torn_slot_still_consumes_log_space(self, machine, wal):
        wal._injector = AlwaysTear()

        def proc():
            try:
                yield from wal.append(0, 1000, payload(1000, 5))
            except TornWriteError:
                pass

        run(machine, proc())
        assert wal.device.log_used == wal.header + 1000

    def test_retry_after_tear_recovers(self, machine, wal):
        wal._injector = AlwaysTear()

        def proc():
            try:
                yield from wal.append(0, 256, payload(256, 4))
            except TornWriteError:
                pass
            wal._injector = None  # window closes: the retry goes through
            yield from wal.append(0, 256, payload(256, 4))

        run(machine, proc())
        assert wal.torn_records == 1 and wal.durable_records == 1
        assert wal.gather(0, 256).tolist() == [4] * 256


class TestCapacity:
    def test_append_enospc_when_region_full(self, machine, wal):
        wal.device.capacity_bytes = wal.header + 512

        def proc():
            yield from wal.append(0, 512, payload(512, 1))
            with pytest.raises(ENOSPC):
                yield from wal.append(512, 1, payload(1, 1))

        run(machine, proc())

    def test_reserve_checks_without_charging(self, machine, wal):
        wal.device.capacity_bytes = wal.header + 512

        def proc():
            yield from wal.reserve(0, 512)  # fits
            with pytest.raises(ENOSPC):
                yield from wal.reserve(0, 513)

        run(machine, proc())
        assert wal.device.log_used == 0  # reservation never charges

    def test_discard_releases_region(self, machine, wal):
        def proc():
            yield from wal.append(0, 2048, payload(2048, 6))

        run(machine, proc())
        assert wal.device.log_used > 0
        wal.discard()
        assert wal.device.log_used == 0
        assert wal.records == [] and wal.reserved == 0

    def test_two_logs_share_the_region(self, machine):
        a = NVMMWriteLog(machine, 0, "a")
        b = NVMMWriteLog(machine, 0, "b")

        def proc():
            yield from a.append(0, 100, None)
            yield from b.append(0, 200, None)

        run(machine, proc())
        assert a.device is b.device
        assert a.device.log_used == a.header + 100 + b.header + 200
        a.discard()
        assert b.device.log_used == b.header + 200

    def test_read_only_device_rejects_appends(self, machine, wal):
        wal.device.read_only = True

        def proc():
            with pytest.raises(DeviceLostError):
                yield from wal.reserve(0, 10)
            with pytest.raises(DeviceLostError):
                yield from wal.append(0, 10, None)

        run(machine, proc())
