"""JobView: per-job isolation surface over one shared machine."""

from __future__ import annotations

import pytest

from repro.config import small_testbed
from repro.fleet import JobView
from repro.machine import Machine


@pytest.fixture
def machine():
    return Machine(small_testbed())  # 4 nodes x 2 ranks


class TestPlacement:
    def test_empty_placement_rejected(self, machine):
        with pytest.raises(ValueError, match="empty node placement"):
            JobView(machine, 0, ())

    def test_out_of_range_node_rejected(self, machine):
        with pytest.raises(ValueError, match="outside the 4-node cluster"):
            JobView(machine, 3, (1, 7))

    def test_node_of_rank_maps_through_placement(self, machine):
        view = JobView(machine, 0, (2, 3))
        # procs_per_node=2: job ranks 0,1 -> node 2; ranks 2,3 -> node 3.
        assert [view.node_of_rank(r) for r in range(4)] == [2, 2, 3, 3]

    def test_config_resized_to_the_placement(self, machine):
        view = JobView(machine, 0, (1, 2))
        assert view.config.num_nodes == 2
        assert view.config.num_ranks == 4
        assert machine.config.num_nodes == 4  # shared config untouched


class TestSharedVsPrivate:
    def test_substrate_is_shared(self, machine):
        a = JobView(machine, 0, (0,))
        b = JobView(machine, 1, (1,))
        assert a.sim is b.sim is machine.sim
        assert a.fabric is machine.fabric
        assert a.pfs is machine.pfs
        assert a.nodes is machine.nodes

    def test_ledgers_and_journals_are_private(self, machine):
        a = JobView(machine, 0, (0,))
        b = JobView(machine, 1, (1,))
        a.io_stats["bytes_app"] += 100
        assert b.io_stats["bytes_app"] == 0
        assert a.recovery is not b.recovery
        assert a.daemons is not b.daemons

    def test_pfs_clients_cached_and_tagged(self, machine):
        view = JobView(machine, 5, (1, 3))
        client = view.pfs_client(2)  # job rank 2 -> second placement node
        assert view.pfs_client(2) is client
        assert client.tag == "j5"
        assert client.name == "j5.client.r2"
        assert client.node_id == 3


class TestJobTracer:
    def test_records_are_stamped_with_the_job_label(self):
        machine = Machine(small_testbed(), trace=True)
        view = JobView(machine, 7, (0,))
        view.tracer.emit(0.5, "cache", "chunk", nbytes=4096)
        (rec,) = machine.tracer.records
        assert rec.detail["job"] == "j7"
        assert rec.detail["nbytes"] == 4096

    def test_explicit_job_detail_wins_over_the_stamp(self):
        machine = Machine(small_testbed(), trace=True)
        view = JobView(machine, 7, (0,))
        view.tracer.emit(0.5, "cache", "chunk", job="other")
        (rec,) = machine.tracer.records
        assert rec.detail["job"] == "other"

    def test_chrome_trace_gets_one_pid_lane_per_job(self):
        machine = Machine(small_testbed(), trace=True)
        a = JobView(machine, 0, (0,))
        b = JobView(machine, 1, (1,))
        machine.tracer.emit(0.0, "infra", "boot")  # untagged -> pid 0
        a.tracer.emit(0.1, "cache", "x")
        b.tracer.emit(0.2, "cache", "y")
        a.tracer.emit(0.3, "cache", "z")
        doc = machine.tracer.to_chrome_trace()
        by_name = {}
        for ev in doc["traceEvents"]:
            if ev.get("ph") == "i":
                by_name[ev["name"]] = ev["pid"]
        assert by_name["boot"] == 0
        assert by_name["x"] == by_name["z"] != by_name["y"]
        lanes = {
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev.get("name") == "process_name"
        }
        assert lanes == {"job j0", "job j1"}
